//! Criterion bench for ablation AB1: analytic unfactored counting versus
//! actually materialising the unfactored (classic, one-choice-point-per-
//! element) document.

use criterion::{criterion_group, criterion_main, Criterion};
use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise_bench::fig5_oracles;
use std::hint::black_box;

fn bench_factoring(c: &mut Criterion) {
    // fig5 n=6 with the title-only rule: small enough to materialise the
    // unfactored equivalent (~8 × 10⁴ nodes), big enough to matter.
    let scenario = scenarios::fig5(6);
    let [(_, title_only), _] = fig5_oracles();
    let integrated = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &title_only,
        Some(&scenario.schema),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds");
    let doc = integrated.doc;
    let mut group = c.benchmark_group("ablation-factoring");
    group.sample_size(20);
    group.bench_function("analytic-count", |b| {
        b.iter(|| black_box(doc.unfactored_node_count()))
    });
    group.bench_function("materialize-unfactored", |b| {
        b.iter(|| {
            black_box(
                doc.to_unfactored(10_000_000)
                    .expect("fits")
                    .reachable_count(),
            )
        })
    });
    group.bench_function("factored-count", |b| {
        b.iter(|| black_box(doc.reachable_count()))
    });
    group.finish();
}

criterion_group!(benches, bench_factoring);
criterion_main!(benches);
