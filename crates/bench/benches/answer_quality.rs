//! Criterion bench for the answer-quality machinery: the ε-pruning pass
//! itself and the prune-then-query pipeline on the §VI database.

use criterion::{criterion_group, criterion_main, Criterion};
use imprecise::query::{eval_px, parse_query};
use imprecise_bench::{build_query_db, run_answer_quality, HORROR_QUERY};
use std::hint::black_box;

fn bench_answer_quality(c: &mut Criterion) {
    let base = build_query_db().doc;
    let horror = parse_query(HORROR_QUERY).expect("query parses");
    let mut group = c.benchmark_group("answer_quality");
    group.sample_size(20);
    group.bench_function("prune_below/0.1", |b| {
        b.iter(|| {
            let mut doc = base.clone();
            black_box(doc.prune_below(black_box(0.1)));
            doc
        })
    });
    group.bench_function("prune_then_query", |b| {
        b.iter(|| {
            let mut doc = base.clone();
            doc.prune_below(0.1);
            black_box(eval_px(&doc, &horror).expect("evaluates"))
        })
    });
    group.bench_function("full_sweep", |b| {
        b.iter(|| black_box(run_answer_quality(black_box(&[0.0, 0.1, 0.3, 1.1]))))
    });
    group.finish();
}

criterion_group!(benches, bench_answer_quality);
criterion_main!(benches);
