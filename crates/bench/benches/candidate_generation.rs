//! Criterion bench for candidate generation at scale: pairwise oracle
//! calls vs batched one-vs-many rows vs the blocking prefilter, on the
//! `large_source` catalogue workload (PR 10).
//!
//! The question this answers: what does the recall-safe blocker buy
//! when both sources hold thousands of movies? Pairwise and batched
//! judging are Θ(n²) in oracle work, so the grid caps them where a
//! sampled run stays affordable — pairwise/batched cost ≈ 2.2 s / 1.1 s
//! *per iteration* already at n = 1 000, and ≈ 37 s / 22 s at n = 4 000,
//! so the quadratic strategies stop at n = 1 000 by design (the cap is
//! the point: they do not scale). The blocked strategy runs the full
//! n ∈ {1 000, 4 000, 10 000} ladder; at n = 10 000 it scores about
//! 0.005 % of the 10⁸ cross-product pairs in under half a second.
//!
//! * `pairwise/n=…` — one `Oracle::judge` call per (a, b) pair.
//! * `batched/n=…` — one `Oracle::judge_row` per left element over the
//!   whole right side (amortises per-call feature extraction).
//! * `blocked/n=…` — `block_candidates` (recall-safe mode) first, then
//!   `judge_row` over each surviving per-row run.
//!
//! Under `--bench` the harness ends with two regression gates measured
//! by `imprecise_bench::measure_candidate_scaling`: the blocked
//! time ratio t(10 000)/t(1 000) must stay under
//! [`CANDIDATE_GATE_CEILING`]× (a quadratic strategy grows 100× across
//! that decade), and the scored fraction of the 10 000² cross product
//! must stay under [`CANDIDATE_COVERAGE_CEILING`]. Set
//! `IMPRECISE_BENCH_GATE=off` to skip the gates on noisy machines.

use criterion::{criterion_group, Criterion};
use imprecise::integrate::BlockingMode;
use imprecise_bench::{
    blocking_oracle, candidate_workload, generate_batched, generate_blocked, generate_pairwise,
    measure_candidate_scaling, CANDIDATE_COVERAGE_CEILING, CANDIDATE_GATE_CEILING,
};
use std::hint::black_box;

fn bench_candidate_generation(c: &mut Criterion) {
    // The shim's test mode (`cargo test`, debug profile) runs each body
    // once for compile/behaviour coverage; the full grid would take
    // minutes unoptimised, so test mode shrinks every size. Timed runs
    // (`--bench`, release) use the real ladder.
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let quadratic_n = if bench_mode { 1_000 } else { 120 };
    let ladder: [usize; 3] = if bench_mode {
        [1_000, 4_000, 10_000]
    } else {
        [120, 250, 400]
    };

    let oracle = blocking_oracle();
    let mut group = c.benchmark_group("candidate_generation");
    group.sample_size(10);

    // Quadratic baselines: affordable only at the bottom of the ladder
    // (see module doc for the measured per-iteration costs that set
    // this cap).
    let wq = candidate_workload(quadratic_n);
    group.bench_function(format!("pairwise/n={quadratic_n}"), |b| {
        b.iter(|| black_box(generate_pairwise(black_box(&wq), &oracle)))
    });
    group.bench_function(format!("batched/n={quadratic_n}"), |b| {
        b.iter(|| black_box(generate_batched(black_box(&wq), &oracle)))
    });
    drop(wq);

    for n in ladder {
        let w = candidate_workload(n);
        group.bench_function(format!("blocked/n={n}"), |b| {
            b.iter(|| {
                black_box(generate_blocked(
                    black_box(&w),
                    &oracle,
                    BlockingMode::RecallSafe,
                ))
            })
        });
    }

    group.finish();
}

/// Regression gates for sub-quadratic candidate generation. The
/// measurement lives in `imprecise_bench` (`measure_candidate_scaling`)
/// and runs only under `--bench`: it times n = 10 000 workloads, which
/// is meaningful in release but takes minutes in the debug profile
/// `cargo test` uses.
fn candidate_scaling_gate() {
    if std::env::var("IMPRECISE_BENCH_GATE").is_ok_and(|v| v == "off") {
        println!("gate: skipped (IMPRECISE_BENCH_GATE=off)");
        return;
    }
    let m = measure_candidate_scaling();
    let ratio = m.ratio();
    let coverage = m.coverage();
    println!(
        "gate: blocked n=10000 {:?} / n=1000 {:?} = {ratio:.2}x \
         (ceiling {CANDIDATE_GATE_CEILING}x); scored {} of 10000^2 pairs \
         = {coverage:.5} (ceiling {CANDIDATE_COVERAGE_CEILING})",
        m.large, m.small, m.large_scored
    );
    assert!(
        m.holds(),
        "blocked candidate generation grew {ratio:.2}x across the 1k→10k \
         decade (ceiling {CANDIDATE_GATE_CEILING}x, quadratic would be \
         100x): the prefilter is no longer sub-quadratic"
    );
    assert!(
        m.coverage_holds(),
        "blocked candidate generation scored {coverage:.5} of the n=10000 \
         cross product (ceiling {CANDIDATE_COVERAGE_CEILING}): the \
         prefilter stopped pruning"
    );
}

criterion_group!(benches, bench_candidate_generation);

fn main() {
    benches();
    // Gate only under `cargo bench` (the shim's test mode runs each
    // bench body once for compile/behaviour coverage; timing there is
    // meaningless).
    if std::env::args().any(|a| a == "--bench") {
        candidate_scaling_gate();
    }
}
