//! Criterion bench for the Figure 5 experiment: integration time as the
//! IMDB side grows, under the figure's two rule configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise_bench::fig5_oracles;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let options = IntegrationOptions::default();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for (label, oracle) in fig5_oracles() {
        for n in [6usize, 18, 30] {
            let scenario = scenarios::fig5(n);
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let result = integrate_xml(
                        black_box(&scenario.mpeg7),
                        black_box(&scenario.imdb),
                        &oracle,
                        Some(&scenario.schema),
                        &options,
                    )
                    .expect("integration succeeds");
                    black_box(result.doc.reachable_count())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
