//! Criterion bench for the staged, budgeted integration pipeline.
//!
//! Three axes on confusable movie workloads (see
//! `scenarios::confusable` / `confusable_grid`: catalogs of same-year,
//! similar-title re-editions nothing but a budget can tame):
//!
//! * **exhaustive vs budgeted** — `confusable5` (one 5×5 component,
//!   1 546 matchings) is enumerable both ways; a budget of 64 keeps the
//!   heaviest matchings at a fraction of the enumeration *and* output
//!   cost. `confusable8` (1 441 729 matchings) is the former scaling
//!   cliff: strict mode dies with `TooManyMatchings` at the default
//!   cap — benched under budgets and a `min_retained_mass` stop only.
//! * **serial vs parallel** — `grid4x5` (four independent 5×5
//!   components, factored apart by the year rule) enumerated
//!   exhaustively and under budget with `parallelism` 1 vs all cores
//!   (`std::thread::scope` fan-out; on a single-core container the two
//!   coincide, which the recorded baseline notes).
//! * **the N-source fold** — `many_sources(4, 1)` through
//!   `Engine::integrate_many`.

use criterion::{criterion_group, criterion_main, Criterion};
use imprecise::datagen::scenarios;
use imprecise::integrate::{IntegrationOptions, Parallelism};
use imprecise::xml::to_string;
use imprecise::Engine;
use imprecise_bench::{confusion_oracle, integrate_scenario};
use std::hint::black_box;

fn options(
    budget: usize,
    min_mass: Option<f64>,
    strict: bool,
    parallelism: usize,
) -> IntegrationOptions {
    IntegrationOptions {
        max_matchings_per_component: budget,
        min_retained_mass: min_mass,
        strict_matchings: strict,
        parallelism: Parallelism::new(parallelism),
        ..IntegrationOptions::default()
    }
}

fn bench_integrate_pipeline(c: &mut Criterion) {
    let oracle = confusion_oracle();
    let mut group = c.benchmark_group("integrate_pipeline");
    group.sample_size(10);

    // One 5×5 all-undecided component: exhaustive is feasible (1546
    // matchings), so the budget's speedup is directly measurable.
    let c5 = scenarios::confusable(5);
    group.bench_function("confusable5/exhaustive-strict", |b| {
        b.iter(|| {
            black_box(integrate_scenario(
                black_box(&c5),
                &oracle,
                &options(usize::MAX, None, true, 1),
            ))
        })
    });
    group.bench_function("confusable5/budget-64", |b| {
        b.iter(|| {
            black_box(integrate_scenario(
                black_box(&c5),
                &oracle,
                &options(64, None, false, 1),
            ))
        })
    });

    // One 8×8 component (1 441 729 matchings): strict mode fails at the
    // default cap — only budgeted runs are possible at all.
    let c8 = scenarios::confusable(8);
    group.bench_function("confusable8/budget-64", |b| {
        b.iter(|| {
            black_box(integrate_scenario(
                black_box(&c8),
                &oracle,
                &options(64, None, false, 1),
            ))
        })
    });
    group.bench_function("confusable8/budget-512", |b| {
        b.iter(|| {
            black_box(integrate_scenario(
                black_box(&c8),
                &oracle,
                &options(512, None, false, 1),
            ))
        })
    });
    group.bench_function("confusable8/min-mass-0.5", |b| {
        b.iter(|| {
            black_box(integrate_scenario(
                black_box(&c8),
                &oracle,
                &options(usize::MAX, Some(0.5), false, 1),
            ))
        })
    });

    // Four independent 5×5 components: the parallel fan-out workload.
    let grid = scenarios::confusable_grid(4, 5);
    group.bench_function("grid4x5/exhaustive-serial", |b| {
        b.iter(|| {
            black_box(integrate_scenario(
                black_box(&grid),
                &oracle,
                &options(usize::MAX, None, false, 1),
            ))
        })
    });
    group.bench_function("grid4x5/exhaustive-parallel", |b| {
        b.iter(|| {
            black_box(integrate_scenario(
                black_box(&grid),
                &oracle,
                &options(usize::MAX, None, false, 0),
            ))
        })
    });
    group.bench_function("grid4x5/budget-128-serial", |b| {
        b.iter(|| {
            black_box(integrate_scenario(
                black_box(&grid),
                &oracle,
                &options(128, None, false, 1),
            ))
        })
    });
    group.bench_function("grid4x5/budget-128-parallel", |b| {
        b.iter(|| {
            black_box(integrate_scenario(
                black_box(&grid),
                &oracle,
                &options(128, None, false, 0),
            ))
        })
    });

    // The engine-level N-source fold on the overlapping-sources
    // scenario (satellite of the same PR).
    let ms = scenarios::many_sources(4, 1);
    let engine = Engine::builder()
        .oracle(imprecise::oracle::presets::movie_oracle(
            imprecise::oracle::presets::MovieOracleConfig::default(),
        ))
        .schema(ms.schema.clone())
        .build();
    let handles: Vec<_> = ms
        .sources
        .iter()
        .enumerate()
        .map(|(i, doc)| {
            engine
                .load_xml(&format!("src-{i}"), &to_string(doc))
                .expect("source loads")
        })
        .collect();
    group.bench_function("many-sources-n4/integrate_many", |b| {
        b.iter(|| {
            black_box(
                engine
                    .integrate_many(black_box(&handles), "bench-db")
                    .expect("fold completes"),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_integrate_pipeline);
criterion_main!(benches);
