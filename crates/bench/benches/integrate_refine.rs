//! Criterion bench for resumable integration: one-shot big budgets vs
//! staged small-budget refinements on the confusable workloads.
//!
//! The pay-as-you-go question this answers: how much does splitting a
//! matching budget of `K` into `n` refinement installments of `K/n`
//! cost over spending `K` at once? Each installment resumes the search
//! exactly where it stopped *and* emits only the new matchings'
//! subtrees (incremental emission), so the staged path should sit close
//! to the one-shot cost — the gap is per-step fixed overhead, not a
//! re-emission of the growing kept set.
//!
//! * `confusable8/*` — one 8×8 component (1 441 729 matchings, far past
//!   exhaustion): budget 512 at once vs 8 × 64 refinements vs one
//!   64-budget run refined once with 448 extra.
//! * `incremental_emission/*` — the same workload under finer
//!   installments (16 × 32) and with arena compaction between
//!   installments, the stress cases of the delta emitter.
//! * `mixed-5-3-2/*` — three components of different sizes: a planned
//!   total budget (`BudgetPlan::Total`) vs the same total spent as
//!   per-component caps, and top-1 (largest discarded mass first)
//!   staged refinement.
//! * `refine_parallel/*` — the staged 8 × 64 workload with the
//!   intra-component worker pool at 1/2/4 threads (bit-identical
//!   output, so the spread is pure wall-clock), and a variant that
//!   demotes live enumerators to stored frontiers between installments
//!   to price the resident fast path against the old restore loop.
//!
//! Under `--bench` the harness ends with a regression gate: staged
//! 8 × 64 must stay within `STAGED_GATE_CEILING`× of one-shot 512 (set
//! `IMPRECISE_BENCH_GATE=off` to skip, e.g. on wildly noisy machines).

use criterion::{criterion_group, Criterion};
use imprecise::datagen::scenarios;
use imprecise::integrate::{
    integrate_xml, BudgetPlan, IntegrationOptions, Parallelism, RefineOptions,
};
use imprecise_bench::{
    confusion_oracle, integrate_then_refine, measure_staged_vs_one_shot, STAGED_GATE_CEILING,
};
use std::hint::black_box;

fn options(budget: usize) -> IntegrationOptions {
    IntegrationOptions {
        max_matchings_per_component: budget,
        ..IntegrationOptions::default()
    }
}

fn bench_integrate_refine(c: &mut Criterion) {
    let oracle = confusion_oracle();
    let mut group = c.benchmark_group("integrate_refine");
    group.sample_size(10);

    // One 8×8 component: the scaling cliff only budgets can cross.
    let c8 = scenarios::confusable(8);
    group.bench_function("confusable8/one-shot-512", |b| {
        b.iter(|| {
            black_box(
                integrate_xml(
                    black_box(&c8.mpeg7),
                    &c8.imdb,
                    &oracle,
                    Some(&c8.schema),
                    &options(512),
                )
                .expect("integrates"),
            )
        })
    });
    group.bench_function("confusable8/staged-8x64", |b| {
        b.iter(|| {
            black_box(integrate_then_refine(
                black_box(&c8),
                &oracle,
                &options(64),
                64,
                7,
            ))
        })
    });
    group.bench_function("confusable8/refine-64-plus-448", |b| {
        b.iter(|| {
            black_box(integrate_then_refine(
                black_box(&c8),
                &oracle,
                &options(64),
                448,
                1,
            ))
        })
    });

    // Heterogeneous components: planned total vs per-component caps,
    // and worst-component-first staged refinement.
    let mixed = scenarios::confusable_mixed(&[5, 3, 2]);
    group.bench_function("mixed-5-3-2/per-component-64", |b| {
        b.iter(|| {
            black_box(
                integrate_xml(
                    black_box(&mixed.mpeg7),
                    &mixed.imdb,
                    &oracle,
                    Some(&mixed.schema),
                    &options(64),
                )
                .expect("integrates"),
            )
        })
    });
    group.bench_function("mixed-5-3-2/planned-total-192", |b| {
        b.iter(|| {
            black_box(
                integrate_xml(
                    black_box(&mixed.mpeg7),
                    &mixed.imdb,
                    &oracle,
                    Some(&mixed.schema),
                    &IntegrationOptions {
                        budget_plan: BudgetPlan::Total(192),
                        ..IntegrationOptions::default()
                    },
                )
                .expect("integrates"),
            )
        })
    });
    group.bench_function("mixed-5-3-2/staged-top1-x4", |b| {
        b.iter(|| {
            let scenario = black_box(&mixed);
            let mut outcome = integrate_xml(
                &scenario.mpeg7,
                &scenario.imdb,
                &oracle,
                Some(&scenario.schema),
                &options(16),
            )
            .expect("integrates");
            let refine = RefineOptions {
                extra_matchings: 48,
                min_retained_mass: None,
                max_components: 1,
                threads: None,
            };
            for _ in 0..4 {
                if !outcome.is_refinable() {
                    break;
                }
                outcome
                    .refine(&oracle, Some(&scenario.schema), &refine)
                    .expect("refines");
            }
            black_box(outcome)
        })
    });

    group.finish();
}

/// The stress cases of the incremental emitter: many small installments
/// (per-step overhead dominates if emission is not append-only) and
/// compaction between installments (remapping open frontiers).
fn bench_incremental_emission(c: &mut Criterion) {
    let oracle = confusion_oracle();
    let mut group = c.benchmark_group("incremental_emission");
    group.sample_size(10);

    let c8 = scenarios::confusable(8);
    group.bench_function("confusable8/staged-16x32", |b| {
        b.iter(|| {
            black_box(integrate_then_refine(
                black_box(&c8),
                &oracle,
                &options(32),
                32,
                15,
            ))
        })
    });
    group.bench_function("confusable8/staged-8x64-compact-each-step", |b| {
        b.iter(|| {
            let scenario = black_box(&c8);
            let mut outcome = integrate_xml(
                &scenario.mpeg7,
                &scenario.imdb,
                &oracle,
                Some(&scenario.schema),
                &options(64),
            )
            .expect("integrates");
            let refine = RefineOptions {
                extra_matchings: 64,
                min_retained_mass: None,
                max_components: usize::MAX,
                threads: None,
            };
            for _ in 0..7 {
                if !outcome.is_refinable() {
                    break;
                }
                outcome
                    .refine(&oracle, Some(&scenario.schema), &refine)
                    .expect("refines");
                outcome.compact_arena();
            }
            black_box(outcome)
        })
    });

    group.finish();
}

/// The parallel-search and live-enumerator benches (PR 9): the same
/// staged 8 × 64 confusable8 workload with the intra-component worker
/// pool at 1/2/4 threads — bit-identical results, so any spread is pure
/// wall-clock — plus a round-trip variant that demotes every live
/// enumerator to its stored form between installments, pricing the
/// resident fast path against the persist/restore loop it replaced.
fn bench_refine_parallel(c: &mut Criterion) {
    let oracle = confusion_oracle();
    let mut group = c.benchmark_group("refine_parallel");
    group.sample_size(10);

    let c8 = scenarios::confusable(8);
    // confusable8 is one 64-live-pair component: past the parallel
    // engagement threshold, so granted threads actually work.
    let staged = |threads: Option<Parallelism>, round_trip: bool| {
        let mut outcome =
            integrate_xml(&c8.mpeg7, &c8.imdb, &oracle, Some(&c8.schema), &options(64))
                .expect("integrates");
        let refine = RefineOptions {
            extra_matchings: 64,
            min_retained_mass: None,
            max_components: usize::MAX,
            threads,
        };
        for _ in 0..7 {
            if !outcome.is_refinable() {
                break;
            }
            if round_trip {
                outcome.materialise_frontiers();
            }
            outcome
                .refine(&oracle, Some(&c8.schema), &refine)
                .expect("refines");
        }
        outcome
    };
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("confusable8/staged-8x64-threads-{threads}"), |b| {
            b.iter(|| black_box(staged(Some(Parallelism::new(black_box(threads))), false)))
        });
    }
    group.bench_function("confusable8/staged-8x64-round-trip-each-step", |b| {
        b.iter(|| black_box(staged(Some(Parallelism::SERIAL), black_box(true))))
    });

    group.finish();
}

/// Regression gate for the incremental emitter: staged 8 × 64 must stay
/// within [`STAGED_GATE_CEILING`]× of one-shot 512 on the confusable8
/// workload. The measurement itself lives in `imprecise_bench` so the
/// `gate` integration test asserts the exact same numbers.
fn staged_vs_one_shot_gate() {
    if std::env::var("IMPRECISE_BENCH_GATE").is_ok_and(|v| v == "off") {
        println!("gate: skipped (IMPRECISE_BENCH_GATE=off)");
        return;
    }
    let m = measure_staged_vs_one_shot();
    let ratio = m.ratio();
    println!(
        "gate: staged-8x64 {:?} / one-shot-512 {:?} = {ratio:.2}x (ceiling {STAGED_GATE_CEILING}x)",
        m.staged, m.one_shot
    );
    assert!(
        m.holds(),
        "staged refinement regressed to {ratio:.2}x the one-shot cost \
         (ceiling {STAGED_GATE_CEILING}x): incremental emission should keep \
         installments near the one-shot budget"
    );
}

criterion_group!(
    benches,
    bench_integrate_refine,
    bench_incremental_emission,
    bench_refine_parallel
);

fn main() {
    benches();
    // Gate only under `cargo bench` (the shim's test mode runs each
    // bench body once for compile/behaviour coverage; timing there is
    // meaningless).
    if std::env::args().any(|a| a == "--bench") {
        staged_vs_one_shot_gate();
    }
}
