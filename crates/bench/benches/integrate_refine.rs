//! Criterion bench for resumable integration: one-shot big budgets vs
//! staged small-budget refinements on the confusable workloads.
//!
//! The pay-as-you-go question this answers: how much does splitting a
//! matching budget of `K` into `n` refinement installments of `K/n`
//! cost over spending `K` at once? The staged path re-emits the
//! component's (growing) matching set every step, so its overhead is
//! the emission, not the search — the frontier resumes the search
//! exactly where it stopped.
//!
//! * `confusable8/*` — one 8×8 component (1 441 729 matchings, far past
//!   exhaustion): budget 512 at once vs 8 × 64 refinements vs one
//!   64-budget run refined once with 448 extra.
//! * `mixed-5-3-2/*` — three components of different sizes: a planned
//!   total budget (`BudgetPlan::Total`) vs the same total spent as
//!   per-component caps, and top-1 (largest discarded mass first)
//!   staged refinement.

use criterion::{criterion_group, criterion_main, Criterion};
use imprecise::datagen::scenarios;
use imprecise::integrate::{
    integrate_xml, BudgetPlan, IntegrationOptions, IntegrationOutcome, RefineOptions,
};
use imprecise_bench::confusion_oracle;
use std::hint::black_box;

fn options(budget: usize) -> IntegrationOptions {
    IntegrationOptions {
        max_matchings_per_component: budget,
        ..IntegrationOptions::default()
    }
}

/// Integrate a scenario under `budget`, then apply refinement steps of
/// `extra` matchings each until `target_kept` matchings are kept (or
/// everything drained). Returns the final outcome.
fn integrate_then_refine(
    scenario: &scenarios::MovieScenario,
    oracle: &imprecise::oracle::Oracle,
    opts: &IntegrationOptions,
    extra: usize,
    steps: usize,
) -> IntegrationOutcome {
    let mut outcome = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        oracle,
        Some(&scenario.schema),
        opts,
    )
    .expect("integrates");
    let refine = RefineOptions {
        extra_matchings: extra,
        min_retained_mass: None,
        max_components: usize::MAX,
    };
    for _ in 0..steps {
        if !outcome.is_refinable() {
            break;
        }
        outcome
            .refine(oracle, Some(&scenario.schema), &refine)
            .expect("refines");
    }
    outcome
}

fn bench_integrate_refine(c: &mut Criterion) {
    let oracle = confusion_oracle();
    let mut group = c.benchmark_group("integrate_refine");
    group.sample_size(10);

    // One 8×8 component: the scaling cliff only budgets can cross.
    let c8 = scenarios::confusable(8);
    group.bench_function("confusable8/one-shot-512", |b| {
        b.iter(|| {
            black_box(
                integrate_xml(
                    black_box(&c8.mpeg7),
                    &c8.imdb,
                    &oracle,
                    Some(&c8.schema),
                    &options(512),
                )
                .expect("integrates"),
            )
        })
    });
    group.bench_function("confusable8/staged-8x64", |b| {
        b.iter(|| {
            black_box(integrate_then_refine(
                black_box(&c8),
                &oracle,
                &options(64),
                64,
                7,
            ))
        })
    });
    group.bench_function("confusable8/refine-64-plus-448", |b| {
        b.iter(|| {
            black_box(integrate_then_refine(
                black_box(&c8),
                &oracle,
                &options(64),
                448,
                1,
            ))
        })
    });

    // Heterogeneous components: planned total vs per-component caps,
    // and worst-component-first staged refinement.
    let mixed = scenarios::confusable_mixed(&[5, 3, 2]);
    group.bench_function("mixed-5-3-2/per-component-64", |b| {
        b.iter(|| {
            black_box(
                integrate_xml(
                    black_box(&mixed.mpeg7),
                    &mixed.imdb,
                    &oracle,
                    Some(&mixed.schema),
                    &options(64),
                )
                .expect("integrates"),
            )
        })
    });
    group.bench_function("mixed-5-3-2/planned-total-192", |b| {
        b.iter(|| {
            black_box(
                integrate_xml(
                    black_box(&mixed.mpeg7),
                    &mixed.imdb,
                    &oracle,
                    Some(&mixed.schema),
                    &IntegrationOptions {
                        budget_plan: BudgetPlan::Total(192),
                        ..IntegrationOptions::default()
                    },
                )
                .expect("integrates"),
            )
        })
    });
    group.bench_function("mixed-5-3-2/staged-top1-x4", |b| {
        b.iter(|| {
            let scenario = black_box(&mixed);
            let mut outcome = integrate_xml(
                &scenario.mpeg7,
                &scenario.imdb,
                &oracle,
                Some(&scenario.schema),
                &options(16),
            )
            .expect("integrates");
            let refine = RefineOptions {
                extra_matchings: 48,
                min_retained_mass: None,
                max_components: 1,
            };
            for _ in 0..4 {
                if !outcome.is_refinable() {
                    break;
                }
                outcome
                    .refine(&oracle, Some(&scenario.schema), &refine)
                    .expect("refines");
            }
            black_box(outcome)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_integrate_refine);
criterion_main!(benches);
