//! Microbenchmarks of the substrates: XML parsing, fingerprinting,
//! similarity measures, matching enumeration and event probability —
//! the per-pair and per-node costs everything else multiplies.

use criterion::{criterion_group, criterion_main, Criterion};
use imprecise::datagen::movies::{catalog_to_xml, random_catalog, SourceStyle};
use imprecise::integrate::matching::{enumerate_matchings, Candidate, Component};
use imprecise::pxml::from_xml;
use imprecise::query::event::{probability, ChoiceAtom, Event};
use imprecise::sim;
use imprecise::xml::{parse, subtree_fingerprint, to_string};
use std::hint::black_box;

fn bench_xml(c: &mut Criterion) {
    let movies = random_catalog(1, 200);
    let doc = catalog_to_xml(&movies, SourceStyle::Imdb);
    let text = to_string(&doc);
    let mut group = c.benchmark_group("xmlkit");
    group.bench_function("parse-200-movies", |b| {
        b.iter(|| black_box(parse(black_box(&text)).expect("parses")))
    });
    group.bench_function("serialize-200-movies", |b| {
        b.iter(|| black_box(to_string(black_box(&doc))))
    });
    group.bench_function("fingerprint-200-movies", |b| {
        b.iter(|| black_box(subtree_fingerprint(black_box(&doc), doc.root())))
    });
    group.finish();
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.bench_function("title-similarity", |b| {
        b.iter(|| {
            black_box(sim::title_similarity(
                black_box("Mission: Impossible II"),
                black_box("Impossible Mission 2 (TV)"),
            ))
        })
    });
    group.bench_function("person-name-similarity", |b| {
        b.iter(|| {
            black_box(sim::person_name_similarity(
                black_box("McTiernan, John"),
                black_box("John McTiernan"),
            ))
        })
    });
    group.bench_function("levenshtein-20", |b| {
        b.iter(|| {
            black_box(sim::levenshtein(
                black_box("die hard with a vengeance"),
                black_box("die hard 2 die harder"),
            ))
        })
    });
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let full_4x4 = Component {
        a_nodes: (0..4).collect(),
        b_nodes: (0..4).collect(),
        forced: vec![],
        possible: (0..4)
            .flat_map(|a| (0..4).map(move |b| Candidate { a, b, p: 0.5 }))
            .collect(),
    };
    let mut group = c.benchmark_group("matching");
    group.bench_function("enumerate-4x4-complete", |b| {
        b.iter(|| black_box(enumerate_matchings(black_box(&full_4x4), 1 << 20).expect("fits")))
    });
    group.finish();
}

fn bench_events(c: &mut Criterion) {
    // A document with 8 independent ternary choices and an event touching
    // all of them.
    let mut xml = imprecise::xml::XmlDoc::new("doc");
    let root = xml.root();
    for i in 0..8 {
        xml.add_text_element(root, "x", format!("{i}"));
    }
    let mut px = from_xml(&xml);
    let poss = px.children(px.root())[0];
    let doc_elem = px.children(poss)[0];
    let mut vars = Vec::new();
    for _ in 0..8 {
        let prob = px.add_prob(doc_elem);
        for w in [0.2, 0.3, 0.5] {
            let p = px.add_poss(prob, w);
            px.add_text_elem(p, "v", "1");
        }
        vars.push(prob);
    }
    let event = Event::any(vars.iter().map(|&v| {
        Event::Atom(ChoiceAtom {
            prob_node: v,
            poss_index: 0,
        })
    }));
    let mut group = c.benchmark_group("events");
    group.bench_function("probability-8-var-disjunction", |b| {
        b.iter(|| black_box(probability(black_box(&px), black_box(&event))))
    });
    group.finish();
}

criterion_group!(benches, bench_xml, bench_sim, bench_matching, bench_events);
criterion_main!(benches);
