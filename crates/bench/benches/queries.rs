//! Criterion bench for the §VI query experiments: the exact symbolic
//! evaluator against the naive all-worlds evaluator on the integrated
//! query database (the baseline the "amalgamated answer" construction is
//! meant to beat).

use criterion::{criterion_group, criterion_main, Criterion};
use imprecise::query::{eval_px, eval_px_naive, parse_query};
use imprecise_bench::{build_query_db, HORROR_QUERY, JOHN_QUERY};
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let db = build_query_db().doc;
    let horror = parse_query(HORROR_QUERY).expect("horror query parses");
    let john = parse_query(JOHN_QUERY).expect("john query parses");
    let mut group = c.benchmark_group("queries");
    group.sample_size(20);
    group.bench_function("horror/exact", |b| {
        b.iter(|| black_box(eval_px(black_box(&db), &horror).expect("evaluates")))
    });
    group.bench_function("john/exact", |b| {
        b.iter(|| black_box(eval_px(black_box(&db), &john).expect("evaluates")))
    });
    group.sample_size(10);
    group.bench_function("horror/naive-all-worlds", |b| {
        b.iter(|| {
            black_box(eval_px_naive(black_box(&db), &horror, 1_000_000).expect("worlds enumerate"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
