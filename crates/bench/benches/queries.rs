//! Criterion bench for the §VI query experiments: the exact symbolic
//! evaluator against the naive all-worlds evaluator on the integrated
//! query database (the baseline the "amalgamated answer" construction is
//! meant to beat), plus the `Engine` API's parse-once `PreparedQuery`
//! path against the parse-per-call convenience path.

use criterion::{criterion_group, criterion_main, Criterion};
use imprecise::query::{eval_px, eval_px_naive, parse_query};
use imprecise_bench::{build_query_db, query_engine, HORROR_QUERY, JOHN_QUERY};
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let db = build_query_db().doc;
    let horror = parse_query(HORROR_QUERY).expect("horror query parses");
    let john = parse_query(JOHN_QUERY).expect("john query parses");
    let mut group = c.benchmark_group("queries");
    group.sample_size(20);
    group.bench_function("horror/exact", |b| {
        b.iter(|| black_box(eval_px(black_box(&db), &horror).expect("evaluates")))
    });
    group.bench_function("john/exact", |b| {
        b.iter(|| black_box(eval_px(black_box(&db), &john).expect("evaluates")))
    });
    group.sample_size(10);
    group.bench_function("horror/naive-all-worlds", |b| {
        b.iter(|| {
            black_box(eval_px_naive(black_box(&db), &horror, 1_000_000).expect("worlds enumerate"))
        })
    });
    group.finish();
}

/// Parse-once vs. parse-per-call through the `Engine` API: the paper's
/// usage pattern is many queries per integration, so the parser should
/// not be on the per-call path.
fn bench_prepared(c: &mut Criterion) {
    let (engine, db) = query_engine();
    let horror = engine.prepare(HORROR_QUERY).expect("horror query parses");
    let john = engine.prepare(JOHN_QUERY).expect("john query parses");
    let snapshot = engine.snapshot(&db).expect("db exists");
    let mut group = c.benchmark_group("queries_prepared");
    group.sample_size(20);
    group.bench_function("horror/prepared-run", |b| {
        b.iter(|| black_box(horror.run(black_box(&snapshot)).expect("evaluates")))
    });
    group.bench_function("horror/parse-per-call", |b| {
        b.iter(|| {
            black_box(
                engine
                    .query(&db, black_box(HORROR_QUERY), None)
                    .expect("evaluates"),
            )
        })
    });
    group.bench_function("john/prepared-run", |b| {
        b.iter(|| black_box(john.run(black_box(&snapshot)).expect("evaluates")))
    });
    group.bench_function("john/parse-per-call", |b| {
        b.iter(|| {
            black_box(
                engine
                    .query(&db, black_box(JOHN_QUERY), None)
                    .expect("evaluates"),
            )
        })
    });
    group.bench_function("john/parse-only", |b| {
        b.iter(|| black_box(parse_query(black_box(JOHN_QUERY)).expect("parses")))
    });
    group.finish();
}

criterion_group!(benches, bench_queries, bench_prepared);
criterion_main!(benches);
