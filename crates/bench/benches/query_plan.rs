//! Criterion bench for the planned, streaming query pipeline.
//!
//! Three execution tiers are compared on the §VI movie database, a
//! larger confusing-conditions movie integration, and an integrated
//! address-book database:
//!
//! * `eval_px-unplanned` — the one-shot API: re-derives answer events
//!   and recomputes every probability on every call;
//! * `plan-t0` / `plan-t0.5` — cold planned execution: compiled once,
//!   events rebuilt per call, probabilities via the flat choice-weight
//!   table, with threshold pushdown (structural bound pruning +
//!   branch-and-bound expansion) at 0.5;
//! * `prepared-t0.5-rebound` — the `Engine::prepare` wiring: the
//!   `PreparedQuery` re-binds its plan to the snapshot and serves
//!   repeated runs from the version-keyed binding instead of
//!   recomputing — the per-call recomputation `eval_px` cannot avoid is
//!   gone entirely;
//! * `naive-all-worlds` — the §VI baseline, where world counts permit
//!   enumeration (the larger movie integration has ~1e9 worlds, so the
//!   naive evaluator is structurally infeasible there — that gap *is*
//!   the paper's point).

use criterion::{criterion_group, criterion_main, Criterion};
use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::pxml::PxDoc;
use imprecise::query::{eval_px, eval_px_naive, parse_query, QueryPlan};
use imprecise::Engine;
use imprecise_bench::{addressbook_query_db, build_query_db, query_oracle};
use std::hint::black_box;

/// The fig5 sequels workload at n=12 under the §VI oracle and source
/// weights: ~1.9e9 possible worlds, answer events spanning many
/// correlated choice points.
fn large_movie_db() -> PxDoc {
    let scenario = scenarios::fig5(12);
    let options = IntegrationOptions {
        source_weights: (0.8, 0.2),
        ..IntegrationOptions::default()
    };
    integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &query_oracle(),
        Some(&scenario.schema),
        &options,
    )
    .expect("fig5 workload integrates")
    .doc
}

fn bench_scenario(c: &mut Criterion, scenario: &str, db: &PxDoc, query_text: &str, naive: bool) {
    let query = parse_query(query_text).expect("bench query parses");
    let plan = QueryPlan::compile(&query);
    let plan_t05 = plan.clone().with_min_probability(0.5);
    // The Engine::prepare path: compiled once, re-bound per snapshot,
    // repeated runs served from the version-keyed binding.
    let engine = Engine::new();
    let handle = engine
        .insert(scenario, db.clone())
        .expect("store-less insert cannot fail");
    let prepared = engine.prepare(query_text).expect("bench query prepares");
    let snapshot = engine.snapshot(&handle).expect("document exists");

    let mut group = c.benchmark_group("query_plan");
    group.sample_size(20);
    group.bench_function(format!("{scenario}/eval_px-unplanned"), |b| {
        b.iter(|| black_box(eval_px(black_box(db), &query).expect("evaluates")))
    });
    group.bench_function(format!("{scenario}/plan-t0"), |b| {
        b.iter(|| black_box(plan.collect(black_box(db)).expect("evaluates")))
    });
    group.bench_function(format!("{scenario}/plan-t0.5"), |b| {
        b.iter(|| black_box(plan_t05.collect(black_box(db)).expect("evaluates")))
    });
    group.bench_function(format!("{scenario}/prepared-t0.5-rebound"), |b| {
        b.iter(|| {
            black_box(
                prepared
                    .run_at(black_box(&snapshot), 0.5)
                    .expect("evaluates"),
            )
        })
    });
    if naive {
        group.sample_size(10);
        group.bench_function(format!("{scenario}/naive-all-worlds"), |b| {
            b.iter(|| {
                black_box(
                    eval_px_naive(black_box(db), &query, 1_000_000).expect("worlds enumerate"),
                )
            })
        });
    }
    group.finish();
}

fn bench_query_plan(c: &mut Criterion) {
    let movies = build_query_db().doc;
    bench_scenario(c, "movies", &movies, "//movie/title", true);
    let large = large_movie_db();
    bench_scenario(c, "movies-large", &large, "//movie/director", false);
    let addrbook = addressbook_query_db();
    bench_scenario(c, "addrbook", &addrbook, "//person/tel", true);
}

criterion_group!(benches, bench_query_plan);
criterion_main!(benches);
