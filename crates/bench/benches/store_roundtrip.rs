//! Criterion bench for the durable versioned store (PR 8): what a
//! crash-safe publish costs, and what recovery costs at reopen.
//!
//! * `append/*` — one durable publish (encode arenas + frontier, frame,
//!   checksum, write) of a small exact document vs a large budgeted one
//!   carrying an open refinement frontier, under both durability modes:
//!   `fsync-always` pays an fsync per publish, `onclose` defers it.
//! * `recover/*` — `Store::open` (scan to the last valid record,
//!   verifying every checksum) plus `load_publish` (decode the arenas,
//!   rebuild Arc sharing) on the same two segments.
//! * `engine-reopen/*` — the end-to-end `Engine::open` path: recover a
//!   three-document catalog (two sources + a budgeted integration with
//!   its frontier) and re-attach the refine state.
//!
//! Append is the hot path (every integrate/refine/feedback publish
//! pays it); recovery runs once per process start, so its budget is
//! "human-noticeable", not "per-operation".

use criterion::{criterion_group, criterion_main, Criterion};
use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions, RefineState};
use imprecise::pxml::PxDoc;
use imprecise::store::{Durability, Store};
use imprecise::Engine;
use imprecise_bench::confusion_oracle;
use std::hint::black_box;
use std::path::PathBuf;

/// Unique temp-file path, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "imprecise-bench-store-{tag}-{}-{n}.seg",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn options(budget: usize) -> IntegrationOptions {
    IntegrationOptions {
        max_matchings_per_component: budget,
        ..IntegrationOptions::default()
    }
}

/// A small exact document: confusable(3), exhaustive.
fn small_doc() -> PxDoc {
    let s = scenarios::confusable(3);
    integrate_xml(
        &s.mpeg7,
        &s.imdb,
        &confusion_oracle(),
        Some(&s.schema),
        &options(usize::MAX),
    )
    .expect("integrates")
    .doc
}

/// A large budgeted document with an open refinement frontier:
/// confusable(6) at budget 64.
fn large_doc_with_state() -> (PxDoc, RefineState) {
    let s = scenarios::confusable(6);
    let mut outcome = integrate_xml(
        &s.mpeg7,
        &s.imdb,
        &confusion_oracle(),
        Some(&s.schema),
        &options(64),
    )
    .expect("integrates");
    let state = outcome
        .detach_refine_state()
        .expect("budget 64 leaves the frontier open");
    (outcome.doc, state)
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_roundtrip");
    group.sample_size(10);

    let small = small_doc();
    let (large, state) = large_doc_with_state();

    for (mode, tag) in [
        (Durability::Always, "fsync-always"),
        (Durability::OnClose, "onclose"),
    ] {
        let scratch = Scratch::new(&format!("append-small-{tag}"));
        let mut store = Store::open(&scratch.0, mode).expect("opens");
        let mut version = 0u64;
        group.bench_function(format!("append/small-exact/{tag}"), |b| {
            b.iter(|| {
                version += 1;
                store
                    .append_publish("db", version, black_box(&small), None)
                    .expect("appends")
            })
        });

        let scratch = Scratch::new(&format!("append-large-{tag}"));
        let mut store = Store::open(&scratch.0, mode).expect("opens");
        let mut version = 0u64;
        group.bench_function(format!("append/large-budgeted/{tag}"), |b| {
            b.iter(|| {
                version += 1;
                store
                    .append_publish("db", version, black_box(&large), Some(black_box(&state)))
                    .expect("appends")
            })
        });
    }

    // Recovery: open (full scan + checksum verification) and decode.
    let scratch = Scratch::new("recover-small");
    Store::open(&scratch.0, Durability::Always)
        .expect("opens")
        .append_publish("db", 1, &small, None)
        .expect("appends");
    group.bench_function("recover/small-exact", |b| {
        b.iter(|| {
            let mut store = Store::open(black_box(&scratch.0), Durability::OnClose).expect("opens");
            black_box(store.load_publish("db").expect("loads").expect("present"))
        })
    });

    let scratch = Scratch::new("recover-large");
    Store::open(&scratch.0, Durability::Always)
        .expect("opens")
        .append_publish("db", 1, &large, Some(&state))
        .expect("appends");
    group.bench_function("recover/large-budgeted", |b| {
        b.iter(|| {
            let mut store = Store::open(black_box(&scratch.0), Durability::OnClose).expect("opens");
            black_box(store.load_publish("db").expect("loads").expect("present"))
        })
    });

    group.finish();
}

fn bench_engine_reopen(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_roundtrip");
    group.sample_size(10);

    // Populate a three-document catalog: two sources plus a budgeted
    // integration whose frontier must be re-attached at reopen.
    let scratch = Scratch::new("engine-reopen");
    {
        let s = scenarios::confusable(5);
        let engine = Engine::builder()
            .oracle(confusion_oracle())
            .schema(s.schema.clone())
            .options(options(8))
            .with_store(&scratch.0)
            .open()
            .expect("opens");
        let a = engine
            .load_xml("a", &imprecise::xml::to_string(&s.mpeg7))
            .expect("loads");
        let b = engine
            .load_xml("b", &imprecise::xml::to_string(&s.imdb))
            .expect("loads");
        let (db, _) = engine.integrate(&a, &b, "db").expect("integrates");
        assert!(engine.refine_state(&db).expect("exists").is_some());
    }
    group.bench_function("engine-reopen/confusable5-budget8", |b| {
        b.iter(|| black_box(Engine::open(black_box(&scratch.0)).expect("reopens")))
    });

    group.finish();
}

criterion_group!(benches, bench_append, bench_engine_reopen);
criterion_main!(benches);
