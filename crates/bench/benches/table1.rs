//! Criterion bench for the Table I experiment: integration time of the
//! sequels workload per effective rule set. The two heaviest rows
//! ("none" and "Genre rule", millions of nodes) are exercised by the
//! `table1` binary harness instead; timing them per-iteration would
//! dominate `cargo bench` for no insight.

use criterion::{criterion_group, criterion_main, Criterion};
use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::TableIRuleSet;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let scenario = scenarios::sequels_t1();
    let options = IntegrationOptions::default();
    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    for rule_set in [
        TableIRuleSet::Title,
        TableIRuleSet::GenreTitle,
        TableIRuleSet::GenreTitleYear,
    ] {
        let oracle = rule_set.oracle();
        group.bench_function(rule_set.label(), |b| {
            b.iter(|| {
                let result = integrate_xml(
                    black_box(&scenario.mpeg7),
                    black_box(&scenario.imdb),
                    &oracle,
                    Some(&scenario.schema),
                    &options,
                )
                .expect("integration succeeds");
                black_box(result.doc.reachable_count())
            })
        });
    }
    // Counting the unfactored (paper-equivalent) size is analytic and must
    // stay cheap even for large rule-free results.
    let full = TableIRuleSet::GenreTitleYear.oracle();
    let integrated = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &full,
        Some(&scenario.schema),
        &options,
    )
    .expect("integration succeeds");
    group.bench_function("unfactored-count", |b| {
        b.iter(|| black_box(integrated.doc.unfactored_node_count()))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
