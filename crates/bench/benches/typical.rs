//! Criterion bench for the §V typical-conditions experiment: the full
//! 6 × 60 integration with all rules effective — the paper's
//! "good-is-good-enough" sweet spot, which must stay fast.

use criterion::{criterion_group, criterion_main, Criterion};
use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig};
use std::hint::black_box;

fn bench_typical(c: &mut Criterion) {
    let scenario = scenarios::typical();
    let oracle = movie_oracle(MovieOracleConfig {
        graded_prior: false,
        ..MovieOracleConfig::default()
    });
    let options = IntegrationOptions::default();
    let mut group = c.benchmark_group("typical");
    group.sample_size(20);
    group.bench_function("integrate-6x60", |b| {
        b.iter(|| {
            let result = integrate_xml(
                black_box(&scenario.mpeg7),
                black_box(&scenario.imdb),
                &oracle,
                Some(&scenario.schema),
                &options,
            )
            .expect("integration succeeds");
            black_box(result.stats.judged_possible)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_typical);
criterion_main!(benches);
