//! Ad-hoc profiling of the staged refinement loop (not part of the
//! shipped benches): prints per-step wall time plus the frontier and
//! arena sizes that drive it.

use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions, RefineOptions};
use imprecise_bench::confusion_oracle;
use std::time::Instant;

fn main() {
    let oracle = confusion_oracle();
    let c8 = scenarios::confusable(8);
    let opts = IntegrationOptions {
        max_matchings_per_component: 64,
        ..IntegrationOptions::default()
    };
    let t = Instant::now();
    let mut outcome =
        integrate_xml(&c8.mpeg7, &c8.imdb, &oracle, Some(&c8.schema), &opts).expect("integrates");
    println!(
        "integrate@64: {:?}, arena {}, frontier_nodes {:?}",
        t.elapsed(),
        outcome.doc.arena_len(),
        outcome
            .stats
            .truncated_components
            .iter()
            .map(|t| t.frontier_nodes)
            .collect::<Vec<_>>()
    );
    let refine = RefineOptions {
        extra_matchings: 64,
        min_retained_mass: None,
        max_components: usize::MAX,
        threads: None,
    };
    for step in 0..7 {
        let t = Instant::now();
        let s = outcome
            .refine(&oracle, Some(&c8.schema), &refine)
            .expect("refines");
        println!(
            "step {step}: {:?}, emitted {}, arena {}/{}, frontier_nodes {:?}, search {:?}",
            t.elapsed(),
            s.emitted_nodes,
            s.arena_live,
            s.arena_total,
            outcome
                .stats
                .truncated_components
                .iter()
                .map(|t| t.frontier_nodes)
                .collect::<Vec<_>>(),
            s.search,
        );
    }
    let t = Instant::now();
    let one = integrate_xml(
        &c8.mpeg7,
        &c8.imdb,
        &oracle,
        Some(&c8.schema),
        &IntegrationOptions {
            max_matchings_per_component: 512,
            ..IntegrationOptions::default()
        },
    )
    .expect("integrates");
    println!(
        "one-shot@512: {:?}, arena {}",
        t.elapsed(),
        one.doc.arena_len()
    );
}
