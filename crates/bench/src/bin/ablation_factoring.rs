//! Ablation **AB1**: factored vs unfactored representation size.
//!
//! The paper's engine stored one choice point per element (the strict
//! layered model); the companion IIDB'06 paper ("Taming data explosion in
//! probabilistic information integration") argues for keeping independent
//! choice points separate. This reproduction always *builds* the factored
//! form and computes the unfactored size analytically — this harness
//! quantifies the gap on every workload, which is exactly the "taming"
//! win.
//!
//! Run with `cargo run --release -p imprecise-bench --bin ablation_factoring`.

use imprecise::datagen::scenarios;
use imprecise_bench::{fig5_oracles, measure, run_table1};

fn main() {
    let t0 = std::time::Instant::now();
    println!("== Ablation: factored (this engine) vs unfactored (classic) representation ==\n");
    println!(
        "{:<40} {:>12} {:>14} {:>10}",
        "workload", "factored", "unfactored", "ratio"
    );
    for row in run_table1() {
        println!(
            "{:<40} {:>12} {:>14.3e} {:>9.1}x",
            format!("table1 / {}", row.label),
            row.factored_nodes,
            row.unfactored_nodes,
            row.unfactored_nodes / row.factored_nodes as f64
        );
    }
    let [(label_a, oracle_a), (label_b, oracle_b)] = fig5_oracles();
    for n in [12usize, 36, 60] {
        let scenario = scenarios::fig5(n);
        for (label, oracle) in [(&label_a, &oracle_a), (&label_b, &oracle_b)] {
            let m = measure(format!("fig5 n={n} / {label}"), &scenario, oracle);
            println!(
                "{:<40} {:>12} {:>14.3e} {:>9.1}x",
                m.label,
                m.factored_nodes,
                m.unfactored_nodes,
                m.unfactored_nodes / m.factored_nodes as f64
            );
        }
    }
    println!(
        "\nReading: the factored representation is exponentially smaller on \
         confusing workloads\n(independent components multiply in the classic \
         form), while on near-certain\nworkloads the two coincide."
    );
    println!("\nelapsed: {:?}", t0.elapsed());
}
