//! Ablation **AB2**: sensitivity of the title rule to its similarity
//! threshold.
//!
//! The paper notes "reduction should not be pushed too far, because
//! eliminating valid possibilities reduces the quality of query answers".
//! This harness sweeps the threshold: low values leave too much
//! uncertainty (node explosion), high values start killing true matches
//! (recall loss on the shared rwos).
//!
//! Run with `cargo run --release -p imprecise-bench --bin ablation_threshold`.

use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig};

fn main() {
    let t0 = std::time::Instant::now();
    println!("== Ablation: title-rule similarity threshold (fig5 workload, n=30) ==\n");
    let scenario = scenarios::fig5(30);
    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>12}",
        "threshold", "undecided", "nodes", "worlds", "true-matches"
    );
    for threshold in [0.30, 0.40, 0.50, 0.55, 0.60, 0.70, 0.80, 0.90, 0.99] {
        let oracle = movie_oracle(MovieOracleConfig {
            genre_rule: true,
            title_rule: true,
            year_rule: true,
            title_threshold: threshold,
            graded_prior: false,
        });
        let result = integrate_xml(
            &scenario.mpeg7,
            &scenario.imdb,
            &oracle,
            Some(&scenario.schema),
            &IntegrationOptions::default(),
        )
        .expect("integration under threshold sweep");
        // How many of the 3 true (shared-rwo) pairs can still be matched?
        // They stay undecided (matchable) unless the title rule killed
        // them; with identical-after-normalisation titles they survive any
        // threshold ≤ 1, so count undecided pairs as the match capacity.
        println!(
            "{:>10.2} {:>12} {:>14.3e} {:>12.3e} {:>12}",
            threshold,
            result.stats.judged_possible,
            result.doc.unfactored_node_count(),
            result.doc.world_count_f64(),
            scenario.info.shared_rwos,
        );
    }
    println!(
        "\nReading: tightening the threshold monotonically shrinks the \
         undecided set and\nthe representation; past the point where true \
         matches' similarity sits, recall\nwould drop (the shared rwos here \
         normalise to similarity 1.0, so they survive\nevery threshold — \
         exactly why simple rules are 'good enough' on this domain)."
    );
    println!("\nelapsed: {:?}", t0.elapsed());
}
