//! The answer-quality experiment (§V announces it; §VII measures with the
//! adapted precision/recall of the paper's reference \[13\]): sweep the
//! possibility-reduction threshold ε and report how the two §VI query
//! answers degrade as valid possibilities are eliminated.

use imprecise_bench::run_answer_quality;

fn main() {
    let start = std::time::Instant::now();
    println!("== Answer quality vs possibility reduction (\u{3b5}-pruning) ==\n");
    let epsilons = [0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 1.1];
    let rows = run_answer_quality(&epsilons);
    println!(
        "{:>6} {:>8} {:>10}   {:>6} {:>6} {:>6}   {:>6} {:>6} {:>6}",
        "eps", "nodes", "worlds", "h-P", "h-R", "h-F", "j-P", "j-R", "j-F"
    );
    for r in &rows {
        println!(
            "{:>6.2} {:>8} {:>10.3e}   {:>6.3} {:>6.3} {:>6.3}   {:>6.3} {:>6.3} {:>6.3}",
            r.epsilon,
            r.nodes,
            r.worlds,
            r.horror.precision,
            r.horror.recall,
            r.horror.f_measure,
            r.john.precision,
            r.john.recall,
            r.john.f_measure,
        );
    }
    println!("\n(h- = Horror query, j- = John query; P/R/F = probabilistic");
    println!(" precision, recall, F-measure against the scenario ground truth.");
    println!(" eps = 1.10 keeps only the per-choice argmax: the MAP-shaped");
    println!(" certain database.)");
    println!("\nelapsed: {:?}", start.elapsed());
}
