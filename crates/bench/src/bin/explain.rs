//! Print every Oracle judgment for a scenario's movie pairs — the
//! decision-trace view of the integration ("why did these two movies
//! merge?"). Usage:
//!
//! ```text
//! cargo run -p imprecise-bench --bin explain [scenario] [ruleset]
//!   scenario: table1 | fig5:<n> | typical | query-db   (default table1)
//!   ruleset:  none | genre | title | genre+title | full (default full)
//! ```

use imprecise::datagen::scenarios::{self, MovieScenario};
use imprecise::oracle::presets::TableIRuleSet;
use imprecise::oracle::{Decision, ElemRef};
use imprecise::pxml::{from_xml, PxDoc};

fn scenario_from_arg(arg: &str) -> MovieScenario {
    if let Some(n) = arg.strip_prefix("fig5:") {
        return scenarios::fig5(n.parse().expect("fig5:<n> with numeric n"));
    }
    match arg {
        "table1" => scenarios::sequels_t1(),
        "typical" => scenarios::typical(),
        "query-db" => scenarios::query_db(),
        other => panic!("unknown scenario {other:?} (table1 | fig5:<n> | typical | query-db)"),
    }
}

fn ruleset_from_arg(arg: &str) -> TableIRuleSet {
    match arg {
        "none" => TableIRuleSet::None,
        "genre" => TableIRuleSet::Genre,
        "title" => TableIRuleSet::Title,
        "genre+title" => TableIRuleSet::GenreTitle,
        "full" => TableIRuleSet::GenreTitleYear,
        other => panic!("unknown ruleset {other:?} (none | genre | title | genre+title | full)"),
    }
}

/// The movie elements under the catalog root of a certain document.
fn movies(px: &PxDoc) -> Vec<imprecise::pxml::PxNodeId> {
    let poss = px.children(px.root())[0];
    let catalog = px.children(poss)[0];
    px.children(catalog)
        .iter()
        .copied()
        .filter(|&c| px.tag(c) == Some("movie"))
        .collect()
}

/// First `title` child's text, for labelling.
fn title_of(px: &PxDoc, movie: imprecise::pxml::PxNodeId) -> String {
    px.children(movie)
        .iter()
        .find(|&&c| px.tag(c) == Some("title"))
        .map(|&c| px.certain_text(c))
        .unwrap_or_else(|| "<untitled>".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = scenario_from_arg(args.first().map(String::as_str).unwrap_or("table1"));
    let rule_set = ruleset_from_arg(args.get(1).map(String::as_str).unwrap_or("full"));
    let oracle = rule_set.oracle();

    println!(
        "== Oracle decisions: scenario {} under rule set {:?} ==",
        scenario.info.name, rule_set
    );
    println!(
        "sources: {} MPEG-7 movies x {} IMDB movies, {} shared rwos\n",
        scenario.info.mpeg7_movies, scenario.info.imdb_movies, scenario.info.shared_rwos
    );

    let pa = from_xml(&scenario.mpeg7);
    let pb = from_xml(&scenario.imdb);
    let (mut match_n, mut nonmatch_n, mut possible_n) = (0usize, 0usize, 0usize);
    for &ma in &movies(&pa) {
        for &mb in &movies(&pb) {
            let j = oracle.judge(
                &ElemRef { doc: &pa, node: ma },
                &ElemRef { doc: &pb, node: mb },
            );
            let (verdict, count) = match j.decision {
                Decision::Match => ("MATCH    ", &mut match_n),
                Decision::NonMatch => ("non-match", &mut nonmatch_n),
                Decision::Possible(_) => ("possible ", &mut possible_n),
            };
            *count += 1;
            // Only print the interesting (non-rejected) pairs unless the
            // caller asked for everything.
            let verbose = args.iter().any(|a| a == "--all");
            if verbose || !matches!(j.decision, Decision::NonMatch) {
                let p = match j.decision {
                    Decision::Possible(p) => format!("p={p:.3}"),
                    _ => String::new(),
                };
                println!(
                    "{verdict} {:<40} ~ {:<40} rule={} {}",
                    title_of(&pa, ma),
                    title_of(&pb, mb),
                    j.rule.as_deref().unwrap_or("(prior)"),
                    p
                );
            }
        }
    }
    println!(
        "\ntotals: {match_n} certain matches, {nonmatch_n} certain non-matches, {possible_n} undecided"
    );
}
