//! Regenerates **Figure 5** of the paper: influence of rules on
//! scalability — number of representation nodes (log scale) against the
//! number of IMDB movies integrated with the 6 confusing MPEG-7 movies,
//! for the two rule configurations of the figure.
//!
//! Run with `cargo run --release -p imprecise-bench --bin fig5`.

use imprecise_bench::run_fig5;

fn main() {
    println!("== Figure 5: influence of rules on scalability ==");
    println!("(y: #nodes of the integrated document, log scale; x: #IMDB movies)\n");
    let t0 = std::time::Instant::now();
    let ns: Vec<usize> = (0..=60).step_by(6).collect();
    let rows = run_fig5(&ns);
    println!(
        "{:<24} {:>4} {:>14} {:>12} {:>14} {:>14}",
        "series", "n", "#nodes", "factored", "worlds", "log10(nodes)"
    );
    for (series, n, m) in &rows {
        println!(
            "{:<24} {:>4} {:>14.3e} {:>12} {:>14.3e} {:>14.2}",
            series,
            n,
            m.unfactored_nodes,
            m.factored_nodes,
            m.worlds,
            m.unfactored_nodes.log10()
        );
    }
    // ASCII rendition of the figure.
    println!("\nlog-scale sketch (each column = one n, height = log10 nodes):");
    for (series_label, marker) in [
        ("Only movie title rule", '#'),
        ("Movie title+year rule", '+'),
    ] {
        let series: Vec<f64> = rows
            .iter()
            .filter(|(s, _, _)| s == series_label)
            .map(|(_, _, m)| m.unfactored_nodes.log10())
            .collect();
        println!("\n  {series_label} ({marker})");
        for level in (0..=10).rev() {
            let mut line = format!("  1e{level:>2} |");
            for v in &series {
                line.push(if *v >= level as f64 { marker } else { ' ' });
                line.push(' ');
            }
            println!("{line}");
        }
        let mut axis = String::from("       +");
        for _ in &series {
            axis.push_str("--");
        }
        println!("{axis}  n = 0..60 step 6");
    }
    println!("\nShape checks:");
    let upper: Vec<f64> = rows
        .iter()
        .filter(|(s, _, _)| s == "Only movie title rule")
        .map(|(_, _, m)| m.unfactored_nodes)
        .collect();
    let lower: Vec<f64> = rows
        .iter()
        .filter(|(s, _, _)| s == "Movie title+year rule")
        .map(|(_, _, m)| m.unfactored_nodes)
        .collect();
    println!(
        "  both series monotone in n: {}",
        upper.windows(2).all(|w| w[0] <= w[1]) && lower.windows(2).all(|w| w[0] <= w[1])
    );
    println!(
        "  title-only dominates title+year at n=60 by {:.1} orders of magnitude",
        (upper.last().unwrap() / lower.last().unwrap()).log10()
    );
    println!("\nelapsed: {:?}", t0.elapsed());
}
