//! Regenerates the **§VI probabilistic querying** demonstration: the two
//! demo queries against an integration performed under confusing
//! conditions, with amalgamated likelihood-ranked answers and the adapted
//! precision/recall quality measures of §VII.
//!
//! Run with `cargo run --release -p imprecise-bench --bin queries`.

use imprecise_bench::{run_queries, HORROR_QUERY, HORROR_TRUTH, JOHN_QUERY, JOHN_TRUTH};

fn main() {
    println!("== §VI probabilistic querying under confusing conditions ==\n");
    let t0 = std::time::Instant::now();
    let q = run_queries();
    println!(
        "integrated query database: {} possible worlds, {} nodes (paper: 33 856 worlds)\n",
        q.worlds, q.nodes
    );

    println!("query 1: {HORROR_QUERY}");
    println!("{}", q.horror);
    println!("paper-reported answer:\n  97.0% Jaws\n  97.0% Jaws 2\n");
    println!(
        "quality vs truth {:?}: precision {:.3}, recall {:.3}, F {:.3}\n",
        HORROR_TRUTH,
        q.horror_quality.precision,
        q.horror_quality.recall,
        q.horror_quality.f_measure
    );

    println!("query 2: {JOHN_QUERY}");
    println!("{}", q.john);
    println!(
        "paper-reported answer:\n 100.0% Die Hard: With a Vengeance\n  96.0% Mission: Impossible II\n  21.0% Mission: Impossible\n"
    );
    println!(
        "quality vs truth {:?}: precision {:.3}, recall {:.3}, F {:.3}",
        JOHN_TRUTH, q.john_quality.precision, q.john_quality.recall, q.john_quality.f_measure
    );

    println!("\nShape checks:");
    println!(
        "  horror answers = 2 movies at a high equal rank: {}",
        q.horror.len() == 2
            && q.horror.items[0].probability > 0.9
            && (q.horror.items[0].probability - q.horror.items[1].probability).abs() < 0.05
    );
    println!(
        "  john ranking: certain > true sequel > spurious typo-match: {}",
        q.john.probability_of("Die Hard: With a Vengeance") > 0.99
            && q.john.probability_of("Mission: Impossible II") > 0.5
            && q.john.probability_of("Mission: Impossible") < 0.5
            && q.john.probability_of("Mission: Impossible") > 0.0
    );
    println!("\nelapsed: {:?}", t0.elapsed());
}
