//! Regenerates **Table I** of the paper: the effect of Oracle rules on the
//! amount of uncertainty (representation size) when integrating the
//! sequels workload (2 'Mission: Impossible', 2 'Die Hard' and 2 'Jaws'
//! entries per source, one shared rwo per franchise).
//!
//! Run with `cargo run --release -p imprecise-bench --bin table1`.

use imprecise_bench::{format_table1, run_table1};

/// The paper's reported column: #nodes ×1000 per effective rule set.
const PAPER_NODES_X1000: [(&str, f64); 5] = [
    ("none", 13_958.0),
    ("Genre rule", 6_015.0),
    ("Movie title rule", 243.0),
    ("Genre and movie title rule", 154.0),
    ("Genre, movie title and year rule", 29.0),
];

fn main() {
    println!("== Table I: effect of rules on uncertainty (sequels workload) ==\n");
    let t0 = std::time::Instant::now();
    let rows = run_table1();
    println!("{}", format_table1(&rows));
    println!("paper-reported #nodes (x1000) for comparison:");
    for (label, nodes) in PAPER_NODES_X1000 {
        println!("  {label:<36} {nodes:>10.0}");
    }
    println!("\nShape check (must all hold):");
    let sizes: Vec<f64> = rows.iter().map(|r| r.unfactored_nodes).collect();
    let monotone = sizes.windows(2).all(|w| w[0] > w[1]);
    println!("  monotone decrease across rule sets: {monotone}");
    let total_drop = sizes[0] / sizes[sizes.len() - 1];
    println!(
        "  total reduction none → all rules:   {total_drop:.0}x (paper: {:.0}x)",
        PAPER_NODES_X1000[0].1 / PAPER_NODES_X1000[4].1
    );
    println!("\nelapsed: {:?}", t0.elapsed());
}
