//! Regenerates the **§V "typical conditions"** experiment: integrating 6
//! MPEG-7 movies produced in 1995 with 60 IMDB movies of which two refer
//! to the same real-world object. The paper reports: only two occasions
//! where the Oracle could not make an absolute decision, a ~3 500-node
//! integrated document, and 4 possible worlds.
//!
//! Run with `cargo run --release -p imprecise-bench --bin typical`.

use imprecise_bench::run_typical;

fn main() {
    println!("== §V typical conditions: 6 MPEG-7 movies × 60 IMDB movies ==\n");
    let t0 = std::time::Instant::now();
    let outcome = run_typical();
    let m = &outcome.measurement;
    println!(
        "undecided pairs (Oracle non-decisions): {} (paper: 2)",
        outcome.undecided
    );
    println!(
        "possible worlds:                        {} (paper: 4)",
        m.worlds
    );
    println!(
        "integrated document nodes (factored):   {} (paper: ~3500)",
        m.factored_nodes
    );
    println!(
        "integrated document nodes (unfactored): {:.0}",
        m.unfactored_nodes
    );
    println!("matchings enumerated:                   {}", m.matchings);
    println!("\nShape checks:");
    println!("  exactly two undecided pairs: {}", outcome.undecided == 2);
    println!("  exactly four possible worlds: {}", m.worlds == 4.0);
    println!(
        "  orders of magnitude below the confusing workloads: {}",
        m.unfactored_nodes < 100_000.0
    );
    println!("\nelapsed: {:?}", t0.elapsed());
}
