//! Shared experiment runners behind the `table1`, `fig5`, `queries`,
//! `typical` and ablation harnesses (both the printable binaries and the
//! Criterion benches call into these, so the numbers in EXPERIMENTS.md and
//! the timings come from the same code paths).

use imprecise::datagen::scenarios::{self, MovieScenario};
use imprecise::integrate::{
    block_candidates, integrate_xml, BlockingMode, IntegrationOptions, IntegrationOutcome,
};
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig, TableIRuleSet};
use imprecise::oracle::{Decision, ElemRef, Oracle};
use imprecise::pxml::{from_xml, PxDoc, PxNodeId};
use imprecise::quality::{evaluate, QualityReport};
use imprecise::query::RankedAnswers;
use imprecise::{DocHandle, Engine};

/// One measured integration outcome.
#[derive(Debug, Clone)]
pub struct IntegrationMeasurement {
    /// Workload / rule-set label.
    pub label: String,
    /// Nodes of the compact factored representation.
    pub factored_nodes: usize,
    /// Nodes of the paper-equivalent unfactored representation
    /// (the quantity of Table I / Figure 5).
    pub unfactored_nodes: f64,
    /// Possible worlds.
    pub worlds: f64,
    /// Matchings enumerated across all components.
    pub matchings: usize,
    /// Largest single component's matching count.
    pub max_component_matchings: usize,
    /// Pairs the Oracle could not decide.
    pub undecided_pairs: usize,
}

/// Integrate a scenario under an oracle and measure the result.
pub fn measure(
    label: impl Into<String>,
    scenario: &MovieScenario,
    oracle: &Oracle,
) -> IntegrationMeasurement {
    let options = IntegrationOptions::default();
    let result = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        oracle,
        Some(&scenario.schema),
        &options,
    )
    .unwrap_or_else(|e| panic!("integration failed for {:?}: {e}", scenario.info.name));
    measurement(label, &result)
}

fn measurement(label: impl Into<String>, result: &IntegrationOutcome) -> IntegrationMeasurement {
    IntegrationMeasurement {
        label: label.into(),
        factored_nodes: result.doc.reachable_count(),
        unfactored_nodes: result.doc.unfactored_node_count(),
        worlds: result.doc.world_count_f64(),
        matchings: result.stats.matchings_enumerated,
        max_component_matchings: result.stats.max_component_matchings,
        undecided_pairs: result.stats.judged_possible,
    }
}

/// Table I: the sequels workload under the five effective rule sets.
pub fn run_table1() -> Vec<IntegrationMeasurement> {
    let scenario = scenarios::sequels_t1();
    TableIRuleSet::ALL
        .iter()
        .map(|rule_set| measure(rule_set.label(), &scenario, &rule_set.oracle()))
        .collect()
}

/// The two rule configurations of Figure 5.
pub fn fig5_oracles() -> [(&'static str, Oracle); 2] {
    let title_only = movie_oracle(MovieOracleConfig {
        genre_rule: false,
        title_rule: true,
        year_rule: false,
        graded_prior: false,
        ..MovieOracleConfig::default()
    });
    let title_year = movie_oracle(MovieOracleConfig {
        genre_rule: false,
        title_rule: true,
        year_rule: true,
        graded_prior: false,
        ..MovieOracleConfig::default()
    });
    [
        ("Only movie title rule", title_only),
        ("Movie title+year rule", title_year),
    ]
}

/// Figure 5: sweep the number of IMDB movies for both rule configurations.
/// Returns `(series label, n, measurement)` rows.
pub fn run_fig5(ns: &[usize]) -> Vec<(String, usize, IntegrationMeasurement)> {
    let mut rows = Vec::new();
    for (label, oracle) in fig5_oracles() {
        for &n in ns {
            let scenario = scenarios::fig5(n);
            let m = measure(format!("{label} n={n}"), &scenario, &oracle);
            rows.push((label.to_string(), n, m));
        }
    }
    rows
}

/// The oracle for the §VI query experiments: confusing conditions (no
/// year rule — "the II may be a typing mistake"), graded prior so ranks
/// spread.
pub fn query_oracle() -> Oracle {
    movie_oracle(MovieOracleConfig {
        genre_rule: true,
        title_rule: true,
        year_rule: false,
        graded_prior: true,
        ..MovieOracleConfig::default()
    })
}

/// Result of the §VI query experiments.
#[derive(Debug, Clone)]
pub struct QueryExperiment {
    /// Possible worlds of the integrated query database.
    pub worlds: f64,
    /// Nodes of the integrated database (factored).
    pub nodes: usize,
    /// Ranked answers of the Horror query.
    pub horror: RankedAnswers,
    /// Quality of the Horror answer against ground truth.
    pub horror_quality: QualityReport,
    /// Ranked answers of the John query.
    pub john: RankedAnswers,
    /// Quality of the John answer against ground truth.
    pub john_quality: QualityReport,
}

/// The §VI horror query.
pub const HORROR_QUERY: &str = "//movie[.//genre=\"Horror\"]/title";
/// The §VI John query.
pub const JOHN_QUERY: &str =
    "//movie[some $d in .//director satisfies contains($d,\"John\")]/title";

/// Ground truth of the Horror query (which movies really are Horror).
pub const HORROR_TRUTH: [&str; 2] = ["Jaws", "Jaws 2"];
/// Ground truth of the John query.
pub const JOHN_TRUTH: [&str; 2] = ["Die Hard: With a Vengeance", "Mission: Impossible II"];

/// Integration options of the §VI query experiments. The MPEG-7 source
/// is the curated one, so value conflicts trust it 4:1 — this is the
/// "domain knowledge" a user would configure alongside the rules.
/// (Shared by [`query_engine`] and [`build_query_db`] so the two §VI
/// build paths can never drift apart.)
pub fn query_db_options() -> IntegrationOptions {
    IntegrationOptions {
        source_weights: (0.8, 0.2),
        ..IntegrationOptions::default()
    }
}

/// Build an [`Engine`] configured for the §VI query experiments with
/// the integrated query database published inside it, returning the
/// engine and the database's handle. The database is the one
/// [`build_query_db`] constructs — the engine-path and raw-path benches
/// measure the *same* document by construction.
pub fn query_engine() -> (Engine, DocHandle) {
    let scenario = scenarios::query_db();
    let engine = Engine::builder()
        .oracle(query_oracle())
        .schema(scenario.schema)
        .options(query_db_options())
        .build();
    let db = engine
        .insert("query-db", build_query_db().doc)
        .expect("store-less insert cannot fail");
    (engine, db)
}

/// Build an integrated *address-book* database for the `query_plan`
/// bench: two generated books with overlapping, partially conflicting
/// entries, integrated under the address-book oracle. Sized so the naive
/// all-worlds evaluator stays feasible as a baseline.
pub fn addressbook_query_db() -> imprecise::pxml::PxDoc {
    use imprecise::datagen::addressbook::{
        addressbook_schema, addressbook_to_xml, random_addressbook_pair,
    };
    use imprecise::oracle::presets::addressbook_oracle;
    let (a, b) = random_addressbook_pair(42, 10, 6, 0.5);
    integrate_xml(
        &addressbook_to_xml(&a),
        &addressbook_to_xml(&b),
        &addressbook_oracle(),
        Some(&addressbook_schema()),
        &IntegrationOptions::default(),
    )
    .expect("address books integrate")
    .doc
}

/// The oracle of the budgeted-pipeline benches: year rule on (it is
/// what factors the confusable grid into independent components), title
/// rule off so similar titles are never force-separated, similarity
/// prior graded — every cross pair inside a component stays undecided
/// with a probability graded by title similarity. This is the
/// "weak-knowledge" regime where matching possibilities explode and
/// budgets earn their keep.
pub fn confusion_oracle() -> Oracle {
    movie_oracle(MovieOracleConfig {
        title_rule: false,
        ..MovieOracleConfig::default()
    })
}

/// Integrate a two-source scenario under explicit pipeline options
/// (used by the `integrate_pipeline` bench and its tests).
pub fn integrate_scenario(
    scenario: &MovieScenario,
    oracle: &Oracle,
    options: &IntegrationOptions,
) -> IntegrationOutcome {
    integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        oracle,
        Some(&scenario.schema),
        options,
    )
    .unwrap_or_else(|e| panic!("integration failed for {:?}: {e}", scenario.info.name))
}

/// Build the integrated §VI query database directly (no engine), for
/// callers that want the raw [`IntegrationOutcome`] statistics.
pub fn build_query_db() -> IntegrationOutcome {
    let scenario = scenarios::query_db();
    integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &query_oracle(),
        Some(&scenario.schema),
        &query_db_options(),
    )
    .expect("query db integrates")
}

/// Run both §VI queries against the integrated query database, as one
/// prepared batch over a single consistent snapshot.
pub fn run_queries() -> QueryExperiment {
    let (engine, db) = query_engine();
    let queries = [
        engine.prepare(HORROR_QUERY).expect("static query parses"),
        engine.prepare(JOHN_QUERY).expect("static query parses"),
    ];
    let mut answers = engine
        .query_many(&db, &queries, None)
        .expect("queries evaluate")
        .into_iter();
    let horror = answers.next().expect("two answers");
    let john = answers.next().expect("two answers");
    let stats = engine.stats(&db).expect("db exists");
    QueryExperiment {
        worlds: stats.worlds,
        nodes: stats.breakdown.total(),
        horror_quality: evaluate(&horror, &HORROR_TRUTH),
        john_quality: evaluate(&john, &JOHN_TRUTH),
        horror,
        john,
    }
}

/// The typical-conditions experiment (§V prose).
pub struct TypicalOutcome {
    /// Measurement of the integration.
    pub measurement: IntegrationMeasurement,
    /// Pairs the Oracle left undecided (paper: 2).
    pub undecided: usize,
}

/// Run the typical-conditions integration with the full rule set.
pub fn run_typical() -> TypicalOutcome {
    let scenario = scenarios::typical();
    let oracle = movie_oracle(MovieOracleConfig {
        graded_prior: false,
        ..MovieOracleConfig::default()
    });
    let m = measure("typical 6x60", &scenario, &oracle);
    let undecided = m.undecided_pairs;
    TypicalOutcome {
        measurement: m,
        undecided,
    }
}

/// One row of the answer-quality experiment: prune at `epsilon`, then
/// measure both §VI queries against ground truth.
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Prune threshold (possibilities below it are discarded).
    pub epsilon: f64,
    /// Representation nodes after pruning.
    pub nodes: usize,
    /// Possible worlds after pruning.
    pub worlds: f64,
    /// Quality of the Horror query after pruning.
    pub horror: QualityReport,
    /// Quality of the John query after pruning.
    pub john: QualityReport,
}

/// The answer-quality experiment the paper announces in §V ("we are
/// currently setting up answer quality experiments"): sweep the
/// possibility-reduction threshold and measure how the §VI answers
/// degrade. Mild pruning removes low-probability noise (precision rises);
/// aggressive pruning eliminates valid possibilities (recall falls) —
/// exactly the "reduction should not be pushed too far" warning.
pub fn run_answer_quality(epsilons: &[f64]) -> Vec<QualityRow> {
    let (engine, db) = query_engine();
    let base = engine.snapshot(&db).expect("db exists");
    let horror_query = engine.prepare(HORROR_QUERY).expect("static query parses");
    let john_query = engine.prepare(JOHN_QUERY).expect("static query parses");
    epsilons
        .iter()
        .map(|&epsilon| {
            let mut doc = base.doc().clone();
            doc.prune_below(epsilon);
            let horror = horror_query.run_doc(&doc).expect("horror query evaluates");
            let john = john_query.run_doc(&doc).expect("john query evaluates");
            QualityRow {
                epsilon,
                nodes: doc.reachable_count(),
                worlds: doc.world_count_f64(),
                horror: evaluate(&horror, &HORROR_TRUTH),
                john: evaluate(&john, &JOHN_TRUTH),
            }
        })
        .collect()
}

/// Render a measurement table like the paper prints Table I
/// (nodes ×1000, one row per rule set).
pub fn format_table1(rows: &[IntegrationMeasurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<36} {:>16} {:>14} {:>14} {:>12}\n",
        "Effective rules", "#nodes (x1000)", "factored", "worlds", "matchings"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<36} {:>16.1} {:>14} {:>14.3e} {:>12}\n",
            r.label,
            r.unfactored_nodes / 1000.0,
            r.factored_nodes,
            r.worlds,
            r.matchings,
        ));
    }
    out
}

/// Regression ceiling for the staged-vs-one-shot gate: staged 8 × 64
/// refinement must stay within this factor of one-shot 512 on the
/// confusable(8) workload. The pre-incremental emitter sat at ~4.4×;
/// with live resident enumerators, O(1) per-step arena stats, and
/// arena-splice grafting the staged path measures ~1.05–1.10×, so the
/// ceiling both enforces the live-enumerator budget and still catches
/// a return to detach-and-re-emit behaviour. Measurement noise is
/// handled by the paired min-of-ratios protocol in
/// [`measure_staged_vs_one_shot`], not by slack in the ceiling.
pub const STAGED_GATE_CEILING: f64 = 1.15;

/// Paired wall-clock comparison of staged refinement against a
/// one-shot budget (see [`measure_staged_vs_one_shot`]).
#[derive(Debug, Clone, Copy)]
pub struct StagedGateMeasurement {
    /// One-shot (full budget at once) time of the cleanest pair.
    pub one_shot: std::time::Duration,
    /// Staged (same budget in installments) time of the same pair.
    pub staged: std::time::Duration,
}

impl StagedGateMeasurement {
    /// Staged cost as a multiple of the one-shot cost.
    pub fn ratio(&self) -> f64 {
        self.staged.as_secs_f64() / self.one_shot.as_secs_f64().max(1e-9)
    }

    /// Whether the ratio is within [`STAGED_GATE_CEILING`].
    pub fn holds(&self) -> bool {
        self.ratio() <= STAGED_GATE_CEILING
    }
}

/// Integrate a scenario under `opts`, then apply up to `steps`
/// refinement installments of `extra` matchings each (stopping early if
/// the outcome drains). The staged half of the gate; also used by the
/// `integrate_refine` bench groups.
pub fn integrate_then_refine(
    scenario: &MovieScenario,
    oracle: &Oracle,
    opts: &IntegrationOptions,
    extra: usize,
    steps: usize,
) -> IntegrationOutcome {
    use imprecise::integrate::RefineOptions;
    let mut outcome = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        oracle,
        Some(&scenario.schema),
        opts,
    )
    .expect("integrates");
    let refine = RefineOptions {
        extra_matchings: extra,
        min_retained_mass: None,
        max_components: usize::MAX,
        threads: None,
    };
    for _ in 0..steps {
        if !outcome.is_refinable() {
            break;
        }
        outcome
            .refine(oracle, Some(&scenario.schema), &refine)
            .expect("refines");
    }
    outcome
}

/// Measure the staged-vs-one-shot gate workload: one-shot budget 512 vs
/// staged 8 × 64 on confusable(8). Shared by the `integrate_refine`
/// bench gate and the `gate` integration test so CI and local runs
/// assert the same numbers.
///
/// The two halves are timed as *interleaved pairs* and the pair with
/// the smallest staged/one-shot ratio wins. A load spike on a busy
/// (or single-core CI) machine inflates both halves of the pair it
/// lands in; taking the cleanest pair rejects that noise, where a
/// best-of-N on each half independently would happily divide a noisy
/// numerator by a quiet denominator (or vice versa) and report a
/// phantom regression. One quiet window out of five is enough for a
/// faithful ratio.
pub fn measure_staged_vs_one_shot() -> StagedGateMeasurement {
    let oracle = confusion_oracle();
    let c8 = scenarios::confusable(8);
    let options = |budget: usize| IntegrationOptions {
        max_matchings_per_component: budget,
        ..IntegrationOptions::default()
    };
    let mut best: Option<StagedGateMeasurement> = None;
    for _ in 0..5 {
        let start = std::time::Instant::now();
        std::hint::black_box(
            integrate_xml(
                &c8.mpeg7,
                &c8.imdb,
                &oracle,
                Some(&c8.schema),
                &options(512),
            )
            .expect("integrates"),
        );
        let one_shot = start.elapsed();
        let start = std::time::Instant::now();
        std::hint::black_box(integrate_then_refine(&c8, &oracle, &options(64), 64, 7));
        let staged = start.elapsed();
        let pair = StagedGateMeasurement { one_shot, staged };
        if best.is_none_or(|b| pair.ratio() < b.ratio()) {
            best = Some(pair);
        }
    }
    best.expect("at least one measurement pair")
}

/// The default movie oracle (title + year + genre rules), whose blocking
/// plan carries both a year equality join and a title-similarity bound —
/// the configuration the candidate-generation benches and gate measure.
pub fn blocking_oracle() -> Oracle {
    movie_oracle(MovieOracleConfig::default())
}

/// A candidate-generation workload: one `large_source(n)` scenario
/// converted to probabilistic documents with the `movie` element rows
/// collected per side, so the generation stage can be driven in
/// isolation from the rest of the pipeline.
#[derive(Debug)]
pub struct CandidateWorkload {
    /// Probabilistic form of the MPEG-7 side.
    pub a: PxDoc,
    /// Probabilistic form of the IMDB side.
    pub b: PxDoc,
    /// `movie` elements of `a` in document order.
    pub ga: Vec<PxNodeId>,
    /// `movie` elements of `b` in document order.
    pub gb: Vec<PxNodeId>,
}

fn movie_elems(doc: &PxDoc) -> Vec<PxNodeId> {
    let mut out = Vec::new();
    let mut stack = vec![doc.root()];
    while let Some(n) = stack.pop() {
        if doc.tag(n) == Some("movie") {
            out.push(n);
            continue;
        }
        for &c in doc.children(n).iter().rev() {
            stack.push(c);
        }
    }
    out
}

/// Build the `large_source(n)` candidate workload (n movies per side).
pub fn candidate_workload(n: usize) -> CandidateWorkload {
    let s = scenarios::large_source(n);
    let a = from_xml(&s.mpeg7);
    let b = from_xml(&s.imdb);
    let ga = movie_elems(&a);
    let gb = movie_elems(&b);
    CandidateWorkload { a, b, ga, gb }
}

/// What one candidate-generation strategy did on a workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CandidateGeneration {
    /// Pairs put to the Oracle (scored).
    pub scored: usize,
    /// Scored pairs the Oracle did not reject (the candidates).
    pub survivors: usize,
    /// Pairs dismissed by the blocking prefilter without scoring.
    pub pruned: usize,
    /// Pairs never examined at all (heuristic windowing only).
    pub windowed_out: usize,
}

/// Baseline: every cross pair scored with one Oracle call at a time.
pub fn generate_pairwise(w: &CandidateWorkload, oracle: &Oracle) -> CandidateGeneration {
    let mut gen = CandidateGeneration::default();
    for &an in &w.ga {
        let a_ref = ElemRef {
            doc: &w.a,
            node: an,
        };
        for &bn in &w.gb {
            let j = oracle.judge(
                &a_ref,
                &ElemRef {
                    doc: &w.b,
                    node: bn,
                },
            );
            gen.scored += 1;
            if !matches!(j.decision, Decision::NonMatch) {
                gen.survivors += 1;
            }
        }
    }
    gen
}

/// Every cross pair scored, but row-at-a-time through
/// [`Oracle::judge_row`] so rules amortise their left-hand
/// preprocessing and the SIMD kernels see batches.
pub fn generate_batched(w: &CandidateWorkload, oracle: &Oracle) -> CandidateGeneration {
    let mut gen = CandidateGeneration::default();
    let b_refs: Vec<ElemRef<'_>> =
        w.gb.iter()
            .map(|&bn| ElemRef {
                doc: &w.b,
                node: bn,
            })
            .collect();
    for &an in &w.ga {
        let a_ref = ElemRef {
            doc: &w.a,
            node: an,
        };
        let judged = oracle.judge_row(&a_ref, &b_refs);
        gen.scored += judged.len();
        gen.survivors += judged
            .iter()
            .filter(|j| !matches!(j.decision, Decision::NonMatch))
            .count();
    }
    gen
}

/// Blocked generation: [`block_candidates`] first, then only the
/// surviving pairs are scored (batched, row at a time).
pub fn generate_blocked(
    w: &CandidateWorkload,
    oracle: &Oracle,
    mode: BlockingMode,
) -> CandidateGeneration {
    let blocked = block_candidates(&w.a, &w.ga, &w.b, &w.gb, oracle, "movie", mode);
    let mut gen = CandidateGeneration {
        pruned: blocked.pruned,
        windowed_out: blocked.windowed_out,
        ..CandidateGeneration::default()
    };
    let pairs = &blocked.pairs;
    let mut i = 0;
    while i < pairs.len() {
        let ai = pairs[i].0;
        let mut j = i;
        while j < pairs.len() && pairs[j].0 == ai {
            j += 1;
        }
        let a_ref = ElemRef {
            doc: &w.a,
            node: w.ga[ai],
        };
        let b_refs: Vec<ElemRef<'_>> = pairs[i..j]
            .iter()
            .map(|&(_, bi)| ElemRef {
                doc: &w.b,
                node: w.gb[bi],
            })
            .collect();
        let judged = oracle.judge_row(&a_ref, &b_refs);
        gen.scored += judged.len();
        gen.survivors += judged
            .iter()
            .filter(|jd| !matches!(jd.decision, Decision::NonMatch))
            .count();
        i = j;
    }
    gen
}

/// Scaling ceiling for recall-safe blocked candidate generation:
/// t(n=10 000) as a multiple of t(n=1 000) on `large_source`. A
/// quadratic generator grows 100× across that decade; the hash-join
/// blocker leaves a year-bucketed residual (~n²/120 cheap prefilter
/// probes) plus a near-linear scored set, which measures well under
/// half the quadratic growth. As with the staged gate, noise is
/// handled by the paired min-of-ratios protocol in
/// [`measure_candidate_scaling`], not by slack in the ceiling.
pub const CANDIDATE_GATE_CEILING: f64 = 50.0;

/// Fraction of the 10k² cross product the blocked generator may score.
pub const CANDIDATE_COVERAGE_CEILING: f64 = 0.10;

/// Paired wall-clock comparison of blocked candidate generation at
/// n=1 000 vs n=10 000 (see [`measure_candidate_scaling`]).
#[derive(Debug, Clone, Copy)]
pub struct CandidateGateMeasurement {
    /// Blocked generation time at n=1 000 of the cleanest pair.
    pub small: std::time::Duration,
    /// Blocked generation time at n=10 000 of the same pair.
    pub large: std::time::Duration,
    /// Pairs the n=10 000 run scored (out of 10 000² cross pairs).
    pub large_scored: usize,
}

impl CandidateGateMeasurement {
    /// Large-workload cost as a multiple of the small-workload cost.
    pub fn ratio(&self) -> f64 {
        self.large.as_secs_f64() / self.small.as_secs_f64().max(1e-9)
    }

    /// Whether the growth is within [`CANDIDATE_GATE_CEILING`].
    pub fn holds(&self) -> bool {
        self.ratio() <= CANDIDATE_GATE_CEILING
    }

    /// Fraction of the n=10 000 cross product that was scored.
    pub fn coverage(&self) -> f64 {
        self.large_scored as f64 / (10_000.0 * 10_000.0)
    }

    /// Whether blocking kept scoring under [`CANDIDATE_COVERAGE_CEILING`].
    pub fn coverage_holds(&self) -> bool {
        self.coverage() < CANDIDATE_COVERAGE_CEILING
    }
}

/// Measure the candidate-generation scaling gate: recall-safe blocked
/// generation on `large_source(1_000)` vs `large_source(10_000)`.
///
/// The two sizes are timed as *interleaved pairs* and the pair with the
/// smallest large/small ratio wins, for the same reason as
/// [`measure_staged_vs_one_shot`]: a load spike inflates both halves of
/// the pair it lands in, so the cleanest pair rejects the noise that
/// independent best-of-N runs would keep.
pub fn measure_candidate_scaling() -> CandidateGateMeasurement {
    let oracle = blocking_oracle();
    let small_w = candidate_workload(1_000);
    let large_w = candidate_workload(10_000);
    let mut best: Option<CandidateGateMeasurement> = None;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        std::hint::black_box(generate_blocked(
            &small_w,
            &oracle,
            BlockingMode::RecallSafe,
        ));
        let small = start.elapsed();
        let start = std::time::Instant::now();
        let gen = std::hint::black_box(generate_blocked(
            &large_w,
            &oracle,
            BlockingMode::RecallSafe,
        ));
        let large = start.elapsed();
        let pair = CandidateGateMeasurement {
            small,
            large,
            large_scored: gen.scored,
        };
        if best.is_none_or(|b| pair.ratio() < b.ratio()) {
            best = Some(pair);
        }
    }
    best.expect("at least one measurement pair")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusable_is_one_full_component_under_the_confusion_oracle() {
        // The budgeted-pipeline bench relies on this shape: all n² cross
        // pairs undecided, one component, graded probabilities.
        let scenario = scenarios::confusable(5);
        let result = integrate_scenario(
            &scenario,
            &confusion_oracle(),
            &IntegrationOptions::default(),
        );
        // All 25 movie cross pairs stay undecided (further undecided
        // pairs arise below movie level, e.g. director credits).
        assert_eq!(result.stats.undecided_by_tag.get("movie"), Some(&25));
        // 5×5 complete bipartite graph: 1546 matchings in one component.
        assert_eq!(result.stats.max_component_matchings, 1546);
        assert!(result.stats.is_exact(), "default budget is ample at n=5");
    }

    #[test]
    fn confusable_8_dies_strictly_but_completes_under_budget() {
        // The acceptance scenario of the budgeted pipeline: 1 441 729
        // matchings exceed the default cap in strict mode…
        let scenario = scenarios::confusable(8);
        let strict = integrate_xml(
            &scenario.mpeg7,
            &scenario.imdb,
            &confusion_oracle(),
            Some(&scenario.schema),
            &IntegrationOptions {
                strict_matchings: true,
                ..IntegrationOptions::default()
            },
        );
        assert!(matches!(
            strict,
            Err(imprecise::integrate::IntegrateError::TooManyMatchings { .. })
        ));
        // …while the budgeted pipeline completes and accounts the tail.
        let budgeted = integrate_scenario(
            &scenario,
            &confusion_oracle(),
            &IntegrationOptions {
                max_matchings_per_component: 64,
                ..IntegrationOptions::default()
            },
        );
        let t = &budgeted.stats.truncated_components[0];
        assert_eq!(t.live_pairs, 64);
        assert_eq!(t.kept, 64);
        assert!(t.discarded_mass > 0.0 && t.discarded_mass < 1.0);
    }

    #[test]
    fn staged_refinement_equals_the_one_shot_budget() {
        use imprecise::integrate::RefineOptions;
        // The integrate_refine bench's premise: spending a budget of 128
        // as 64 + one 64-matching refinement keeps exactly the same
        // matchings — and builds the bit-identical document — as
        // spending 128 at once.
        let scenario = scenarios::confusable(5);
        let oracle = confusion_oracle();
        let one_shot = integrate_scenario(
            &scenario,
            &oracle,
            &IntegrationOptions {
                max_matchings_per_component: 128,
                ..IntegrationOptions::default()
            },
        );
        let mut staged = integrate_scenario(
            &scenario,
            &oracle,
            &IntegrationOptions {
                max_matchings_per_component: 64,
                ..IntegrationOptions::default()
            },
        );
        staged
            .refine(
                &oracle,
                Some(&scenario.schema),
                &RefineOptions {
                    extra_matchings: 64,
                    min_retained_mass: None,
                    max_components: usize::MAX,
                    threads: None,
                },
            )
            .expect("refines");
        assert_eq!(one_shot.doc.fingerprint(), staged.doc.fingerprint());
        assert_eq!(
            one_shot.stats.max_discarded_mass.to_bits(),
            staged.stats.max_discarded_mass.to_bits(),
            "exact mass accounting must agree between the two paths"
        );
    }

    #[test]
    fn fig5_small_sweep_is_monotone() {
        let rows = run_fig5(&[0, 3, 6]);
        assert_eq!(rows.len(), 6);
        // Within a series, unfactored size grows with n.
        for series in ["Only movie title rule", "Movie title+year rule"] {
            let sizes: Vec<f64> = rows
                .iter()
                .filter(|(s, _, _)| s == series)
                .map(|(_, _, m)| m.unfactored_nodes)
                .collect();
            assert!(
                sizes.windows(2).all(|w| w[0] <= w[1]),
                "{series}: {sizes:?}"
            );
        }
    }

    #[test]
    fn addressbook_query_db_is_uncertain_but_enumerable() {
        let db = addressbook_query_db();
        let worlds = db.world_count_f64();
        assert!(worlds > 1.0, "conflicts must create uncertainty");
        assert!(
            worlds <= 1_000_000.0,
            "the naive bench baseline needs enumerable worlds, got {worlds}"
        );
        // The bench queries find answers on it.
        let q = imprecise::query::parse_query("//person/tel").unwrap();
        let answers = imprecise::query::eval_px(&db, &q).unwrap();
        assert!(!answers.is_empty());
    }

    #[test]
    fn typical_has_two_undecided_pairs() {
        let t = run_typical();
        assert_eq!(t.undecided, 2, "{:?}", t.measurement);
        assert_eq!(t.measurement.worlds, 4.0);
    }

    #[test]
    fn answer_quality_sweep_shapes() {
        let rows = run_answer_quality(&[0.0, 0.2, 1.1]);
        assert_eq!(rows.len(), 3);
        // Pruning only shrinks the representation.
        assert!(rows.windows(2).all(|w| w[0].nodes >= w[1].nodes));
        assert!(rows.windows(2).all(|w| w[0].worlds >= w[1].worlds));
        // ε beyond every probability yields the certain MAP-shaped db.
        assert_eq!(rows[2].worlds, 1.0);
        // Unpruned quality matches the direct query experiment.
        let q = run_queries();
        assert!((rows[0].horror.f_measure - q.horror_quality.f_measure).abs() < 1e-12);
        assert!((rows[0].john.f_measure - q.john_quality.f_measure).abs() < 1e-12);
        // The §V warning's signature: somewhere in the sweep a valid
        // possibility is eliminated while noise survives — quality is not
        // monotone in ε (the ε=0.2 John precision dips below ε=0).
        assert!(rows[1].john.precision < rows[0].john.precision);
    }

    #[test]
    fn queries_reproduce_paper_shape() {
        let q = run_queries();
        // Horror: exactly the two Jaws movies, high and (nearly) equal.
        assert_eq!(q.horror.len(), 2);
        assert!(q.horror.probability_of("Jaws") > 0.9);
        assert!(q.horror.probability_of("Jaws 2") > 0.9);
        assert_eq!(q.horror_quality.precision, 1.0);
        // John: Die Hard certain, MI2 high, MI low but present.
        assert!((q.john.probability_of("Die Hard: With a Vengeance") - 1.0).abs() < 1e-9);
        assert!(q.john.probability_of("Mission: Impossible II") > 0.7);
        let mi = q.john.probability_of("Mission: Impossible");
        assert!(mi > 0.0 && mi < 0.5, "MI at {mi}");
    }
}
