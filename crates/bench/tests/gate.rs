//! The staged-vs-one-shot regression gate as a plain test (PR 7), so
//! `cargo test` enforces it without waiting for a full bench run.
//!
//! The gate guards PR 6's incremental emitter: splitting a matching
//! budget of 512 into 8 × 64 refinement installments must stay within
//! [`STAGED_GATE_CEILING`]× of spending 512 at once. The measurement is
//! shared with the `integrate_refine` bench's `--bench` gate, so both
//! assert the same numbers.
//!
//! The assertion only runs in the default (feature-off) build: with
//! `strict-invariants` on, every installment pays a deep shadow check,
//! which measures tooling overhead, not emitter regressions (that
//! overhead is what BENCH_pr7.json records). Set
//! `IMPRECISE_BENCH_GATE=off` to skip on wildly noisy machines.

use imprecise_bench::measure_staged_vs_one_shot;
#[cfg(not(feature = "strict-invariants"))]
use imprecise_bench::STAGED_GATE_CEILING;

#[test]
fn staged_refinement_stays_within_the_one_shot_ceiling() {
    if std::env::var("IMPRECISE_BENCH_GATE").is_ok_and(|v| v == "off") {
        eprintln!("gate: skipped (IMPRECISE_BENCH_GATE=off)");
        return;
    }
    let m = measure_staged_vs_one_shot();
    eprintln!(
        "gate: staged-8x64 {:?} / one-shot-512 {:?} = {:.2}x",
        m.staged,
        m.one_shot,
        m.ratio()
    );
    #[cfg(not(feature = "strict-invariants"))]
    assert!(
        m.holds(),
        "staged refinement regressed to {:.2}x the one-shot cost \
         (ceiling {STAGED_GATE_CEILING}x): incremental emission should \
         keep installments near the one-shot budget",
        m.ratio()
    );
}
