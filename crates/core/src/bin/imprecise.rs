//! `imprecise` — command-line front end to the probabilistic XML
//! integration engine.
//!
//! ```text
//! imprecise integrate --out merged.xml [--rules FILE|movie|addressbook]
//!                     [--dtd FILE] [--weights A,B] [--budget K]
//!                     [--budget-total K] [--min-mass P] [--strict]
//!                     [--threads N] [--store FILE]
//!                     [--blocking off|safe|window:N]
//!                     a.xml b.xml [c.xml ...]
//! imprecise refine --out refined.xml [--rules ...] [--dtd FILE]
//!                  [--initial-budget K] [--budget K] [--top C]
//!                  [--steps N] [--store FILE] [a.xml b.xml [c.xml ...]]
//! imprecise query db.xml QUERY [--threshold P] [--min-probability P]
//!                 [--store FILE]
//! imprecise explain QUERY [--threshold P]
//! imprecise stats db.xml
//! imprecise worlds db.xml [--limit N]
//! imprecise prune db.xml --epsilon E --out pruned.xml
//! imprecise feedback db.xml --query Q --value V --verdict correct|incorrect
//!                    --out conditioned.xml
//! ```
//!
//! Probabilistic documents are read and written as *annotated XML*
//! (`px:prob` / `px:poss` elements), so integration outputs can be fed
//! back in as inputs (incremental integration) or post-processed by any
//! XML tooling.
//!
//! With `--store FILE`, every publish is also durably appended to the
//! segment file at FILE: a later `refine --store FILE` with *no* source
//! files reopens the store and resumes refinement of the stored
//! `result` document exactly where the previous process stopped, and
//! `query NAME QUERY --store FILE` queries a stored document by name
//! instead of reading an XML file.

use imprecise::integrate::{BlockingMode, Parallelism, RefineOptions};
use imprecise::oracle::dsl::{ADDRESSBOOK_RULES, MOVIE_RULES};
use imprecise::query::QueryPlan;
use imprecise::{DocHandle, Engine, EngineBuilder};
use std::fmt;
use std::io::Write;
use std::process::ExitCode;

/// The integration knobs shared by `integrate` and `refine`.
#[derive(Debug, Clone, PartialEq)]
struct EngineFlags {
    rules: Option<String>,
    dtd: Option<String>,
    weights: (f64, f64),
    /// Matching budget per candidate-graph component.
    budget: Option<usize>,
    /// Total matching budget per tag group, split across its components
    /// proportionally to live pairs (overrides --budget).
    budget_total: Option<usize>,
    /// Early stop once this fraction of each component's mass is kept.
    min_mass: Option<f64>,
    /// Fail (classic behaviour) instead of truncating over budget.
    strict: bool,
    /// Worker threads for matching enumeration (0 = all cores).
    threads: Option<usize>,
    /// Candidate blocking: off, recall-safe prefilters, or
    /// sorted-neighbourhood windowing.
    blocking: BlockingMode,
    /// Durable store segment file: publishes are appended to it and a
    /// later run can recover/resume from it.
    store: Option<String>,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Integrate {
        /// Two or more source files, integrated by left-fold.
        sources: Vec<String>,
        out: String,
        engine: EngineFlags,
    },
    Refine {
        /// Two or more source files: integrated under the initial
        /// budget, then refined in place step by step.
        sources: Vec<String>,
        out: String,
        engine: EngineFlags,
        /// Extra matchings per refined component per step.
        extra: usize,
        /// Components refined per step (largest discarded mass first).
        top: usize,
        /// Refinement steps (default: until exhausted).
        steps: Option<usize>,
        /// Print per-step emission and arena-occupancy figures.
        stats: bool,
    },
    Query {
        /// XML file to query — or, with `store` set, the *name* of a
        /// document inside the store.
        db: String,
        query: String,
        /// Pushed down into plan execution (prunes before probability
        /// computation); `None` evaluates everything.
        threshold: Option<f64>,
        /// Post-filter applied to the printed answers.
        min_probability: f64,
        /// Query a document recovered from this durable store.
        store: Option<String>,
    },
    Explain {
        query: String,
        threshold: Option<f64>,
    },
    Stats {
        db: String,
    },
    Worlds {
        db: String,
        limit: usize,
    },
    Prune {
        db: String,
        epsilon: f64,
        out: String,
    },
    Feedback {
        db: String,
        query: String,
        value: String,
        correct: bool,
        out: String,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct UsageError(String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

const USAGE: &str = "\
imprecise — probabilistic XML data integration (IMPrECISE reproduction)

USAGE:
  imprecise integrate --out FILE [--rules FILE|movie|addressbook]
                      [--dtd FILE] [--weights A,B]
                      [--budget K] [--budget-total K] [--min-mass P]
                      [--strict] [--threads N] [--store FILE]
                      [--blocking off|safe|window:N]
                      A.xml B.xml [C.xml ...]
  imprecise refine --out FILE [--rules FILE|movie|addressbook] [--dtd FILE]
                   [--weights A,B] [--initial-budget K] [--budget K]
                   [--top C] [--steps N] [--threads N] [--stats]
                   [--store FILE] [--blocking off|safe|window:N]
                   [A.xml B.xml [C.xml ...]]
  imprecise query DB.xml QUERY [--threshold P] [--min-probability P]
                  [--store FILE]
  imprecise explain QUERY [--threshold P]
  imprecise stats DB.xml
  imprecise worlds DB.xml [--limit N]
  imprecise prune DB.xml --epsilon E --out FILE
  imprecise feedback DB.xml --query Q --value V
                     --verdict correct|incorrect --out FILE

Probabilistic documents use px:prob/px:poss annotated XML; plain XML is
accepted anywhere and treated as certain.

--store FILE attaches a durable versioned store (an append-only segment
file, created on first use): every publish is crash-safely persisted.
`refine --store FILE` with no source files resumes the stored `result`
document where the previous process stopped; `query NAME Q --store FILE`
queries a stored document by name.";

fn parse_args(args: &[String]) -> Result<Command, UsageError> {
    let mut positional: Vec<&str> = Vec::new();
    let mut flags: Vec<(&str, Option<&str>)> = Vec::new();
    let mut it = args.iter().map(String::as_str).peekable();
    let sub = it.next().ok_or_else(|| UsageError(USAGE.into()))?;
    while let Some(tok) = it.next() {
        if let Some(name) = tok.strip_prefix("--") {
            let value = match name {
                // flags with a value
                "out" | "rules" | "dtd" | "weights" | "min-probability" | "threshold" | "limit"
                | "epsilon" | "query" | "value" | "verdict" | "budget" | "budget-total"
                | "initial-budget" | "min-mass" | "threads" | "top" | "steps" | "store"
                | "blocking" => Some(
                    it.next()
                        .ok_or_else(|| UsageError(format!("--{name} needs a value")))?,
                ),
                // boolean flags
                "strict" | "stats" => None,
                other => return Err(UsageError(format!("unknown flag --{other}"))),
            };
            flags.push((name, value));
        } else {
            positional.push(tok);
        }
    }
    let flag = |name: &str| -> Option<&str> {
        flags.iter().find(|(n, _)| *n == name).and_then(|(_, v)| *v)
    };
    let has_flag = |name: &str| -> bool { flags.iter().any(|(n, _)| *n == name) };
    let required = |name: &str| -> Result<String, UsageError> {
        flag(name)
            .map(str::to_string)
            .ok_or_else(|| UsageError(format!("missing required flag --{name}")))
    };
    let pos = |i: usize, what: &str| -> Result<String, UsageError> {
        positional
            .get(i)
            .map(|s| s.to_string())
            .ok_or_else(|| UsageError(format!("missing {what}")))
    };
    let parse_weights = |w: Option<&str>| -> Result<(f64, f64), UsageError> {
        match w {
            None => Ok((0.5, 0.5)),
            Some(w) => {
                let (a, b) = w
                    .split_once(',')
                    .ok_or_else(|| UsageError(format!("--weights wants A,B, got {w:?}")))?;
                let pa: f64 = a
                    .trim()
                    .parse()
                    .map_err(|_| UsageError(format!("bad weight {a:?}")))?;
                let pb: f64 = b
                    .trim()
                    .parse()
                    .map_err(|_| UsageError(format!("bad weight {b:?}")))?;
                if pa <= 0.0 || pb <= 0.0 {
                    return Err(UsageError("weights must be positive".into()));
                }
                Ok((pa, pb))
            }
        }
    };
    // The shared integrate/refine knobs; `budget_flag` names the flag
    // holding the per-component cap (`refine` repurposes --budget for
    // the per-step extra, so its initial cap is --initial-budget).
    let engine_flags = |budget_flag: &str| -> Result<EngineFlags, UsageError> {
        let min_mass = parse_opt_f64_flag(flag("min-mass"), "min-mass")?;
        if let Some(m) = min_mass {
            if !(m > 0.0 && m <= 1.0) {
                return Err(UsageError(format!("--min-mass must be in (0, 1], got {m}")));
            }
        }
        let budget = parse_opt_usize_flag(flag(budget_flag), budget_flag)?;
        if budget == Some(0) {
            return Err(UsageError(format!("--{budget_flag} must be at least 1")));
        }
        let budget_total = parse_opt_usize_flag(flag("budget-total"), "budget-total")?;
        if budget_total == Some(0) {
            return Err(UsageError("--budget-total must be at least 1".into()));
        }
        Ok(EngineFlags {
            rules: flag("rules").map(str::to_string),
            dtd: flag("dtd").map(str::to_string),
            weights: parse_weights(flag("weights"))?,
            budget,
            budget_total,
            min_mass,
            strict: has_flag("strict"),
            threads: parse_opt_usize_flag(flag("threads"), "threads")?,
            store: flag("store").map(str::to_string),
            blocking: parse_blocking_flag(flag("blocking"))?,
        })
    };
    // `allow_empty`: `refine --store` may run with no sources at all,
    // resuming the stored result instead of integrating afresh.
    let source_files = |cmd: &str, allow_empty: bool| -> Result<Vec<String>, UsageError> {
        let sources: Vec<String> = positional.iter().map(|s| s.to_string()).collect();
        if sources.len() < 2 && !(allow_empty && sources.is_empty()) {
            return Err(UsageError(format!("{cmd} needs at least two source files")));
        }
        Ok(sources)
    };
    match sub {
        "integrate" => Ok(Command::Integrate {
            sources: source_files("integrate", false)?,
            out: required("out")?,
            engine: engine_flags("budget")?,
        }),
        "refine" => {
            let extra = parse_usize_flag(flag("budget"), 1024, "budget")?;
            if extra == 0 {
                return Err(UsageError("--budget must be at least 1".into()));
            }
            let top = parse_usize_flag(flag("top"), usize::MAX, "top")?;
            if top == 0 {
                return Err(UsageError("--top must be at least 1".into()));
            }
            let mut engine = engine_flags("initial-budget")?;
            if engine.strict {
                return Err(UsageError(
                    "--strict never truncates, so there is nothing to refine".into(),
                ));
            }
            // A refinement demo wants a visible initial truncation;
            // default the initial cap to a small budget.
            engine.budget = engine.budget.or(Some(64));
            Ok(Command::Refine {
                sources: source_files("refine", engine.store.is_some())?,
                out: required("out")?,
                engine,
                extra,
                top,
                steps: parse_opt_usize_flag(flag("steps"), "steps")?,
                stats: has_flag("stats"),
            })
        }
        "query" => Ok(Command::Query {
            db: pos(0, "database file")?,
            query: pos(1, "query")?,
            threshold: parse_opt_f64_flag(flag("threshold"), "threshold")?,
            min_probability: parse_f64_flag(flag("min-probability"), 0.0, "min-probability")?,
            store: flag("store").map(str::to_string),
        }),
        "explain" => Ok(Command::Explain {
            query: pos(0, "query")?,
            threshold: parse_opt_f64_flag(flag("threshold"), "threshold")?,
        }),
        "stats" => Ok(Command::Stats {
            db: pos(0, "database file")?,
        }),
        "worlds" => Ok(Command::Worlds {
            db: pos(0, "database file")?,
            limit: parse_usize_flag(flag("limit"), 10, "limit")?,
        }),
        "prune" => Ok(Command::Prune {
            db: pos(0, "database file")?,
            epsilon: parse_f64_flag(flag("epsilon"), f64::NAN, "epsilon").and_then(|e| {
                if e.is_nan() {
                    Err(UsageError("missing required flag --epsilon".into()))
                } else {
                    Ok(e)
                }
            })?,
            out: required("out")?,
        }),
        "feedback" => {
            let correct = match flag("verdict") {
                Some("correct") => true,
                Some("incorrect") => false,
                Some(other) => {
                    return Err(UsageError(format!(
                        "--verdict must be correct|incorrect, got {other:?}"
                    )))
                }
                None => return Err(UsageError("missing required flag --verdict".into())),
            };
            Ok(Command::Feedback {
                db: pos(0, "database file")?,
                query: required("query")?,
                value: required("value")?,
                correct,
                out: required("out")?,
            })
        }
        "help" | "--help" | "-h" => Err(UsageError(USAGE.into())),
        other => Err(UsageError(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

fn parse_f64_flag(v: Option<&str>, default: f64, name: &str) -> Result<f64, UsageError> {
    match v {
        None => Ok(default),
        Some(s) => s
            .parse()
            .map_err(|_| UsageError(format!("--{name} is not a number: {s:?}"))),
    }
}

fn parse_opt_f64_flag(v: Option<&str>, name: &str) -> Result<Option<f64>, UsageError> {
    v.map(|s| {
        s.parse()
            .map_err(|_| UsageError(format!("--{name} is not a number: {s:?}")))
    })
    .transpose()
}

fn parse_usize_flag(v: Option<&str>, default: usize, name: &str) -> Result<usize, UsageError> {
    match v {
        None => Ok(default),
        Some(s) => s
            .parse()
            .map_err(|_| UsageError(format!("--{name} is not an integer: {s:?}"))),
    }
}

fn parse_opt_usize_flag(v: Option<&str>, name: &str) -> Result<Option<usize>, UsageError> {
    v.map(|s| {
        s.parse()
            .map_err(|_| UsageError(format!("--{name} is not an integer: {s:?}")))
    })
    .transpose()
}

/// Parse `--blocking off|safe|window:N` (default off).
fn parse_blocking_flag(v: Option<&str>) -> Result<BlockingMode, UsageError> {
    match v {
        None | Some("off") => Ok(BlockingMode::Off),
        Some("safe") => Ok(BlockingMode::RecallSafe),
        Some(s) => {
            let window = s
                .strip_prefix("window:")
                .and_then(|w| w.parse::<usize>().ok())
                .filter(|&w| w >= 1)
                .ok_or_else(|| {
                    UsageError(format!("--blocking wants off, safe or window:N, got {s:?}"))
                })?;
            Ok(BlockingMode::Heuristic { window })
        }
    }
}

/// Resolve a `--rules` argument: a named preset or a file path.
fn rules_text(arg: &str) -> Result<String, String> {
    match arg {
        "movie" => Ok(MOVIE_RULES.to_string()),
        "addressbook" => Ok(ADDRESSBOOK_RULES.to_string()),
        path => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read rule file {path}: {e}"))
        }
    }
}

/// Load an XML file into the engine under `name`.
fn load(engine: &Engine, name: &str, path: &str) -> Result<DocHandle, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    engine
        .load_xml(name, &text)
        .map_err(|e| format!("{path}: {e}"))
}

/// Build an engine from the shared integrate/refine flags.
fn build_engine(flags: &EngineFlags) -> Result<Engine, String> {
    let mut builder = EngineBuilder::new();
    if let Some(r) = &flags.rules {
        let text = rules_text(r)?;
        builder = builder.rules(&text).map_err(|e| e.to_string())?;
    }
    if let Some(d) = &flags.dtd {
        let text = std::fs::read_to_string(d).map_err(|e| format!("cannot read {d}: {e}"))?;
        builder = builder.schema_text(&text).map_err(|e| e.to_string())?;
    }
    let defaults = imprecise::integrate::IntegrationOptions::default();
    builder = builder.options(imprecise::integrate::IntegrationOptions {
        source_weights: flags.weights,
        max_matchings_per_component: flags.budget.unwrap_or(defaults.max_matchings_per_component),
        budget_plan: match flags.budget_total {
            Some(total) => imprecise::integrate::BudgetPlan::Total(total),
            None => imprecise::integrate::BudgetPlan::PerComponent,
        },
        min_retained_mass: flags.min_mass,
        strict_matchings: flags.strict,
        parallelism: flags
            .threads
            .map(Parallelism::new)
            .unwrap_or(defaults.parallelism),
        blocking: flags.blocking,
        ..defaults
    });
    match &flags.store {
        Some(path) => builder.with_store(path).open().map_err(|e| e.to_string()),
        None => Ok(builder.build()),
    }
}

/// Load the source files and fold them into a document named `result`.
fn integrate_sources(
    engine: &Engine,
    sources: &[String],
) -> Result<(DocHandle, Vec<imprecise::integrate::IntegrationStats>), String> {
    let handles = sources
        .iter()
        .enumerate()
        .map(|(i, path)| load(engine, &format!("source-{i}"), path))
        .collect::<Result<Vec<_>, _>>()?;
    engine
        .integrate_many(&handles, "result")
        .map_err(|e| e.to_string())
}

/// Print the budget-truncation summary of a fold, flagging which
/// truncated components are resumable (frontier persisted with the
/// published document — `imprecise refine` picks them up).
fn report_truncations(steps: &[imprecise::integrate::IntegrationStats], budget_note: &str) {
    let truncated: usize = steps.iter().map(|s| s.components_truncated()).sum();
    if truncated == 0 {
        return;
    }
    let max_discarded = steps
        .iter()
        .map(|s| s.max_discarded_mass)
        .fold(0.0f64, f64::max);
    eprintln!(
        "budget: {truncated} component(s) truncated, max discarded mass {max_discarded:.4}{budget_note}",
    );
    for step in steps {
        for t in &step.truncated_components {
            let resumable = if t.resumable {
                format!(", resumable ({} open frontier nodes)", t.frontier_nodes)
            } else {
                format!(
                    ", not resumable (intermediate fold step; {} frontier nodes dropped)",
                    t.frontier_nodes
                )
            };
            eprintln!(
                "  {} — {} live pairs, kept {} matchings, discarded mass {:.4}{resumable}",
                t.path, t.live_pairs, t.kept, t.discarded_mass
            );
        }
    }
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Integrate {
            sources,
            out,
            engine: flags,
        } => {
            let engine = build_engine(&flags)?;
            let (result, steps) = integrate_sources(&engine, &sources)?;
            let snapshot = engine.snapshot(&result).map_err(|e| e.to_string())?;
            std::fs::write(&out, snapshot.export())
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            let doc_stats = snapshot.stats();
            // Aggregate the per-step statistics of the fold.
            let sum = |f: fn(&imprecise::integrate::IntegrationStats) -> usize| -> usize {
                steps.iter().map(f).sum()
            };
            eprintln!(
                "integrated: {} pairs judged ({} match / {} non-match / {} undecided), \
                 {} possible worlds, {} nodes -> {out}",
                sum(|s| s.pairs_judged),
                sum(|s| s.judged_match),
                sum(|s| s.judged_nonmatch),
                sum(|s| s.judged_possible),
                doc_stats.worlds,
                doc_stats.breakdown.total(),
            );
            report_truncations(
                &steps,
                &format!(
                    "; matchings kept per component <= {}",
                    engine.options().max_matchings_per_component
                ),
            );
            Ok(())
        }
        Command::Refine {
            sources,
            out,
            engine: flags,
            extra,
            top,
            steps: max_steps,
            stats,
        } => {
            let engine = build_engine(&flags)?;
            let result = if sources.is_empty() {
                // --store resume mode: pick up the stored result where
                // the previous process stopped.
                engine.handle("result").ok_or_else(|| {
                    format!(
                        "store {:?} holds no `result` document to resume; \
                         pass source files to integrate first",
                        flags.store.as_deref().unwrap_or("<none>")
                    )
                })?
            } else {
                let (result, steps) = integrate_sources(&engine, &sources)?;
                report_truncations(&steps, "");
                result
            };
            if stats {
                match engine.refine_state(&result).map_err(|e| e.to_string())? {
                    None => eprintln!("refine state: none (document is exact)"),
                    Some(info) => {
                        let provenance = match info.recovered_at {
                            Some(v) => format!("recovered from store at version {v}"),
                            None => "in-memory".to_string(),
                        };
                        eprintln!(
                            "refine state: {provenance}, {} open component(s), \
                             max discarded mass {:.4}",
                            info.open_components, info.max_discarded_mass,
                        );
                    }
                }
            }
            let options = RefineOptions {
                extra_matchings: extra,
                min_retained_mass: None,
                max_components: top,
                threads: flags.threads.map(Parallelism::new),
            };
            let mut step_no = 0usize;
            loop {
                if max_steps.is_some_and(|limit| step_no >= limit) {
                    break;
                }
                let step = engine
                    .refine(&result, &options)
                    .map_err(|e| e.to_string())?;
                if step.refined.is_empty() {
                    break;
                }
                step_no += 1;
                for r in &step.refined {
                    eprintln!(
                        "refine step {step_no}: {} — kept {} -> {} matchings, \
                         discarded mass {:.4} -> {:.4}{}",
                        r.path,
                        r.kept_before,
                        r.kept_after,
                        r.discarded_before,
                        r.discarded_after,
                        if r.exhausted { " (exhausted)" } else { "" },
                    );
                }
                if stats {
                    eprintln!(
                        "refine step {step_no}: emitted {} node(s), arena {}/{} live \
                         ({} detached slot(s)){}",
                        step.emitted_nodes,
                        step.arena_live,
                        step.arena_total,
                        step.arena_total - step.arena_live,
                        if step.compacted { ", compacted" } else { "" },
                    );
                    eprintln!(
                        "refine step {step_no}: search popped {} state(s), \
                         expanded {}, {} bound cutoff(s), {} round(s) on {} worker(s)",
                        step.search.popped,
                        step.search.expanded,
                        step.search.cutoffs,
                        step.search.rounds,
                        step.search.workers,
                    );
                }
                if step.remaining == 0 {
                    eprintln!("refine: document is exact now ({step_no} step(s))");
                    break;
                }
                eprintln!(
                    "refine step {step_no}: {} component(s) still open, \
                     max discarded mass {:.4}",
                    step.remaining, step.max_discarded_mass,
                );
            }
            if step_no == 0 {
                eprintln!("refine: nothing to refine (no component was truncated)");
            }
            let snapshot = engine.snapshot(&result).map_err(|e| e.to_string())?;
            std::fs::write(&out, snapshot.export())
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            let doc_stats = snapshot.stats();
            eprintln!(
                "refined: {} possible worlds, {} nodes -> {out}",
                doc_stats.worlds,
                doc_stats.breakdown.total(),
            );
            Ok(())
        }
        Command::Query {
            db,
            query,
            threshold,
            min_probability,
            store,
        } => {
            let engine = match &store {
                Some(path) => Engine::open(path).map_err(|e| e.to_string())?,
                None => Engine::new(),
            };
            let hdb = match &store {
                // With a store, DB names a stored document.
                Some(path) => engine
                    .handle(&db)
                    .ok_or_else(|| format!("store {path:?} holds no document named {db:?}"))?,
                None => load(&engine, "db", &db)?,
            };
            // --threshold takes the pushdown fast path: the plan prunes
            // sub-threshold candidates before computing probabilities.
            let answers = engine
                .query(&hdb, &query, threshold)
                .map_err(|e| e.to_string())?;
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            for item in &answers.items {
                if item.probability >= min_probability {
                    // A closed pipe (e.g. `| head`) is a normal way for the
                    // reader to stop; exit quietly instead of panicking.
                    if writeln!(out, "{:5.1}% {}", item.probability * 100.0, item.value).is_err() {
                        return Ok(());
                    }
                }
            }
            Ok(())
        }
        Command::Explain { query, threshold } => {
            let mut plan = QueryPlan::parse(&query).map_err(|e| e.to_string())?;
            if let Some(t) = threshold {
                plan = plan.with_min_probability(t);
            }
            println!("{plan}");
            Ok(())
        }
        Command::Stats { db } => {
            let engine = Engine::new();
            let hdb = load(&engine, "db", &db)?;
            let s = engine.stats(&hdb).map_err(|e| e.to_string())?;
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            // As in `query`/`worlds`: a closed pipe (e.g. `| head`) is a
            // normal way for the reader to stop.
            let _ = writeln!(out, "worlds:               {}", s.worlds).is_ok()
                && writeln!(out, "certain:              {}", s.certain).is_ok()
                && writeln!(out, "nodes (factored):     {}", s.breakdown.total()).is_ok()
                && writeln!(out, "  probability nodes:  {}", s.breakdown.prob).is_ok()
                && writeln!(out, "  possibility nodes:  {}", s.breakdown.poss).is_ok()
                && writeln!(out, "  element nodes:      {}", s.breakdown.elem).is_ok()
                && writeln!(out, "  text nodes:         {}", s.breakdown.text).is_ok()
                && writeln!(out, "nodes (unfactored):   {}", s.unfactored_nodes).is_ok()
                && writeln!(out, "expected world size:  {:.1}", s.expected_world_size).is_ok();
            Ok(())
        }
        Command::Worlds { db, limit } => {
            let engine = Engine::new();
            let hdb = load(&engine, "db", &db)?;
            let doc = engine.snapshot(&hdb).map_err(|e| e.to_string())?;
            let total = doc.world_count();
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            if writeln!(out, "{total} possible worlds; showing up to {limit}:").is_err() {
                return Ok(());
            }
            for (i, world) in doc.worlds_iter().take(limit).enumerate() {
                let ok = writeln!(out, "-- world {i} (p = {:.6})", world.prob).is_ok()
                    && writeln!(out, "{}", imprecise::xml::to_pretty_string(&world.doc)).is_ok();
                if !ok {
                    return Ok(());
                }
            }
            Ok(())
        }
        Command::Prune { db, epsilon, out } => {
            let engine = Engine::new();
            let hdb = load(&engine, "db", &db)?;
            let mut doc = engine
                .snapshot(&hdb)
                .map_err(|e| e.to_string())?
                .doc()
                .clone();
            let stats = doc.prune_below(epsilon);
            let pruned = engine.insert("pruned", doc).map_err(|e| e.to_string())?;
            let text = engine.export(&pruned).map_err(|e| e.to_string())?;
            std::fs::write(&out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!(
                "pruned {} possibilities ({} choice points, max mass {:.3}): \
                 {} -> {} nodes, {} -> {} worlds -> {out}",
                stats.possibilities_removed,
                stats.probs_affected,
                stats.max_mass_removed,
                stats.nodes_before,
                stats.nodes_after,
                stats.worlds_before,
                stats.worlds_after,
            );
            Ok(())
        }
        Command::Feedback {
            db,
            query,
            value,
            correct,
            out,
        } => {
            let engine = Engine::new();
            let hdb = load(&engine, "db", &db)?;
            let prepared = engine.prepare(&query).map_err(|e| e.to_string())?;
            let report = engine
                .feedback(&hdb, &prepared, &value, correct)
                .map_err(|e| e.to_string())?;
            let text = engine.export(&hdb).map_err(|e| e.to_string())?;
            std::fs::write(&out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!(
                "conditioned ({:?}): worlds {} -> {}, nodes {} -> {} -> {out}",
                report.method,
                report.worlds_before,
                report.worlds_after,
                report.nodes_before,
                report.nodes_after,
            );
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(cmd) => match run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(usage) => {
            eprintln!("{usage}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Command, UsageError> {
        parse_args(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn integrate_command_parses() {
        let cmd = parse(&[
            "integrate",
            "--out",
            "m.xml",
            "--rules",
            "movie",
            "--weights",
            "0.8,0.2",
            "a.xml",
            "b.xml",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Integrate {
                sources: vec!["a.xml".into(), "b.xml".into()],
                out: "m.xml".into(),
                engine: EngineFlags {
                    rules: Some("movie".into()),
                    dtd: None,
                    weights: (0.8, 0.2),
                    budget: None,
                    budget_total: None,
                    min_mass: None,
                    strict: false,
                    threads: None,
                    store: None,
                    blocking: BlockingMode::Off,
                },
            }
        );
    }

    #[test]
    fn integrate_budget_flags_parse() {
        let cmd = parse(&[
            "integrate",
            "--out",
            "m.xml",
            "--budget",
            "64",
            "--budget-total",
            "640",
            "--min-mass",
            "0.95",
            "--strict",
            "--threads",
            "0",
            "a.xml",
            "b.xml",
            "c.xml",
            "d.xml",
        ])
        .unwrap();
        match cmd {
            Command::Integrate {
                sources, engine, ..
            } => {
                assert_eq!(sources.len(), 4);
                assert_eq!(engine.budget, Some(64));
                assert_eq!(engine.budget_total, Some(640));
                assert_eq!(engine.min_mass, Some(0.95));
                assert!(engine.strict);
                assert_eq!(engine.threads, Some(0));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["integrate", "--out", "m.xml", "--budget", "lots", "a", "b"]).is_err());
        assert!(parse(&[
            "integrate",
            "--out",
            "m.xml",
            "--budget-total",
            "0",
            "a",
            "b"
        ])
        .is_err());
        assert!(parse(&["integrate", "--out", "m.xml", "only-one.xml"])
            .unwrap_err()
            .0
            .contains("at least two"));
    }

    #[test]
    fn refine_command_parses_with_defaults() {
        let cmd = parse(&["refine", "--out", "r.xml", "a.xml", "b.xml"]).unwrap();
        match cmd {
            Command::Refine {
                sources,
                out,
                engine,
                extra,
                top,
                steps,
                stats,
            } => {
                assert_eq!(sources.len(), 2);
                assert_eq!(out, "r.xml");
                // The initial integrate defaults to a small truncating cap.
                assert_eq!(engine.budget, Some(64));
                assert_eq!(extra, 1024);
                assert_eq!(top, usize::MAX);
                assert_eq!(steps, None);
                assert!(!stats);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn refine_flags_parse_and_validate() {
        let cmd = parse(&[
            "refine",
            "--out",
            "r.xml",
            "--initial-budget",
            "16",
            "--budget",
            "128",
            "--top",
            "2",
            "--steps",
            "5",
            "a.xml",
            "b.xml",
        ])
        .unwrap();
        match cmd {
            Command::Refine {
                engine,
                extra,
                top,
                steps,
                ..
            } => {
                assert_eq!(engine.budget, Some(16));
                assert_eq!(extra, 128);
                assert_eq!(top, 2);
                assert_eq!(steps, Some(5));
            }
            other => panic!("{other:?}"),
        }
        // --stats is a boolean flag on refine.
        match parse(&["refine", "--out", "r.xml", "--stats", "a", "b"]).unwrap() {
            Command::Refine { stats, .. } => assert!(stats),
            other => panic!("{other:?}"),
        }
        // Strict mode never truncates: nothing to refine.
        assert!(parse(&["refine", "--out", "r.xml", "--strict", "a", "b"])
            .unwrap_err()
            .0
            .contains("nothing to refine"));
        assert!(parse(&["refine", "--out", "r.xml", "--top", "0", "a", "b"]).is_err());
        assert!(parse(&["refine", "--out", "r.xml", "--budget", "0", "a", "b"]).is_err());
    }

    #[test]
    fn query_command_parses_with_default_threshold() {
        let cmd = parse(&["query", "db.xml", "//movie/title"]).unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                db: "db.xml".into(),
                query: "//movie/title".into(),
                threshold: None,
                min_probability: 0.0,
                store: None,
            }
        );
    }

    #[test]
    fn query_threshold_flag_parses() {
        let cmd = parse(&["query", "db.xml", "//movie/title", "--threshold", "0.5"]).unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                db: "db.xml".into(),
                query: "//movie/title".into(),
                threshold: Some(0.5),
                min_probability: 0.0,
                store: None,
            }
        );
        assert!(parse(&["query", "db.xml", "q", "--threshold", "high"]).is_err());
    }

    #[test]
    fn store_flag_parses_on_integrate_refine_and_query() {
        match parse(&[
            "integrate",
            "--out",
            "m.xml",
            "--store",
            "db.seg",
            "a.xml",
            "b.xml",
        ])
        .unwrap()
        {
            Command::Integrate { engine, .. } => {
                assert_eq!(engine.store.as_deref(), Some("db.seg"))
            }
            other => panic!("{other:?}"),
        }
        match parse(&["refine", "--out", "r.xml", "--store", "db.seg", "a", "b"]).unwrap() {
            Command::Refine { engine, .. } => assert_eq!(engine.store.as_deref(), Some("db.seg")),
            other => panic!("{other:?}"),
        }
        match parse(&["query", "result", "//movie", "--store", "db.seg"]).unwrap() {
            Command::Query { db, store, .. } => {
                assert_eq!(db, "result");
                assert_eq!(store.as_deref(), Some("db.seg"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["integrate", "--out", "m.xml", "--store"]).is_err());
    }

    #[test]
    fn refine_without_sources_requires_a_store() {
        // Resume mode: with a store attached, no source files are fine.
        match parse(&["refine", "--out", "r.xml", "--store", "db.seg"]).unwrap() {
            Command::Refine { sources, .. } => assert!(sources.is_empty()),
            other => panic!("{other:?}"),
        }
        // Without one, refine still needs at least two sources…
        assert!(parse(&["refine", "--out", "r.xml"])
            .unwrap_err()
            .0
            .contains("at least two"));
        // …and a single source is always an error, store or not.
        assert!(
            parse(&["refine", "--out", "r.xml", "--store", "db.seg", "a"])
                .unwrap_err()
                .0
                .contains("at least two")
        );
    }

    #[test]
    fn explain_command_parses() {
        let cmd = parse(&["explain", "//movie/title"]).unwrap();
        assert_eq!(
            cmd,
            Command::Explain {
                query: "//movie/title".into(),
                threshold: None,
            }
        );
        let cmd = parse(&["explain", "//movie/title", "--threshold", "0.25"]).unwrap();
        assert_eq!(
            cmd,
            Command::Explain {
                query: "//movie/title".into(),
                threshold: Some(0.25),
            }
        );
        assert!(parse(&["explain"]).is_err());
    }

    #[test]
    fn feedback_verdict_is_validated() {
        let err = parse(&[
            "feedback",
            "db.xml",
            "--query",
            "q",
            "--value",
            "v",
            "--verdict",
            "maybe",
            "--out",
            "o.xml",
        ])
        .unwrap_err();
        assert!(err.0.contains("correct|incorrect"));
    }

    #[test]
    fn missing_required_flags_are_reported() {
        assert!(parse(&["integrate", "a.xml", "b.xml"])
            .unwrap_err()
            .0
            .contains("--out"));
        assert!(parse(&["prune", "db.xml", "--out", "o.xml"])
            .unwrap_err()
            .0
            .contains("--epsilon"));
    }

    #[test]
    fn unknown_command_and_flags_error() {
        assert!(parse(&["frobnicate"])
            .unwrap_err()
            .0
            .contains("unknown command"));
        assert!(parse(&["query", "--frobnicate", "x"])
            .unwrap_err()
            .0
            .contains("unknown flag"));
    }

    #[test]
    fn weights_validation() {
        assert!(parse(&["integrate", "--out", "o", "--weights", "nope", "a", "b"]).is_err());
        assert!(parse(&["integrate", "--out", "o", "--weights", "0,-1", "a", "b"]).is_err());
    }

    #[test]
    fn preset_rules_resolve() {
        assert!(rules_text("movie").unwrap().contains("movie"));
        assert!(rules_text("addressbook").unwrap().contains("person"));
        assert!(rules_text("/nonexistent/rules.txt").is_err());
    }
}
