//! The [`Engine`]: a thread-safe probabilistic XML database.
//!
//! The paper's system is "an XQuery module on an XML DBMS" that users
//! query repeatedly while feedback incrementally shrinks the
//! possible-world space (§VII). The engine models that shape for
//! concurrent use:
//!
//! * **Configuration is immutable.** Oracle, schema, integration options
//!   and the feedback world cap are fixed by [`EngineBuilder`] at
//!   construction, so no query ever races a configuration change.
//! * **Documents are versioned snapshots.** The catalog stores
//!   [`Arc<PxDoc>`] per document; readers take a cheap [`DocSnapshot`]
//!   and keep querying it for as long as they like, while writers
//!   (integrate / feedback) publish a *new* version instead of mutating
//!   in place. A reader can never observe a half-conditioned document.
//! * **Documents are addressed by typed [`DocHandle`]s**, returned by
//!   [`Engine::load_xml`] / [`Engine::integrate`], not by bare strings.
//! * **Queries compile once.** [`Engine::prepare`] returns a
//!   [`PreparedQuery`] that owns a compiled [`QueryPlan`], re-binds it
//!   per snapshot (the last run is cached keyed by document version) and
//!   can be evaluated against any number of snapshots from any thread;
//!   [`Engine::query_many`] runs a batch against one consistent
//!   snapshot, and [`Engine::query_stream`] / [`PreparedQuery::stream`]
//!   yield answers lazily with a probability threshold pushed down into
//!   plan execution.
//!
//! ```
//! use imprecise::Engine;
//! use imprecise::oracle::presets::addressbook_oracle;
//!
//! let engine = Engine::builder()
//!     .oracle(addressbook_oracle())
//!     .schema_text(
//!         "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
//!          <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
//!     )
//!     .unwrap()
//!     .build();
//! let a = engine
//!     .load_xml("a", "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>")
//!     .unwrap();
//! let b = engine
//!     .load_xml("b", "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>")
//!     .unwrap();
//! let (merged, stats) = engine.integrate(&a, &b, "merged").unwrap();
//! assert_eq!(stats.judged_possible, 1); // one undecided person pair
//! let tel = engine.prepare("//person/tel").unwrap();
//! let answers = tel.run(&engine.snapshot(&merged).unwrap()).unwrap();
//! assert!((answers.probability_of("1111") - 0.75).abs() < 1e-9);
//! // The user confirms 1111 is John's number:
//! engine.feedback(&merged, &tel, "1111", true).unwrap();
//! let after = tel.run(&engine.snapshot(&merged).unwrap()).unwrap();
//! assert!((after.probability_of("1111") - 1.0).abs() < 1e-9);
//! ```

use crate::error::ImpreciseError;
use imprecise_feedback::{apply_feedback, FeedbackReport};
use imprecise_integrate::{
    integrate_many_px, integrate_px_shared, IntegrateError, IntegrationOptions, IntegrationOutcome,
    IntegrationStats, InvariantViolation, RefineOptions, RefineState, RefineStep,
};
use imprecise_oracle::Oracle;
use imprecise_pxml::{parse_annotated, to_annotated_xml, NodeBreakdown, PxDoc};
use imprecise_query::{parse_query, AnswerStream, Query, QueryPlan, RankedAnswers};
use imprecise_store::{Durability, Store};
use imprecise_xmlkit::{parse, to_string, Schema};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

/// Size/uncertainty statistics of one document version.
#[derive(Debug, Clone, PartialEq)]
pub struct DocStats {
    /// Node counts of the compact (factored) representation.
    pub breakdown: NodeBreakdown,
    /// Node count of the paper-equivalent unfactored representation.
    pub unfactored_nodes: f64,
    /// Number of possible worlds.
    pub worlds: f64,
    /// Expected size of a world.
    pub expected_world_size: f64,
    /// True when the document has a single world.
    pub certain: bool,
}

/// What [`Engine::refine_state`] reports for a refinable version:
/// the truncation summary plus the state's provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineStateInfo {
    /// Components whose matching enumeration is still truncated.
    pub open_components: usize,
    /// Probability mass discarded by the worst of them.
    pub max_discarded_mass: f64,
    /// `Some(version)` when the state was recovered from the durable
    /// store by [`Engine::open`] (tagged with the recovered version)
    /// and no in-process publish has replaced it yet; `None` for state
    /// produced in this process.
    pub recovered_at: Option<u64>,
}

/// A typed reference to a document stored in an [`Engine`].
///
/// Handles are cheap to clone and hash, stay valid for the lifetime of
/// the engine, and address the document *slot*: when a writer publishes
/// a new version (incremental integration into the same name, feedback
/// conditioning), the handle observes the latest version while
/// previously taken [`DocSnapshot`]s keep their old one.
#[derive(Clone)]
pub struct DocHandle {
    /// Identity of the engine that issued the handle (see
    /// [`Catalog::engine_id`]): handles never resolve on another engine.
    engine_id: u64,
    id: u64,
    name: Arc<str>,
}

impl DocHandle {
    /// The human-readable name the document was stored under.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for DocHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DocHandle({:?}#{})", self.name, self.id)
    }
}

impl PartialEq for DocHandle {
    fn eq(&self, other: &Self) -> bool {
        (self.engine_id, self.id) == (other.engine_id, other.id)
    }
}
impl Eq for DocHandle {}
impl std::hash::Hash for DocHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.engine_id, self.id).hash(state);
    }
}

/// An immutable view of one version of one document.
///
/// Snapshots are `Arc`-backed: taking one is O(1), holding one never
/// blocks writers, and the underlying document is guaranteed not to
/// change — concurrent feedback publishes a *new* version instead.
#[derive(Clone, Debug)]
pub struct DocSnapshot {
    handle: DocHandle,
    version: u64,
    doc: Arc<PxDoc>,
}

impl DocSnapshot {
    /// The handle this snapshot was taken from.
    pub fn handle(&self) -> &DocHandle {
        &self.handle
    }

    /// The published version this snapshot pinned (starts at 1,
    /// incremented by every publish into the slot).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The underlying probabilistic document.
    pub fn doc(&self) -> &PxDoc {
        &self.doc
    }

    /// A shared reference to the document, for handing to other threads.
    pub fn doc_arc(&self) -> Arc<PxDoc> {
        Arc::clone(&self.doc)
    }

    /// Size/uncertainty statistics of this version.
    pub fn stats(&self) -> DocStats {
        let doc = &self.doc;
        DocStats {
            breakdown: doc.node_breakdown(),
            unfactored_nodes: doc.unfactored_node_count(),
            worlds: doc.world_count_f64(),
            expected_world_size: doc.expected_world_size(),
            certain: doc.is_certain(),
        }
    }

    /// Serialize this version as annotated XML text.
    pub fn export(&self) -> String {
        to_string(&to_annotated_xml(&self.doc))
    }
}

impl std::ops::Deref for DocSnapshot {
    type Target = PxDoc;

    fn deref(&self) -> &PxDoc {
        &self.doc
    }
}

/// One memoized execution of a prepared query: the full ranked answers
/// of one (engine, slot, version) triple.
#[derive(Debug, Clone)]
struct CachedRun {
    engine_id: u64,
    slot: u64,
    version: u64,
    ranked: Arc<RankedAnswers>,
}

impl CachedRun {
    fn matches(&self, snapshot: &DocSnapshot) -> bool {
        (self.engine_id, self.slot, self.version)
            == (
                snapshot.handle.engine_id,
                snapshot.handle.id,
                snapshot.version,
            )
    }
}

/// A query compiled once (parse + plan), evaluable against any number of
/// documents.
///
/// Prepared queries are cheap to clone and `Send + Sync`, so one
/// instance can serve every thread of a server. Obtain one with
/// [`Engine::prepare`] (or [`PreparedQuery::parse`] without an engine).
///
/// Beyond the parse, a prepared query owns a compiled
/// [`QueryPlan`] and **re-binds it per snapshot**: the last full run is
/// cached keyed by document version (clones share the cache), so
/// repeated [`run`](Self::run)s against the same version return without
/// touching the document, and a feedback/integration publish —
/// which bumps the version — transparently invalidates it.
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    text: Arc<str>,
    plan: Arc<QueryPlan>,
    cache: Arc<Mutex<Option<CachedRun>>>,
}

impl PreparedQuery {
    /// Parse and compile `text` into a reusable query plan.
    pub fn parse(text: &str) -> Result<Self, ImpreciseError> {
        Ok(PreparedQuery {
            text: Arc::from(text),
            plan: Arc::new(QueryPlan::compile(&parse_query(text)?)),
            cache: Arc::new(Mutex::new(None)),
        })
    }

    /// The original query text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The parsed abstract syntax (pre-normalization).
    pub fn ast(&self) -> &Query {
        self.plan.source()
    }

    /// The compiled plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The `imprecise explain` rendering of the compiled plan.
    pub fn explain(&self) -> String {
        self.plan.to_string()
    }

    /// Evaluate against a snapshot, returning ranked answers.
    ///
    /// Serves from the per-version cache when this prepared query (or a
    /// clone) already ran against the same document version.
    pub fn run(&self, snapshot: &DocSnapshot) -> Result<RankedAnswers, ImpreciseError> {
        {
            let cache = self
                .cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(cached) = cache.as_ref() {
                if cached.matches(snapshot) {
                    return Ok((*cached.ranked).clone());
                }
            }
        }
        // Evaluate outside the lock; a racing clone at worst recomputes.
        let ranked = self.plan.collect(snapshot.doc())?;
        let mut cache = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *cache = Some(CachedRun {
            engine_id: snapshot.handle.engine_id,
            slot: snapshot.handle.id,
            version: snapshot.version,
            ranked: Arc::new(ranked.clone()),
        });
        Ok(ranked)
    }

    /// Evaluate against a snapshot keeping only answers with probability
    /// at least `min_probability`. Exactly [`run`](Self::run) filtered —
    /// and served from the same per-version cache; use
    /// [`stream`](Self::stream) for the threshold-pushdown path when
    /// the full answer set is not wanted at all.
    pub fn run_at(
        &self,
        snapshot: &DocSnapshot,
        min_probability: f64,
    ) -> Result<RankedAnswers, ImpreciseError> {
        let full = self.run(snapshot)?;
        Ok(RankedAnswers::from_pairs(
            full.items
                .into_iter()
                .filter(|a| a.probability >= min_probability)
                .map(|a| (a.value, a.probability))
                .collect(),
        ))
    }

    /// Stream answers lazily from a snapshot, with the threshold (if
    /// any) pushed down into execution: candidates whose probability
    /// bound falls below it are pruned before any exact probability is
    /// computed. The stream owns what it needs and may outlive the
    /// snapshot.
    pub fn stream(
        &self,
        snapshot: &DocSnapshot,
        min_probability: Option<f64>,
    ) -> Result<AnswerStream, ImpreciseError> {
        self.stream_doc(snapshot.doc(), min_probability)
    }

    /// Evaluate against a bare probabilistic document (no cache: a bare
    /// document has no version identity).
    pub fn run_doc(&self, doc: &PxDoc) -> Result<RankedAnswers, ImpreciseError> {
        Ok(self.plan.collect(doc)?)
    }

    /// Stream answers lazily from a bare probabilistic document.
    pub fn stream_doc(
        &self,
        doc: &PxDoc,
        min_probability: Option<f64>,
    ) -> Result<AnswerStream, ImpreciseError> {
        let stream = match min_probability {
            None => self.plan.execute(doc)?,
            Some(t) => self.plan.execute_at(doc, t)?,
        };
        Ok(stream)
    }
}

/// How many optimistic snapshot–compute–publish rounds a writer attempts
/// before falling back to computing under the write lock. The fallback
/// bounds worst-case work under contention: optimistic rounds never block
/// readers, but a slot receiving publishes faster than one conditioning
/// recompute would otherwise starve the writer indefinitely.
const OPTIMISTIC_ROUNDS: usize = 8;

/// Arenas below this many total slots are never compacted after a
/// refine step: walking the document to reclaim a few kilobytes costs
/// more than the garbage.
const COMPACT_MIN_SLOTS: usize = 1 << 12;

/// Detached-slot fraction above which a refine step compacts the arena
/// before republishing: incremental emission leaves garbage only when a
/// synthetic frontier (or nested re-truncation) replaced subtrees, so a
/// quarter of the arena dead means real waste, not steady-state churn.
const COMPACT_DETACHED_FRACTION: f64 = 0.25;

/// One catalog slot: the current version of a named document, plus —
/// when that version came out of a budget-truncated integration — the
/// refinable state (persisted enumeration frontiers and retained
/// sources) belonging to *exactly* that version. Every publish replaces
/// both together, so a frontier can never be applied to a document it
/// does not point into.
struct Slot {
    name: Arc<str>,
    version: u64,
    doc: Arc<PxDoc>,
    refine: Option<Arc<RefineState>>,
    /// `Some(version)` while the slot's content is exactly what
    /// [`Engine::open`] recovered from the durable store (tagged with
    /// the recovered version); cleared by the first in-process publish.
    /// Surfaced through [`RefineStateInfo::recovered_at`] so callers —
    /// and `imprecise refine --stats` — can tell resumed state from
    /// state produced in this process.
    recovered_at: Option<u64>,
}

/// The versioned document catalog behind the engine's `RwLock`.
///
/// The lock is held only to look up or swap `Arc`s — never across
/// parsing, integration, query evaluation or conditioning.
struct Catalog {
    /// Process-unique identity of the owning engine, stamped into every
    /// issued [`DocHandle`] so a handle from one engine can never
    /// resolve to an unrelated document on another (slot ids alone are
    /// only unique per engine).
    engine_id: u64,
    slots: BTreeMap<u64, Slot>,
    by_name: BTreeMap<Arc<str>, u64>,
    next_id: u64,
}

impl Catalog {
    fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(0);
        Catalog {
            engine_id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            slots: BTreeMap::new(),
            by_name: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Publish `doc` under `name`: into the existing slot (bumping its
    /// version) if the name is taken, else into a fresh slot. `refine`
    /// is the refinable state belonging to this version (`None` for
    /// exact documents); whatever state the previous version carried is
    /// replaced with it.
    fn publish(
        &mut self,
        name: &str,
        doc: Arc<PxDoc>,
        refine: Option<Arc<RefineState>>,
    ) -> DocHandle {
        #[cfg(feature = "strict-invariants")]
        imprecise_integrate::verify::shadow_check_state(&doc, refine.as_deref(), "publish");
        if let Some(&id) = self.by_name.get(name) {
            // The two indices are updated together, so the slot is
            // always present; if they ever diverged we self-heal by
            // minting a fresh slot below (re-pointing the name at it)
            // instead of panicking mid-publish.
            if let Some(slot) = self.slots.get_mut(&id) {
                slot.version += 1;
                slot.doc = doc;
                slot.refine = refine;
                slot.recovered_at = None;
                return DocHandle {
                    engine_id: self.engine_id,
                    id,
                    name: Arc::clone(&slot.name),
                };
            }
        }
        let name: Arc<str> = Arc::from(name);
        let id = self.next_id;
        self.next_id += 1;
        self.slots.insert(
            id,
            Slot {
                name: Arc::clone(&name),
                version: 1,
                doc,
                refine,
                recovered_at: None,
            },
        );
        self.by_name.insert(Arc::clone(&name), id);
        DocHandle {
            engine_id: self.engine_id,
            id,
            name,
        }
    }

    /// The version number the *next* publish into `name` will carry —
    /// what a durable append must record so the store and the catalog
    /// agree after the in-memory mutation that follows it.
    fn next_version(&self, name: &str) -> u64 {
        self.by_name
            .get(name)
            .and_then(|id| self.slots.get(id))
            .map_or(1, |slot| slot.version + 1)
    }

    /// Install a slot recovered from the durable store: exactly the
    /// persisted version number (not a fresh `1`), marked
    /// `recovered_at` so provenance survives until the first in-process
    /// publish. Recovery runs before the engine is handed out, so the
    /// name cannot already be taken.
    fn restore_slot(
        &mut self,
        name: &str,
        version: u64,
        doc: Arc<PxDoc>,
        refine: Option<Arc<RefineState>>,
    ) {
        let name: Arc<str> = Arc::from(name);
        let id = self.next_id;
        self.next_id += 1;
        self.slots.insert(
            id,
            Slot {
                name: Arc::clone(&name),
                version,
                doc,
                refine,
                recovered_at: Some(version),
            },
        );
        self.by_name.insert(name, id);
    }

    /// The slot a foreign-checked handle points at, if it is ours.
    fn slot_of(&self, handle: &DocHandle) -> Option<&Slot> {
        (handle.engine_id == self.engine_id)
            .then(|| self.slots.get(&handle.id))
            .flatten()
    }

    /// Write-side counterpart of [`slot_of`](Self::slot_of): the
    /// mutable slot of a handle issued by this engine, or the
    /// `NoSuchDocument` error every write path reports for foreign or
    /// unknown handles.
    fn slot_mut_of(&mut self, handle: &DocHandle) -> Result<&mut Slot, ImpreciseError> {
        (handle.engine_id == self.engine_id)
            .then(|| self.slots.get_mut(&handle.id))
            .flatten()
            .ok_or_else(|| ImpreciseError::NoSuchDocument(handle.name.to_string()))
    }
}

/// Session-wide configuration plus the document catalog.
struct Shared {
    oracle: Arc<Oracle>,
    schema: Option<Schema>,
    options: IntegrationOptions,
    feedback_world_cap: usize,
    catalog: RwLock<Catalog>,
    /// The durable tier, when the engine was built
    /// [`with_store`](EngineBuilder::with_store). Lock order is
    /// catalog → store, always: every publish appends to the store
    /// *while holding the catalog write lock*, immediately before the
    /// in-memory mutation, so the segment's version order is exactly
    /// the catalog's publish order.
    store: Option<Mutex<Store>>,
}

impl Shared {
    /// Catalog read lock. A poisoned lock is recovered rather than
    /// propagated: every publish swaps fully-built `Arc`s in as its
    /// last step, so a writer that panicked mid-call cannot leave a
    /// torn slot behind — the data is consistent even when the flag
    /// says a panic happened under the lock.
    fn catalog_read(&self) -> std::sync::RwLockReadGuard<'_, Catalog> {
        self.catalog
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Catalog write lock; see [`catalog_read`](Self::catalog_read) for
    /// why poisoning is recovered.
    fn catalog_write(&self) -> std::sync::RwLockWriteGuard<'_, Catalog> {
        self.catalog
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Builds an [`Engine`] from session-wide configuration.
///
/// The configuration ("configure the system with a few simple knowledge
/// rules", §VII) is frozen into the engine at [`build`](Self::build)
/// time; this is what makes the engine's read path lock-free over
/// config.
pub struct EngineBuilder {
    oracle: Arc<Oracle>,
    schema: Option<Schema>,
    options: IntegrationOptions,
    feedback_world_cap: usize,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            oracle: Arc::new(Oracle::uninformed()),
            schema: None,
            options: IntegrationOptions::default(),
            feedback_world_cap: 100_000,
        }
    }
}

impl fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("oracle", &self.oracle)
            .field("schema_declared", &self.schema.is_some())
            .field("feedback_world_cap", &self.feedback_world_cap)
            .finish_non_exhaustive()
    }
}

impl EngineBuilder {
    /// A builder with an uninformed Oracle (no rules, uniform prior),
    /// no schema and default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use this Oracle for integration decisions.
    pub fn oracle(self, oracle: Oracle) -> Self {
        self.oracle_shared(Arc::new(oracle))
    }

    /// Use an Oracle shared with other engines (rule sets hold no
    /// per-engine state, so one Oracle can serve many engines).
    pub fn oracle_shared(mut self, oracle: Arc<Oracle>) -> Self {
        self.oracle = oracle;
        self
    }

    /// Configure the Oracle from a rule file (see
    /// [`imprecise_oracle::dsl`] for the language).
    pub fn rules(mut self, text: &str) -> Result<Self, ImpreciseError> {
        self.oracle = Arc::new(imprecise_oracle::parse_rules(text)?);
        Ok(self)
    }

    /// Use this already-parsed DTD-lite schema.
    pub fn schema(mut self, schema: Schema) -> Self {
        self.schema = Some(schema);
        self
    }

    /// Set the DTD-lite schema from its textual declarations.
    pub fn schema_text(mut self, dtd: &str) -> Result<Self, ImpreciseError> {
        self.schema = Some(Schema::parse(dtd)?);
        Ok(self)
    }

    /// Adjust integration options.
    pub fn options(mut self, options: IntegrationOptions) -> Self {
        self.options = options;
        self
    }

    /// Cap used by feedback's world-rebuild fallback (default 100 000).
    pub fn feedback_world_cap(mut self, cap: usize) -> Self {
        self.feedback_world_cap = cap;
        self
    }

    /// Attach a durable store at `path` (created if absent): every
    /// publish — integrate, each refine installment, feedback,
    /// compaction — is appended to the segment file *before* it becomes
    /// visible in the in-memory catalog, and opening the same path
    /// later recovers the catalog to the last published versions,
    /// including open refinement state that resumes bit-for-bit in the
    /// new process.
    ///
    /// Opening a store can fail, so this returns a
    /// [`DurableEngineBuilder`] whose terminal operation is the
    /// fallible [`open`](DurableEngineBuilder::open) — the type makes
    /// "durable engines are opened, not built" a compile-time fact
    /// rather than a runtime panic.
    pub fn with_store(self, path: impl AsRef<Path>) -> DurableEngineBuilder {
        DurableEngineBuilder {
            inner: self,
            path: path.as_ref().to_path_buf(),
            durability: Durability::Always,
        }
    }

    /// Freeze the configuration into an [`Engine`]. Infallible: without
    /// a store there is nothing that can go wrong at construction.
    pub fn build(self) -> Engine {
        self.into_engine(None)
    }

    fn into_engine(self, store: Option<Store>) -> Engine {
        Engine {
            shared: Arc::new(Shared {
                oracle: self.oracle,
                schema: self.schema,
                options: self.options,
                feedback_world_cap: self.feedback_world_cap,
                catalog: RwLock::new(Catalog::new()),
                store: store.map(Mutex::new),
            }),
        }
    }
}

/// An [`EngineBuilder`] with a durable store attached; made by
/// [`EngineBuilder::with_store`].
#[derive(Debug)]
pub struct DurableEngineBuilder {
    inner: EngineBuilder,
    path: PathBuf,
    durability: Durability,
}

impl DurableEngineBuilder {
    /// When store appends reach stable storage (default
    /// [`Durability::Always`]: sync on every publish;
    /// [`Durability::OnClose`] defers to drop).
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Open (or create) the durable store, recover the catalog from it
    /// — names restored in sorted order, open refinement state
    /// re-attached so [`Engine::refine`] resumes exactly where the
    /// previous process stopped — and freeze the configuration into an
    /// [`Engine`]. Store failures surface as
    /// [`ImpreciseError::Store`].
    pub fn open(self) -> Result<Engine, ImpreciseError> {
        let store = Store::open(&self.path, self.durability)?;
        let engine = self.inner.into_engine(Some(store));
        engine.recover_catalog()?;
        Ok(engine)
    }
}

/// A thread-safe probabilistic XML database: immutable configuration, a
/// versioned catalog of [`Arc`]-shared documents, and integrate / query
/// / feedback operations that all take `&self`.
///
/// `Engine` is `Send + Sync` and cheap to clone (clones share the same
/// catalog), so one instance can serve any number of reader and writer
/// threads; see the [module docs](self) for the concurrency model and a
/// worked example.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<Shared>,
}

impl Default for Engine {
    fn default() -> Self {
        EngineBuilder::default().build()
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("documents", &self.document_names())
            .field("oracle", &self.shared.oracle)
            .field("schema_declared", &self.shared.schema.is_some())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Start building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// An engine with an uninformed Oracle and default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open an engine backed by the durable store at `path` (created if
    /// absent), recovering the catalog to the last published versions —
    /// including open refinement state, which
    /// [`refine`](Self::refine) then resumes exactly where the previous
    /// process stopped. Engine *configuration* (Oracle, schema,
    /// options) is not persisted: this convenience opens with defaults,
    /// so sessions that configure any of it should use
    /// `Engine::builder()…with_store(path).open()` with the same
    /// configuration every time.
    pub fn open(path: impl AsRef<Path>) -> Result<Engine, ImpreciseError> {
        Engine::builder().with_store(path).open()
    }

    /// Populate the catalog from the attached store (no-op without
    /// one). Runs before the engine is handed to the caller; names are
    /// restored in sorted order, so slot ids are deterministic across
    /// recoveries.
    fn recover_catalog(&self) -> Result<(), ImpreciseError> {
        let Some(store) = &self.shared.store else {
            return Ok(());
        };
        let mut store = store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let names: Vec<String> = store.names().map(str::to_string).collect();
        let mut catalog = self.shared.catalog_write();
        for name in names {
            if let Some(rec) = store.load_publish(&name)? {
                catalog.restore_slot(
                    &name,
                    rec.version,
                    Arc::new(rec.doc),
                    rec.refine.map(Arc::new),
                );
            }
        }
        Ok(())
    }

    /// Durably append one publish *before* the in-memory catalog
    /// mutation that makes it visible (no-op without a store). Called
    /// with the catalog write lock held — see [`Shared::store`] for the
    /// lock order — so an `Err` return means the catalog was **not**
    /// mutated: the slot still shows the previous version, and the
    /// at-most-one stray record a failed append may have left behind is
    /// superseded by the next successful publish of the same version
    /// number (recovery keeps the last record per name).
    fn persist(
        &self,
        name: &str,
        version: u64,
        doc: &PxDoc,
        refine: Option<&RefineState>,
    ) -> Result<(), ImpreciseError> {
        if let Some(store) = &self.shared.store {
            let mut store = store
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            store.append_publish(name, version, doc, refine)?;
        }
        Ok(())
    }

    /// The configured Oracle.
    pub fn oracle(&self) -> &Oracle {
        &self.shared.oracle
    }

    /// The configured schema, if any.
    pub fn schema(&self) -> Option<&Schema> {
        self.shared.schema.as_ref()
    }

    /// The configured integration options.
    pub fn options(&self) -> &IntegrationOptions {
        &self.shared.options
    }

    /// Names of all stored documents, sorted.
    pub fn document_names(&self) -> Vec<String> {
        let catalog = self.shared.catalog_read();
        catalog.by_name.keys().map(|n| n.to_string()).collect()
    }

    /// The handle of the document stored under `name`, if any.
    pub fn handle(&self, name: &str) -> Option<DocHandle> {
        let catalog = self.shared.catalog_read();
        let &id = catalog.by_name.get(name)?;
        let slot = &catalog.slots[&id];
        Some(DocHandle {
            engine_id: catalog.engine_id,
            id,
            name: Arc::clone(&slot.name),
        })
    }

    /// Parse an XML document (plain, or annotated probabilistic XML
    /// using `px:prob`/`px:poss` markers) and publish it under `name`.
    /// Re-using a name publishes a new version into the same slot.
    pub fn load_xml(&self, name: &str, text: &str) -> Result<DocHandle, ImpreciseError> {
        let doc = parse(text)?;
        let px = parse_annotated(&doc)?;
        self.publish_arc(name, Arc::new(px))
    }

    /// Publish an already-built probabilistic document under `name`.
    /// Re-using a name publishes a new version into the same slot.
    ///
    /// With a durable store attached the append happens before the
    /// document becomes visible, and a failed append surfaces as
    /// [`ImpreciseError::Store`]; store-less engines cannot fail here.
    pub fn insert(&self, name: &str, doc: PxDoc) -> Result<DocHandle, ImpreciseError> {
        self.insert_arc(name, Arc::new(doc))
    }

    /// Publish an already-shared probabilistic document under `name`
    /// without copying it (e.g. one taken from another engine's
    /// [`DocSnapshot::doc_arc`]). Fallible like
    /// [`insert`](Self::insert).
    pub fn insert_arc(&self, name: &str, doc: Arc<PxDoc>) -> Result<DocHandle, ImpreciseError> {
        self.publish_arc(name, doc)
    }

    /// Durable-then-visible publish of a source document: append to the
    /// store (when attached) under the catalog write lock, then install
    /// in the in-memory catalog.
    fn publish_arc(&self, name: &str, doc: Arc<PxDoc>) -> Result<DocHandle, ImpreciseError> {
        let mut catalog = self.shared.catalog_write();
        self.persist(name, catalog.next_version(name), &doc, None)?;
        Ok(catalog.publish(name, doc, None))
    }

    /// Pin the current version of a document for reading.
    pub fn snapshot(&self, handle: &DocHandle) -> Result<DocSnapshot, ImpreciseError> {
        let catalog = self.shared.catalog_read();
        let slot = catalog
            .slot_of(handle)
            .ok_or_else(|| ImpreciseError::NoSuchDocument(handle.name.to_string()))?;
        Ok(DocSnapshot {
            handle: handle.clone(),
            version: slot.version,
            doc: Arc::clone(&slot.doc),
        })
    }

    /// Integrate documents `a` and `b` and publish the probabilistic
    /// result under `out`, returning its handle and the integration
    /// statistics. Runs on snapshots of `a` and `b`: the catalog lock is
    /// not held during the integration itself.
    ///
    /// If the configured budget truncated components, the published
    /// version carries their persisted enumeration frontiers:
    /// [`refine`](Self::refine) can then spend more budget on exactly
    /// those components without re-integrating.
    ///
    /// When `out` republishes one of the *inputs* (incremental
    /// integration, e.g. `integrate(&merged, &late, "merged")`), the
    /// publish is a read-modify-write of that slot and gets the same
    /// lost-update protection as [`feedback`](Self::feedback): if
    /// another writer published into the input slot mid-integration,
    /// the integration is recomputed from the new version rather than
    /// silently discarding the other writer's update. Publishing into
    /// an *unrelated* existing name is plain replacement and needs no
    /// such check.
    pub fn integrate(
        &self,
        a: &DocHandle,
        b: &DocHandle,
        out: &str,
    ) -> Result<(DocHandle, IntegrationStats), ImpreciseError> {
        for _ in 0..OPTIMISTIC_ROUNDS {
            let da = self.snapshot(a)?;
            let db = self.snapshot(b)?;
            let result = self.integrate_docs(&da.doc_arc(), &db.doc_arc())?;
            let mut catalog = self.shared.catalog_write();
            let stale = catalog.by_name.get(out).is_some_and(|&out_id| {
                (out_id == a.id && catalog.slots[&a.id].version != da.version())
                    || (out_id == b.id && catalog.slots[&b.id].version != db.version())
            });
            if !stale {
                return self.publish_outcome(&mut catalog, out, result);
            }
            // An input we are republishing moved; retry on its new version.
        }
        // Contended slot: compute under the write lock so nothing can race.
        let mut catalog = self.shared.catalog_write();
        let slot = |h: &DocHandle| {
            catalog
                .slot_of(h)
                .map(|s| Arc::clone(&s.doc))
                .ok_or_else(|| ImpreciseError::NoSuchDocument(h.name.to_string()))
        };
        let (da, db) = (slot(a)?, slot(b)?);
        let result = self.integrate_docs(&da, &db)?;
        self.publish_outcome(&mut catalog, out, result)
    }

    /// Publish an integration outcome: the document and — for truncated
    /// runs — the refinable state, versioned together, durably appended
    /// to the store (when attached) before becoming visible.
    fn publish_outcome(
        &self,
        catalog: &mut Catalog,
        out: &str,
        mut outcome: IntegrationOutcome,
    ) -> Result<(DocHandle, IntegrationStats), ImpreciseError> {
        let state = outcome.detach_refine_state();
        let stats = outcome.stats;
        let doc = Arc::new(outcome.doc);
        self.persist(out, catalog.next_version(out), &doc, state.as_ref())?;
        let handle = catalog.publish(out, doc, state.map(Arc::new));
        Ok((handle, stats))
    }

    /// Integrate any number of source documents by left-fold
    /// (`((s₀ ⊕ s₁) ⊕ s₂) ⊕ …`) and publish the result under `out`,
    /// returning its handle plus the statistics of every pairwise step.
    /// This is the batch form of the paper's incremental integration
    /// loop; budgets ([`IntegrationOptions`]) apply per step, so an
    /// N-source fold degrades gracefully instead of exploding.
    ///
    /// Runs on one consistent set of snapshots taken together; like
    /// [`integrate`](Self::integrate), republishing one of the *inputs*
    /// gets lost-update protection (the fold is recomputed if that
    /// input moved mid-integration).
    pub fn integrate_many(
        &self,
        sources: &[DocHandle],
        out: &str,
    ) -> Result<(DocHandle, Vec<IntegrationStats>), ImpreciseError> {
        if sources.is_empty() {
            return Err(ImpreciseError::Integrate(IntegrateError::NoSources));
        }
        let shared = &self.shared;
        for _ in 0..OPTIMISTIC_ROUNDS {
            let snapshots: Vec<DocSnapshot> = sources
                .iter()
                .map(|h| self.snapshot(h))
                .collect::<Result<_, _>>()?;
            let docs: Vec<&PxDoc> = snapshots.iter().map(|s| s.doc()).collect();
            let result = integrate_many_px(
                &docs,
                &shared.oracle,
                shared.schema.as_ref(),
                &shared.options,
            )?;
            let mut catalog = shared.catalog_write();
            let stale = catalog.by_name.get(out).is_some_and(|&out_id| {
                sources
                    .iter()
                    .zip(&snapshots)
                    .any(|(h, s)| out_id == h.id && catalog.slots[&h.id].version != s.version())
            });
            if !stale {
                let (handle, _) = self.publish_outcome(&mut catalog, out, result.outcome)?;
                return Ok((handle, result.steps));
            }
            // An input we are republishing moved; retry on its new version.
        }
        // Contended slot: compute under the write lock so nothing can race.
        let mut catalog = shared.catalog_write();
        let docs: Vec<Arc<PxDoc>> = sources
            .iter()
            .map(|h| {
                catalog
                    .slot_of(h)
                    .map(|s| Arc::clone(&s.doc))
                    .ok_or_else(|| ImpreciseError::NoSuchDocument(h.name.to_string()))
            })
            .collect::<Result<_, _>>()?;
        let refs: Vec<&PxDoc> = docs.iter().map(Arc::as_ref).collect();
        let result = integrate_many_px(
            &refs,
            &shared.oracle,
            shared.schema.as_ref(),
            &shared.options,
        )?;
        let (handle, _) = self.publish_outcome(&mut catalog, out, result.outcome)?;
        Ok((handle, result.steps))
    }

    /// The *incremental* mode of [`integrate_many`](Self::integrate_many):
    /// publish a queryable version of `out` after **every** fold step
    /// instead of once at the end — the paper's pay-as-you-go loop, where
    /// readers work with partial folds while later sources arrive.
    ///
    /// The first source is published as version 1 of `out`; every further
    /// step folds the slot's *current* version with the next source and
    /// publishes the result. Because each step reads the current version
    /// under the same lost-update protection as
    /// [`integrate`](Self::integrate), a [`refine`](Self::refine) or
    /// [`feedback`](Self::feedback) applied between steps is folded in
    /// rather than overwritten. Each published version carries its own
    /// truncation frontiers, so partial folds are refinable too.
    pub fn integrate_many_incremental(
        &self,
        sources: &[DocHandle],
        out: &str,
    ) -> Result<(DocHandle, Vec<IntegrationStats>), ImpreciseError> {
        let (first, rest) = sources
            .split_first()
            .ok_or(ImpreciseError::Integrate(IntegrateError::NoSources))?;
        let seed = self.snapshot(first)?;
        seed.doc().validate().map_err(IntegrateError::from)?;
        let mut handle = self.publish_arc(out, seed.doc_arc())?;
        let mut steps = Vec::with_capacity(rest.len());
        for source in rest {
            let (next, stats) = self.integrate(&handle, source, out)?;
            handle = next;
            steps.push(stats);
        }
        Ok((handle, steps))
    }

    /// Spend an additional matching budget on the document's truncated
    /// components — largest discarded mass first — and publish the
    /// refined result as a new version of the same slot.
    ///
    /// This is the pay-as-you-go half of [`integrate`](Self::integrate):
    /// a budgeted integration keeps each truncated component's
    /// enumeration frontier next to the published version; `refine`
    /// resumes those frontiers, grafts the extended matching sets into
    /// the existing document, and re-publishes. Repeated calls converge
    /// to the exact integration (bit-identical to an unbudgeted run);
    /// each step's [`RefineStep`] reports the shrinking discarded mass.
    ///
    /// Returns an empty step when the document has nothing to refine
    /// (exact, foreign-produced, or finalized by feedback). Writers race
    /// safely: the same optimistic version-check-and-retry as
    /// [`feedback`](Self::feedback) protects against lost updates, and a
    /// refinement computed against a stale version is discarded and
    /// recomputed rather than published.
    pub fn refine(
        &self,
        handle: &DocHandle,
        options: &RefineOptions,
    ) -> Result<RefineStep, ImpreciseError> {
        let shared = &self.shared;
        for _ in 0..OPTIMISTIC_ROUNDS {
            let (version, doc, state) = {
                let catalog = shared.catalog_read();
                let slot = catalog
                    .slot_of(handle)
                    .ok_or_else(|| ImpreciseError::NoSuchDocument(handle.name.to_string()))?;
                (slot.version, Arc::clone(&slot.doc), slot.refine.clone())
            };
            let Some(state) = state else {
                return Ok(Self::nothing_to_refine());
            };
            let (refined_doc, next_state, step) = self.refine_version(&doc, &state, options)?;
            let mut catalog = shared.catalog_write();
            let slot = catalog.slot_mut_of(handle)?;
            if slot.version == version {
                let refined_doc = Arc::new(refined_doc);
                self.persist(&slot.name, version + 1, &refined_doc, next_state.as_ref())?;
                slot.version += 1;
                slot.doc = refined_doc;
                slot.refine = next_state.map(Arc::new);
                slot.recovered_at = None;
                return Ok(step);
            }
            // A writer raced us; retry against the published version.
        }
        // Contended slot: refine under the write lock so nothing races.
        let mut catalog = shared.catalog_write();
        let slot = catalog.slot_mut_of(handle)?;
        let Some(state) = slot.refine.clone() else {
            return Ok(Self::nothing_to_refine());
        };
        let doc = Arc::clone(&slot.doc);
        let (refined_doc, next_state, step) = self.refine_version(&doc, &state, options)?;
        let refined_doc = Arc::new(refined_doc);
        self.persist(
            &slot.name,
            slot.version + 1,
            &refined_doc,
            next_state.as_ref(),
        )?;
        slot.version += 1;
        slot.doc = refined_doc;
        slot.refine = next_state.map(Arc::new);
        slot.recovered_at = None;
        Ok(step)
    }

    /// The step `refine` reports for a version with no refinable state.
    fn nothing_to_refine() -> RefineStep {
        RefineStep {
            refined: Vec::new(),
            remaining: 0,
            max_discarded_mass: 0.0,
            emitted_nodes: 0,
            arena_live: 0,
            arena_total: 0,
            compacted: false,
            search: Default::default(),
        }
    }

    /// Refine one pinned (document, state) pair outside any lock,
    /// returning the refined document, the state belonging to it, and
    /// the step report. Shared by the optimistic rounds and the
    /// write-lock fallback so the two paths cannot drift apart.
    ///
    /// When detached garbage crosses the compaction thresholds, the
    /// arena is compacted — frontiers re-anchored — before the document
    /// is handed back for publication, so the published version never
    /// carries unbounded dead slots. Compaction rides inside the same
    /// publish (no extra version bump) and is reflected in the step's
    /// arena figures.
    fn refine_version(
        &self,
        doc: &Arc<PxDoc>,
        state: &Arc<RefineState>,
        options: &RefineOptions,
    ) -> Result<(PxDoc, Option<RefineState>, RefineStep), ImpreciseError> {
        let shared = &self.shared;
        let mut outcome = IntegrationOutcome::with_refine_state((**doc).clone(), (**state).clone());
        let mut step = outcome.refine(&shared.oracle, shared.schema.as_ref(), options)?;
        if step.arena_total >= COMPACT_MIN_SLOTS
            && (step.arena_total - step.arena_live) as f64
                >= COMPACT_DETACHED_FRACTION * step.arena_total as f64
        {
            outcome.compact_arena();
            let arena = outcome.doc.arena_stats();
            step.arena_live = arena.live;
            step.arena_total = arena.total;
            step.compacted = true;
        }
        let next_state = outcome.detach_refine_state();
        #[cfg(feature = "strict-invariants")]
        imprecise_integrate::verify::shadow_check_state(
            &outcome.doc,
            next_state.as_ref(),
            "engine refine",
        );
        Ok((outcome.doc, next_state, step))
    }

    /// The refinable state of the document's current version, if any:
    /// how many components are still truncated, how much mass the worst
    /// of them discarded, and whether the state was produced in this
    /// process or recovered from the durable store. `None` means the
    /// version is exact (or not refinable).
    pub fn refine_state(
        &self,
        handle: &DocHandle,
    ) -> Result<Option<RefineStateInfo>, ImpreciseError> {
        let catalog = self.shared.catalog_read();
        let slot = catalog
            .slot_of(handle)
            .ok_or_else(|| ImpreciseError::NoSuchDocument(handle.name.to_string()))?;
        Ok(slot.refine.as_ref().map(|s| RefineStateInfo {
            open_components: s.open_components(),
            max_discarded_mass: s.max_discarded_mass(),
            recovered_at: slot.recovered_at,
        }))
    }

    /// Run the deep invariant verifier against the current version of a
    /// document: arena representation ([`PxDoc::deep_check`]) plus — for
    /// refinable versions — every persisted frontier's anchor, canonical
    /// ordering, mass accounting, and component digest.
    ///
    /// This is the on-demand form of the `strict-invariants` feature,
    /// which runs the same checks automatically after every publish.
    /// Runs on a snapshot; the catalog lock is not held during the walk.
    pub fn check_invariants(&self, handle: &DocHandle) -> Result<(), ImpreciseError> {
        let (doc, state) = {
            let catalog = self.shared.catalog_read();
            let slot = catalog
                .slot_of(handle)
                .ok_or_else(|| ImpreciseError::NoSuchDocument(handle.name.to_string()))?;
            (Arc::clone(&slot.doc), slot.refine.clone())
        };
        match state {
            Some(state) => state.verify(&doc),
            None => doc.deep_check().map_err(InvariantViolation::from),
        }
        .map_err(ImpreciseError::from)
    }

    /// The configured integration of two pinned documents.
    fn integrate_docs(
        &self,
        a: &Arc<PxDoc>,
        b: &Arc<PxDoc>,
    ) -> Result<IntegrationOutcome, ImpreciseError> {
        let shared = &self.shared;
        Ok(integrate_px_shared(
            a,
            b,
            &shared.oracle,
            shared.schema.as_ref(),
            &shared.options,
        )?)
    }

    /// Parse and compile `text` into a [`PreparedQuery`] (owning its
    /// [`QueryPlan`]) usable against any document, from any thread,
    /// without re-parsing. The prepared query re-binds its plan per
    /// snapshot, caching the last run keyed by document version.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery, ImpreciseError> {
        PreparedQuery::parse(text)
    }

    /// One-shot convenience: snapshot `handle`, compile `query_text` and
    /// evaluate it. With `min_probability` set, the threshold is pushed
    /// down into plan execution (answers below it are pruned before
    /// their exact probability is computed). Prefer
    /// [`prepare`](Self::prepare) + [`PreparedQuery::run`] when the same
    /// query runs more than once.
    pub fn query(
        &self,
        handle: &DocHandle,
        query_text: &str,
        min_probability: Option<f64>,
    ) -> Result<RankedAnswers, ImpreciseError> {
        let snapshot = self.snapshot(handle)?;
        let query = self.prepare(query_text)?;
        match min_probability {
            None => query.run(&snapshot),
            Some(_) => Ok(query.stream(&snapshot, min_probability)?.into_ranked()),
        }
    }

    /// One-shot streaming: snapshot `handle`, compile `query_text` and
    /// return the lazy [`AnswerStream`] (threshold pushed down when
    /// set). The stream owns everything it needs — it stays valid
    /// however long the caller holds it, across any concurrent
    /// publishes.
    pub fn query_stream(
        &self,
        handle: &DocHandle,
        query_text: &str,
        min_probability: Option<f64>,
    ) -> Result<AnswerStream, ImpreciseError> {
        let snapshot = self.snapshot(handle)?;
        let query = self.prepare(query_text)?;
        query.stream(&snapshot, min_probability)
    }

    /// Evaluate a batch of prepared queries against one consistent
    /// snapshot of `handle`: every answer reflects the same document
    /// version even if writers publish mid-batch. With `min_probability`
    /// set, the threshold is pushed down into every plan execution.
    pub fn query_many(
        &self,
        handle: &DocHandle,
        queries: &[PreparedQuery],
        min_probability: Option<f64>,
    ) -> Result<Vec<RankedAnswers>, ImpreciseError> {
        let snapshot = self.snapshot(handle)?;
        queries
            .iter()
            .map(|q| match min_probability {
                None => q.run(&snapshot),
                Some(_) => Ok(q.stream(&snapshot, min_probability)?.into_ranked()),
            })
            .collect()
    }

    /// Apply user feedback: `value` is a correct/incorrect answer of
    /// `query` on the document. Publishes the conditioned document as a
    /// new version of the same slot; concurrent readers keep their
    /// snapshots. Lost updates are prevented by optimistic concurrency:
    /// if another writer published between our snapshot and our publish,
    /// the conditioning is recomputed against the new version — and
    /// after a few failed optimistic races, under the write lock, so a
    /// feedback call cannot be starved by sustained writer traffic.
    pub fn feedback(
        &self,
        handle: &DocHandle,
        query: &PreparedQuery,
        value: &str,
        correct: bool,
    ) -> Result<FeedbackReport, ImpreciseError> {
        let condition = |doc: &PxDoc| {
            let result = apply_feedback(
                doc,
                query.ast(),
                value,
                correct,
                self.shared.feedback_world_cap,
            );
            #[cfg(feature = "strict-invariants")]
            if let Ok((conditioned, _)) = &result {
                imprecise_integrate::verify::shadow_check_state(conditioned, None, "feedback");
            }
            result
        };
        for _ in 0..OPTIMISTIC_ROUNDS {
            let snapshot = self.snapshot(handle)?;
            let (conditioned, report) = condition(snapshot.doc())?;
            let mut catalog = self.shared.catalog_write();
            let slot = catalog.slot_mut_of(handle)?;
            if slot.version == snapshot.version() {
                let conditioned = Arc::new(conditioned);
                self.persist(&slot.name, slot.version + 1, &conditioned, None)?;
                slot.version += 1;
                slot.doc = conditioned;
                // Conditioning rebuilds the document: any persisted
                // integration frontiers point into the old arena and are
                // finalized here.
                slot.refine = None;
                slot.recovered_at = None;
                return Ok(report);
            }
            // A writer raced us; retry against the published version.
        }
        // Contended slot: condition under the write lock so nothing races.
        let mut catalog = self.shared.catalog_write();
        let slot = catalog.slot_mut_of(handle)?;
        let (conditioned, report) = condition(&slot.doc)?;
        let conditioned = Arc::new(conditioned);
        self.persist(&slot.name, slot.version + 1, &conditioned, None)?;
        slot.version += 1;
        slot.doc = conditioned;
        slot.refine = None;
        slot.recovered_at = None;
        Ok(report)
    }

    /// Serialize the current version of a document as annotated XML.
    pub fn export(&self, handle: &DocHandle) -> Result<String, ImpreciseError> {
        Ok(self.snapshot(handle)?.export())
    }

    /// Size/uncertainty statistics of the current version of a document.
    pub fn stats(&self, handle: &DocHandle) -> Result<DocStats, ImpreciseError> {
        Ok(self.snapshot(handle)?.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imprecise_oracle::presets::addressbook_oracle;

    fn john_engine() -> (Engine, DocHandle, DocHandle) {
        let engine = Engine::builder()
            .oracle(addressbook_oracle())
            .schema_text(
                "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
                 <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
            )
            .unwrap()
            .build();
        let a = engine
            .load_xml(
                "a",
                "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>",
            )
            .unwrap();
        let b = engine
            .load_xml(
                "b",
                "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>",
            )
            .unwrap();
        (engine, a, b)
    }

    #[test]
    fn full_cycle_reproduces_the_paper_numbers() {
        let (engine, a, b) = john_engine();
        let (merged, stats) = engine.integrate(&a, &b, "merged").unwrap();
        assert_eq!(stats.judged_possible, 1);
        let doc_stats = engine.stats(&merged).unwrap();
        assert_eq!(doc_stats.worlds, 3.0);
        assert!(!doc_stats.certain);
        let tel = engine.prepare("//person/tel").unwrap();
        let answers = tel.run(&engine.snapshot(&merged).unwrap()).unwrap();
        assert!((answers.probability_of("1111") - 0.75).abs() < 1e-9);
        let report = engine.feedback(&merged, &tel, "2222", false).unwrap();
        assert!(report.worlds_after < report.worlds_before);
        assert!(engine.stats(&merged).unwrap().certain);
    }

    #[test]
    fn snapshots_are_immune_to_later_publishes() {
        let (engine, a, b) = john_engine();
        let (merged, _) = engine.integrate(&a, &b, "merged").unwrap();
        let before = engine.snapshot(&merged).unwrap();
        let tel = engine.prepare("//person/tel").unwrap();
        engine.feedback(&merged, &tel, "2222", false).unwrap();
        // The held snapshot still shows the pre-feedback distribution…
        let answers = tel.run(&before).unwrap();
        assert!((answers.probability_of("2222") - 0.75).abs() < 1e-9);
        assert_eq!(before.stats().worlds, 3.0);
        // …while a fresh snapshot shows the conditioned one.
        let after = engine.snapshot(&merged).unwrap();
        assert!(after.version() > before.version());
        assert_eq!(after.stats().worlds, 1.0);
    }

    #[test]
    fn reusing_a_name_publishes_a_new_version_of_the_same_slot() {
        let (engine, a, b) = john_engine();
        let (merged, _) = engine.integrate(&a, &b, "merged").unwrap();
        let v1 = engine.snapshot(&merged).unwrap().version();
        let (merged2, _) = engine.integrate(&a, &b, "merged").unwrap();
        assert_eq!(merged, merged2);
        assert!(engine.snapshot(&merged).unwrap().version() > v1);
        assert_eq!(engine.document_names(), vec!["a", "b", "merged"]);
    }

    #[test]
    fn incremental_integration_republishes_input_slot() {
        let (engine, a, b) = john_engine();
        let (merged, _) = engine.integrate(&a, &b, "merged").unwrap();
        let v1 = engine.snapshot(&merged).unwrap().version();
        // Integrating the result with another source under its own name
        // is the read-modify-write case the version check guards.
        let (merged2, _) = engine.integrate(&merged, &a, "merged").unwrap();
        assert_eq!(merged, merged2);
        assert!(engine.snapshot(&merged).unwrap().version() > v1);
    }

    #[test]
    fn integrate_many_folds_n_sources() {
        let (engine, a, b) = john_engine();
        let c = engine
            .load_xml(
                "c",
                "<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>",
            )
            .unwrap();
        let d = engine
            .load_xml(
                "d",
                "<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>",
            )
            .unwrap();
        let (merged, steps) = engine
            .integrate_many(&[a.clone(), b, c, d], "merged")
            .unwrap();
        assert_eq!(steps.len(), 3);
        // Step 1 is the John/John fold; Mary arrives certain afterwards.
        assert_eq!(steps[0].judged_possible, 1);
        let names = engine.prepare("//person/nm").unwrap();
        let answers = names.run(&engine.snapshot(&merged).unwrap()).unwrap();
        assert!((answers.probability_of("Mary") - 1.0).abs() < 1e-9);
        assert!((answers.probability_of("John") - 1.0).abs() < 1e-9);
        // A single source publishes unchanged with no steps.
        let (solo, steps) = engine.integrate_many(&[a], "solo").unwrap();
        assert!(steps.is_empty());
        assert_eq!(engine.stats(&solo).unwrap().worlds, 1.0);
    }

    #[test]
    fn integrate_many_rejects_empty_and_foreign() {
        let (engine, a, _) = john_engine();
        assert!(matches!(
            engine.integrate_many(&[], "out"),
            Err(ImpreciseError::Integrate(
                imprecise_integrate::IntegrateError::NoSources
            ))
        ));
        let other = Engine::new();
        assert!(other.integrate_many(&[a], "out").is_err());
    }

    #[test]
    fn query_many_answers_against_one_version() {
        let (engine, a, b) = john_engine();
        let (merged, _) = engine.integrate(&a, &b, "merged").unwrap();
        let queries = [
            engine.prepare("//person/tel").unwrap(),
            engine.prepare("//person/nm").unwrap(),
        ];
        let answers = engine.query_many(&merged, &queries, None).unwrap();
        assert_eq!(answers.len(), 2);
        assert!((answers[0].probability_of("1111") - 0.75).abs() < 1e-9);
        assert!((answers[1].probability_of("John") - 1.0).abs() < 1e-9);
        // With a pushed-down threshold the sub-threshold numbers vanish
        // but surviving probabilities are untouched.
        let at_90 = engine.query_many(&merged, &queries, Some(0.9)).unwrap();
        assert!(at_90[0].is_empty());
        assert!((at_90[1].probability_of("John") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prepared_query_cache_tracks_document_versions() {
        let (engine, a, b) = john_engine();
        let (merged, _) = engine.integrate(&a, &b, "merged").unwrap();
        let tel = engine.prepare("//person/tel").unwrap();
        let before = engine.snapshot(&merged).unwrap();
        let first = tel.run(&before).unwrap();
        // Second run against the same version is served from the cache
        // (shared with clones) and must be identical.
        let second = tel.clone().run(&before).unwrap();
        assert_eq!(first, second);
        // Feedback publishes a new version: the cache must not leak the
        // old distribution into the new snapshot…
        engine.feedback(&merged, &tel, "2222", false).unwrap();
        let after = engine.snapshot(&merged).unwrap();
        assert!((tel.run(&after).unwrap().probability_of("1111") - 1.0).abs() < 1e-9);
        // …and the old snapshot still evaluates to the old distribution.
        assert!((tel.run(&before).unwrap().probability_of("1111") - 0.75).abs() < 1e-9);
    }

    #[test]
    fn prepared_query_cache_is_engine_scoped() {
        let (engine, a, b) = john_engine();
        let (merged, _) = engine.integrate(&a, &b, "merged").unwrap();
        let tel = engine.prepare("//person/tel").unwrap();
        assert!(
            (tel.run(&engine.snapshot(&merged).unwrap())
                .unwrap()
                .probability_of("1111")
                - 0.75)
                .abs()
                < 1e-9
        );
        // A different engine whose slot/version numbers collide must not
        // hit the cache entry.
        let other = Engine::new();
        let (o1, o2) = (
            other.load_xml("a", "<addressbook/>").unwrap(),
            other.load_xml("b", "<addressbook/>").unwrap(),
        );
        let _ = (o1, o2);
        let (om, _) = other
            .integrate(
                &other.handle("a").unwrap(),
                &other.handle("b").unwrap(),
                "merged",
            )
            .unwrap();
        let empty = tel.run(&other.snapshot(&om).unwrap()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn query_stream_pushes_threshold_down() {
        let (engine, a, b) = john_engine();
        let (merged, _) = engine.integrate(&a, &b, "merged").unwrap();
        let mut stream = engine
            .query_stream(&merged, "//person/tel", Some(0.5))
            .unwrap();
        let answers: Vec<_> = stream.by_ref().collect();
        assert_eq!(answers.len(), 2); // both tels sit at 0.75
        assert!(answers.iter().all(|ans| ans.probability >= 0.5));
        // The stream stays usable after the engine publishes new versions.
        let tel = engine.prepare("//person/tel").unwrap();
        engine.feedback(&merged, &tel, "2222", false).unwrap();
        assert_eq!(stream.next(), None);
        // run_at is run() filtered.
        let at = tel.run_at(&engine.snapshot(&merged).unwrap(), 0.9).unwrap();
        assert_eq!(at.len(), 1);
        assert!((at.probability_of("1111") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prepared_query_exposes_its_plan() {
        let engine = Engine::new();
        let q = engine.prepare("//person[nm=\"John\"]/tel").unwrap();
        assert_eq!(q.text(), "//person[nm=\"John\"]/tel");
        assert_eq!(q.plan().min_probability(), 0.0);
        let explain = q.explain();
        assert!(explain.contains("SubtreeScan(person)"), "{explain}");
        assert!(explain.contains("ChildScan(tel)"), "{explain}");
    }

    #[test]
    fn export_import_roundtrip() {
        let (engine, a, b) = john_engine();
        let (merged, _) = engine.integrate(&a, &b, "merged").unwrap();
        let text = engine.export(&merged).unwrap();
        let other = Engine::new();
        let copy = other.load_xml("copy", &text).unwrap();
        assert_eq!(other.stats(&copy).unwrap().worlds, 3.0);
    }

    #[test]
    fn foreign_handles_are_rejected() {
        let (_engine, a, _) = john_engine();
        let other = Engine::new();
        // Even when the other engine has a document whose slot id
        // collides with `a`'s, the foreign handle must not resolve.
        let o = other.load_xml("other", "<x/>").unwrap();
        assert!(matches!(
            other.snapshot(&a),
            Err(ImpreciseError::NoSuchDocument(_))
        ));
        assert!(other.query(&a, "//person", None).is_err());
        let tel = other.prepare("//person/tel").unwrap();
        assert!(other.feedback(&a, &tel, "1111", true).is_err());
        assert_ne!(a, o, "handles of different engines never compare equal");
    }

    #[test]
    fn bad_query_is_reported() {
        let (engine, a, _) = john_engine();
        assert!(matches!(
            engine.query(&a, "movie[", None),
            Err(ImpreciseError::QueryParse(_))
        ));
        assert!(matches!(
            engine.prepare("movie["),
            Err(ImpreciseError::QueryParse(_))
        ));
    }

    #[test]
    fn handles_carry_names() {
        let (engine, a, _) = john_engine();
        assert_eq!(a.name(), "a");
        assert_eq!(engine.handle("a"), Some(a));
        assert_eq!(engine.handle("ghost"), None);
    }

    /// An engine over the confusable movie workload (one n×n
    /// all-undecided component) with the given per-component budget,
    /// plus the two loaded sources.
    fn confusable_engine_n(n: usize, budget: usize) -> (Engine, DocHandle, DocHandle) {
        use imprecise_oracle::presets::{movie_oracle, MovieOracleConfig};
        let scenario = imprecise_datagen::scenarios::confusable(n);
        let engine = Engine::builder()
            .oracle(movie_oracle(MovieOracleConfig {
                title_rule: false,
                ..MovieOracleConfig::default()
            }))
            .schema(scenario.schema)
            .options(IntegrationOptions {
                max_matchings_per_component: budget,
                ..IntegrationOptions::default()
            })
            .build();
        let a = engine
            .load_xml("a", &imprecise_xmlkit::to_string(&scenario.mpeg7))
            .unwrap();
        let b = engine
            .load_xml("b", &imprecise_xmlkit::to_string(&scenario.imdb))
            .unwrap();
        (engine, a, b)
    }

    /// The 5×5 block (1546 matchings): big enough for staged refinement.
    fn confusable_engine(budget: usize) -> (Engine, DocHandle, DocHandle) {
        confusable_engine_n(5, budget)
    }

    #[test]
    fn refine_converges_to_the_one_shot_unbudgeted_result() {
        // Ground truth: the same workload integrated without a budget.
        let (exact_engine, xa, xb) = confusable_engine(usize::MAX);
        let (exact, exact_stats) = exact_engine.integrate(&xa, &xb, "db").unwrap();
        assert!(exact_stats.is_exact());
        assert_eq!(exact_engine.refine_state(&exact).unwrap(), None);
        let truth = exact_engine.snapshot(&exact).unwrap().doc().fingerprint();

        let (engine, a, b) = confusable_engine(8);
        let (db, stats) = engine.integrate(&a, &b, "db").unwrap();
        assert_eq!(stats.components_truncated(), 1);
        let info = engine.refine_state(&db).unwrap().expect("truncated");
        assert_eq!(info.open_components, 1);
        assert!(info.max_discarded_mass > 0.0);
        assert_eq!(info.recovered_at, None, "state was produced in-process");
        let before = engine.snapshot(&db).unwrap();
        assert_ne!(before.doc().fingerprint(), truth);

        // Staged refinement: every step publishes a new version with a
        // smaller worst-case discarded mass, until the doc is exact.
        let mut last_mass = info.max_discarded_mass;
        let mut rounds = 0;
        loop {
            let step = engine
                .refine(
                    &db,
                    &RefineOptions {
                        extra_matchings: 512,
                        ..RefineOptions::default()
                    },
                )
                .unwrap();
            assert!(step.max_discarded_mass <= last_mass + 1e-12);
            last_mass = step.max_discarded_mass;
            rounds += 1;
            if step.remaining == 0 {
                break;
            }
            assert!(rounds < 100, "failed to converge");
        }
        assert!(rounds >= 2, "1546 matchings at 8+512 per step need stages");
        assert_eq!(engine.refine_state(&db).unwrap(), None);
        let after = engine.snapshot(&db).unwrap();
        assert_eq!(after.doc().fingerprint(), truth, "refined ≡ one-shot");
        assert_eq!(after.version(), before.version() + rounds);
        // The pre-refinement snapshot still reads the budgeted version.
        assert_ne!(before.doc().fingerprint(), truth);
        // Refining an exact document is a cheap no-op.
        let noop = engine.refine(&db, &RefineOptions::default()).unwrap();
        assert!(noop.refined.is_empty());
        assert_eq!(engine.snapshot(&db).unwrap().version(), after.version());
    }

    #[test]
    fn refine_improves_query_answers_in_place() {
        // 3×3: 34 matchings — the query side stays cheap at exhaustive.
        let (engine, a, b) = confusable_engine_n(3, 4);
        let (db, _) = engine.integrate(&a, &b, "db").unwrap();
        let q = engine.prepare("//movie/title").unwrap();
        let before = q.run(&engine.snapshot(&db).unwrap()).unwrap();
        engine.refine(&db, &RefineOptions::to_exhaustive()).unwrap();
        let after = q.run(&engine.snapshot(&db).unwrap()).unwrap();
        // Same answers, different (exact) probabilities: the truncated
        // distribution over-weighted the kept heavy matchings.
        assert_eq!(before.len(), after.len());
        assert!(
            before
                .items
                .iter()
                .any(|ans| (ans.probability - after.probability_of(&ans.value)).abs() > 1e-9),
            "refinement must move at least one answer probability"
        );
    }

    #[test]
    fn feedback_finalizes_refinable_documents() {
        let (engine, a, b) = confusable_engine(8);
        let (db, _) = engine.integrate(&a, &b, "db").unwrap();
        assert!(engine.refine_state(&db).unwrap().is_some());
        let q = engine.prepare("//movie/title").unwrap();
        engine.feedback(&db, &q, "Jaws", true).unwrap();
        // Conditioning rebuilt the document: the frontiers are gone and
        // refine degrades to a no-op instead of corrupting the doc.
        assert_eq!(engine.refine_state(&db).unwrap(), None);
        let step = engine.refine(&db, &RefineOptions::default()).unwrap();
        assert!(step.refined.is_empty());
    }

    /// A unique scratch segment path under the system temp dir,
    /// removed on drop.
    struct ScratchStore(std::path::PathBuf);

    impl ScratchStore {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicUsize, Ordering};
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!(
                "imprecise-engine-{tag}-{}-{n}.seg",
                std::process::id()
            ));
            let _ = std::fs::remove_file(&path);
            ScratchStore(path)
        }
    }

    impl Drop for ScratchStore {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    /// The confusable-workload configuration of
    /// [`confusable_engine_n`], as a builder (so tests can bolt a
    /// durable store on before opening).
    fn confusable_builder(n: usize, budget: usize) -> EngineBuilder {
        use imprecise_oracle::presets::{movie_oracle, MovieOracleConfig};
        let scenario = imprecise_datagen::scenarios::confusable(n);
        Engine::builder()
            .oracle(movie_oracle(MovieOracleConfig {
                title_rule: false,
                ..MovieOracleConfig::default()
            }))
            .schema(scenario.schema)
            .options(IntegrationOptions {
                max_matchings_per_component: budget,
                ..IntegrationOptions::default()
            })
    }

    #[test]
    fn store_backed_engine_recovers_catalog_with_provenance() {
        let scratch = ScratchStore::new("recover");
        let scenario = imprecise_datagen::scenarios::confusable(5);
        let (truth, budgeted_fp) = {
            let store_engine = confusable_builder(5, 8)
                .with_store(&scratch.0)
                .open()
                .unwrap();
            let sa = store_engine
                .load_xml("a", &imprecise_xmlkit::to_string(&scenario.mpeg7))
                .unwrap();
            let sb = store_engine
                .load_xml("b", &imprecise_xmlkit::to_string(&scenario.imdb))
                .unwrap();
            let (db, stats) = store_engine.integrate(&sa, &sb, "db").unwrap();
            assert_eq!(stats.components_truncated(), 1);
            let budgeted_fp = store_engine.snapshot(&db).unwrap().doc().fingerprint();

            // Ground truth: the exhaustive result of the same workload.
            let (exact_engine, xa, xb) = confusable_engine(usize::MAX);
            let (exact, _) = exact_engine.integrate(&xa, &xb, "db").unwrap();
            (
                exact_engine.snapshot(&exact).unwrap().doc().fingerprint(),
                budgeted_fp,
            )
        }; // both engines dropped: "the process died"

        let recovered = confusable_builder(5, 8)
            .with_store(&scratch.0)
            .open()
            .unwrap();
        assert_eq!(recovered.document_names(), vec!["a", "b", "db"]);
        let db = recovered.handle("db").unwrap();
        let snapshot = recovered.snapshot(&db).unwrap();
        assert_eq!(snapshot.version(), 1);
        assert_eq!(snapshot.doc().fingerprint(), budgeted_fp);
        // Provenance: the state is flagged as recovered until the first
        // in-process publish replaces it.
        let info = recovered.refine_state(&db).unwrap().expect("still open");
        assert_eq!(info.recovered_at, Some(1));
        let step = recovered
            .refine(&db, &RefineOptions::to_exhaustive())
            .unwrap();
        assert_eq!(step.remaining, 0);
        assert_eq!(recovered.refine_state(&db).unwrap(), None);
        // Cross-process resume converges to the one-shot exhaustive doc.
        assert_eq!(
            recovered.snapshot(&db).unwrap().doc().fingerprint(),
            truth,
            "recovered refine state must resume bit-for-bit"
        );
    }

    #[test]
    fn store_survives_feedback_and_reopen() {
        let scratch = ScratchStore::new("feedback");
        {
            let engine = Engine::builder()
                .oracle(addressbook_oracle())
                .schema_text(
                    "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
                     <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
                )
                .unwrap()
                .with_store(&scratch.0)
                .open()
                .unwrap();
            let sa = engine
                .load_xml(
                    "a",
                    "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>",
                )
                .unwrap();
            let sb = engine
                .load_xml(
                    "b",
                    "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>",
                )
                .unwrap();
            let (merged, _) = engine.integrate(&sa, &sb, "merged").unwrap();
            let tel = engine.prepare("//person/tel").unwrap();
            engine.feedback(&merged, &tel, "2222", false).unwrap();
            assert!(engine.stats(&merged).unwrap().certain);
        }
        let engine = Engine::open(&scratch.0).unwrap();
        let merged = engine.handle("merged").unwrap();
        // v1 integrate + v2 feedback both reached the segment; the
        // reopened slot shows the conditioned version.
        assert_eq!(engine.snapshot(&merged).unwrap().version(), 2);
        assert!(engine.stats(&merged).unwrap().certain);
        let tel = engine.prepare("//person/tel").unwrap();
        let answers = tel.run(&engine.snapshot(&merged).unwrap()).unwrap();
        assert!((answers.probability_of("1111") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_fold_publishes_a_version_per_step() {
        let (engine, a, b) = john_engine();
        let c = engine
            .load_xml(
                "c",
                "<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>",
            )
            .unwrap();
        let (batch, batch_steps) = engine
            .integrate_many(&[a.clone(), b.clone(), c.clone()], "batch")
            .unwrap();
        let (inc, inc_steps) = engine
            .integrate_many_incremental(&[a, b, c], "inc")
            .unwrap();
        assert_eq!(batch_steps.len(), 2);
        assert_eq!(inc_steps.len(), 2);
        // The incremental slot went through versions 1 (seed), 2, 3…
        let snapshot = engine.snapshot(&inc).unwrap();
        assert_eq!(snapshot.version(), 3);
        assert_eq!(engine.snapshot(&batch).unwrap().version(), 1);
        // …and the final fold is the same document.
        assert_eq!(
            snapshot.doc().fingerprint(),
            engine.snapshot(&batch).unwrap().doc().fingerprint()
        );
        // Empty source lists are rejected like the batch mode.
        assert!(matches!(
            engine.integrate_many_incremental(&[], "out"),
            Err(ImpreciseError::Integrate(IntegrateError::NoSources))
        ));
    }
}
