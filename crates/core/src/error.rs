//! The crate-wide error type.
//!
//! Every fallible [`Engine`](crate::Engine) operation returns
//! [`ImpreciseError`]; the underlying layer errors are preserved and
//! reachable through [`std::error::Error::source`], so callers can both
//! print a self-contained message and walk the cause chain
//! programmatically.

use imprecise_feedback::FeedbackError;
use imprecise_integrate::{IntegrateError, InvariantViolation};
use imprecise_oracle::DslError;
use imprecise_query::{EvalError, QueryParseError};
use imprecise_store::StoreError;
use imprecise_xmlkit::XmlError;
use std::fmt;

/// Errors surfaced by the public `imprecise` API.
///
/// Marked `#[non_exhaustive]`: future releases may add variants (e.g. for
/// persistence or sharding) without a breaking change, so downstream
/// matches need a wildcard arm.
///
/// Refinement (`Engine::refine`) reports through the same surface:
/// invalid `RefineOptions` and re-emission failures arrive as
/// [`ImpreciseError::Integrate`] (wrapping
/// [`IntegrateError::InvalidOptions`] and friends), and refining a
/// foreign or unknown handle is [`ImpreciseError::NoSuchDocument`] like
/// every other document operation. A document with nothing to refine is
/// *not* an error — `refine` returns an empty step.
#[derive(Debug)]
#[non_exhaustive]
pub enum ImpreciseError {
    /// No document stored under this name, or the handle does not belong
    /// to this engine.
    NoSuchDocument(String),
    /// XML parsing or schema error.
    Xml(XmlError),
    /// Integration failed.
    Integrate(IntegrateError),
    /// Query text could not be parsed.
    QueryParse(QueryParseError),
    /// Query evaluation failed.
    Eval(EvalError),
    /// Feedback could not be applied.
    Feedback(FeedbackError),
    /// A rule file could not be parsed.
    Rules(DslError),
    /// A stored document (or its refinement state) failed the deep
    /// invariant verifier — see `Engine::check_invariants` and the
    /// `strict-invariants` feature.
    Invariant(InvariantViolation),
    /// The durable store could not be opened, read, or appended to —
    /// see `EngineBuilder::with_store` and `Engine::open`.
    Store(StoreError),
}

// Display deliberately embeds the wrapped error's message even though
// `source()` also exposes it: the CLI prints only `to_string()`, and
// the historical `SessionError` messages were self-contained, so
// keeping them so preserves user-facing output. Cause-chain walkers
// will see the message twice; that duplication is the accepted cost of
// not breaking every existing error string.
impl fmt::Display for ImpreciseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImpreciseError::NoSuchDocument(name) => write!(f, "no document named {name:?}"),
            ImpreciseError::Xml(e) => write!(f, "XML error: {e}"),
            ImpreciseError::Integrate(e) => write!(f, "integration error: {e}"),
            ImpreciseError::QueryParse(e) => write!(f, "{e}"),
            ImpreciseError::Eval(e) => write!(f, "evaluation error: {e}"),
            ImpreciseError::Feedback(e) => write!(f, "feedback error: {e}"),
            ImpreciseError::Rules(e) => write!(f, "{e}"),
            ImpreciseError::Invariant(e) => write!(f, "invariant violation: {e}"),
            ImpreciseError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for ImpreciseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImpreciseError::NoSuchDocument(_) => None,
            ImpreciseError::Xml(e) => Some(e),
            ImpreciseError::Integrate(e) => Some(e),
            ImpreciseError::QueryParse(e) => Some(e),
            ImpreciseError::Eval(e) => Some(e),
            ImpreciseError::Feedback(e) => Some(e),
            ImpreciseError::Rules(e) => Some(e),
            ImpreciseError::Invariant(e) => Some(e),
            ImpreciseError::Store(e) => Some(e),
        }
    }
}

impl From<XmlError> for ImpreciseError {
    fn from(e: XmlError) -> Self {
        ImpreciseError::Xml(e)
    }
}
impl From<IntegrateError> for ImpreciseError {
    fn from(e: IntegrateError) -> Self {
        ImpreciseError::Integrate(e)
    }
}
impl From<QueryParseError> for ImpreciseError {
    fn from(e: QueryParseError) -> Self {
        ImpreciseError::QueryParse(e)
    }
}
impl From<EvalError> for ImpreciseError {
    fn from(e: EvalError) -> Self {
        ImpreciseError::Eval(e)
    }
}
impl From<FeedbackError> for ImpreciseError {
    fn from(e: FeedbackError) -> Self {
        ImpreciseError::Feedback(e)
    }
}
impl From<DslError> for ImpreciseError {
    fn from(e: DslError) -> Self {
        ImpreciseError::Rules(e)
    }
}
impl From<InvariantViolation> for ImpreciseError {
    fn from(e: InvariantViolation) -> Self {
        ImpreciseError::Invariant(e)
    }
}
impl From<StoreError> for ImpreciseError {
    fn from(e: StoreError) -> Self {
        ImpreciseError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn source_chain_is_preserved() {
        let inner = imprecise_query::parse_query("movie[").unwrap_err();
        let inner_text = inner.to_string();
        let err = ImpreciseError::from(inner);
        let source = err.source().expect("wrapped cause is reachable");
        assert_eq!(source.to_string(), inner_text);
    }

    #[test]
    fn no_such_document_has_no_source() {
        let err = ImpreciseError::NoSuchDocument("ghost".into());
        assert!(err.source().is_none());
        assert!(err.to_string().contains("ghost"));
    }
}
