//! # imprecise — good-is-good-enough data integration
//!
//! A from-scratch Rust reproduction of **IMPrECISE** (A. de Keijzer &
//! M. van Keulen, *IMPrECISE: Good-is-good-enough data integration*,
//! ICDE 2008): a probabilistic XML database engine that integrates XML
//! sources *near-automatically* by keeping unresolvable matching decisions
//! as possibilities instead of forcing a human to resolve them up front.
//!
//! The original system was an XQuery module on MonetDB/XQuery; this
//! reproduction implements the whole stack natively:
//!
//! | Layer | Crate (re-exported as) |
//! |---|---|
//! | XML substrate: parser, DOM, DTD-lite, serializer | [`xml`] |
//! | Probabilistic XML tree, possible worlds, counting | [`pxml`] |
//! | String similarity & convention normalisation | [`sim`] |
//! | "The Oracle": knowledge rules + priors | [`oracle`] |
//! | Probabilistic integration engine | [`integrate`] |
//! | Query engine (XPath subset, exact ranking) | [`query`] |
//! | Answer-quality measures (precision/recall) | [`quality`] |
//! | User feedback (world conditioning) | [`feedback`] |
//! | Durable versioned store (crash-safe catalog persistence) | [`store`] |
//! | Synthetic IMDB/MPEG-7 corpora & experiment workloads | [`datagen`] |
//!
//! The [`Engine`] type ties the layers together in the shape of the
//! paper's demo — load sources, configure the Oracle, integrate, query,
//! give feedback — behind a thread-safe API: an [`EngineBuilder`] for
//! session-wide configuration, typed [`DocHandle`]s instead of bare
//! string names, `Arc`-shared versioned [`DocSnapshot`]s so any number
//! of readers can query while writers publish new versions, and
//! [`PreparedQuery`] handles that parse once and run many times.
//! (The deprecated single-threaded `Session` façade was removed after
//! its one release of grace; the README's migration table maps every
//! `Session` call onto its `Engine` equivalent.)
//!
//! ## Quickstart
//!
//! ```
//! use imprecise::Engine;
//! use imprecise::oracle::presets::addressbook_oracle;
//!
//! let engine = Engine::builder()
//!     .oracle(addressbook_oracle())
//!     .schema_text(
//!         "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
//!          <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
//!     )
//!     .unwrap()
//!     .build();
//! let a = engine
//!     .load_xml("a", "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>")
//!     .unwrap();
//! let b = engine
//!     .load_xml("b", "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>")
//!     .unwrap();
//! let (merged, stats) = engine.integrate(&a, &b, "merged").unwrap();
//! assert_eq!(stats.judged_possible, 1); // one undecided person pair
//! let tel = engine.prepare("//person/tel").unwrap(); // parse once
//! let answers = tel.run(&engine.snapshot(&merged).unwrap()).unwrap();
//! assert!((answers.probability_of("1111") - 0.75).abs() < 1e-9);
//! // The user confirms 1111 is John's number:
//! engine.feedback(&merged, &tel, "1111", true).unwrap();
//! let after = tel.run(&engine.snapshot(&merged).unwrap()).unwrap();
//! assert!((after.probability_of("1111") - 1.0).abs() < 1e-9);
//! ```

pub use imprecise_datagen as datagen;
pub use imprecise_feedback as feedback;
pub use imprecise_integrate as integrate;
pub use imprecise_oracle as oracle;
pub use imprecise_pxml as pxml;
pub use imprecise_quality as quality;
pub use imprecise_query as query;
pub use imprecise_sim as sim;
pub use imprecise_store as store;
pub use imprecise_xmlkit as xml;

pub mod engine;
pub mod error;

pub use engine::{
    DocHandle, DocSnapshot, DocStats, DurableEngineBuilder, Engine, EngineBuilder, PreparedQuery,
    RefineStateInfo,
};
pub use error::ImpreciseError;
pub use imprecise_store::{Durability, StoreError};
