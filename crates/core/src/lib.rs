//! # imprecise — good-is-good-enough data integration
//!
//! A from-scratch Rust reproduction of **IMPrECISE** (A. de Keijzer &
//! M. van Keulen, *IMPrECISE: Good-is-good-enough data integration*,
//! ICDE 2008): a probabilistic XML database engine that integrates XML
//! sources *near-automatically* by keeping unresolvable matching decisions
//! as possibilities instead of forcing a human to resolve them up front.
//!
//! The original system was an XQuery module on MonetDB/XQuery; this
//! reproduction implements the whole stack natively:
//!
//! | Layer | Crate (re-exported as) |
//! |---|---|
//! | XML substrate: parser, DOM, DTD-lite, serializer | [`xml`] |
//! | Probabilistic XML tree, possible worlds, counting | [`pxml`] |
//! | String similarity & convention normalisation | [`sim`] |
//! | "The Oracle": knowledge rules + priors | [`oracle`] |
//! | Probabilistic integration engine | [`integrate`] |
//! | Query engine (XPath subset, exact ranking) | [`query`] |
//! | Answer-quality measures (precision/recall) | [`quality`] |
//! | User feedback (world conditioning) | [`feedback`] |
//! | Synthetic IMDB/MPEG-7 corpora & experiment workloads | [`datagen`] |
//!
//! The [`Session`] type ties the layers together in the shape of the
//! paper's demo: load sources, configure the Oracle, integrate, query,
//! give feedback.
//!
//! ## Quickstart
//!
//! ```
//! use imprecise::Session;
//! use imprecise::oracle::presets::addressbook_oracle;
//!
//! let mut session = Session::new();
//! session.set_oracle(addressbook_oracle());
//! session
//!     .load_schema(
//!         "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
//!          <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
//!     )
//!     .unwrap();
//! session
//!     .load_xml("a", "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>")
//!     .unwrap();
//! session
//!     .load_xml("b", "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>")
//!     .unwrap();
//! let stats = session.integrate("a", "b", "merged").unwrap();
//! assert_eq!(stats.judged_possible, 1); // one undecided person pair
//! let answers = session.query("merged", "//person/tel").unwrap();
//! assert!((answers.probability_of("1111") - 0.75).abs() < 1e-9);
//! // The user confirms 1111 is John's number:
//! session.feedback("merged", "//person/tel", "1111", true).unwrap();
//! let after = session.query("merged", "//person/tel").unwrap();
//! assert!((after.probability_of("1111") - 1.0).abs() < 1e-9);
//! ```

pub use imprecise_datagen as datagen;
pub use imprecise_feedback as feedback;
pub use imprecise_integrate as integrate;
pub use imprecise_oracle as oracle;
pub use imprecise_pxml as pxml;
pub use imprecise_quality as quality;
pub use imprecise_query as query;
pub use imprecise_sim as sim;
pub use imprecise_xmlkit as xml;

mod session;

pub use session::{DocStats, Session, SessionError};
