//! The deprecated [`Session`] façade, kept for one release as a thin
//! shim over [`Engine`].
//!
//! `Session` was the original single-threaded surface: `&mut self`
//! methods, documents addressed by bare string names, and in-place
//! document replacement. The [`Engine`] API replaces it with a
//! `Send + Sync` handle: typed [`DocHandle`]s, `Arc`-shared
//! [`DocSnapshot`](crate::DocSnapshot)s and parse-once
//! [`PreparedQuery`](crate::PreparedQuery)s.
//!
//! ## Migration table
//!
//! | `Session` | `Engine` |
//! |---|---|
//! | `Session::new()` + `set_oracle` / `load_schema` / `set_options` | `Engine::builder().oracle(..).schema_text(..)?.options(..).build()` |
//! | `session.load_xml("a", text)?` | `let a = engine.load_xml("a", text)?` (returns a `DocHandle`) |
//! | `session.integrate("a", "b", "out")?` | `let (out, stats) = engine.integrate(&a, &b, "out")?` |
//! | `session.query("out", q)?` | `engine.prepare(q)?` once, then `prepared.run(&engine.snapshot(&out)?)?` |
//! | `session.feedback("out", q, v, ok)?` | `engine.feedback(&out, &prepared, v, ok)?` |
//! | `session.doc("out")?` | `engine.snapshot(&out)?` (an immutable pinned version) |
//! | `session.stats("out")?` / `session.export("out")?` | `engine.stats(&out)?` / `engine.export(&out)?` |
//! | `SessionError` | [`ImpreciseError`] (same variants, plus `Error::source` chaining) |
//!
//! The shim is behavior-compatible (same operations, same results, same
//! error messages), with three source-compatibility caveats:
//! [`Session::doc`] now returns `Arc<PxDoc>` instead of `&PxDoc`
//! (documents live behind the engine's lock),
//! [`Session::document_names`] returns `Vec<String>` instead of
//! `Vec<&str>`, and exhaustive matches on `SessionError` need a
//! wildcard arm because [`ImpreciseError`] is `#[non_exhaustive]`.

#![allow(deprecated)]

use crate::engine::{DocHandle, DocStats, Engine};
use crate::error::ImpreciseError;
use imprecise_feedback::FeedbackReport;
use imprecise_integrate::{IntegrationOptions, IntegrationStats};
use imprecise_oracle::Oracle;
use imprecise_pxml::PxDoc;
use imprecise_query::RankedAnswers;
use imprecise_xmlkit::Schema;
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by [`Session`] operations — now an alias of the
/// crate-wide [`ImpreciseError`], which carries the same variants plus a
/// [`std::error::Error::source`] chain.
#[deprecated(since = "0.2.0", note = "use `imprecise::ImpreciseError`")]
pub type SessionError = ImpreciseError;

/// An in-memory probabilistic XML database session (deprecated shim).
///
/// Every operation delegates to an internal [`Engine`]; see the
/// [module docs](self) for the migration table. The one semantic
/// difference from the pre-`Engine` implementation: configuration
/// setters called *after* documents are loaded republish the existing
/// documents into a freshly configured engine (documents themselves are
/// `Arc`-shared, so this is cheap).
#[deprecated(
    since = "0.2.0",
    note = "use `imprecise::Engine` (thread-safe, typed handles, snapshots, prepared queries)"
)]
pub struct Session {
    engine: Engine,
    oracle: Arc<Oracle>,
    schema: Option<Schema>,
    options: IntegrationOptions,
    /// Cap used by feedback's world-rebuild fallback.
    feedback_world_cap: usize,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("documents", &self.engine.document_names())
            .field("oracle", &self.oracle)
            .field("schema_declared", &self.schema.is_some())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// A session with an uninformed Oracle (no rules, uniform prior) and
    /// default options.
    pub fn new() -> Self {
        let oracle = Arc::new(Oracle::uninformed());
        let engine = Engine::builder().oracle_shared(Arc::clone(&oracle)).build();
        Session {
            engine,
            oracle,
            schema: None,
            options: IntegrationOptions::default(),
            feedback_world_cap: 100_000,
        }
    }

    /// Rebuild the engine with the current configuration, carrying the
    /// stored documents over by reference.
    fn reconfigure(&mut self) {
        let mut builder = Engine::builder()
            .oracle_shared(Arc::clone(&self.oracle))
            .options(self.options)
            .feedback_world_cap(self.feedback_world_cap);
        if let Some(schema) = &self.schema {
            builder = builder.schema(schema.clone());
        }
        let old = std::mem::replace(&mut self.engine, builder.build());
        for name in old.document_names() {
            let handle = old.handle(&name).expect("listed name resolves");
            let snapshot = old.snapshot(&handle).expect("listed doc snapshots");
            self.engine.insert_arc(&name, snapshot.doc_arc());
        }
    }

    /// The name-addressed handle, or the `NoSuchDocument` error.
    fn resolve(&self, name: &str) -> Result<DocHandle, ImpreciseError> {
        self.engine
            .handle(name)
            .ok_or_else(|| ImpreciseError::NoSuchDocument(name.to_string()))
    }

    /// Replace the Oracle.
    pub fn set_oracle(&mut self, oracle: Oracle) -> &mut Self {
        self.oracle = Arc::new(oracle);
        self.reconfigure();
        self
    }

    /// Configure the Oracle from a rule file (see
    /// [`imprecise_oracle::dsl`] for the language).
    pub fn load_rules(&mut self, text: &str) -> Result<&mut Self, SessionError> {
        self.oracle = Arc::new(imprecise_oracle::parse_rules(text).map_err(ImpreciseError::Rules)?);
        self.reconfigure();
        Ok(self)
    }

    /// Set the DTD-lite schema from its textual declarations.
    pub fn load_schema(&mut self, dtd: &str) -> Result<&mut Self, SessionError> {
        self.schema = Some(Schema::parse(dtd)?);
        self.reconfigure();
        Ok(self)
    }

    /// Set an already-parsed schema.
    pub fn set_schema(&mut self, schema: Schema) -> &mut Self {
        self.schema = Some(schema);
        self.reconfigure();
        self
    }

    /// Adjust integration options.
    pub fn set_options(&mut self, options: IntegrationOptions) -> &mut Self {
        self.options = options;
        self.reconfigure();
        self
    }

    /// Names of all stored documents.
    pub fn document_names(&self) -> Vec<String> {
        self.engine.document_names()
    }

    /// Load an XML document (plain, or annotated probabilistic XML using
    /// `px:prob`/`px:poss` markers) under `name`.
    pub fn load_xml(&mut self, name: &str, text: &str) -> Result<(), SessionError> {
        self.engine.load_xml(name, text).map(|_| ())
    }

    /// Store an already-built probabilistic document under `name`.
    pub fn store(&mut self, name: &str, doc: PxDoc) {
        self.engine.insert(name, doc);
    }

    /// A shared reference to the current version of a stored document.
    pub fn doc(&self, name: &str) -> Result<Arc<PxDoc>, SessionError> {
        Ok(self.engine.snapshot(&self.resolve(name)?)?.doc_arc())
    }

    /// Integrate documents `a` and `b` into a new document `out`,
    /// returning the integration statistics.
    pub fn integrate(
        &mut self,
        a: &str,
        b: &str,
        out: &str,
    ) -> Result<IntegrationStats, SessionError> {
        let ha = self.resolve(a)?;
        let hb = self.resolve(b)?;
        let (_, stats) = self.engine.integrate(&ha, &hb, out)?;
        Ok(stats)
    }

    /// Run a query against a stored document, returning ranked answers.
    pub fn query(&self, name: &str, query_text: &str) -> Result<RankedAnswers, SessionError> {
        self.engine.query(&self.resolve(name)?, query_text, None)
    }

    /// Apply user feedback: `value` is a correct/incorrect answer of
    /// `query_text` on document `name`. The document's conditioned
    /// version is published under the same name.
    pub fn feedback(
        &mut self,
        name: &str,
        query_text: &str,
        value: &str,
        correct: bool,
    ) -> Result<FeedbackReport, SessionError> {
        let query = self.engine.prepare(query_text)?;
        self.engine
            .feedback(&self.resolve(name)?, &query, value, correct)
    }

    /// Export a stored document as annotated XML text.
    pub fn export(&self, name: &str) -> Result<String, SessionError> {
        self.engine.export(&self.resolve(name)?)
    }

    /// Size/uncertainty statistics of a stored document.
    pub fn stats(&self, name: &str) -> Result<DocStats, SessionError> {
        self.engine.stats(&self.resolve(name)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imprecise_oracle::presets::addressbook_oracle;

    fn john_session() -> Session {
        let mut s = Session::new();
        s.set_oracle(addressbook_oracle());
        s.load_schema(
            "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
             <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
        )
        .unwrap();
        s.load_xml(
            "a",
            "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>",
        )
        .unwrap();
        s.load_xml(
            "b",
            "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>",
        )
        .unwrap();
        s
    }

    #[test]
    fn full_cycle() {
        let mut s = john_session();
        let stats = s.integrate("a", "b", "merged").unwrap();
        assert_eq!(stats.judged_possible, 1);
        let doc_stats = s.stats("merged").unwrap();
        assert_eq!(doc_stats.worlds, 3.0);
        assert!(!doc_stats.certain);
        let answers = s.query("merged", "//person/tel").unwrap();
        assert!((answers.probability_of("1111") - 0.75).abs() < 1e-9);
        let report = s.feedback("merged", "//person/tel", "2222", false).unwrap();
        assert!(report.worlds_after < report.worlds_before);
        assert!(s.stats("merged").unwrap().certain);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut s = john_session();
        s.integrate("a", "b", "merged").unwrap();
        let text = s.export("merged").unwrap();
        let mut s2 = Session::new();
        s2.load_xml("copy", &text).unwrap();
        assert_eq!(s2.stats("copy").unwrap().worlds, 3.0);
    }

    #[test]
    fn missing_documents_are_reported() {
        let mut s = Session::new();
        assert!(matches!(
            s.query("nope", "//a"),
            Err(SessionError::NoSuchDocument(_))
        ));
        assert!(s.integrate("nope", "nope2", "out").is_err());
        assert!(s.export("nope").is_err());
    }

    #[test]
    fn bad_query_is_reported() {
        let mut s = john_session();
        s.integrate("a", "b", "m").unwrap();
        assert!(matches!(
            s.query("m", "movie["),
            Err(SessionError::QueryParse(_))
        ));
    }

    #[test]
    fn document_names_listed() {
        let s = john_session();
        assert_eq!(s.document_names(), vec!["a", "b"]);
    }

    #[test]
    fn late_configuration_keeps_documents() {
        let mut s = john_session();
        s.integrate("a", "b", "merged").unwrap();
        // Reconfiguring after load republishes the stored documents.
        s.set_options(IntegrationOptions::default());
        assert_eq!(s.document_names(), vec!["a", "b", "merged"]);
        assert_eq!(s.stats("merged").unwrap().worlds, 3.0);
    }
}
