//! The [`Session`] façade: the reproduction's equivalent of the paper's
//! "XQuery module on an XML DBMS" surface — named documents, a configured
//! Oracle, and integrate / query / feedback operations.

use imprecise_feedback::{apply_feedback, FeedbackError, FeedbackReport};
use imprecise_integrate::{integrate_px, IntegrateError, IntegrationOptions, IntegrationStats};
use imprecise_oracle::Oracle;
use imprecise_pxml::{parse_annotated, to_annotated_xml, NodeBreakdown, PxDoc};
use imprecise_query::{eval_px, parse_query, EvalError, QueryParseError, RankedAnswers};
use imprecise_xmlkit::{parse, to_string, Schema, XmlError};
use std::collections::BTreeMap;
use std::fmt;

/// Errors surfaced by [`Session`] operations.
#[derive(Debug)]
pub enum SessionError {
    /// No document stored under this name.
    NoSuchDocument(String),
    /// XML parsing or schema error.
    Xml(XmlError),
    /// Integration failed.
    Integrate(IntegrateError),
    /// Query text could not be parsed.
    QueryParse(QueryParseError),
    /// Query evaluation failed.
    Eval(EvalError),
    /// Feedback could not be applied.
    Feedback(FeedbackError),
    /// A rule file could not be parsed.
    Rules(imprecise_oracle::DslError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::NoSuchDocument(name) => write!(f, "no document named {name:?}"),
            SessionError::Xml(e) => write!(f, "XML error: {e}"),
            SessionError::Integrate(e) => write!(f, "integration error: {e}"),
            SessionError::QueryParse(e) => write!(f, "{e}"),
            SessionError::Eval(e) => write!(f, "evaluation error: {e}"),
            SessionError::Feedback(e) => write!(f, "feedback error: {e}"),
            SessionError::Rules(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<XmlError> for SessionError {
    fn from(e: XmlError) -> Self {
        SessionError::Xml(e)
    }
}
impl From<IntegrateError> for SessionError {
    fn from(e: IntegrateError) -> Self {
        SessionError::Integrate(e)
    }
}
impl From<QueryParseError> for SessionError {
    fn from(e: QueryParseError) -> Self {
        SessionError::QueryParse(e)
    }
}
impl From<EvalError> for SessionError {
    fn from(e: EvalError) -> Self {
        SessionError::Eval(e)
    }
}
impl From<FeedbackError> for SessionError {
    fn from(e: FeedbackError) -> Self {
        SessionError::Feedback(e)
    }
}

/// Size/uncertainty statistics of one stored document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocStats {
    /// Node counts of the compact (factored) representation.
    pub breakdown: NodeBreakdown,
    /// Node count of the paper-equivalent unfactored representation.
    pub unfactored_nodes: f64,
    /// Number of possible worlds.
    pub worlds: f64,
    /// Expected size of a world.
    pub expected_world_size: f64,
    /// True when the document has a single world.
    pub certain: bool,
}

/// An in-memory probabilistic XML database session.
///
/// Documents are stored by name; integration reads two stored documents
/// and stores the probabilistic result under a new name. Queries and
/// feedback address stored documents. The Oracle, schema and integration
/// options are session-wide configuration ("configure the system with a
/// few simple knowledge rules", §VII).
pub struct Session {
    docs: BTreeMap<String, PxDoc>,
    oracle: Oracle,
    schema: Option<Schema>,
    options: IntegrationOptions,
    /// Cap used by feedback's world-rebuild fallback.
    feedback_world_cap: usize,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("documents", &self.document_names())
            .field("oracle", &self.oracle)
            .field("schema_declared", &self.schema.is_some())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// A session with an uninformed Oracle (no rules, uniform prior) and
    /// default options.
    pub fn new() -> Self {
        Session {
            docs: BTreeMap::new(),
            oracle: Oracle::uninformed(),
            schema: None,
            options: IntegrationOptions::default(),
            feedback_world_cap: 100_000,
        }
    }

    /// Replace the Oracle.
    pub fn set_oracle(&mut self, oracle: Oracle) -> &mut Self {
        self.oracle = oracle;
        self
    }

    /// Configure the Oracle from a rule file (see
    /// [`imprecise_oracle::dsl`] for the language).
    pub fn load_rules(&mut self, text: &str) -> Result<&mut Self, SessionError> {
        self.oracle = imprecise_oracle::parse_rules(text).map_err(SessionError::Rules)?;
        Ok(self)
    }

    /// Set the DTD-lite schema from its textual declarations.
    pub fn load_schema(&mut self, dtd: &str) -> Result<&mut Self, SessionError> {
        self.schema = Some(Schema::parse(dtd)?);
        Ok(self)
    }

    /// Set an already-parsed schema.
    pub fn set_schema(&mut self, schema: Schema) -> &mut Self {
        self.schema = Some(schema);
        self
    }

    /// Adjust integration options.
    pub fn set_options(&mut self, options: IntegrationOptions) -> &mut Self {
        self.options = options;
        self
    }

    /// Names of all stored documents.
    pub fn document_names(&self) -> Vec<&str> {
        self.docs.keys().map(String::as_str).collect()
    }

    /// Load an XML document (plain, or annotated probabilistic XML using
    /// `px:prob`/`px:poss` markers) under `name`.
    pub fn load_xml(&mut self, name: &str, text: &str) -> Result<(), SessionError> {
        let doc = parse(text)?;
        let px = parse_annotated(&doc)?;
        self.docs.insert(name.to_string(), px);
        Ok(())
    }

    /// Store an already-built probabilistic document under `name`.
    pub fn store(&mut self, name: &str, doc: PxDoc) {
        self.docs.insert(name.to_string(), doc);
    }

    /// Borrow a stored document.
    pub fn doc(&self, name: &str) -> Result<&PxDoc, SessionError> {
        self.docs
            .get(name)
            .ok_or_else(|| SessionError::NoSuchDocument(name.to_string()))
    }

    /// Integrate documents `a` and `b` into a new document `out`,
    /// returning the integration statistics.
    pub fn integrate(
        &mut self,
        a: &str,
        b: &str,
        out: &str,
    ) -> Result<IntegrationStats, SessionError> {
        let da = self.doc(a)?;
        let db = self.doc(b)?;
        let result = integrate_px(da, db, &self.oracle, self.schema.as_ref(), &self.options)?;
        self.docs.insert(out.to_string(), result.doc);
        Ok(result.stats)
    }

    /// Run a query against a stored document, returning ranked answers.
    pub fn query(&self, name: &str, query_text: &str) -> Result<RankedAnswers, SessionError> {
        let doc = self.doc(name)?;
        let query = parse_query(query_text)?;
        Ok(eval_px(doc, &query)?)
    }

    /// Apply user feedback: `value` is a correct/incorrect answer of
    /// `query_text` on document `name`. The document is replaced by its
    /// conditioned version in place.
    pub fn feedback(
        &mut self,
        name: &str,
        query_text: &str,
        value: &str,
        correct: bool,
    ) -> Result<FeedbackReport, SessionError> {
        let query = parse_query(query_text)?;
        let doc = self.doc(name)?;
        let (conditioned, report) =
            apply_feedback(doc, &query, value, correct, self.feedback_world_cap)?;
        self.docs.insert(name.to_string(), conditioned);
        Ok(report)
    }

    /// Export a stored document as annotated XML text.
    pub fn export(&self, name: &str) -> Result<String, SessionError> {
        let doc = self.doc(name)?;
        Ok(to_string(&to_annotated_xml(doc)))
    }

    /// Size/uncertainty statistics of a stored document.
    pub fn stats(&self, name: &str) -> Result<DocStats, SessionError> {
        let doc = self.doc(name)?;
        Ok(DocStats {
            breakdown: doc.node_breakdown(),
            unfactored_nodes: doc.unfactored_node_count(),
            worlds: doc.world_count_f64(),
            expected_world_size: doc.expected_world_size(),
            certain: doc.is_certain(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imprecise_oracle::presets::addressbook_oracle;

    fn john_session() -> Session {
        let mut s = Session::new();
        s.set_oracle(addressbook_oracle());
        s.load_schema(
            "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
             <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
        )
        .unwrap();
        s.load_xml(
            "a",
            "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>",
        )
        .unwrap();
        s.load_xml(
            "b",
            "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>",
        )
        .unwrap();
        s
    }

    #[test]
    fn full_cycle() {
        let mut s = john_session();
        let stats = s.integrate("a", "b", "merged").unwrap();
        assert_eq!(stats.judged_possible, 1);
        let doc_stats = s.stats("merged").unwrap();
        assert_eq!(doc_stats.worlds, 3.0);
        assert!(!doc_stats.certain);
        let answers = s.query("merged", "//person/tel").unwrap();
        assert!((answers.probability_of("1111") - 0.75).abs() < 1e-9);
        let report = s.feedback("merged", "//person/tel", "2222", false).unwrap();
        assert!(report.worlds_after < report.worlds_before);
        assert!(s.stats("merged").unwrap().certain);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut s = john_session();
        s.integrate("a", "b", "merged").unwrap();
        let text = s.export("merged").unwrap();
        let mut s2 = Session::new();
        s2.load_xml("copy", &text).unwrap();
        assert_eq!(s2.stats("copy").unwrap().worlds, 3.0);
    }

    #[test]
    fn missing_documents_are_reported() {
        let mut s = Session::new();
        assert!(matches!(
            s.query("nope", "//a"),
            Err(SessionError::NoSuchDocument(_))
        ));
        assert!(s.integrate("nope", "nope2", "out").is_err());
        assert!(s.export("nope").is_err());
    }

    #[test]
    fn bad_query_is_reported() {
        let mut s = john_session();
        s.integrate("a", "b", "m").unwrap();
        assert!(matches!(
            s.query("m", "movie["),
            Err(SessionError::QueryParse(_))
        ));
    }

    #[test]
    fn document_names_listed() {
        let s = john_session();
        assert_eq!(s.document_names(), vec!["a", "b"]);
    }
}
