//! Address-book sources (the paper's Fig. 2 scenario) and larger random
//! address books for stress testing.

use imprecise_xmlkit::{Schema, XmlDoc};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One address-book entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Person {
    /// Real-world identity (ground truth for overlap).
    pub rwo: u64,
    /// Name.
    pub name: String,
    /// Phone number, if known to the source.
    pub tel: Option<String>,
}

/// The address-book DTD: each person has one name and at most one phone
/// number — the constraint that rejects the two-phone world in Fig. 2.
pub fn addressbook_schema_text() -> &'static str {
    "<!ELEMENT addressbook (person*)>\
     <!ELEMENT person (nm, tel?)>\
     <!ELEMENT nm (#PCDATA)>\
     <!ELEMENT tel (#PCDATA)>"
}

/// Parsed form of [`addressbook_schema_text`].
pub fn addressbook_schema() -> Schema {
    Schema::parse(addressbook_schema_text()).expect("static schema is valid")
}

/// Render an address book.
pub fn addressbook_to_xml(persons: &[Person]) -> XmlDoc {
    let mut doc = XmlDoc::new("addressbook");
    let root = doc.root();
    for p in persons {
        let el = doc.add_element(root, "person");
        doc.add_text_element(el, "nm", p.name.clone());
        if let Some(tel) = &p.tel {
            doc.add_text_element(el, "tel", tel.clone());
        }
    }
    doc
}

/// The two sources of the paper's Fig. 2: both know a "John", with
/// conflicting phone numbers.
pub fn fig2_sources() -> (XmlDoc, XmlDoc) {
    let a = addressbook_to_xml(&[Person {
        rwo: 1,
        name: "John".into(),
        tel: Some("1111".into()),
    }]);
    let b = addressbook_to_xml(&[Person {
        rwo: 1,
        name: "John".into(),
        tel: Some("2222".into()),
    }]);
    (a, b)
}

const FIRST_NAMES: [&str; 10] = [
    "John", "Mary", "Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi",
];

/// Generate a pair of address books with `n` persons each, of which
/// `overlap` refer to the same rwos; conflicting phone numbers appear for
/// a fraction of the shared persons. Deterministic per seed.
pub fn random_addressbook_pair(
    seed: u64,
    n: usize,
    overlap: usize,
    conflict_fraction: f64,
) -> (Vec<Person>, Vec<Person>) {
    assert!(overlap <= n, "overlap cannot exceed size");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut source_a = Vec::with_capacity(n);
    let mut source_b = Vec::with_capacity(n);
    for i in 0..n {
        let name = format!(
            "{} {}",
            FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
            (b'A' + (i % 26) as u8) as char
        );
        let tel: u32 = rng.gen_range(1000..9999);
        source_a.push(Person {
            rwo: i as u64,
            name: name.clone(),
            tel: Some(tel.to_string()),
        });
        if i < overlap {
            let conflicted = rng.gen_bool(conflict_fraction);
            let b_tel = if conflicted {
                rng.gen_range(1000..9999)
            } else {
                tel
            };
            source_b.push(Person {
                rwo: i as u64,
                name,
                tel: Some(b_tel.to_string()),
            });
        } else {
            let other: u32 = rng.gen_range(1000..9999);
            source_b.push(Person {
                rwo: (n + i) as u64,
                name: format!(
                    "{} {}",
                    FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                    (b'a' + (i % 26) as u8) as char
                ),
                tel: Some(other.to_string()),
            });
        }
    }
    (source_a, source_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imprecise_xmlkit::to_string;

    #[test]
    fn fig2_sources_match_paper() {
        let (a, b) = fig2_sources();
        assert_eq!(
            to_string(&a),
            "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>"
        );
        assert!(to_string(&b).contains("2222"));
    }

    #[test]
    fn schema_enforces_single_phone() {
        let s = addressbook_schema();
        assert!(s.is_single_valued("person", "tel"));
        assert!(s.is_single_valued("person", "nm"));
    }

    #[test]
    fn person_without_phone_renders_without_tel() {
        let doc = addressbook_to_xml(&[Person {
            rwo: 0,
            name: "Mary".into(),
            tel: None,
        }]);
        let s = to_string(&doc);
        assert!(s.contains("<nm>Mary</nm>"));
        assert!(!s.contains("<tel>"));
        addressbook_schema().validate(&doc).unwrap();
    }

    #[test]
    fn random_pair_has_requested_overlap() {
        let (a, b) = random_addressbook_pair(9, 10, 4, 0.5);
        assert_eq!(a.len(), 10);
        assert_eq!(b.len(), 10);
        let shared = a
            .iter()
            .filter(|pa| b.iter().any(|pb| pb.rwo == pa.rwo))
            .count();
        assert_eq!(shared, 4);
        // Deterministic.
        let (a2, _) = random_addressbook_pair(9, 10, 4, 0.5);
        assert_eq!(a, a2);
    }

    #[test]
    fn shared_persons_share_names() {
        let (a, b) = random_addressbook_pair(3, 8, 3, 1.0);
        for pa in &a[..3] {
            let pb = b.iter().find(|p| p.rwo == pa.rwo).unwrap();
            assert_eq!(pa.name, pb.name);
            // conflict_fraction = 1.0: phones always differ.
            assert_ne!(pa.tel, pb.tel);
        }
    }
}
