//! # imprecise-datagen — synthetic corpora for the paper's experiments
//!
//! The paper evaluates on movie metadata from IMDB and an MPEG-7 document
//! (§V) — proprietary snapshots that were never published. This crate
//! generates the closest synthetic equivalents: movie catalogs with the
//! *structure of confusion* the paper describes —
//!
//! * franchises with sequels and TV variants ("Mission: Impossible",
//!   "Mission: Impossible II", "Impossible Mission (TV)"),
//! * per-source conventions that make values "never match exactly":
//!   IMDB-style `"McTiernan, John"` vs MPEG-7-style `"John McTiernan"`,
//!   roman vs arabic sequel numbers, genre capitalisation,
//! * controlled real-world-object (rwo) overlap between the two sources.
//!
//! [`scenarios`] builds the exact workload of every table and figure; the
//! generators themselves are deterministic (seeded) so experiments
//! reproduce bit-for-bit.

pub mod addressbook;
pub mod movies;
pub mod scenarios;

pub use movies::{
    catalog_to_xml, movie_schema, movie_schema_text, Movie, MovieBuilder, SourceStyle,
};
pub use scenarios::{MovieScenario, ScenarioInfo};
