//! The movie model, per-source rendering conventions, and random catalogs.

use imprecise_xmlkit::{Schema, XmlDoc};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A movie as a real-world object (before source conventions distort it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Movie {
    /// Identity of the real-world object. Two `Movie` values with the same
    /// `rwo` describe the same movie (ground truth for experiments).
    pub rwo: u64,
    /// Canonical title.
    pub title: String,
    /// Release year.
    pub year: u32,
    /// Genres (canonical capitalised spelling).
    pub genres: Vec<String>,
    /// Directors in `Given Family` order.
    pub directors: Vec<String>,
}

/// Fluent construction of [`Movie`] values.
#[derive(Debug, Clone)]
pub struct MovieBuilder {
    movie: Movie,
}

impl MovieBuilder {
    /// Start a movie with identity, title and year.
    pub fn new(rwo: u64, title: impl Into<String>, year: u32) -> Self {
        MovieBuilder {
            movie: Movie {
                rwo,
                title: title.into(),
                year,
                genres: Vec::new(),
                directors: Vec::new(),
            },
        }
    }

    /// Add a genre.
    pub fn genre(mut self, g: impl Into<String>) -> Self {
        self.movie.genres.push(g.into());
        self
    }

    /// Add a director.
    pub fn director(mut self, d: impl Into<String>) -> Self {
        self.movie.directors.push(d.into());
        self
    }

    /// Finish.
    pub fn build(self) -> Movie {
        self.movie
    }
}

/// Rendering conventions of the two sources (§V: "The sources use
/// different conventions for, e.g., naming directors, so these never
/// match exactly").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStyle {
    /// IMDB-style: `Family, Given` directors, arabic sequel numbers,
    /// lowercase genres.
    Imdb,
    /// MPEG-7-style: `Given Family` directors, roman sequel numbers,
    /// capitalised genres.
    Mpeg7,
}

impl SourceStyle {
    fn render_title(&self, title: &str) -> String {
        match self {
            // IMDB writes sequel numbers with arabic numerals.
            SourceStyle::Imdb => arabicise_last_token(title),
            SourceStyle::Mpeg7 => title.to_string(),
        }
    }

    fn render_director(&self, name: &str) -> String {
        match self {
            SourceStyle::Imdb => match name.rsplit_once(' ') {
                Some((given, family)) => format!("{family}, {given}"),
                None => name.to_string(),
            },
            SourceStyle::Mpeg7 => name.to_string(),
        }
    }

    fn render_genre(&self, genre: &str) -> String {
        match self {
            SourceStyle::Imdb => genre.to_lowercase(),
            SourceStyle::Mpeg7 => genre.to_string(),
        }
    }
}

/// Replace a trailing roman sequel numeral with its arabic form
/// ("Jaws III" → "Jaws 3"). Leaves other titles untouched. The roman
/// table is the similarity substrate's (sequels i..xx).
fn arabicise_last_token(title: &str) -> String {
    match title.rsplit_once(' ') {
        Some((head, last)) if last.chars().all(|c| "IVXivx".contains(c)) => {
            let normalized = imprecise_sim::normalize_token(last);
            if normalized.chars().all(|c| c.is_ascii_digit()) {
                format!("{head} {normalized}")
            } else {
                title.to_string()
            }
        }
        _ => title.to_string(),
    }
}

/// The DTD of the movie catalogs, as the paper's experiments assume it
/// (one title, at most one year, any number of genres and directors).
pub fn movie_schema_text() -> &'static str {
    "<!ELEMENT catalog (movie*)>\
     <!ELEMENT movie (title, year?, genre*, director*)>\
     <!ELEMENT title (#PCDATA)>\
     <!ELEMENT year (#PCDATA)>\
     <!ELEMENT genre (#PCDATA)>\
     <!ELEMENT director (#PCDATA)>"
}

/// Parsed form of [`movie_schema_text`].
pub fn movie_schema() -> Schema {
    Schema::parse(movie_schema_text()).expect("static schema is valid")
}

/// Render a catalog of movies as one source's XML document, applying the
/// source's conventions.
pub fn catalog_to_xml(movies: &[Movie], style: SourceStyle) -> XmlDoc {
    let mut doc = XmlDoc::new("catalog");
    let root = doc.root();
    for m in movies {
        let el = doc.add_element(root, "movie");
        doc.add_text_element(el, "title", style.render_title(&m.title));
        doc.add_text_element(el, "year", m.year.to_string());
        for g in &m.genres {
            doc.add_text_element(el, "genre", style.render_genre(g));
        }
        for d in &m.directors {
            doc.add_text_element(el, "director", style.render_director(d));
        }
    }
    doc
}

const GENRE_POOL: [&str; 8] = [
    "Action",
    "Horror",
    "Thriller",
    "Comedy",
    "Drama",
    "Sci-Fi",
    "Crime",
    "Adventure",
];

const GIVEN_NAMES: [&str; 8] = [
    "John", "Steven", "Kathryn", "Ridley", "Sofia", "James", "Ann", "Werner",
];

const FAMILY_NAMES: [&str; 8] = [
    "Woo",
    "Spielberg",
    "Bigelow",
    "Scott",
    "Coppola",
    "Cameron",
    "Hui",
    "Herzog",
];

const TITLE_WORDS: [&str; 12] = [
    "Midnight",
    "Harbor",
    "Vengeance",
    "Echo",
    "Glass",
    "Hollow",
    "Iron",
    "Paper",
    "Silent",
    "Crimson",
    "Golden",
    "Last",
];

/// Generate `n` random distinct movies (for stress tests and benches).
/// Deterministic for a given seed.
pub fn random_catalog(seed: u64, n: usize) -> Vec<Movie> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut movies = Vec::with_capacity(n);
    for i in 0..n {
        let w1 = TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())];
        let w2 = TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())];
        let title = format!("{w1} {w2} {i}");
        let year = rng.gen_range(1950..2008);
        let mut b = MovieBuilder::new(i as u64, title, year);
        let genre_count = rng.gen_range(1..=2);
        let mut pool: Vec<&str> = GENRE_POOL.to_vec();
        pool.shuffle(&mut rng);
        for g in pool.iter().take(genre_count) {
            b = b.genre(*g);
        }
        let given = GIVEN_NAMES[rng.gen_range(0..GIVEN_NAMES.len())];
        let family = FAMILY_NAMES[rng.gen_range(0..FAMILY_NAMES.len())];
        b = b.director(format!("{given} {family}"));
        movies.push(b.build());
    }
    movies
}

#[cfg(test)]
mod tests {
    use super::*;
    use imprecise_xmlkit::to_string;

    fn mi2() -> Movie {
        MovieBuilder::new(1, "Mission: Impossible II", 2000)
            .genre("Action")
            .director("John Woo")
            .build()
    }

    #[test]
    fn mpeg7_style_keeps_canonical_forms() {
        let doc = catalog_to_xml(&[mi2()], SourceStyle::Mpeg7);
        let s = to_string(&doc);
        assert!(s.contains("<title>Mission: Impossible II</title>"));
        assert!(s.contains("<director>John Woo</director>"));
        assert!(s.contains("<genre>Action</genre>"));
    }

    #[test]
    fn imdb_style_applies_conventions() {
        let doc = catalog_to_xml(&[mi2()], SourceStyle::Imdb);
        let s = to_string(&doc);
        assert!(s.contains("<title>Mission: Impossible 2</title>"), "{s}");
        assert!(s.contains("<director>Woo, John</director>"));
        assert!(s.contains("<genre>action</genre>"));
    }

    #[test]
    fn styles_never_match_exactly_but_normalise_equal() {
        // The paper's premise: conventions differ, yet the underlying
        // values co-refer.
        let a = SourceStyle::Imdb.render_director("John Woo");
        let b = SourceStyle::Mpeg7.render_director("John Woo");
        assert_ne!(a, b);
        assert!(imprecise_sim::person_name_similarity(&a, &b) > 0.99);
        let ta = SourceStyle::Imdb.render_title("Mission: Impossible II");
        let tb = SourceStyle::Mpeg7.render_title("Mission: Impossible II");
        assert_ne!(ta, tb);
        assert_eq!(imprecise_sim::title_similarity(&ta, &tb), 1.0);
    }

    #[test]
    fn non_sequel_titles_are_untouched() {
        assert_eq!(SourceStyle::Imdb.render_title("Jaws"), "Jaws");
        assert_eq!(
            SourceStyle::Imdb.render_title("Die Hard: With a Vengeance"),
            "Die Hard: With a Vengeance"
        );
    }

    #[test]
    fn schema_parses_and_constrains() {
        let s = movie_schema();
        assert!(s.is_single_valued("movie", "title"));
        assert!(!s.is_single_valued("movie", "genre"));
    }

    #[test]
    fn random_catalog_is_deterministic_and_distinct() {
        let a = random_catalog(42, 20);
        let b = random_catalog(42, 20);
        assert_eq!(a, b);
        let c = random_catalog(43, 20);
        assert_ne!(a, c);
        // Titles are distinct (indexed suffix).
        let mut titles: Vec<&str> = a.iter().map(|m| m.title.as_str()).collect();
        titles.sort_unstable();
        titles.dedup();
        assert_eq!(titles.len(), 20);
    }

    #[test]
    fn catalog_documents_validate_against_schema() {
        let movies = random_catalog(7, 10);
        let doc = catalog_to_xml(&movies, SourceStyle::Imdb);
        movie_schema().validate(&doc).unwrap();
    }
}
