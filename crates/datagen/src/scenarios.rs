//! Workload builders for every experiment in the paper (see DESIGN.md §5).
//!
//! The original IMDB / MPEG-7 snapshots were never published, so each
//! scenario reconstructs the *described* structure: which movies exist in
//! which source, which refer to the same real-world object, and which
//! confusions (sequels, TV variants, convention mismatches) are present.
//! All builders are deterministic.

use crate::movies::{catalog_to_xml, movie_schema, Movie, MovieBuilder, SourceStyle};
use imprecise_xmlkit::{Schema, XmlDoc};

/// Ground-truth metadata of a generated scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioInfo {
    /// Scenario name (experiment id).
    pub name: String,
    /// Movies in the MPEG-7 source.
    pub mpeg7_movies: usize,
    /// Movies in the IMDB source.
    pub imdb_movies: usize,
    /// Real-world objects present in both sources.
    pub shared_rwos: usize,
}

/// A two-source movie workload plus its schema and ground truth.
#[derive(Debug, Clone)]
pub struct MovieScenario {
    /// The MPEG-7-style source document.
    pub mpeg7: XmlDoc,
    /// The IMDB-style source document.
    pub imdb: XmlDoc,
    /// The movie DTD both sources conform to.
    pub schema: Schema,
    /// Ground truth.
    pub info: ScenarioInfo,
}

/// One franchise: base title, base year, sequel year, genres, directors.
struct Franchise {
    base: &'static str,
    base_year: u32,
    sequel_year: u32,
    genres: [&'static str; 2],
    directors: [&'static str; 3],
}

const FRANCHISES: [Franchise; 3] = [
    Franchise {
        base: "Mission: Impossible",
        base_year: 1996,
        sequel_year: 2000,
        genres: ["Action", "Adventure"],
        directors: ["Brian De Palma", "John Woo", "Rob Cohen"],
    },
    Franchise {
        base: "Die Hard",
        base_year: 1988,
        sequel_year: 1995,
        genres: ["Action", "Thriller"],
        directors: ["John McTiernan", "Renny Harlin", "Len Wiseman"],
    },
    Franchise {
        base: "Jaws",
        base_year: 1975,
        sequel_year: 1978,
        genres: ["Horror", "Thriller"],
        directors: ["Steven Spielberg", "Jeannot Szwarc", "Joe Alves"],
    },
];

const ROMAN: [&str; 20] = [
    "", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "XI", "XII", "XIII", "XIV", "XV",
    "XVI", "XVII", "XVIII", "XIX", "XX",
];

impl Franchise {
    fn title(&self, sequel: usize) -> String {
        if sequel <= 1 {
            self.base.to_string()
        } else {
            let numeral = ROMAN[(sequel - 1).min(ROMAN.len() - 1)];
            format!("{} {}", self.base, numeral)
        }
    }

    fn year(&self, sequel: usize) -> u32 {
        match sequel {
            0 | 1 => self.base_year,
            2 => self.sequel_year,
            k => self.sequel_year + 4 * (k as u32 - 2),
        }
    }
}

/// rwo id for franchise `f`, variant key `v`.
fn rwo(f: usize, v: usize) -> u64 {
    (f as u64) * 1000 + v as u64
}

/// The sequels workload of Table I: per franchise, both sources hold two
/// entries, exactly one of which co-refers across sources.
///
/// * MPEG-7: the base movie and sequel II;
/// * IMDB: sequel II (the shared rwo) and a same-year TV remake of the
///   base (a different rwo that only the year cannot separate).
///
/// Every movie carries two genres and one director, so that the genre rule
/// has sub-choices to eliminate, exactly like the paper's Table I.
pub fn sequels_t1() -> MovieScenario {
    let mut mpeg7 = Vec::new();
    let mut imdb = Vec::new();
    for (f, fr) in FRANCHISES.iter().enumerate() {
        mpeg7.push(
            MovieBuilder::new(rwo(f, 1), fr.title(1), fr.year(1))
                .genre(fr.genres[0])
                .genre(fr.genres[1])
                .director(fr.directors[0])
                .build(),
        );
        mpeg7.push(
            MovieBuilder::new(rwo(f, 2), fr.title(2), fr.year(2))
                .genre(fr.genres[0])
                .genre(fr.genres[1])
                .director(fr.directors[1])
                .build(),
        );
        imdb.push(
            MovieBuilder::new(rwo(f, 2), fr.title(2), fr.year(2))
                .genre(fr.genres[0])
                .genre(fr.genres[1])
                .director(fr.directors[1])
                .build(),
        );
        imdb.push(
            MovieBuilder::new(rwo(f, 100), format!("{} (TV)", fr.base), fr.year(1))
                .genre(fr.genres[0])
                .genre(fr.genres[1])
                .director(fr.directors[2])
                .build(),
        );
    }
    build("table1-sequels", &mpeg7, &imdb, 3)
}

/// The Figure 5 workload: the 6 MPEG-7 movies of [`sequels_t1`] against a
/// growing number of IMDB franchise entries — "only sequels, TV-shows,
/// etc. with 'Impossible Mission', 'Jaws', and 'Die Hard' in the title".
///
/// IMDB entries cycle through the franchises; per franchise the variants
/// are, in order: the shared sequel II, a TV remake of the base (same
/// year as the base), sequel III, a TV remake of sequel II (same year as
/// sequel II), sequel IV, a video edition of the base (base year), then
/// further sequels V, VI, … with fresh years.
pub fn fig5(n_imdb: usize) -> MovieScenario {
    let mut mpeg7 = Vec::new();
    for (f, fr) in FRANCHISES.iter().enumerate() {
        for v in [1usize, 2] {
            mpeg7.push(
                MovieBuilder::new(rwo(f, v), fr.title(v), fr.year(v))
                    .genre(fr.genres[0])
                    .director(fr.directors[(v - 1) % 3])
                    .build(),
            );
        }
    }
    let mut imdb = Vec::new();
    let mut shared = 0usize;
    for i in 0..n_imdb {
        let f = i % FRANCHISES.len();
        let v = i / FRANCHISES.len();
        let fr = &FRANCHISES[f];
        let movie = match v {
            0 => {
                shared += 1;
                MovieBuilder::new(rwo(f, 2), fr.title(2), fr.year(2))
                    .genre(fr.genres[0])
                    .director(fr.directors[1])
                    .build()
            }
            1 => MovieBuilder::new(rwo(f, 101), format!("{} (TV)", fr.base), fr.year(1))
                .genre(fr.genres[0])
                .director(fr.directors[2])
                .build(),
            2 => MovieBuilder::new(rwo(f, 3), fr.title(3), fr.year(3))
                .genre(fr.genres[0])
                .director(fr.directors[2])
                .build(),
            3 => MovieBuilder::new(rwo(f, 102), format!("{} (TV)", fr.title(2)), fr.year(2))
                .genre(fr.genres[1])
                .director(fr.directors[0])
                .build(),
            4 => MovieBuilder::new(rwo(f, 4), fr.title(4), fr.year(4))
                .genre(fr.genres[1])
                .director(fr.directors[1])
                .build(),
            5 => MovieBuilder::new(rwo(f, 103), format!("{} (Video)", fr.base), fr.year(1))
                .genre(fr.genres[0])
                .director(fr.directors[2])
                .build(),
            // Beyond the staple variants, catalogs keep accumulating
            // sequels and re-editions; re-editions share the year of the
            // movie they re-issue, so the year rule cannot separate them.
            k if k % 3 == 1 => MovieBuilder::new(
                rwo(f, 200 + k),
                format!("{} (Special Edition)", fr.title(2)),
                fr.year(2),
            )
            .genre(fr.genres[k % 2])
            .director(fr.directors[k % 3])
            .build(),
            k if k % 3 == 2 => MovieBuilder::new(
                rwo(f, 300 + k),
                format!("{} (Restored)", fr.base),
                fr.year(1),
            )
            .genre(fr.genres[k % 2])
            .director(fr.directors[k % 3])
            .build(),
            k => MovieBuilder::new(rwo(f, k), fr.title(k), fr.year(k))
                .genre(fr.genres[k % 2])
                .director(fr.directors[k % 3])
                .build(),
        };
        imdb.push(movie);
    }
    let mut scenario = build("fig5", &mpeg7, &imdb, shared.min(3));
    scenario.info.name = format!("fig5-n{n_imdb}");
    scenario
}

/// Titles for the typical-conditions IMDB catalog (distinct, non-sequel).
const TYPICAL_TITLES: [&str; 12] = [
    "Heat",
    "Fargo",
    "Casino",
    "Twister",
    "Braveheart",
    "Apollo 13",
    "The Usual Suspects",
    "Waterworld",
    "Golden Eye",
    "Seven",
    "Toy Story",
    "Babe",
];

/// The typical-conditions workload of §V: 6 movies produced in 1995 from
/// the MPEG-7 source against 60 IMDB movies, of which two refer to the
/// same rwo. Shared movies carry an extra genre in the IMDB source (and
/// IMDB-only director credits), so the Oracle cannot decide them by
/// deep-equality — these are the paper's "two occasions" where no
/// absolute decision is possible.
pub fn typical() -> MovieScenario {
    let mut mpeg7 = Vec::new();
    for (i, title) in TYPICAL_TITLES.iter().take(6).enumerate() {
        mpeg7.push(
            MovieBuilder::new(5000 + i as u64, *title, 1995)
                .genre("Drama")
                .build(),
        );
    }
    let mut imdb = Vec::new();
    // The two shared rwos: same title and year, an extra genre, and
    // IMDB-side director credits.
    for (i, title) in TYPICAL_TITLES.iter().take(2).enumerate() {
        imdb.push(
            MovieBuilder::new(5000 + i as u64, *title, 1995)
                .genre("Drama")
                .genre("Crime")
                .director("Michael Mann")
                .build(),
        );
    }
    // 58 unrelated movies with distinct titles and spread years.
    for i in 0..58usize {
        let base = TYPICAL_TITLES[(i + 6) % TYPICAL_TITLES.len()];
        let title = if i < 6 {
            base.to_string()
        } else {
            format!("{base} Chronicles {i}")
        };
        imdb.push(
            MovieBuilder::new(6000 + i as u64, title, 1950 + (i as u32 * 7) % 55)
                .genre("Comedy")
                .director("Ann Hui")
                .build(),
        );
    }
    build("typical", &mpeg7, &imdb, 2)
}

/// The §VI query database: the confusing franchise catalog that the two
/// demo queries run against. Built so that, with the title rule only,
/// the rankings of the paper emerge:
///
/// * `//movie[.//genre="Horror"]/title` → 'Jaws' and 'Jaws 2' at a high
///   equal rank (they only miss certainty through unlikely cross-matches);
/// * the John query → 'Die Hard: With a Vengeance' certain,
///   'Mission: Impossible II' high, 'Mission: Impossible' low (the
///   possibility that the "II" is a typing mistake).
pub fn query_db() -> MovieScenario {
    let mpeg7 = vec![
        MovieBuilder::new(1, "Jaws", 1975)
            .genre("Horror")
            .director("Steven Spielberg")
            .build(),
        MovieBuilder::new(2, "Jaws 2", 1978)
            .genre("Horror")
            .director("Jeannot Szwarc")
            .build(),
        MovieBuilder::new(3, "Mission: Impossible II", 2000)
            .genre("Action")
            .director("John Woo")
            .build(),
        MovieBuilder::new(4, "Die Hard: With a Vengeance", 1995)
            .genre("Action")
            .director("John McTiernan")
            .build(),
    ];
    let imdb = vec![
        MovieBuilder::new(1, "Jaws", 1975)
            .genre("Horror")
            .director("Steven Spielberg")
            .build(),
        MovieBuilder::new(2, "Jaws 2", 1978)
            .genre("Horror")
            .director("Jeannot Szwarc")
            .build(),
        // The typo-suspect: Mission: Impossible (a different movie whose
        // title may be the II-less misspelling of the MPEG-7 entry).
        MovieBuilder::new(30, "Mission: Impossible", 1996)
            .genre("Action")
            .director("Brian De Palma")
            .build(),
        MovieBuilder::new(40, "Die Hard 2", 1990)
            .genre("Action")
            .director("Renny Harlin")
            .build(),
        MovieBuilder::new(4, "Die Hard: With a Vengeance", 1995)
            .genre("Action")
            .director("John McTiernan")
            .build(),
    ];
    build("query-db", &mpeg7, &imdb, 3)
}

/// An N-source workload plus its schema and ground truth, for the
/// `Engine::integrate_many` fold and the budgeted-pipeline benches.
#[derive(Debug, Clone)]
pub struct ManySourceScenario {
    /// The source documents, in fold order (all MPEG-7 style, so
    /// identical real-world entries are recognisably equal — the
    /// certain backbone of the fold).
    pub sources: Vec<XmlDoc>,
    /// The movie DTD all sources conform to.
    pub schema: Schema,
    /// Scenario name.
    pub name: String,
    /// Movies per source document.
    pub movies_per_source: usize,
    /// Ambiguous (same-year, similar-title) re-edition variants each
    /// source adds to the Jaws franchise — the knob that grows the
    /// matching components across the fold.
    pub ambiguous_per_source: usize,
}

/// An overlapping N-source catalog workload (N ≥ 2; the interesting
/// regime is N ≥ 4): every source carries the three franchises' base
/// movie and sequel II (identical entries — a certain backbone that
/// folds without new uncertainty), its own clean later sequel (pure
/// growth, separated by the year rule), and `ambiguous` same-year
/// re-edition variants of the Jaws base whose titles only *resemble*
/// the base and each other. Re-editions from different sources can
/// never be separated by year or title, so each fold step enlarges one
/// matching component — uncertainty compounds across the fold, which is
/// exactly the load the budgeted pipeline (and `min_retained_mass`) is
/// for. Ambiguity is confined to one franchise so the cross-franchise
/// local-worlds product stays bounded at moderate N.
pub fn many_sources(n_sources: usize, ambiguous: usize) -> ManySourceScenario {
    assert!(n_sources >= 2, "a fold needs at least two sources");
    let mut sources = Vec::with_capacity(n_sources);
    let mut movies_per_source = 0;
    const EDITIONS: [&str; 4] = ["TV", "Video", "Archive", "Restored"];
    for s in 0..n_sources {
        let mut movies = Vec::new();
        for (f, fr) in FRANCHISES.iter().enumerate() {
            // The shared backbone: identical real-world data in every
            // source, deep-equal across folds.
            movies.push(
                MovieBuilder::new(rwo(f, 1), fr.title(1), fr.year(1))
                    .genre(fr.genres[0])
                    .director(fr.directors[0])
                    .build(),
            );
            movies.push(
                MovieBuilder::new(rwo(f, 2), fr.title(2), fr.year(2))
                    .genre(fr.genres[0])
                    .director(fr.directors[1])
                    .build(),
            );
            // This source's own later sequel: a fresh year, so the year
            // rule keeps it cleanly distinct.
            movies.push(
                MovieBuilder::new(rwo(f, 10 + s), fr.title(3 + s), fr.year(3 + s))
                    .genre(fr.genres[1])
                    .director(fr.directors[s % 3])
                    .build(),
            );
        }
        // Ambiguous re-editions of the Jaws base: the base year with an
        // edition-marked title — similar to the base and to every other
        // source's re-editions, never decidable by the year rule.
        let jaws = &FRANCHISES[2];
        for v in 0..ambiguous {
            let edition = EDITIONS[(s + v) % EDITIONS.len()];
            movies.push(
                MovieBuilder::new(
                    rwo(2, 100 + 10 * s + v),
                    format!("{} ({edition} {s})", jaws.base),
                    jaws.year(1),
                )
                .genre(jaws.genres[0])
                .director(jaws.directors[(s + v + 1) % 3])
                .build(),
            );
        }
        movies_per_source = movies.len();
        sources.push(catalog_to_xml(&movies, SourceStyle::Mpeg7));
    }
    ManySourceScenario {
        sources,
        schema: movie_schema(),
        name: format!("many-sources-n{n_sources}-a{ambiguous}"),
        movies_per_source,
        ambiguous_per_source: ambiguous,
    }
}

/// The worst-case matching workload: one franchise's first `n` sequels
/// against `n` same-year TV re-editions of those sequels — a 1975
/// retrospective box set against a TV archive, say. Every entry shares
/// the year (the year rule never separates) and every title resembles
/// every other (one franchise), so under a title-similarity *prior*
/// (title rule off) the candidate graph is one complete `n × n`
/// component with `Σ_k C(n,k)²·k!` matchings — 1 441 729 at n = 8,
/// past the default cap: this is the scenario that used to die with
/// `TooManyMatchings` and now completes under a budget. Crucially the
/// graded prior skews the matching weights (same-rank pairs are far
/// likelier than cross-rank ones), so a small budget retains most of
/// the probability mass — good is good enough.
pub fn confusable(n: usize) -> MovieScenario {
    let fr = &FRANCHISES[2]; // Jaws
    let mpeg7: Vec<Movie> = (0..n)
        .map(|i| {
            MovieBuilder::new(i as u64, fr.title(i + 1), 1975)
                .genre(fr.genres[0])
                .director(fr.directors[i % 3])
                .build()
        })
        .collect();
    let imdb: Vec<Movie> = (0..n)
        .map(|j| {
            MovieBuilder::new(1000 + j as u64, format!("{} (TV)", fr.title(j + 1)), 1975)
                .genre(fr.genres[0])
                .director(fr.directors[(j + 1) % 3])
                .build()
        })
        .collect();
    let mut scenario = build("confusable", &mpeg7, &imdb, 0);
    scenario.info.name = format!("confusable-n{n}");
    scenario
}

/// `groups` independent copies of the [`confusable`] block, each pinned
/// to its own year so the year rule separates the groups while nothing
/// separates entries *within* a group: the candidate graph factors into
/// `groups` complete `n × n` components. This is the workload for
/// parallel per-component enumeration — the components are large,
/// independent, and equally expensive.
pub fn confusable_grid(groups: usize, n: usize) -> MovieScenario {
    let mut mpeg7 = Vec::new();
    let mut imdb = Vec::new();
    for g in 0..groups {
        let fr = &FRANCHISES[g % FRANCHISES.len()];
        let year = 1900 + 10 * g as u32;
        for i in 0..n {
            mpeg7.push(
                MovieBuilder::new((g * 1000 + i) as u64, fr.title(i + 1), year)
                    .genre(fr.genres[0])
                    .director(fr.directors[i % 3])
                    .build(),
            );
            imdb.push(
                MovieBuilder::new(
                    (100_000 + g * 1000 + i) as u64,
                    format!("{} (TV)", fr.title(i + 1)),
                    year,
                )
                .genre(fr.genres[0])
                .director(fr.directors[(i + 1) % 3])
                .build(),
            );
        }
    }
    let mut scenario = build("confusable-grid", &mpeg7, &imdb, 0);
    scenario.info.name = format!("confusable-grid-{groups}x{n}");
    scenario
}

/// A heterogeneous confusable workload: one [`confusable`]-style block
/// per entry of `sizes`, each pinned to its own year so the year rule
/// separates the blocks while nothing separates entries within one —
/// the candidate graph factors into components of *different* sizes
/// (`sizes[i]²` live pairs each).
///
/// This is the budget-planner and refinement workload: under
/// `BudgetPlan::Total` the big components should win most of the
/// budget, and a refinement loop should pick the block with the largest
/// discarded mass first.
pub fn confusable_mixed(sizes: &[usize]) -> MovieScenario {
    let mut mpeg7 = Vec::new();
    let mut imdb = Vec::new();
    for (g, &n) in sizes.iter().enumerate() {
        let fr = &FRANCHISES[g % FRANCHISES.len()];
        let year = 1900 + 10 * g as u32;
        for i in 0..n {
            mpeg7.push(
                MovieBuilder::new((g * 1000 + i) as u64, fr.title(i + 1), year)
                    .genre(fr.genres[0])
                    .director(fr.directors[i % 3])
                    .build(),
            );
            imdb.push(
                MovieBuilder::new(
                    (100_000 + g * 1000 + i) as u64,
                    format!("{} (TV)", fr.title(i + 1)),
                    year,
                )
                .genre(fr.genres[0])
                .director(fr.directors[(i + 1) % 3])
                .build(),
            );
        }
    }
    let mut scenario = build("confusable-mixed", &mpeg7, &imdb, 0);
    let label: Vec<String> = sizes.iter().map(|n| n.to_string()).collect();
    scenario.info.name = format!("confusable-mixed-{}", label.join("x"));
    scenario
}

/// The splitmix64 finaliser: the deterministic bit mixer behind the
/// [`large_source`] title generator (no RNG state, just arithmetic, so
/// the scenario stays reproducible byte for byte).
fn ls_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pseudo-word title for movie index `k`: two or three consonant–vowel
/// words whose syllables are drawn from a hash of `k`. Distinct indices
/// get pairwise-dissimilar titles — random syllables share no tokens and
/// almost no character bigrams — so the only similar-title pairs in a
/// [`large_source`] catalog are the ones built on the *same* title
/// (exact and typo'd duplicates). A shared word pool ("The …") would
/// instead create quadratically many accidentally-similar pairs, which
/// no recall-safe blocker could avoid scoring.
fn ls_title(k: usize) -> String {
    const CONSONANTS: &[u8] = b"bcdfghjklmnprstvz";
    const VOWELS: &[u8] = b"aeiouy";
    let mut state = (k as u64) ^ 0xD6E8_FEB8_6659_FD93;
    let mut title = String::new();
    for w in 0..2 + k % 2 {
        if w > 0 {
            title.push(' ');
        }
        state = ls_mix(state);
        let mut r = state;
        let start = title.len();
        for _ in 0..2 + (r % 3) {
            let c = CONSONANTS[(r >> 2) as usize % CONSONANTS.len()];
            let v = VOWELS[(r >> 7) as usize % VOWELS.len()];
            title.push(c as char);
            title.push(v as char);
            r >>= 10;
        }
        title[start..start + 1].make_ascii_uppercase();
    }
    title
}

/// A large synthetic two-source catalog for candidate-generation scaling
/// work: `n` movies per source with years spread over 120 buckets (so a
/// year-keyed blocking join keeps every bucket small), ~25% exact
/// duplicates, ~25% typo'd duplicates (near-identical titles a
/// recall-safe similarity filter must keep), and ~50% unrelated entries
/// with their own titles and shifted years. Deterministic in `n`.
pub fn large_source(n: usize) -> MovieScenario {
    let title = ls_title;
    let year = |k: usize| 1900 + ((k * 7) % 120) as u32;
    // Swap the 2nd and 3rd characters ("Bakori" → "Bkaori"): an
    // edit-distance-2 typo that keeps the title far above the similarity
    // threshold.
    let typo = |t: &str| {
        let mut cs: Vec<char> = t.chars().collect();
        cs.swap(1, 2);
        cs.into_iter().collect::<String>()
    };
    let mut mpeg7 = Vec::with_capacity(n);
    let mut imdb = Vec::with_capacity(n);
    let mut shared = 0usize;
    for k in 0..n {
        let fr = &FRANCHISES[k % FRANCHISES.len()];
        mpeg7.push(
            MovieBuilder::new(k as u64, title(k), year(k))
                .genre(fr.genres[k % 2])
                .director(fr.directors[k % 3])
                .build(),
        );
        let movie = match k % 4 {
            0 => {
                // Exact duplicate: the certain deep-equal backbone.
                shared += 1;
                MovieBuilder::new(k as u64, title(k), year(k))
                    .genre(fr.genres[k % 2])
                    .director(fr.directors[k % 3])
                    .build()
            }
            1 => {
                // Same rwo, typo'd title: survives recall-safe blocking,
                // left for the similarity rule / prior to weigh.
                shared += 1;
                MovieBuilder::new(k as u64, typo(&title(k)), year(k))
                    .genre(fr.genres[k % 2])
                    .director(fr.directors[k % 3])
                    .build()
            }
            _ => MovieBuilder::new((1_000_000 + k) as u64, title(k + n), year(k + 1))
                .genre(fr.genres[(k + 1) % 2])
                .director(fr.directors[(k + 1) % 3])
                .build(),
        };
        imdb.push(movie);
    }
    let mut scenario = build("large-source", &mpeg7, &imdb, shared);
    scenario.info.name = format!("large-source-n{n}");
    scenario
}

fn build(name: &str, mpeg7: &[Movie], imdb: &[Movie], shared: usize) -> MovieScenario {
    MovieScenario {
        mpeg7: catalog_to_xml(mpeg7, SourceStyle::Mpeg7),
        imdb: catalog_to_xml(imdb, SourceStyle::Imdb),
        schema: movie_schema(),
        info: ScenarioInfo {
            name: name.to_string(),
            mpeg7_movies: mpeg7.len(),
            imdb_movies: imdb.len(),
            shared_rwos: shared,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imprecise_xmlkit::to_string;

    #[test]
    fn t1_has_six_versus_six() {
        let s = sequels_t1();
        assert_eq!(s.info.mpeg7_movies, 6);
        assert_eq!(s.info.imdb_movies, 6);
        assert_eq!(s.info.shared_rwos, 3);
        s.schema.validate(&s.mpeg7).unwrap();
        s.schema.validate(&s.imdb).unwrap();
        // Franchise structure present.
        let m = to_string(&s.mpeg7);
        assert!(m.contains("Mission: Impossible II"));
        assert!(m.contains("Jaws"));
        let i = to_string(&s.imdb);
        assert!(i.contains("Mission: Impossible 2")); // IMDB convention
        assert!(i.contains("(TV)"));
    }

    #[test]
    fn fig5_scales_with_n() {
        for n in [0, 6, 30, 60] {
            let s = fig5(n);
            assert_eq!(s.info.mpeg7_movies, 6);
            assert_eq!(s.info.imdb_movies, n);
            s.schema.validate(&s.imdb).unwrap();
        }
        // Shared rwos appear once n covers all three franchises.
        assert_eq!(fig5(3).info.shared_rwos, 3);
        assert_eq!(fig5(2).info.shared_rwos, 2);
    }

    #[test]
    fn fig5_titles_stay_in_franchises() {
        let s = fig5(60);
        let text = to_string(&s.imdb);
        for needle in ["Mission", "Die Hard", "Jaws"] {
            assert!(text.contains(needle));
        }
        // No unrelated franchise sneaks in.
        assert!(!text.contains("Heat"));
    }

    #[test]
    fn typical_structure() {
        let s = typical();
        assert_eq!(s.info.mpeg7_movies, 6);
        assert_eq!(s.info.imdb_movies, 60);
        assert_eq!(s.info.shared_rwos, 2);
        s.schema.validate(&s.mpeg7).unwrap();
        s.schema.validate(&s.imdb).unwrap();
        // All MPEG-7 movies are from 1995 (the paper's selection).
        let m = to_string(&s.mpeg7);
        assert_eq!(m.matches("<year>1995</year>").count(), 6);
        // IMDB titles are distinct.
        let i = to_string(&s.imdb);
        assert_eq!(i.matches("<title>Heat</title>").count(), 1);
    }

    #[test]
    fn query_db_contains_the_demo_movies() {
        let s = query_db();
        let all = format!("{}{}", to_string(&s.mpeg7), to_string(&s.imdb));
        for t in [
            "Jaws",
            "Jaws 2",
            "Mission: Impossible II",
            "Mission: Impossible",
            "Die Hard: With a Vengeance",
        ] {
            assert!(all.contains(t), "missing {t}");
        }
        assert!(all.contains("McTiernan, John")); // IMDB director convention
        assert!(all.contains("John McTiernan")); // MPEG-7 convention
    }

    #[test]
    fn many_sources_structure() {
        let s = many_sources(4, 1);
        assert_eq!(s.sources.len(), 4);
        // 3 franchises × (base + sequel II + own sequel) + 1 ambiguous.
        assert_eq!(s.movies_per_source, 10);
        for doc in &s.sources {
            s.schema.validate(doc).unwrap();
        }
        // The backbone is identical in every source; each source adds
        // its own edition-marked Jaws re-edition at the base year.
        let editions = ["TV", "Video", "Archive", "Restored"];
        for (i, doc) in s.sources.iter().enumerate() {
            let text = to_string(doc);
            assert!(text.contains("<title>Jaws</title>"), "source {i}");
            assert!(text.contains("Mission: Impossible II"), "source {i}");
            let marker = format!("Jaws ({} {i})", editions[i % 4]);
            assert!(
                text.contains(&marker),
                "source {i} missing {marker}: {text}"
            );
        }
        // The backbone folds certainly: source 0 and 1 share it verbatim.
        let t0 = to_string(&s.sources[0]);
        let t1 = to_string(&s.sources[1]);
        assert!(t0.contains("<title>Die Hard</title>") && t1.contains("<title>Die Hard</title>"));
    }

    #[test]
    fn many_sources_is_deterministic() {
        assert_eq!(
            to_string(&many_sources(5, 2).sources[3]),
            to_string(&many_sources(5, 2).sources[3])
        );
    }

    #[test]
    fn confusable_is_one_indistinguishable_block() {
        let s = confusable(8);
        assert_eq!(s.info.mpeg7_movies, 8);
        assert_eq!(s.info.imdb_movies, 8);
        s.schema.validate(&s.mpeg7).unwrap();
        s.schema.validate(&s.imdb).unwrap();
        let a = to_string(&s.mpeg7);
        let b = to_string(&s.imdb);
        // One franchise, one shared year everywhere — the year rule can
        // never separate a pair, and every title resembles every other.
        assert_eq!(a.matches("<year>1975</year>").count(), 8);
        assert_eq!(b.matches("<year>1975</year>").count(), 8);
        assert_eq!(a.matches("Jaws").count(), 8);
        assert_eq!(b.matches("Jaws").count(), 8);
        assert_eq!(b.matches("(TV)").count(), 8);
        // Titles within one source stay distinct (sequel numbering).
        assert!(a.contains("<title>Jaws</title>"));
        assert!(a.contains("<title>Jaws VIII</title>"));
    }

    #[test]
    fn confusable_grid_separates_groups_by_year() {
        let s = confusable_grid(4, 6);
        assert_eq!(s.info.mpeg7_movies, 24);
        assert_eq!(s.info.imdb_movies, 24);
        s.schema.validate(&s.mpeg7).unwrap();
        s.schema.validate(&s.imdb).unwrap();
        let a = to_string(&s.mpeg7);
        for year in [1900, 1910, 1920, 1930] {
            assert_eq!(a.matches(&format!("<year>{year}</year>")).count(), 6);
        }
    }

    #[test]
    fn confusable_mixed_builds_blocks_of_requested_sizes() {
        let s = confusable_mixed(&[5, 3, 2]);
        assert_eq!(s.info.mpeg7_movies, 10);
        assert_eq!(s.info.imdb_movies, 10);
        assert_eq!(s.info.name, "confusable-mixed-5x3x2");
        s.schema.validate(&s.mpeg7).unwrap();
        s.schema.validate(&s.imdb).unwrap();
        let a = to_string(&s.mpeg7);
        // Each block is pinned to its own year, sized as requested.
        for (year, n) in [(1900, 5), (1910, 3), (1920, 2)] {
            assert_eq!(
                a.matches(&format!("<year>{year}</year>")).count(),
                n,
                "{year}"
            );
        }
        assert_eq!(
            to_string(&confusable_mixed(&[5, 3, 2]).imdb),
            to_string(&s.imdb)
        );
    }

    #[test]
    fn large_source_structure() {
        let s = large_source(400);
        assert_eq!(s.info.mpeg7_movies, 400);
        assert_eq!(s.info.imdb_movies, 400);
        assert_eq!(s.info.shared_rwos, 200); // 25% exact + 25% typo'd
        s.schema.validate(&s.mpeg7).unwrap();
        s.schema.validate(&s.imdb).unwrap();
        let a = to_string(&s.mpeg7);
        let b = to_string(&s.imdb);
        // Typo'd duplicates are present and recognisable: index 1 is a
        // k % 4 == 1 entry, so IMDB carries the swapped-character title.
        let original = ls_title(1);
        let typod: String = {
            let mut cs: Vec<char> = original.chars().collect();
            cs.swap(1, 2);
            cs.into_iter().collect()
        };
        assert!(a.contains(&original) && !a.contains(&typod));
        assert!(b.contains(&typod));
        // Distinct indices get dissimilar pseudo-word titles.
        assert_ne!(ls_title(0), ls_title(1));
        assert!(ls_title(0).len() >= 9 && ls_title(0).is_ascii());
        // Years spread across many buckets.
        assert!(a.contains("<year>1900</year>") && a.contains("<year>2019</year>"));
        // Deterministic.
        assert_eq!(to_string(&large_source(400).imdb), b);
    }

    #[test]
    fn builders_are_deterministic() {
        assert_eq!(
            to_string(&sequels_t1().mpeg7),
            to_string(&sequels_t1().mpeg7)
        );
        assert_eq!(to_string(&fig5(30).imdb), to_string(&fig5(30).imdb));
        assert_eq!(to_string(&typical().imdb), to_string(&typical().imdb));
    }
}
