//! # imprecise-feedback — user feedback on query answers
//!
//! The paper's information cycle (§I, Fig. 1) closes with user feedback:
//! *"Feedback on query answers can be traced back to possible worlds and
//! be used to remove data related to impossible worlds from the database,
//! hence incrementally improving the integration result."* The demo notes
//! the mechanism "has not been implemented, hence cannot be demonstrated
//! yet" — this crate implements it, following the semantics of the
//! authors' technical report (TR-CTIT-07-25, the paper's reference \[4\]):
//! conditioning the possible-world distribution on the (in)correctness of
//! an answer value.
//!
//! Three conditioning strategies, all exact:
//!
//! * **Local conditioning** — when the answer's event decomposes into
//!   independent per-choice-point constraints (conjunction of constraints
//!   on distinct choice points), the affected possibilities are zeroed
//!   and the document renormalised in place. Compact: the representation
//!   only shrinks.
//! * **Event expansion** — for events that correlate choice points (e.g.
//!   negating a conjunction), the event's satisfying assignments are
//!   enumerated by Shannon expansion over *only the choice points the
//!   event mentions*; the result is a choice over restricted copies of
//!   the document, one per satisfying assignment, with every unmentioned
//!   choice point kept intact. Exact because the event is independent of
//!   the unmentioned choice points, so conditioning leaves their
//!   (conditionally independent) distributions unchanged.
//! * **World rebuild** — last resort when the event's satisfying
//!   assignments exceed [`ASSIGNMENT_CAP`]: worlds are enumerated
//!   (capped), filtered by re-evaluating the query, and a new document is
//!   built as a single choice over the surviving distinct worlds.
//!
//! [`apply_feedback`] picks the first strategy that applies, in the order
//! above.

use imprecise_pxml::{PxDoc, PxNodeId, PxNodeKind, TooManyWorlds};
use imprecise_query::event::satisfying_assignments;
use imprecise_query::xml_eval::eval_xml_values;
use imprecise_query::{answer_event, EvalError, Event, Query};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Satisfying-assignment budget of the event-expansion strategy. An
/// answer value's event mentions one choice point per occurrence of the
/// value, so real feedback events stay far below this; the cap only
/// guards pathological hand-built events.
pub const ASSIGNMENT_CAP: usize = 4096;

/// Why feedback could not be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum FeedbackError {
    /// The feedback contradicts every possible world (e.g. confirming a
    /// value that occurs in none, or rejecting one that occurs in all).
    Contradiction,
    /// World enumeration exceeded the cap during the rebuild fallback.
    TooManyWorlds(TooManyWorlds),
    /// Query evaluation failed while deriving the answer event.
    Eval(EvalError),
}

impl fmt::Display for FeedbackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedbackError::Contradiction => {
                write!(f, "feedback contradicts every possible world")
            }
            FeedbackError::TooManyWorlds(e) => write!(f, "world rebuild failed: {e}"),
            FeedbackError::Eval(e) => write!(f, "query evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for FeedbackError {}

impl From<TooManyWorlds> for FeedbackError {
    fn from(e: TooManyWorlds) -> Self {
        FeedbackError::TooManyWorlds(e)
    }
}

impl From<EvalError> for FeedbackError {
    fn from(e: EvalError) -> Self {
        FeedbackError::Eval(e)
    }
}

/// Which conditioning strategy was used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// In-place zeroing of possibilities (independent constraints).
    Local,
    /// Shannon expansion over the event's choice points; unmentioned
    /// choice points are kept intact.
    EventExpansion,
    /// Enumerate–filter–rebuild over possible worlds.
    WorldRebuild,
}

/// What the feedback did to the document.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackReport {
    /// Strategy used.
    pub method: Method,
    /// Possible worlds before conditioning.
    pub worlds_before: f64,
    /// Possible worlds after conditioning.
    pub worlds_after: f64,
    /// Representation nodes before.
    pub nodes_before: usize,
    /// Representation nodes after.
    pub nodes_after: usize,
    /// Prior probability of the confirmed/rejected event.
    pub event_probability: f64,
}

/// Condition `doc` on the user's verdict that `value` is a correct
/// (`correct = true`) or incorrect (`correct = false`) answer to `query`.
///
/// Returns the conditioned document and a report. `world_cap` bounds the
/// rebuild fallback.
pub fn apply_feedback(
    doc: &PxDoc,
    query: &Query,
    value: &str,
    correct: bool,
    world_cap: usize,
) -> Result<(PxDoc, FeedbackReport), FeedbackError> {
    let worlds_before = doc.world_count_f64();
    let nodes_before = doc.reachable_count();
    let event = answer_event(doc, query, value)?.unwrap_or(Event::False);
    let target = if correct { event } else { Event::not(event) };
    let p_event = imprecise_query::event::probability(doc, &target);
    if p_event <= 0.0 {
        return Err(FeedbackError::Contradiction);
    }
    let (out, method) = match decompose_independent(doc, &target) {
        Some(constraints) => {
            let mut conditioned = doc.clone();
            for (prob_node, allowed) in constraints {
                for (idx, &poss) in conditioned.children(prob_node).to_vec().iter().enumerate() {
                    if !allowed.contains(&(idx as u32)) {
                        conditioned.set_poss_prob(poss, 0.0);
                    }
                }
            }
            conditioned.simplify();
            (conditioned, Method::Local)
        }
        None => match condition_by_expansion(doc, &target) {
            Some(conditioned) => (conditioned, Method::EventExpansion),
            None => (
                rebuild_from_worlds(doc, query, value, correct, world_cap)?,
                Method::WorldRebuild,
            ),
        },
    };
    let report = FeedbackReport {
        method,
        worlds_before,
        worlds_after: out.world_count_f64(),
        nodes_before,
        nodes_after: out.reachable_count(),
        event_probability: p_event,
    };
    Ok((out, report))
}

/// Try to decompose an event into a conjunction of independent per-choice
/// constraints: `∧_v (v ∈ allowed_v)` over *distinct* choice points.
fn decompose_independent(doc: &PxDoc, event: &Event) -> Option<BTreeMap<PxNodeId, BTreeSet<u32>>> {
    let mut constraints: BTreeMap<PxNodeId, BTreeSet<u32>> = BTreeMap::new();
    if collect_conjuncts(doc, event, &mut constraints) {
        Some(constraints)
    } else {
        None
    }
}

fn collect_conjuncts(
    doc: &PxDoc,
    event: &Event,
    constraints: &mut BTreeMap<PxNodeId, BTreeSet<u32>>,
) -> bool {
    match event {
        Event::True => true,
        Event::False => false,
        Event::Atom(a) => insert_constraint(constraints, a.prob_node, [a.poss_index]),
        Event::And(parts) => parts.iter().all(|p| collect_conjuncts(doc, p, constraints)),
        Event::Or(parts) => {
            // A disjunction is a single constraint only when every disjunct
            // is an atom of the same choice point.
            let mut var: Option<PxNodeId> = None;
            let mut allowed: BTreeSet<u32> = BTreeSet::new();
            for p in parts {
                match p {
                    Event::Atom(a) => {
                        if *var.get_or_insert(a.prob_node) != a.prob_node {
                            return false;
                        }
                        allowed.insert(a.poss_index);
                    }
                    _ => return false,
                }
            }
            match var {
                Some(v) => insert_constraint(constraints, v, allowed),
                None => true,
            }
        }
        Event::Not(inner) => match inner.as_ref() {
            // ¬(v = i) ⇒ v ∈ all \ {i}.
            Event::Atom(a) => {
                let n = doc.children(a.prob_node).len() as u32;
                let allowed: BTreeSet<u32> = (0..n).filter(|&i| i != a.poss_index).collect();
                insert_constraint(constraints, a.prob_node, allowed)
            }
            // ¬(v ∈ S) for single-variable S.
            Event::Or(parts) => {
                let mut var: Option<PxNodeId> = None;
                let mut excluded: BTreeSet<u32> = BTreeSet::new();
                for p in parts {
                    match p {
                        Event::Atom(a) => {
                            if *var.get_or_insert(a.prob_node) != a.prob_node {
                                return false;
                            }
                            excluded.insert(a.poss_index);
                        }
                        _ => return false,
                    }
                }
                match var {
                    Some(v) => {
                        let n = doc.children(v).len() as u32;
                        let allowed: BTreeSet<u32> =
                            (0..n).filter(|i| !excluded.contains(i)).collect();
                        insert_constraint(constraints, v, allowed)
                    }
                    None => true,
                }
            }
            _ => false,
        },
    }
}

fn insert_constraint(
    constraints: &mut BTreeMap<PxNodeId, BTreeSet<u32>>,
    var: PxNodeId,
    allowed: impl IntoIterator<Item = u32>,
) -> bool {
    let allowed: BTreeSet<u32> = allowed.into_iter().collect();
    match constraints.get_mut(&var) {
        // Repeated constraints on one variable would need intersection
        // semantics *and* correlation analysis with the enclosing shape;
        // only identical repeats are safe to accept.
        Some(existing) => *existing == allowed,
        None => {
            constraints.insert(var, allowed);
            true
        }
    }
}

/// Exact conditioning by Shannon expansion over the event's choice
/// points. Returns `None` when the event has more than [`ASSIGNMENT_CAP`]
/// satisfying assignments.
///
/// Each satisfying partial assignment σ (weight w(σ), mutually exclusive
/// by construction) becomes one possibility of the result's root choice,
/// holding a copy of the document in which every choice point assigned by
/// σ is collapsed to its chosen possibility and every other choice point
/// is copied unchanged. Weights are normalised by the event probability.
fn condition_by_expansion(doc: &PxDoc, target: &Event) -> Option<PxDoc> {
    let sat = satisfying_assignments(doc, target, ASSIGNMENT_CAP)?;
    let total: f64 = sat.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        // Callers check the event probability first; this only guards
        // degenerate zero-weight assignments.
        return None;
    }
    let mut out = PxDoc::new();
    for (assignment, weight) in sat {
        let sigma: HashMap<PxNodeId, u32> = assignment.into_iter().collect();
        match sigma.get(&doc.root()) {
            // The root choice is part of the assignment: one possibility.
            Some(&idx) => {
                let chosen = doc.children(doc.root())[idx as usize];
                let root = out.root();
                let poss = out.add_poss(root, weight / total);
                copy_restricted(doc, chosen, &mut out, poss, &sigma);
            }
            // Root left free: expand it here so the result keeps the
            // layered prob-root shape.
            None => {
                for &src_poss in doc.children(doc.root()) {
                    // lint:allow(expect-in-lib, holds by construction: root child is poss)
                    let p = doc.poss_prob(src_poss).expect("root child is poss");
                    if p == 0.0 {
                        continue;
                    }
                    let root = out.root();
                    let poss = out.add_poss(root, weight * p / total);
                    copy_restricted(doc, src_poss, &mut out, poss, &sigma);
                }
            }
        }
    }
    out.simplify();
    Some(out)
}

/// Copy the *contents* of `src_node` (a possibility or element) beneath
/// `dst_parent`, collapsing every choice point assigned in `sigma` to its
/// chosen possibility (inlined as certain content).
fn copy_restricted(
    src: &PxDoc,
    src_node: PxNodeId,
    dst: &mut PxDoc,
    dst_parent: PxNodeId,
    sigma: &HashMap<PxNodeId, u32>,
) {
    for &child in src.children(src_node) {
        copy_restricted_node(src, child, dst, dst_parent, sigma);
    }
}

fn copy_restricted_node(
    src: &PxDoc,
    node: PxNodeId,
    dst: &mut PxDoc,
    dst_parent: PxNodeId,
    sigma: &HashMap<PxNodeId, u32>,
) {
    match src.kind(node) {
        PxNodeKind::Text(t) => {
            dst.add_text(dst_parent, t.clone());
        }
        PxNodeKind::Elem { tag, attrs } => {
            let el = dst.add_elem(dst_parent, tag.clone());
            for a in attrs {
                dst.set_attr(el, a.name.clone(), a.value.clone());
            }
            copy_restricted(src, node, dst, el, sigma);
        }
        PxNodeKind::Prob => match sigma.get(&node) {
            // Collapsed: splice the chosen possibility's contents in as
            // certain content of the parent.
            Some(&idx) => {
                let chosen = src.children(node)[idx as usize];
                copy_restricted(src, chosen, dst, dst_parent, sigma);
            }
            None => {
                let prob = dst.add_prob(dst_parent);
                for &src_poss in src.children(node) {
                    // lint:allow(expect-in-lib, holds by construction: prob child is poss)
                    let p = src.poss_prob(src_poss).expect("prob child is poss");
                    let poss = dst.add_poss(prob, p);
                    copy_restricted(src, src_poss, dst, poss, sigma);
                }
            }
        },
        // lint:allow(panic-in-lib, statically unreachable: poss copied via its prob parent)
        PxNodeKind::Poss(_) => unreachable!("poss copied via its prob parent"),
    }
}

/// Enumerate worlds, keep the ones consistent with the verdict, rebuild.
fn rebuild_from_worlds(
    doc: &PxDoc,
    query: &Query,
    value: &str,
    correct: bool,
    world_cap: usize,
) -> Result<PxDoc, FeedbackError> {
    let worlds = doc.worlds(world_cap)?;
    // Group surviving worlds by document fingerprint.
    let mut order: Vec<(imprecise_xmlkit::XmlDoc, f64)> = Vec::new();
    let mut index: BTreeMap<u64, usize> = BTreeMap::new();
    let mut total = 0.0;
    for w in worlds {
        let has_value = eval_xml_values(&w.doc, query).iter().any(|v| v == value);
        if has_value != correct {
            continue;
        }
        total += w.prob;
        let fp = imprecise_xmlkit::subtree_fingerprint(&w.doc, w.doc.root());
        match index.get(&fp) {
            Some(&i) => order[i].1 += w.prob,
            None => {
                index.insert(fp, order.len());
                order.push((w.doc, w.prob));
            }
        }
    }
    if order.is_empty() || total <= 0.0 {
        return Err(FeedbackError::Contradiction);
    }
    let mut out = PxDoc::new();
    for (world_doc, p) in order {
        let root = out.root();
        let poss = out.add_poss(root, p / total);
        out.graft_xml(poss, &world_doc, world_doc.root());
    }
    out.simplify();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imprecise_query::{eval_px, parse_query, ChoiceAtom};

    /// Fig. 2: John with phone 1111 or 2222, or two Johns.
    fn fig2() -> PxDoc {
        let mut px = PxDoc::new();
        let root = px.root();
        let w1 = px.add_poss(root, 0.5);
        let ab1 = px.add_elem(w1, "addressbook");
        let p1 = px.add_elem(ab1, "person");
        px.add_text_elem(p1, "nm", "John");
        let tel_choice = px.add_prob(p1);
        let t1 = px.add_poss(tel_choice, 0.5);
        px.add_text_elem(t1, "tel", "1111");
        let t2 = px.add_poss(tel_choice, 0.5);
        px.add_text_elem(t2, "tel", "2222");
        let w2 = px.add_poss(root, 0.5);
        let ab2 = px.add_elem(w2, "addressbook");
        for tel in ["1111", "2222"] {
            let p = px.add_elem(ab2, "person");
            px.add_text_elem(p, "nm", "John");
            px.add_text_elem(p, "tel", tel);
        }
        px
    }

    #[test]
    fn confirming_an_answer_conditions_the_distribution() {
        let px = fig2();
        let q = parse_query("//person/tel").unwrap();
        // Prior: P(1111 in answer) = 0.25 + 0.5 = 0.75.
        let before = eval_px(&px, &q).unwrap();
        assert!((before.probability_of("1111") - 0.75).abs() < 1e-12);
        let (after, report) = apply_feedback(&px, &q, "1111", true, 10_000).unwrap();
        after.validate().unwrap();
        assert!((report.event_probability - 0.75).abs() < 1e-12);
        let posterior = eval_px(&after, &q).unwrap();
        assert!((posterior.probability_of("1111") - 1.0).abs() < 1e-9);
        // Uncertainty shrank.
        assert!(report.worlds_after < report.worlds_before);
    }

    #[test]
    fn rejecting_an_answer_removes_its_worlds() {
        let px = fig2();
        let q = parse_query("//person/tel").unwrap();
        let (after, report) = apply_feedback(&px, &q, "2222", false, 10_000).unwrap();
        after.validate().unwrap();
        let posterior = eval_px(&after, &q).unwrap();
        assert_eq!(posterior.probability_of("2222"), 0.0);
        assert!((posterior.probability_of("1111") - 1.0).abs() < 1e-9);
        // Only the John-with-1111 world survives: P was 0.25.
        assert!((report.event_probability - 0.25).abs() < 1e-12);
        assert!(after.is_certain());
    }

    #[test]
    fn contradictory_feedback_is_detected() {
        let px = fig2();
        let q = parse_query("//person/tel").unwrap();
        // "9999" never occurs: confirming it is a contradiction.
        assert_eq!(
            apply_feedback(&px, &q, "9999", true, 10_000).unwrap_err(),
            FeedbackError::Contradiction
        );
        // "John" occurs in every world of //person/nm: rejecting it is too.
        let qn = parse_query("//person/nm").unwrap();
        assert_eq!(
            apply_feedback(&px, &qn, "John", false, 10_000).unwrap_err(),
            FeedbackError::Contradiction
        );
    }

    #[test]
    fn apply_feedback_agrees_with_direct_rebuild() {
        // Whatever strategy apply_feedback picks, the conditioned world
        // distribution must equal the brute-force rebuild.
        let px = fig2();
        let q = parse_query("//person/tel").unwrap();
        let (chosen, _) = apply_feedback(&px, &q, "2222", false, 10_000).unwrap();
        let rebuilt = rebuild_from_worlds(&px, &q, "2222", false, 10_000).unwrap();
        let d1 = chosen.world_distribution(1000).unwrap();
        let d2 = rebuilt.world_distribution(1000).unwrap();
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.iter().zip(d2.iter()) {
            assert!((a.prob - b.prob).abs() < 1e-9);
            assert!(imprecise_xmlkit::deep_equal(&a.doc, &b.doc));
        }
    }

    #[test]
    fn single_choice_feedback_uses_local_conditioning() {
        // One binary choice: the answer event is a single atom, so the
        // compact local strategy applies and never enumerates worlds.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        let m = px.add_elem(cat, "movie");
        let t = px.add_elem(m, "title");
        let c = px.add_prob(t);
        let a = px.add_poss(c, 0.6);
        px.add_text(a, "Jaws");
        let b = px.add_poss(c, 0.4);
        px.add_text(b, "Jaws!");
        let q = parse_query("//movie/title").unwrap();
        let (after, report) = apply_feedback(&px, &q, "Jaws!", false, 10_000).unwrap();
        assert_eq!(report.method, Method::Local);
        assert!(after.is_certain());
        let posterior = eval_px(&after, &q).unwrap();
        assert!((posterior.probability_of("Jaws") - 1.0).abs() < 1e-12);
        // World cap of 0 would break a rebuild; local path never needs it.
        let (after2, report2) = apply_feedback(&px, &q, "Jaws", true, 0).unwrap();
        assert_eq!(report2.method, Method::Local);
        assert!(after2.is_certain());
    }

    #[test]
    fn feedback_loop_monotonically_reduces_uncertainty() {
        let mut px = fig2();
        let q = parse_query("//person/tel").unwrap();
        let mut last_worlds = px.world_count_f64();
        // Confirm 1111, which keeps worlds where some person has 1111.
        let (next, report) = apply_feedback(&px, &q, "1111", true, 10_000).unwrap();
        assert!(report.worlds_after <= last_worlds);
        px = next;
        last_worlds = px.world_count_f64();
        // Then reject 2222: only the single-John-1111 world remains.
        let (fin, report2) = apply_feedback(&px, &q, "2222", false, 10_000).unwrap();
        assert!(report2.worlds_after <= last_worlds);
        assert!(fin.is_certain());
    }

    #[test]
    fn decompose_handles_negated_atoms() {
        let px = fig2();
        let tel_choice = px.prob_nodes()[1];
        let e = Event::not(Event::Atom(ChoiceAtom {
            prob_node: tel_choice,
            poss_index: 0,
        }));
        let d = decompose_independent(&px, &e).expect("decomposable");
        assert_eq!(d[&tel_choice], BTreeSet::from([1u32]));
    }

    #[test]
    fn correlated_feedback_uses_event_expansion() {
        // Rejecting "2222" in Fig. 2 correlates the top-level world choice
        // with the nested telephone choice — not locally decomposable.
        let px = fig2();
        let q = parse_query("//person/tel").unwrap();
        let (after, report) = apply_feedback(&px, &q, "2222", false, 0).unwrap();
        // world_cap of 0 proves the rebuild fallback was never consulted.
        assert_eq!(report.method, Method::EventExpansion);
        after.validate().unwrap();
        assert!(after.is_certain());
        let posterior = eval_px(&after, &q).unwrap();
        assert!((posterior.probability_of("1111") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn event_expansion_matches_world_rebuild_distribution() {
        let px = fig2();
        let q = parse_query("//person/tel").unwrap();
        for (value, correct) in [("1111", true), ("2222", false), ("1111", false)] {
            let expanded = condition_by_expansion(&px, &verdict_event(&px, &q, value, correct))
                .expect("under cap");
            let rebuilt = rebuild_from_worlds(&px, &q, value, correct, 10_000).unwrap();
            let d1 = expanded.world_distribution(1000).unwrap();
            let d2 = rebuilt.world_distribution(1000).unwrap();
            assert_eq!(d1.len(), d2.len(), "{value} {correct}");
            for (a, b) in d1.iter().zip(d2.iter()) {
                assert!((a.prob - b.prob).abs() < 1e-9);
                assert!(imprecise_xmlkit::deep_equal(&a.doc, &b.doc));
            }
        }
    }

    #[test]
    fn event_expansion_keeps_unmentioned_choices_intact() {
        // A document with a choice the query never touches: conditioning
        // on the queried value must leave the other choice uncertain.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let movie = px.add_elem(w, "movie");
        let title = px.add_elem(movie, "title");
        let tc = px.add_prob(title);
        let t1 = px.add_poss(tc, 0.5);
        px.add_text(t1, "Jaws");
        let t2 = px.add_poss(tc, 0.5);
        px.add_text(t2, "Jaws 2");
        let year = px.add_elem(movie, "year");
        let yc = px.add_prob(year);
        let y1 = px.add_poss(yc, 0.6);
        px.add_text(y1, "1975");
        let y2 = px.add_poss(yc, 0.4);
        px.add_text(y2, "1978");
        let q = parse_query("//movie/title").unwrap();
        let (after, _) = apply_feedback(&px, &q, "Jaws", true, 0).unwrap();
        let years = eval_px(&after, &parse_query("//movie/year").unwrap()).unwrap();
        assert!((years.probability_of("1975") - 0.6).abs() < 1e-9);
        assert!((years.probability_of("1978") - 0.4).abs() < 1e-9);
        assert!((eval_px(&after, &q).unwrap().probability_of("Jaws") - 1.0).abs() < 1e-9);
    }

    fn verdict_event(px: &PxDoc, q: &Query, value: &str, correct: bool) -> Event {
        let e = answer_event(px, q, value).unwrap().unwrap_or(Event::False);
        if correct {
            e
        } else {
            Event::not(e)
        }
    }

    #[test]
    fn correlated_events_fall_back_to_rebuild() {
        // ¬(a=0 ∧ b=0) is not an independent product constraint.
        let px = fig2();
        let probs = px.prob_nodes();
        let e = Event::not(Event::and(
            Event::Atom(ChoiceAtom {
                prob_node: probs[0],
                poss_index: 0,
            }),
            Event::Atom(ChoiceAtom {
                prob_node: probs[1],
                poss_index: 0,
            }),
        ));
        assert!(decompose_independent(&px, &e).is_none());
    }
}
