//! Deterministic binary codec for persisted refinement state.
//!
//! Builds on the primitives in [`imprecise_pxml::codec`] and follows the
//! same contract: bit-exact floats (`to_bits`), fixed-width little-endian
//! integers, deterministic collection order (the only maps involved are
//! `BTreeMap`s), and typed errors — never panics — on malformed input.
//!
//! [`encode_refine_state`] deliberately does **not** serialise the two
//! source documents a [`RefineState`] holds: several catalog entries
//! typically share a source, so the store persists sources once as
//! content-addressed blobs and hands them back to
//! [`decode_refine_state`], which re-attaches them and validates every
//! frontier node id against the arenas it points into. Each decoded
//! [`ComponentFrontier`](crate::matching::ComponentFrontier) is also
//! checked against its component's content digest, so state that was
//! corrupted on disk (or mixed up across documents) surfaces as a
//! [`CodecError`] instead of resuming a wrong enumeration.

use crate::matching::{Candidate, Component};
use crate::pipeline::DocFrontier;
use crate::{BudgetPlan, IntegrationOptions, IntegrationStats, RefineState, TruncatedComponent};
use imprecise_pxml::codec::{put_f64, put_len, put_str, put_u8, CodecError, Reader};
use imprecise_pxml::PxDoc;
use std::collections::BTreeMap;
use std::sync::Arc;

fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u8(out, u8::from(v));
}

fn take_bool(r: &mut Reader<'_>, expected: &'static str) -> Result<bool, CodecError> {
    match r.take_u8(expected)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(r.err(expected)),
    }
}

fn put_counter_map(out: &mut Vec<u8>, map: &BTreeMap<String, usize>) {
    put_len(out, map.len());
    for (k, v) in map {
        put_str(out, k);
        put_len(out, *v);
    }
}

fn take_counter_map(
    r: &mut Reader<'_>,
    expected: &'static str,
) -> Result<BTreeMap<String, usize>, CodecError> {
    let n = r.take_len(expected)?;
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let k = r.take_str(expected)?;
        let v = r.take_len(expected)?;
        map.insert(k, v);
    }
    Ok(map)
}

/// Serialise a candidate-graph component. Appends to `out`.
pub(crate) fn encode_component(c: &Component, out: &mut Vec<u8>) {
    put_len(out, c.a_nodes.len());
    for &a in &c.a_nodes {
        put_len(out, a);
    }
    put_len(out, c.b_nodes.len());
    for &b in &c.b_nodes {
        put_len(out, b);
    }
    put_len(out, c.forced.len());
    for &(a, b) in &c.forced {
        put_len(out, a);
        put_len(out, b);
    }
    put_len(out, c.possible.len());
    for cand in &c.possible {
        put_len(out, cand.a);
        put_len(out, cand.b);
        put_f64(out, cand.p);
    }
}

/// Decode a component written by [`encode_component`].
pub(crate) fn decode_component(r: &mut Reader<'_>) -> Result<Component, CodecError> {
    let n_a = r.take_len("component a_nodes count")?;
    let mut a_nodes = Vec::with_capacity(n_a.min(1 << 20));
    for _ in 0..n_a {
        a_nodes.push(r.take_len("component a_node")?);
    }
    let n_b = r.take_len("component b_nodes count")?;
    let mut b_nodes = Vec::with_capacity(n_b.min(1 << 20));
    for _ in 0..n_b {
        b_nodes.push(r.take_len("component b_node")?);
    }
    let n_forced = r.take_len("forced pair count")?;
    let mut forced = Vec::with_capacity(n_forced.min(1 << 20));
    for _ in 0..n_forced {
        let a = r.take_len("forced pair a")?;
        let b = r.take_len("forced pair b")?;
        forced.push((a, b));
    }
    let n_possible = r.take_len("candidate count")?;
    let mut possible = Vec::with_capacity(n_possible.min(1 << 20));
    for _ in 0..n_possible {
        let a = r.take_len("candidate a")?;
        let b = r.take_len("candidate b")?;
        let p = r.take_f64("candidate probability")?;
        possible.push(Candidate { a, b, p });
    }
    Ok(Component {
        a_nodes,
        b_nodes,
        forced,
        possible,
    })
}

fn encode_options(o: &IntegrationOptions, out: &mut Vec<u8>) {
    put_f64(out, o.source_weights.0);
    put_f64(out, o.source_weights.1);
    put_len(out, o.max_matchings_per_component);
    match o.budget_plan {
        BudgetPlan::PerComponent => put_u8(out, 0),
        BudgetPlan::Total(total) => {
            put_u8(out, 1);
            put_len(out, total);
        }
    }
    match o.min_retained_mass {
        None => put_u8(out, 0),
        Some(m) => {
            put_u8(out, 1);
            put_f64(out, m);
        }
    }
    put_bool(out, o.strict_matchings);
    put_len(out, o.parallelism.raw());
    put_len(out, o.max_local_worlds);
    put_len(out, o.max_output_nodes);
    put_bool(out, o.simplify);
    match o.blocking {
        crate::BlockingMode::Off => put_u8(out, 0),
        crate::BlockingMode::RecallSafe => put_u8(out, 1),
        crate::BlockingMode::Heuristic { window } => {
            put_u8(out, 2);
            put_len(out, window);
        }
    }
}

fn decode_options(r: &mut Reader<'_>) -> Result<IntegrationOptions, CodecError> {
    let source_weights = (
        r.take_f64("source weight a")?,
        r.take_f64("source weight b")?,
    );
    let max_matchings_per_component = r.take_len("matching budget")?;
    let budget_plan = match r.take_u8("budget plan tag")? {
        0 => BudgetPlan::PerComponent,
        1 => BudgetPlan::Total(r.take_len("total budget")?),
        _ => return Err(r.err("budget plan tag")),
    };
    let min_retained_mass = match r.take_u8("min retained mass tag")? {
        0 => None,
        1 => Some(r.take_f64("min retained mass")?),
        _ => return Err(r.err("min retained mass tag")),
    };
    let strict_matchings = take_bool(r, "strict matchings flag")?;
    let parallelism = crate::Parallelism::new(r.take_len("parallelism")?);
    let max_local_worlds = r.take_len("max local worlds")?;
    let max_output_nodes = r.take_len("max output nodes")?;
    let simplify = take_bool(r, "simplify flag")?;
    let blocking = match r.take_u8("blocking mode tag")? {
        0 => crate::BlockingMode::Off,
        1 => crate::BlockingMode::RecallSafe,
        2 => crate::BlockingMode::Heuristic {
            window: r.take_len("blocking window")?,
        },
        _ => return Err(r.err("blocking mode tag")),
    };
    Ok(IntegrationOptions {
        source_weights,
        max_matchings_per_component,
        budget_plan,
        min_retained_mass,
        strict_matchings,
        parallelism,
        max_local_worlds,
        max_output_nodes,
        simplify,
        blocking,
    })
}

fn encode_stats(s: &IntegrationStats, out: &mut Vec<u8>) {
    put_len(out, s.pairs_judged);
    put_len(out, s.judged_match);
    put_len(out, s.judged_nonmatch);
    put_len(out, s.judged_possible);
    put_counter_map(out, &s.undecided_by_tag);
    put_counter_map(out, &s.rule_decisions);
    put_len(out, s.components_total);
    put_len(out, s.components_with_choice);
    put_len(out, s.matchings_enumerated);
    put_len(out, s.max_component_matchings);
    put_len(out, s.value_conflicts);
    put_len(out, s.attr_conflicts);
    put_len(out, s.demoted_forced);
    put_len(out, s.pairs_pruned);
    put_len(out, s.pairs_windowed_out);
    put_len(out, s.truncated_components.len());
    for t in &s.truncated_components {
        put_str(out, &t.path);
        put_len(out, t.live_pairs);
        put_len(out, t.kept);
        put_f64(out, t.discarded_mass);
        put_len(out, t.frontier_nodes);
        put_bool(out, t.resumable);
    }
    put_f64(out, s.max_discarded_mass);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<IntegrationStats, CodecError> {
    let pairs_judged = r.take_len("pairs judged")?;
    let judged_match = r.take_len("judged match")?;
    let judged_nonmatch = r.take_len("judged nonmatch")?;
    let judged_possible = r.take_len("judged possible")?;
    let undecided_by_tag = take_counter_map(r, "undecided-by-tag map")?;
    let rule_decisions = take_counter_map(r, "rule decision map")?;
    let components_total = r.take_len("components total")?;
    let components_with_choice = r.take_len("components with choice")?;
    let matchings_enumerated = r.take_len("matchings enumerated")?;
    let max_component_matchings = r.take_len("max component matchings")?;
    let value_conflicts = r.take_len("value conflicts")?;
    let attr_conflicts = r.take_len("attr conflicts")?;
    let demoted_forced = r.take_len("demoted forced")?;
    let pairs_pruned = r.take_len("pairs pruned")?;
    let pairs_windowed_out = r.take_len("pairs windowed out")?;
    let n_truncated = r.take_len("truncated component count")?;
    let mut truncated_components = Vec::with_capacity(n_truncated.min(1 << 20));
    for _ in 0..n_truncated {
        truncated_components.push(TruncatedComponent {
            path: r.take_str("truncation path")?,
            live_pairs: r.take_len("truncation live pairs")?,
            kept: r.take_len("truncation kept")?,
            discarded_mass: r.take_f64("truncation discarded mass")?,
            frontier_nodes: r.take_len("truncation frontier nodes")?,
            resumable: take_bool(r, "truncation resumable flag")?,
        });
    }
    let max_discarded_mass = r.take_f64("max discarded mass")?;
    Ok(IntegrationStats {
        pairs_judged,
        judged_match,
        judged_nonmatch,
        judged_possible,
        undecided_by_tag,
        rule_decisions,
        components_total,
        components_with_choice,
        matchings_enumerated,
        max_component_matchings,
        value_conflicts,
        attr_conflicts,
        demoted_forced,
        pairs_pruned,
        pairs_windowed_out,
        truncated_components,
        max_discarded_mass,
    })
}

/// Serialise a [`RefineState`] *without* its source documents (appends
/// to `out`). The caller persists the sources separately — typically as
/// content-deduplicated blobs, since many catalog entries share them —
/// and hands them back to [`decode_refine_state`].
pub fn encode_refine_state(state: &RefineState, out: &mut Vec<u8>) {
    encode_stats(&state.stats, out);
    encode_options(&state.options, out);
    put_len(out, state.emitted_nodes);
    put_len(out, state.frontiers.len());
    for f in &state.frontiers {
        f.encode(out);
    }
}

/// Decode a [`RefineState`] written by [`encode_refine_state`],
/// re-attaching `sources` (the documents the state was captured
/// against, in the same order) to the restored state.
///
/// `doc_arena_len` is the arena length of the integrated document this
/// state belongs to. Every frontier node id is validated against the
/// arena it points into and every frontier against its component's
/// content digest; a mismatch — state paired with the wrong document or
/// sources, or bytes corrupted on disk — is a typed [`CodecError`].
pub fn decode_refine_state(
    r: &mut Reader<'_>,
    sources: (Arc<PxDoc>, Arc<PxDoc>),
    doc_arena_len: usize,
) -> Result<RefineState, CodecError> {
    let stats = decode_stats(r)?;
    let options = decode_options(r)?;
    let emitted_nodes = r.take_len("emitted node count")?;
    let n_frontiers = r.take_len("frontier count")?;
    let (a_len, b_len) = (sources.0.arena_len(), sources.1.arena_len());
    let mut frontiers = Vec::with_capacity(n_frontiers.min(1 << 20));
    for _ in 0..n_frontiers {
        frontiers.push(DocFrontier::decode(r, doc_arena_len, a_len, b_len)?);
    }
    Ok(RefineState {
        stats,
        frontiers,
        sources,
        options,
        emitted_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{integrate_px, IntegrationOutcome, RefineOptions};
    use imprecise_oracle::Oracle;
    use imprecise_pxml::from_xml;
    use imprecise_xmlkit::parse;

    fn sources() -> (Arc<PxDoc>, Arc<PxDoc>) {
        // Two address books with enough confusable persons to force a
        // multi-matching component under a tight budget.
        let a = parse(
            "<addressbook>\
             <person><nm>John</nm><tel>1111</tel></person>\
             <person><nm>Jon</nm><tel>2222</tel></person>\
             <person><nm>Johnny</nm><tel>3333</tel></person>\
             </addressbook>",
        )
        .expect("valid xml");
        let b = parse(
            "<addressbook>\
             <person><nm>John</nm><tel>4444</tel></person>\
             <person><nm>Jhon</nm><tel>5555</tel></person>\
             <person><nm>Jonny</nm><tel>6666</tel></person>\
             </addressbook>",
        )
        .expect("valid xml");
        (Arc::new(from_xml(&a)), Arc::new(from_xml(&b)))
    }

    fn budgeted_outcome(sources: &(Arc<PxDoc>, Arc<PxDoc>)) -> IntegrationOutcome {
        let oracle = Oracle::uninformed();
        let options = IntegrationOptions {
            max_matchings_per_component: 2,
            ..IntegrationOptions::default()
        };
        integrate_px(&sources.0, &sources.1, &oracle, None, &options).expect("integrates")
    }

    fn roundtrip(
        state: &RefineState,
        srcs: (Arc<PxDoc>, Arc<PxDoc>),
        doc_len: usize,
    ) -> RefineState {
        let mut bytes = Vec::new();
        encode_refine_state(state, &mut bytes);
        let mut r = Reader::new(&bytes);
        let decoded = decode_refine_state(&mut r, srcs, doc_len).expect("decodes");
        r.finish().expect("consumed exactly");
        decoded
    }

    #[test]
    fn refine_state_roundtrip_resumes_bit_for_bit() {
        let srcs = sources();
        let oracle = Oracle::uninformed();

        // Exhaustive reference.
        let exact = integrate_px(
            &srcs.0,
            &srcs.1,
            &oracle,
            None,
            &IntegrationOptions::default(),
        )
        .expect("integrates");

        // Round-trip the refine state through the codec, then refine the
        // restored state to exhaustion.
        let mut budgeted = budgeted_outcome(&srcs);
        assert!(
            budgeted.is_refinable(),
            "test premise: the budget must truncate"
        );
        let state = budgeted
            .detach_refine_state()
            .expect("truncated outcome carries state");
        let doc = budgeted.doc;
        let decoded = roundtrip(&state, srcs.clone(), doc.arena_len());
        assert_eq!(decoded.open_components(), state.open_components());
        assert_eq!(decoded.emitted_nodes(), state.emitted_nodes());
        assert_eq!(
            decoded.max_discarded_mass().to_bits(),
            state.max_discarded_mass().to_bits()
        );
        let mut outcome = IntegrationOutcome::with_refine_state(doc, decoded);
        while outcome.is_refinable() {
            outcome
                .refine(&oracle, None, &RefineOptions::to_exhaustive())
                .expect("refines");
        }
        assert_eq!(outcome.doc.fingerprint(), exact.doc.fingerprint());
    }

    #[test]
    fn refine_state_encoding_is_deterministic() {
        let srcs = sources();
        let s1 = budgeted_outcome(&srcs).detach_refine_state();
        let s2 = budgeted_outcome(&srcs).detach_refine_state();
        let (mut b1, mut b2) = (Vec::new(), Vec::new());
        encode_refine_state(&s1.expect("state"), &mut b1);
        encode_refine_state(&s2.expect("state"), &mut b2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn truncated_refine_state_is_a_typed_error() {
        let srcs = sources();
        let mut budgeted = budgeted_outcome(&srcs);
        let state = budgeted.detach_refine_state().expect("state");
        let mut bytes = Vec::new();
        encode_refine_state(&state, &mut bytes);
        let doc_len = budgeted.doc.arena_len();
        // Cutting anywhere must fail cleanly (decode error or trailing
        // bytes), never panic.
        for cut in (0..bytes.len()).step_by(7) {
            let mut r = Reader::new(&bytes[..cut]);
            let result = decode_refine_state(&mut r, srcs.clone(), doc_len)
                .map(|_| ())
                .and_then(|()| r.finish());
            assert!(result.is_err(), "truncation at {cut} must not decode");
        }
    }

    #[test]
    fn wrong_sources_are_rejected_by_digest_or_bounds() {
        let srcs = sources();
        let mut budgeted = budgeted_outcome(&srcs);
        let state = budgeted.detach_refine_state().expect("state");
        let mut bytes = Vec::new();
        encode_refine_state(&state, &mut bytes);
        // Pair the state with a tiny unrelated source: the group node
        // ids no longer fit its arena.
        let tiny = parse("<addressbook/>").expect("valid xml");
        let tiny = Arc::new(from_xml(&tiny));
        let mut r = Reader::new(&bytes);
        assert!(
            decode_refine_state(&mut r, (tiny.clone(), tiny), budgeted.doc.arena_len()).is_err(),
            "mismatched sources must be rejected"
        );
    }
}
