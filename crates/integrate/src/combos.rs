//! Local enumeration of choice points inside input child lists.
//!
//! When an input document is already probabilistic (incremental
//! integration, §I's "improved incrementally while the integrated source is
//! being used"), a child list may contain probability nodes. Matching needs
//! concrete child lists, so the engine enumerates the *local* alternative
//! combinations of the list — the cross product of the list's choice
//! points, flattened recursively — and integrates each combination.

use imprecise_pxml::{PxDoc, PxNodeId, PxNodeKind};

/// Error: local enumeration exceeded the configured cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalWorldsOverflow {
    /// The cap that was exceeded.
    pub cap: usize,
}

/// All alternative concrete versions of an item list, with probabilities.
///
/// Items that are regular nodes stay; probability nodes expand into their
/// possibilities (recursively, since a possibility may itself directly
/// contain nested choice points). Order is preserved. The weights of the
/// returned combinations sum to 1.
pub fn local_combos(
    doc: &PxDoc,
    items: &[PxNodeId],
    cap: usize,
) -> Result<Vec<(Vec<PxNodeId>, f64)>, LocalWorldsOverflow> {
    let mut acc: Vec<(Vec<PxNodeId>, f64)> = vec![(Vec::new(), 1.0)];
    for &item in items {
        match doc.kind(item) {
            PxNodeKind::Prob => {
                let alternatives = prob_alternatives(doc, item, cap)?;
                let mut next = Vec::with_capacity(acc.len().saturating_mul(alternatives.len()));
                for (row, rw) in &acc {
                    for (alt_items, w) in &alternatives {
                        let mut row2 = row.clone();
                        row2.extend_from_slice(alt_items);
                        next.push((row2, rw * w));
                    }
                }
                acc = next;
                if acc.len() > cap {
                    return Err(LocalWorldsOverflow { cap });
                }
            }
            // lint:allow(panic-in-lib, statically unreachable: poss node in a child item list)
            PxNodeKind::Poss(_) => unreachable!("poss node in a child item list"),
            _ => {
                for (row, _) in &mut acc {
                    row.push(item);
                }
            }
        }
    }
    Ok(acc)
}

/// The flattened alternatives of one probability node: each alternative is
/// a list of regular nodes with its probability.
pub fn prob_alternatives(
    doc: &PxDoc,
    prob: PxNodeId,
    cap: usize,
) -> Result<Vec<(Vec<PxNodeId>, f64)>, LocalWorldsOverflow> {
    debug_assert!(doc.is_prob(prob));
    let mut out: Vec<(Vec<PxNodeId>, f64)> = Vec::new();
    for &poss in doc.children(prob) {
        // lint:allow(expect-in-lib, holds by construction: prob child is poss)
        let w = doc.poss_prob(poss).expect("prob child is poss");
        let inner = local_combos(doc, doc.children(poss), cap)?;
        for (items, iw) in inner {
            out.push((items, w * iw));
            if out.len() > cap {
                return Err(LocalWorldsOverflow { cap });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imprecise_pxml::PxDoc;

    /// doc element with children: <x/>, prob{0.4: <y1/>; 0.6: <y2/>}, <z/>.
    fn simple() -> (PxDoc, PxNodeId) {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        px.add_elem(e, "x");
        let p = px.add_prob(e);
        let p1 = px.add_poss(p, 0.4);
        px.add_elem(p1, "y1");
        let p2 = px.add_poss(p, 0.6);
        px.add_elem(p2, "y2");
        px.add_elem(e, "z");
        (px, e)
    }

    #[test]
    fn certain_list_is_single_combo() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        px.add_elem(e, "x");
        px.add_elem(e, "y");
        let combos = local_combos(&px, px.children(e), 100).unwrap();
        assert_eq!(combos.len(), 1);
        assert_eq!(combos[0].0.len(), 2);
        assert!((combos[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_choice_expands_in_order() {
        let (px, e) = simple();
        let combos = local_combos(&px, px.children(e), 100).unwrap();
        assert_eq!(combos.len(), 2);
        let tags0: Vec<&str> = combos[0].0.iter().filter_map(|&n| px.tag(n)).collect();
        assert_eq!(tags0, vec!["x", "y1", "z"]);
        assert!((combos[0].1 - 0.4).abs() < 1e-12);
        let tags1: Vec<&str> = combos[1].0.iter().filter_map(|&n| px.tag(n)).collect();
        assert_eq!(tags1, vec!["x", "y2", "z"]);
        assert!((combos[1].1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn two_choices_cross_product() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        for (t1, t2) in [("a1", "a2"), ("b1", "b2")] {
            let p = px.add_prob(e);
            let x = px.add_poss(p, 0.5);
            px.add_elem(x, t1);
            let y = px.add_poss(p, 0.5);
            px.add_elem(y, t2);
        }
        let combos = local_combos(&px, px.children(e), 100).unwrap();
        assert_eq!(combos.len(), 4);
        let total: f64 = combos.iter().map(|c| c.1).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nested_choices_flatten() {
        // prob{0.5: prob{0.5: <a/>, 0.5: <b/>}; 0.5: <c/>} → 3 alternatives.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let outer = px.add_prob(e);
        let o1 = px.add_poss(outer, 0.5);
        let inner = px.add_prob(o1);
        let i1 = px.add_poss(inner, 0.5);
        px.add_elem(i1, "a");
        let i2 = px.add_poss(inner, 0.5);
        px.add_elem(i2, "b");
        let o2 = px.add_poss(outer, 0.5);
        px.add_elem(o2, "c");
        let combos = local_combos(&px, px.children(e), 100).unwrap();
        assert_eq!(combos.len(), 3);
        let weights: Vec<f64> = combos.iter().map(|c| c.1).collect();
        assert!((weights[0] - 0.25).abs() < 1e-12);
        assert!((weights[1] - 0.25).abs() < 1e-12);
        assert!((weights[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn possibility_with_empty_content_yields_empty_items() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let p = px.add_prob(e);
        let with = px.add_poss(p, 0.5);
        px.add_elem(with, "present");
        let _without = px.add_poss(p, 0.5);
        let combos = local_combos(&px, px.children(e), 100).unwrap();
        assert_eq!(combos.len(), 2);
        assert_eq!(combos[0].0.len(), 1);
        assert!(combos[1].0.is_empty());
    }

    #[test]
    fn cap_enforced() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        for _ in 0..6 {
            let p = px.add_prob(e);
            for weight in [0.5, 0.5] {
                let poss = px.add_poss(p, weight);
                px.add_elem(poss, "v");
            }
        }
        // 2^6 = 64 combos > cap 32.
        assert_eq!(
            local_combos(&px, px.children(e), 32).unwrap_err(),
            LocalWorldsOverflow { cap: 32 }
        );
    }
}
