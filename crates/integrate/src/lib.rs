//! # imprecise-integrate — probabilistic XML integration
//!
//! §III of the IMPrECISE paper: *"The probabilistic integration process is
//! executed in a recursive fashion starting from the roots of both source
//! documents. The integration function tries to match the child nodes of
//! both sources. Two child nodes match if they refer to the same rwo. …
//! In many cases, this can't be established with certainty, so the system
//! needs to consider two cases."*
//!
//! The engine works bottom-up per element pair:
//!
//! 1. Child elements of two matched parents are grouped by tag.
//! 2. For a tag the schema declares single-valued, one element per side is
//!    merged unconditionally (the parent identity implies the child
//!    identity: a movie has exactly one real title); conflicting text
//!    values become a mutually exclusive choice (this is exactly the
//!    paper's "persons only have one phone number" pruning).
//! 3. For multi-valued tags, every cross-source pair is judged by the
//!    Oracle. Certain non-matches are discarded, certain matches forced,
//!    undecided pairs enumerated: each injective set of undecided pairs
//!    (a *matching*) becomes one possibility, weighted by
//!    ∏ p · ∏ (1 − p) over taken/not-taken candidate pairs and normalised.
//!    The "no two siblings in one source refer to the same rwo" generic
//!    rule is what makes matchings injective.
//! 4. Connected components of the candidate graph have independent
//!    matchings and get independent probability nodes (the *factored*
//!    representation; the classic engine's unfactored equivalent is
//!    available analytically via `imprecise-pxml`).
//!
//! ## The staged pipeline and matching budgets
//!
//! Step 3 is where the paper's "exploding number of theoretical
//! possibilities" lives, and it runs as an explicit four-stage pipeline
//! per tag group (see [`pipeline`]):
//!
//! 1. **candidate generation** — Oracle judgments become forced pairs
//!    and undecided [`Candidate`]s;
//! 2. **component split** — [`matching::split_components`] factors the
//!    candidate graph;
//! 3. **budgeted matching enumeration** — a best-first branch-and-bound
//!    search yields each component's matchings in descending weight and
//!    stops at the configured budget, renormalising the kept matchings
//!    and recording the *discarded probability mass* in
//!    [`IntegrationStats`] (good is good enough: keep the heavy
//!    matchings, account honestly for the tail). Independent components
//!    run in parallel under [`IntegrationOptions::parallelism`];
//! 4. **merge** — the builder consumes per-component
//!    [`pipeline::ComponentOutcome`]s, agnostic to how (or on how many
//!    threads) the matchings were produced.
//!
//! Strict mode ([`IntegrationOptions::strict_matchings`]) restores the
//! historical fail-fast behaviour: a component over budget aborts
//! integration with [`IntegrateError::TooManyMatchings`].
//!
//! Inputs may already be probabilistic (incremental integration): choice
//! points encountered in a child list are locally enumerated (with a cap)
//! and the alternatives integrated per combination.
//!
//! ## Example: the paper's Fig. 2
//!
//! ```
//! use imprecise_integrate::{integrate_xml, IntegrationOptions};
//! use imprecise_oracle::presets::addressbook_oracle;
//! use imprecise_xmlkit::{parse, Schema};
//!
//! let a = parse("<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>").unwrap();
//! let b = parse("<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>").unwrap();
//! let schema = Schema::parse(
//!     "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
//!      <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>").unwrap();
//! let oracle = addressbook_oracle();
//! let result = integrate_xml(&a, &b, &oracle, Some(&schema), &IntegrationOptions::default()).unwrap();
//! // One person with an uncertain phone, or two persons: 3 possible worlds.
//! assert_eq!(result.doc.world_count(), 3);
//! ```

pub mod combos;
pub mod matching;
mod merge;
pub mod pipeline;

pub use matching::{Candidate, Component, MatchBudget, Matching, TooManyMatchings};
pub use pipeline::ComponentOutcome;

use imprecise_oracle::Oracle;
use imprecise_pxml::{from_xml, PxDoc, PxInvariantError};
use imprecise_xmlkit::{Schema, XmlDoc};
use std::collections::BTreeMap;
use std::fmt;

/// Tuning knobs of the integration engine.
#[derive(Debug, Clone, Copy)]
pub struct IntegrationOptions {
    /// Relative trust in (source a, source b), used to weight value
    /// conflicts and attribute conflicts. Normalised internally.
    pub source_weights: (f64, f64),
    /// Matching budget: at most this many matchings are kept per
    /// connected component of the candidate graph. Budgeted mode (the
    /// default) keeps the heaviest ones and records the discarded
    /// probability mass; strict mode errors instead.
    pub max_matchings_per_component: usize,
    /// Optional early stop for budgeted enumeration: a component's
    /// enumeration ends as soon as the kept matchings are guaranteed to
    /// cover this fraction of the component's probability mass. `None`
    /// enumerates up to `max_matchings_per_component`.
    pub min_retained_mass: Option<f64>,
    /// Fail with [`IntegrateError::TooManyMatchings`] instead of
    /// truncating when a component exceeds the budget (the historical
    /// behaviour; exact or nothing).
    pub strict_matchings: bool,
    /// Worker threads for per-component matching enumeration: `1` is
    /// serial, `0` uses all available cores. Results are deterministic
    /// regardless of the setting — components are independent and
    /// reassembled in document order.
    pub parallelism: usize,
    /// Hard cap on locally enumerated alternative combinations when an
    /// input child list contains choice points (incremental integration).
    pub max_local_worlds: usize,
    /// Hard cap on the total size of the output arena (a memory guard for
    /// parameter sweeps; exceeded ⇒ [`IntegrateError::OutputTooLarge`]).
    pub max_output_nodes: usize,
    /// Run pxml simplification on the result (drop zero-probability
    /// possibilities, merge equal ones, collapse certain choice points).
    pub simplify: bool,
}

impl Default for IntegrationOptions {
    fn default() -> Self {
        IntegrationOptions {
            source_weights: (0.5, 0.5),
            max_matchings_per_component: 1 << 18,
            min_retained_mass: None,
            strict_matchings: false,
            parallelism: 1,
            max_local_worlds: 4096,
            max_output_nodes: 40_000_000,
            simplify: true,
        }
    }
}

impl IntegrationOptions {
    /// The per-component matching budget these options describe.
    pub fn match_budget(&self) -> MatchBudget {
        MatchBudget {
            max_matchings: self.max_matchings_per_component,
            min_retained_mass: self.min_retained_mass,
        }
    }

    /// Check the options for nonsensical values (every integration entry
    /// point calls this): a `min_retained_mass` outside `(0, 1]` would
    /// silently discard almost everything (≤ 0) or silently never stop
    /// (> 1), and a zero matching budget cannot keep the one matching
    /// every component has.
    pub fn validate(&self) -> Result<(), IntegrateError> {
        if let Some(t) = self.min_retained_mass {
            if !(t > 0.0 && t <= 1.0) {
                return Err(IntegrateError::InvalidOptions(format!(
                    "min_retained_mass must be in (0, 1], got {t}"
                )));
            }
        }
        if self.max_matchings_per_component == 0 {
            return Err(IntegrateError::InvalidOptions(
                "max_matchings_per_component must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Why an integration was aborted.
#[derive(Debug, Clone, PartialEq)]
pub enum IntegrateError {
    /// The two documents have differently tagged roots — the paper assumes
    /// schemas are already aligned, so this is a usage error.
    RootTagMismatch {
        /// Root tag of source a.
        a: String,
        /// Root tag of source b.
        b: String,
    },
    /// A candidate-graph component admits more matchings than the cap
    /// (strict mode only; budgeted mode truncates and records the
    /// discarded mass instead).
    TooManyMatchings {
        /// Number of undecided candidate pairs in the component.
        component_pairs: usize,
        /// The configured cap.
        cap: usize,
        /// Element path of the offending component's tag group
        /// (e.g. `/catalog/movie`).
        path: String,
    },
    /// [`integrate_many_px`] was called with no sources.
    NoSources,
    /// The [`IntegrationOptions`] contain a nonsensical value (see
    /// [`IntegrationOptions::validate`]).
    InvalidOptions(String),
    /// Local enumeration of input choice points exceeded the cap.
    TooManyLocalWorlds {
        /// The configured cap.
        cap: usize,
    },
    /// The output grew beyond [`IntegrationOptions::max_output_nodes`].
    OutputTooLarge {
        /// The configured cap.
        cap: usize,
    },
    /// An input document violates the probabilistic XML invariants.
    InvalidInput(PxInvariantError),
}

impl fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrateError::RootTagMismatch { a, b } => {
                write!(f, "root tags differ: <{a}> vs <{b}> (schemas not aligned?)")
            }
            IntegrateError::TooManyMatchings {
                component_pairs,
                cap,
                path,
            } => {
                let at = if path.is_empty() {
                    String::new()
                } else {
                    format!(" at {path}")
                };
                write!(
                    f,
                    "a component with {component_pairs} undecided pairs{at} exceeds {cap} \
                     matchings; add rules to let the Oracle make absolute decisions, or \
                     disable strict matching to integrate under a budget"
                )
            }
            IntegrateError::NoSources => {
                write!(f, "integrate_many called with no source documents")
            }
            IntegrateError::InvalidOptions(why) => {
                write!(f, "invalid integration options: {why}")
            }
            IntegrateError::TooManyLocalWorlds { cap } => {
                write!(f, "more than {cap} local alternative combinations")
            }
            IntegrateError::OutputTooLarge { cap } => {
                write!(f, "integration result exceeds {cap} nodes")
            }
            IntegrateError::InvalidInput(e) => write!(f, "invalid input document: {e}"),
        }
    }
}

impl std::error::Error for IntegrateError {}

impl From<PxInvariantError> for IntegrateError {
    fn from(e: PxInvariantError) -> Self {
        IntegrateError::InvalidInput(e)
    }
}

/// One component whose matching enumeration was cut short by the budget.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedComponent {
    /// Element path of the component's tag group (e.g. `/catalog/movie`).
    pub path: String,
    /// Live undecided pairs in the component.
    pub live_pairs: usize,
    /// Matchings kept (the heaviest ones).
    pub kept: usize,
    /// Probability mass dropped with the unenumerated matchings — a
    /// conservative upper bound; the kept matchings were renormalised.
    pub discarded_mass: f64,
}

/// Counters describing what the engine (and its Oracle) did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntegrationStats {
    /// Distinct element pairs submitted to the Oracle.
    pub pairs_judged: usize,
    /// … of which certainly matched.
    pub judged_match: usize,
    /// … of which certainly non-matched.
    pub judged_nonmatch: usize,
    /// … of which stayed undecided (the paper's "occasions the Oracle
    /// could not make an absolute decision").
    pub judged_possible: usize,
    /// Undecided pairs broken down by element tag (movie-level confusion
    /// vs nested value confusion such as director-name conventions).
    pub undecided_by_tag: BTreeMap<String, usize>,
    /// Absolute decisions per rule name.
    pub rule_decisions: BTreeMap<String, usize>,
    /// Tag-group components processed.
    pub components_total: usize,
    /// … of which required a choice point (more than one matching).
    pub components_with_choice: usize,
    /// Total matchings enumerated across all components.
    pub matchings_enumerated: usize,
    /// Largest per-component matching count seen.
    pub max_component_matchings: usize,
    /// Text-value conflicts turned into choices.
    pub value_conflicts: usize,
    /// Attribute conflicts turned into element-variant choices.
    pub attr_conflicts: usize,
    /// Forced (certain-match) pairs demoted to undecided because they
    /// conflicted with another forced pair on the same element
    /// (contradictory knowledge in the sources).
    pub demoted_forced: usize,
    /// Components whose matching enumeration hit the budget: what was
    /// dropped, where, and how much mass it carried.
    pub truncated_components: Vec<TruncatedComponent>,
    /// Largest per-component discarded mass (0.0 when nothing was
    /// truncated): the coarsest fidelity indicator of a budgeted run.
    pub max_discarded_mass: f64,
}

impl IntegrationStats {
    /// Number of components whose enumeration was cut short.
    pub fn components_truncated(&self) -> usize {
        self.truncated_components.len()
    }

    /// True when every component was enumerated exhaustively (the
    /// result is the exact integration, budget or not).
    pub fn is_exact(&self) -> bool {
        self.truncated_components.is_empty()
    }
}

/// An integration result: the probabilistic document plus statistics.
#[derive(Debug, Clone)]
pub struct Integration {
    /// The integrated probabilistic document.
    pub doc: PxDoc,
    /// What happened during integration.
    pub stats: IntegrationStats,
}

/// Integrate two certain XML documents.
pub fn integrate_xml(
    a: &XmlDoc,
    b: &XmlDoc,
    oracle: &Oracle,
    schema: Option<&Schema>,
    options: &IntegrationOptions,
) -> Result<Integration, IntegrateError> {
    let pa = from_xml(a);
    let pb = from_xml(b);
    integrate_px(&pa, &pb, oracle, schema, options)
}

/// Integrate two (possibly already probabilistic) documents.
pub fn integrate_px(
    a: &PxDoc,
    b: &PxDoc,
    oracle: &Oracle,
    schema: Option<&Schema>,
    options: &IntegrationOptions,
) -> Result<Integration, IntegrateError> {
    options.validate()?;
    a.validate()?;
    b.validate()?;
    let mut builder = merge::Builder::new(a, b, oracle, schema, options);
    builder.integrate_roots()?;
    let (mut doc, stats) = builder.finish();
    if options.simplify {
        doc.simplify();
    }
    Ok(Integration { doc, stats })
}

/// The result of an N-source fold: the integrated document plus the
/// statistics of each pairwise step, in fold order.
#[derive(Debug, Clone)]
pub struct ManyIntegration {
    /// The integrated probabilistic document.
    pub doc: PxDoc,
    /// One [`IntegrationStats`] per pairwise integration
    /// (`sources.len() - 1` entries; empty for a single source).
    pub steps: Vec<IntegrationStats>,
}

/// Integrate any number of sources by left-fold:
/// `((s₀ ⊕ s₁) ⊕ s₂) ⊕ …` — the paper's incremental integration loop
/// ("improved incrementally while the integrated source is being used")
/// run to a fixpoint over a batch of sources.
///
/// Each intermediate result is already probabilistic, so later steps
/// exercise the local-worlds machinery; budgets apply per step. Errors
/// with [`IntegrateError::NoSources`] on an empty slice; a single
/// source is validated and returned unchanged.
pub fn integrate_many_px(
    sources: &[&PxDoc],
    oracle: &Oracle,
    schema: Option<&Schema>,
    options: &IntegrationOptions,
) -> Result<ManyIntegration, IntegrateError> {
    options.validate()?;
    let (first, rest) = sources.split_first().ok_or(IntegrateError::NoSources)?;
    first.validate()?;
    let mut doc: PxDoc = (*first).clone();
    let mut steps = Vec::with_capacity(rest.len());
    for source in rest {
        let integration = integrate_px(&doc, source, oracle, schema, options)?;
        doc = integration.doc;
        steps.push(integration.stats);
    }
    Ok(ManyIntegration { doc, steps })
}
