//! # imprecise-integrate — probabilistic XML integration
//!
//! §III of the IMPrECISE paper: *"The probabilistic integration process is
//! executed in a recursive fashion starting from the roots of both source
//! documents. The integration function tries to match the child nodes of
//! both sources. Two child nodes match if they refer to the same rwo. …
//! In many cases, this can't be established with certainty, so the system
//! needs to consider two cases."*
//!
//! The engine works bottom-up per element pair:
//!
//! 1. Child elements of two matched parents are grouped by tag.
//! 2. For a tag the schema declares single-valued, one element per side is
//!    merged unconditionally (the parent identity implies the child
//!    identity: a movie has exactly one real title); conflicting text
//!    values become a mutually exclusive choice (this is exactly the
//!    paper's "persons only have one phone number" pruning).
//! 3. For multi-valued tags, every cross-source pair is judged by the
//!    Oracle. Certain non-matches are discarded, certain matches forced,
//!    undecided pairs enumerated: each injective set of undecided pairs
//!    (a *matching*) becomes one possibility, weighted by
//!    ∏ p · ∏ (1 − p) over taken/not-taken candidate pairs and normalised.
//!    The "no two siblings in one source refer to the same rwo" generic
//!    rule is what makes matchings injective.
//! 4. Connected components of the candidate graph have independent
//!    matchings and get independent probability nodes (the *factored*
//!    representation; the classic engine's unfactored equivalent is
//!    available analytically via `imprecise-pxml`).
//!
//! ## The staged pipeline and matching budgets
//!
//! Step 3 is where the paper's "exploding number of theoretical
//! possibilities" lives, and it runs as an explicit four-stage pipeline
//! per tag group (see [`pipeline`]):
//!
//! 1. **candidate generation** — Oracle judgments become forced pairs
//!    and undecided [`Candidate`]s;
//! 2. **component split** — [`matching::split_components`] factors the
//!    candidate graph;
//! 3. **budgeted matching enumeration** — a best-first branch-and-bound
//!    search yields each component's matchings in descending weight and
//!    stops at the configured budget, renormalising the kept matchings
//!    and recording the *discarded probability mass* in
//!    [`IntegrationStats`] (good is good enough: keep the heavy
//!    matchings, account honestly for the tail). Independent components
//!    run in parallel under [`IntegrationOptions::parallelism`];
//! 4. **merge** — the builder consumes per-component
//!    [`pipeline::ComponentOutcome`]s, agnostic to how (or on how many
//!    threads) the matchings were produced.
//!
//! Strict mode ([`IntegrationOptions::strict_matchings`]) restores the
//! historical fail-fast behaviour: a component over budget aborts
//! integration with [`IntegrateError::TooManyMatchings`].
//!
//! ## Resumable integration (pay-as-you-go refinement)
//!
//! A budgeted run does not discard its search state: every truncated
//! component's best-first frontier — open prefix decisions, admissible
//! bounds, retained/discarded mass — persists as a
//! [`ComponentFrontier`] inside the returned [`IntegrationOutcome`].
//! [`IntegrationOutcome::refine`] resumes those searches with more
//! budget, largest discarded mass first, and re-emits only the refined
//! components' subtrees into the existing document (grafting into the
//! arena through the merge builder, not rebuilding the document).
//!
//! The invariant that makes this safe: budgeted-then-refined-to-
//! unlimited is **byte-identical** (document fingerprint) to a one-shot
//! exhaustive integration, and `retained + discarded == 1` per
//! component at every refinement step — property-tested in
//! `tests/prop_refine.rs`. Budget *planning* is the third knob:
//! [`BudgetPlan::Total`] splits one total budget across a tag group's
//! components proportionally to their live-pair counts
//! ([`pipeline::plan_budgets`]).
//!
//! Inputs may already be probabilistic (incremental integration): choice
//! points encountered in a child list are locally enumerated (with a cap)
//! and the alternatives integrated per combination.
//!
//! ## Example: the paper's Fig. 2
//!
//! ```
//! use imprecise_integrate::{integrate_xml, IntegrationOptions};
//! use imprecise_oracle::presets::addressbook_oracle;
//! use imprecise_xmlkit::{parse, Schema};
//!
//! let a = parse("<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>").unwrap();
//! let b = parse("<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>").unwrap();
//! let schema = Schema::parse(
//!     "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
//!      <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>").unwrap();
//! let oracle = addressbook_oracle();
//! let result = integrate_xml(&a, &b, &oracle, Some(&schema), &IntegrationOptions::default()).unwrap();
//! // One person with an uncertain phone, or two persons: 3 possible worlds.
//! assert_eq!(result.doc.world_count(), 3);
//! ```

pub mod codec;
pub mod combos;
pub mod matching;
mod merge;
pub mod pipeline;
pub mod verify;

pub use matching::{
    Candidate, Component, ComponentFrontier, FrontierEnumerator, FrontierMismatch, MatchBudget,
    Matching, Parallelism, SearchStats, TooManyMatchings,
};
pub use pipeline::{block_candidates, BlockedPairs, ComponentOutcome, DocFrontier};
pub use verify::{verify_frontier, InvariantViolation};

use imprecise_oracle::Oracle;
use imprecise_pxml::{from_xml, PxDoc, PxInvariantError, PxNodeId};
use imprecise_xmlkit::{Schema, XmlDoc};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// How the matching budget is applied across the components of a tag
/// group (the budget-planning knob of the pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetPlan {
    /// [`IntegrationOptions::max_matchings_per_component`] caps every
    /// component independently (the historical behaviour).
    PerComponent,
    /// Treat this value as a *total* matching budget for each tag group,
    /// distributed across the group's components proportionally to
    /// their live-pair counts (see [`pipeline::plan_budgets`]): big
    /// ambiguous components get most of the budget, trivial ones the
    /// guaranteed minimum of 1. In this mode
    /// `max_matchings_per_component` is ignored.
    Total(usize),
}

/// How candidate generation prunes cross-source pairs before the Oracle
/// sees them (see [`pipeline::block_candidates`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockingMode {
    /// Judge every cross pair (the historical behaviour).
    #[default]
    Off,
    /// Prune only pairs the oracle-derived [`imprecise_oracle::BlockingPlan`]
    /// proves are `NonMatch`es: the result is bit-identical to [`Off`](Self::Off)
    /// (property-tested), only faster. Pruned counts land in
    /// [`IntegrationStats::pairs_pruned`].
    RecallSafe,
    /// [`RecallSafe`](Self::RecallSafe) plus sorted-neighbourhood
    /// windowing: elements are ordered by a normalised key and only
    /// pairs within `window` positions of each other are considered.
    /// This can drop true matches (reported in
    /// [`IntegrationStats::pairs_windowed_out`]) in exchange for strictly
    /// linear pair generation.
    Heuristic {
        /// Sorted-neighbourhood window size (≥ 1).
        window: usize,
    },
}

/// Tuning knobs of the integration engine.
#[derive(Debug, Clone, Copy)]
pub struct IntegrationOptions {
    /// Relative trust in (source a, source b), used to weight value
    /// conflicts and attribute conflicts. Normalised internally.
    pub source_weights: (f64, f64),
    /// Matching budget: at most this many matchings are kept per
    /// connected component of the candidate graph. Budgeted mode (the
    /// default) keeps the heaviest ones and records the discarded
    /// probability mass; strict mode errors instead.
    pub max_matchings_per_component: usize,
    /// How the budget is spread over a tag group's components:
    /// per-component cap (default) or a planned total split
    /// proportionally to live pairs.
    pub budget_plan: BudgetPlan,
    /// Optional early stop for budgeted enumeration: a component's
    /// enumeration ends as soon as the kept matchings are guaranteed to
    /// cover this fraction of the component's probability mass. `None`
    /// enumerates up to `max_matchings_per_component`.
    pub min_retained_mass: Option<f64>,
    /// Fail with [`IntegrateError::TooManyMatchings`] instead of
    /// truncating when a component exceeds the budget (the historical
    /// behaviour; exact or nothing).
    pub strict_matchings: bool,
    /// Worker threads for matching enumeration ([`Parallelism::SERIAL`]
    /// by default, [`Parallelism::AUTO`] uses all available cores).
    /// Several busy components fan out across threads; a single busy
    /// component spends the same budget inside its best-first search.
    /// Results are bit-identical regardless of the setting.
    pub parallelism: Parallelism,
    /// Hard cap on locally enumerated alternative combinations when an
    /// input child list contains choice points (incremental integration).
    pub max_local_worlds: usize,
    /// Hard cap on the total size of the output arena (a memory guard for
    /// parameter sweeps; exceeded ⇒ [`IntegrateError::OutputTooLarge`]).
    pub max_output_nodes: usize,
    /// Run pxml simplification on the result (drop zero-probability
    /// possibilities, merge equal ones, collapse certain choice points).
    pub simplify: bool,
    /// Candidate blocking ahead of oracle judging (off by default).
    pub blocking: BlockingMode,
}

impl Default for IntegrationOptions {
    fn default() -> Self {
        IntegrationOptions {
            source_weights: (0.5, 0.5),
            max_matchings_per_component: 1 << 18,
            budget_plan: BudgetPlan::PerComponent,
            min_retained_mass: None,
            strict_matchings: false,
            parallelism: Parallelism::SERIAL,
            max_local_worlds: 4096,
            max_output_nodes: 40_000_000,
            simplify: true,
            blocking: BlockingMode::Off,
        }
    }
}

impl IntegrationOptions {
    /// The per-component matching budget these options describe.
    pub fn match_budget(&self) -> MatchBudget {
        MatchBudget {
            max_matchings: self.max_matchings_per_component,
            min_retained_mass: self.min_retained_mass,
        }
    }

    /// Check the options for nonsensical values (every integration entry
    /// point calls this): a `min_retained_mass` outside `(0, 1]` would
    /// silently discard almost everything (≤ 0) or silently never stop
    /// (> 1), and a zero matching budget cannot keep the one matching
    /// every component has.
    pub fn validate(&self) -> Result<(), IntegrateError> {
        if let Some(t) = self.min_retained_mass {
            if !(t > 0.0 && t <= 1.0) {
                return Err(IntegrateError::InvalidOptions(format!(
                    "min_retained_mass must be in (0, 1], got {t}"
                )));
            }
        }
        if self.max_matchings_per_component == 0 {
            return Err(IntegrateError::InvalidOptions(
                "max_matchings_per_component must be at least 1".into(),
            ));
        }
        if self.budget_plan == BudgetPlan::Total(0) {
            return Err(IntegrateError::InvalidOptions(
                "a total matching budget must be at least 1".into(),
            ));
        }
        if self.blocking == (BlockingMode::Heuristic { window: 0 }) {
            return Err(IntegrateError::InvalidOptions(
                "a sorted-neighbourhood window must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Why an integration was aborted.
#[derive(Debug, Clone, PartialEq)]
pub enum IntegrateError {
    /// The two documents have differently tagged roots — the paper assumes
    /// schemas are already aligned, so this is a usage error.
    RootTagMismatch {
        /// Root tag of source a.
        a: String,
        /// Root tag of source b.
        b: String,
    },
    /// A candidate-graph component admits more matchings than the cap
    /// (strict mode only; budgeted mode truncates and records the
    /// discarded mass instead).
    TooManyMatchings {
        /// Number of undecided candidate pairs in the component.
        component_pairs: usize,
        /// The configured cap.
        cap: usize,
        /// Element path of the offending component's tag group
        /// (e.g. `/catalog/movie`).
        path: String,
    },
    /// [`integrate_many_px`] was called with no sources.
    NoSources,
    /// The [`IntegrationOptions`] contain a nonsensical value (see
    /// [`IntegrationOptions::validate`]).
    InvalidOptions(String),
    /// Local enumeration of input choice points exceeded the cap.
    TooManyLocalWorlds {
        /// The configured cap.
        cap: usize,
    },
    /// The output grew beyond [`IntegrationOptions::max_output_nodes`].
    OutputTooLarge {
        /// The configured cap.
        cap: usize,
    },
    /// An input document violates the probabilistic XML invariants.
    InvalidInput(PxInvariantError),
    /// A refine step was handed a persisted frontier that does not
    /// belong to the component it was restored against (see
    /// [`matching::FrontierMismatch`]) — refinement state and document
    /// got out of sync.
    FrontierMismatch(matching::FrontierMismatch),
}

impl fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrateError::RootTagMismatch { a, b } => {
                write!(f, "root tags differ: <{a}> vs <{b}> (schemas not aligned?)")
            }
            IntegrateError::TooManyMatchings {
                component_pairs,
                cap,
                path,
            } => {
                let at = if path.is_empty() {
                    String::new()
                } else {
                    format!(" at {path}")
                };
                write!(
                    f,
                    "a component with {component_pairs} undecided pairs{at} exceeds {cap} \
                     matchings; add rules to let the Oracle make absolute decisions, or \
                     disable strict matching to integrate under a budget"
                )
            }
            IntegrateError::NoSources => {
                write!(f, "integrate_many called with no source documents")
            }
            IntegrateError::InvalidOptions(why) => {
                write!(f, "invalid integration options: {why}")
            }
            IntegrateError::TooManyLocalWorlds { cap } => {
                write!(f, "more than {cap} local alternative combinations")
            }
            IntegrateError::OutputTooLarge { cap } => {
                write!(f, "integration result exceeds {cap} nodes")
            }
            IntegrateError::InvalidInput(e) => write!(f, "invalid input document: {e}"),
            IntegrateError::FrontierMismatch(e) => write!(f, "cannot refine: {e}"),
        }
    }
}

impl std::error::Error for IntegrateError {}

impl From<PxInvariantError> for IntegrateError {
    fn from(e: PxInvariantError) -> Self {
        IntegrateError::InvalidInput(e)
    }
}

impl From<matching::FrontierMismatch> for IntegrateError {
    fn from(e: matching::FrontierMismatch) -> Self {
        IntegrateError::FrontierMismatch(e)
    }
}

/// One component whose matching enumeration was cut short by the budget.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedComponent {
    /// Element path of the component's tag group (e.g. `/catalog/movie`).
    pub path: String,
    /// Live undecided pairs in the component.
    pub live_pairs: usize,
    /// Matchings kept (the heaviest ones).
    pub kept: usize,
    /// Probability mass dropped with the unenumerated matchings — a
    /// conservative upper bound; the kept matchings were renormalised.
    pub discarded_mass: f64,
    /// Open search states persisted for this component at truncation
    /// time: the size of the frontier a [`IntegrationOutcome::refine`]
    /// call resumes from.
    pub frontier_nodes: usize,
    /// True when the frontier is actually retained on the outcome —
    /// a [`IntegrationOutcome::refine`] call can resume it. False for
    /// the intermediate steps of an N-source fold, whose documents are
    /// consumed by the next step: their `frontier_nodes` still report
    /// the real frontier size, but the frontier itself is dropped.
    pub resumable: bool,
}

/// Counters describing what the engine (and its Oracle) did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntegrationStats {
    /// Distinct element pairs submitted to the Oracle.
    pub pairs_judged: usize,
    /// … of which certainly matched.
    pub judged_match: usize,
    /// … of which certainly non-matched.
    pub judged_nonmatch: usize,
    /// … of which stayed undecided (the paper's "occasions the Oracle
    /// could not make an absolute decision").
    pub judged_possible: usize,
    /// Undecided pairs broken down by element tag (movie-level confusion
    /// vs nested value confusion such as director-name conventions).
    pub undecided_by_tag: BTreeMap<String, usize>,
    /// Absolute decisions per rule name.
    pub rule_decisions: BTreeMap<String, usize>,
    /// Tag-group components processed.
    pub components_total: usize,
    /// … of which required a choice point (more than one matching).
    pub components_with_choice: usize,
    /// Total matchings enumerated across all components.
    pub matchings_enumerated: usize,
    /// Largest per-component matching count seen.
    pub max_component_matchings: usize,
    /// Text-value conflicts turned into choices.
    pub value_conflicts: usize,
    /// Attribute conflicts turned into element-variant choices.
    pub attr_conflicts: usize,
    /// Forced (certain-match) pairs demoted to undecided because they
    /// conflicted with another forced pair on the same element
    /// (contradictory knowledge in the sources).
    pub demoted_forced: usize,
    /// Cross pairs the blocking prefilters proved to be `NonMatch`es and
    /// dropped before any oracle call (recall-safe: never a lost match).
    pub pairs_pruned: usize,
    /// Cross pairs dropped by heuristic sorted-neighbourhood windowing —
    /// these *could* have been matches ([`BlockingMode::Heuristic`] only).
    pub pairs_windowed_out: usize,
    /// Components whose matching enumeration hit the budget: what was
    /// dropped, where, and how much mass it carried.
    pub truncated_components: Vec<TruncatedComponent>,
    /// Largest per-component discarded mass (0.0 when nothing was
    /// truncated): the coarsest fidelity indicator of a budgeted run.
    pub max_discarded_mass: f64,
}

impl IntegrationStats {
    /// Number of components whose enumeration was cut short.
    pub fn components_truncated(&self) -> usize {
        self.truncated_components.len()
    }

    /// True when every component was enumerated exhaustively (the
    /// result is the exact integration, budget or not).
    pub fn is_exact(&self) -> bool {
        self.truncated_components.is_empty()
    }
}

/// What one [`IntegrationOutcome::refine`] call should spend: the
/// pay-as-you-go knob. Components are refined largest discarded mass
/// first — exactly where the next unit of effort buys the most fidelity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOptions {
    /// Additional matchings to enumerate per refined component (on top
    /// of what previous runs kept). `usize::MAX` runs each selected
    /// component to completion.
    pub extra_matchings: usize,
    /// Optional retained-mass target: a refined component's enumeration
    /// also stops once its kept matchings are guaranteed to cover this
    /// fraction of its total probability mass.
    pub min_retained_mass: Option<f64>,
    /// Refine at most this many components per call, largest discarded
    /// mass first. `usize::MAX` refines every open component.
    pub max_components: usize,
    /// Worker threads for this refine call, overriding the outcome's
    /// [`IntegrationOptions::parallelism`] when set. The budget goes
    /// across components first (one thread each), and the remainder
    /// *into* each component's best-first search — a step refining one
    /// big component spends every thread inside its search. Results are
    /// bit-identical at every value.
    pub threads: Option<Parallelism>,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            extra_matchings: 1024,
            min_retained_mass: None,
            max_components: usize::MAX,
            threads: None,
        }
    }
}

impl RefineOptions {
    /// Run every open component to completion: afterwards the document
    /// is bit-identical to an unbudgeted integration.
    pub fn to_exhaustive() -> Self {
        RefineOptions {
            extra_matchings: usize::MAX,
            min_retained_mass: None,
            max_components: usize::MAX,
            threads: None,
        }
    }

    fn validate(&self) -> Result<(), IntegrateError> {
        if self.extra_matchings == 0 && self.min_retained_mass.is_none() {
            return Err(IntegrateError::InvalidOptions(
                "refine needs extra_matchings >= 1 or a min_retained_mass target".into(),
            ));
        }
        if let Some(t) = self.min_retained_mass {
            if !(t > 0.0 && t <= 1.0) {
                return Err(IntegrateError::InvalidOptions(format!(
                    "min_retained_mass must be in (0, 1], got {t}"
                )));
            }
        }
        if self.max_components == 0 {
            return Err(IntegrateError::InvalidOptions(
                "refine needs max_components >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// One component's before/after numbers in a [`RefineStep`].
#[derive(Debug, Clone, PartialEq)]
pub struct RefinedComponent {
    /// Element path of the component's tag group.
    pub path: String,
    /// Matchings kept before this refinement.
    pub kept_before: usize,
    /// Matchings kept after it.
    pub kept_after: usize,
    /// Discarded mass before this refinement.
    pub discarded_before: f64,
    /// Discarded mass after it (0 when the component drained).
    pub discarded_after: f64,
    /// True when the component's enumeration completed: nothing left to
    /// refine there.
    pub exhausted: bool,
}

/// What one [`IntegrationOutcome::refine`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineStep {
    /// The components refined in this step, in refinement order
    /// (largest discarded mass first).
    pub refined: Vec<RefinedComponent>,
    /// Components still truncated after the step (frontiers left open).
    pub remaining: usize,
    /// Largest per-component discarded mass after the step (0 when the
    /// document is now exact).
    pub max_discarded_mass: f64,
    /// Arena nodes this step grafted into the document — the *delta*
    /// emission cost (incremental emission appends only the new
    /// possibility subtrees; it never re-emits the kept set).
    pub emitted_nodes: usize,
    /// Arena slots reachable from the root after the step.
    pub arena_live: usize,
    /// Total arena slots after the step; `arena_total - arena_live`
    /// slots are detached garbage a [`PxDoc::compact`] would reclaim.
    pub arena_total: usize,
    /// True when the caller compacted the arena after this step (set by
    /// the engine layer, which owns the compaction policy; the arena
    /// figures above then describe the compacted document).
    pub compacted: bool,
    /// Search-side work this step's enumerations did (states popped,
    /// bound cutoffs, expansion rounds, worker threads) — the cost of
    /// the step that `emitted_nodes` does not show.
    pub search: SearchStats,
}

/// An integration result: the probabilistic document, statistics, and —
/// when the budget truncated components — their persisted enumeration
/// frontiers, so the result can be *refined in place* instead of
/// re-integrated from scratch.
///
/// This type replaces the earlier `Integration {doc, stats}` pair; the
/// two public fields are unchanged, and exact (untruncated) outcomes
/// carry no extra state.
///
/// A truncated outcome defers document simplification until the last
/// frontier drains (simplification may restructure the very choice
/// points refinement grafts into); the deferred pass runs automatically
/// at the end of the [`refine`](Self::refine) call that makes the
/// document exact.
#[derive(Debug, Clone)]
pub struct IntegrationOutcome {
    /// The integrated probabilistic document.
    pub doc: PxDoc,
    /// What happened during integration. Refinement keeps
    /// [`IntegrationStats::truncated_components`] and
    /// [`IntegrationStats::max_discarded_mass`] in sync with the live
    /// frontiers; the enumeration counters describe the initial run.
    pub stats: IntegrationStats,
    /// Persisted per-component enumeration frontiers, one per truncated
    /// component still open.
    frontiers: Vec<DocFrontier>,
    /// The source documents, retained while any frontier is open
    /// (re-emission walks them again); dropped once the outcome is
    /// exact.
    sources: Option<(Arc<PxDoc>, Arc<PxDoc>)>,
    /// The options the integration ran under (re-emission must match).
    options: IntegrationOptions,
    /// Cumulative arena nodes grafted by [`refine`](Self::refine) calls
    /// on this outcome (across catalog round-trips via [`RefineState`]).
    emitted_nodes: usize,
}

impl IntegrationOutcome {
    /// The persisted enumeration frontiers, largest structures first
    /// refinable; empty when the result is exact.
    pub fn frontiers(&self) -> &[DocFrontier] {
        &self.frontiers
    }

    /// True when at least one component's frontier is open — a
    /// [`refine`](Self::refine) call can improve this result in place.
    pub fn is_refinable(&self) -> bool {
        !self.frontiers.is_empty()
    }

    /// Demote every live resident enumerator back to its plain-data
    /// stored form, as if the outcome had been round-tripped through
    /// the codec. The next refine step pays the restore (re-heapify)
    /// price a fresh process would. A no-op on already-stored
    /// frontiers; used by the `refine_parallel` bench to price the
    /// live-enumerator fast path against the persist/restore loop.
    pub fn materialise_frontiers(&mut self) {
        for f in &mut self.frontiers {
            f.materialise();
        }
    }

    /// Largest per-component discarded mass over the open frontiers
    /// (0 when the result is exact).
    pub fn max_discarded_mass(&self) -> f64 {
        self.frontiers
            .iter()
            .map(|f| f.discarded_mass())
            .fold(0.0, f64::max)
    }

    /// Spend an additional matching budget on the components with the
    /// largest discarded mass: resume their best-first enumeration from
    /// the persisted frontiers and graft only the *new* matchings'
    /// possibility subtrees into the existing document, rescaling the
    /// previously emitted siblings' weights in place. A refine step
    /// costs the delta emission — not the whole growing kept set — so
    /// N small installments approach the price of one big budget.
    ///
    /// Each refined component is emitted into its own scratch arena
    /// first (fanning out over threads under
    /// [`IntegrationOptions::parallelism`], like enumeration) and the
    /// scratch subtrees are grafted back serially in refinement order,
    /// so the result is deterministic regardless of thread count.
    ///
    /// Mass accounting closes after every step (`retained + discarded ==
    /// 1` per component) and the largest discarded mass never increases.
    /// Refining with [`RefineOptions::to_exhaustive`] (or repeatedly,
    /// until [`is_refinable`](Self::is_refinable) turns false) converges
    /// to the *exact* integration: the final document is bit-identical —
    /// by fingerprint — to a one-shot unbudgeted run.
    ///
    /// `oracle` and `schema` must be the ones the integration ran under
    /// (re-emission consults them for the merged pairs' children).
    ///
    /// Errors are atomic: every failure mode — enumeration caps, the
    /// local-worlds cap, the output-size guard — fires during the
    /// scratch phase, before the document is touched, so a failed call
    /// leaves the outcome — document, frontiers, stats — exactly as it
    /// was.
    pub fn refine(
        &mut self,
        oracle: &Oracle,
        schema: Option<&Schema>,
        options: &RefineOptions,
    ) -> Result<RefineStep, IntegrateError> {
        options.validate()?;
        if self.frontiers.is_empty() {
            let arena = self.doc.arena_stats();
            return Ok(RefineStep {
                refined: Vec::new(),
                remaining: 0,
                max_discarded_mass: 0.0,
                emitted_nodes: 0,
                arena_live: arena.live,
                arena_total: arena.total,
                compacted: false,
                search: SearchStats::default(),
            });
        }
        let (src_a, src_b) = self
            .sources
            .clone()
            // lint:allow(expect-in-lib, holds by construction: open frontiers retain their sources)
            .expect("open frontiers retain their sources");
        // Pick the top components by discarded mass (ties: emission
        // order — deterministic).
        let mut order: Vec<usize> = (0..self.frontiers.len()).collect();
        order.sort_by(|&x, &y| {
            self.frontiers[y]
                .discarded_mass()
                .total_cmp(&self.frontiers[x].discarded_mass())
                .then(x.cmp(&y))
        });
        order.truncate(options.max_components);
        // Nested tag groups encountered during re-emission enumerate
        // under the refine budget: an exhaustive refinement must not
        // re-truncate below the refined component, under *either*
        // budget plan.
        let exhaustive = options.extra_matchings == usize::MAX;
        let reemit_options = IntegrationOptions {
            max_matchings_per_component: if exhaustive {
                usize::MAX
            } else {
                self.options.max_matchings_per_component
            },
            budget_plan: if exhaustive {
                BudgetPlan::PerComponent
            } else {
                self.options.budget_plan
            },
            min_retained_mass: if exhaustive {
                None
            } else {
                self.options.min_retained_mass
            },
            strict_matchings: false,
            ..self.options
        };
        // Phase A — resume each selected frontier and emit only its new
        // matchings' subtrees into a per-component scratch arena. The
        // document is not touched, so any error returns it untouched;
        // independent components fan out over worker threads.
        let prepared = prepare_components(
            &self.frontiers,
            &order,
            &src_a,
            &src_b,
            oracle,
            schema,
            &reemit_options,
            options,
            self.doc.arena_len(),
        )?;
        // The per-scratch size guard bounds `doc + one scratch`; with
        // several components refined at once the grafts land together,
        // so the aggregate is checked before any of them is applied.
        let added: usize = prepared
            .iter()
            .map(|p| p.scratch.arena_len().saturating_sub(1))
            .sum();
        if self.doc.arena_len() + added > self.options.max_output_nodes {
            return Err(IntegrateError::OutputTooLarge {
                cap: self.options.max_output_nodes,
            });
        }
        // Phase B — graft the scratch subtrees back, serially and in
        // refinement order: append the new possibilities under the
        // component's probability anchor, reorder the children into the
        // full canonical order (old subtrees are reused, never
        // re-emitted), and write every sibling's renormalised weight.
        let mut refined = Vec::with_capacity(prepared.len());
        let mut updates: Vec<(usize, Option<FrontierEnumerator>)> = Vec::with_capacity(order.len());
        let mut nested_all: Vec<DocFrontier> = Vec::new();
        let mut emitted_nodes = 0usize;
        let mut replaced_subtrees = false;
        let mut search = SearchStats::default();
        for p in prepared {
            search.absorb(&p.all.search);
            let df = &self.frontiers[p.slot];
            let prob = df.prob();
            let before = self.doc.arena_len();
            // Move the scratch arena under the anchor wholesale (one
            // linear pass, slots and payloads transferred rather than
            // re-allocated); the offset map re-anchors nested frontiers
            // recorded inside the spliced subtrees. The scratch root's
            // children are exactly the new possibility subtrees, in
            // emission order.
            let (grafted, id_map) = self.doc.splice_scratch(prob, p.scratch);
            assert_eq!(
                grafted.len(),
                p.new_poss.len(),
                "the scratch root holds exactly the new possibility subtrees"
            );
            emitted_nodes += self.doc.arena_len() - before;
            // Interleave old and new children into canonical order. The
            // canonical sort is a total order over distinct matchings,
            // so the old entries' relative order is unchanged — they
            // consume the existing children positionally. A mismatch
            // between flagged-old entries and existing children means
            // the frontier could not vouch for what was emitted before
            // (a synthetic frontier restarts enumeration from scratch):
            // the old subtrees are dropped and the full set stands.
            let old_children: Vec<PxNodeId> = self
                .doc
                .children(prob)
                .iter()
                .copied()
                .filter(|c| !grafted.contains(c))
                .collect();
            let flagged_old = p.is_new.iter().filter(|&&n| !n).count();
            let mut final_children = Vec::with_capacity(p.all.matchings.len());
            if flagged_old == old_children.len() {
                let mut old_iter = old_children.into_iter();
                let mut new_iter = grafted.iter().copied();
                for &fresh in &p.is_new {
                    let child = if fresh {
                        // lint:allow(expect-in-lib, holds by construction: one grafted subtree per new entry)
                        new_iter.next().expect("one grafted subtree per new entry")
                    } else {
                        // lint:allow(expect-in-lib, holds by construction: one existing subtree per old entry)
                        old_iter.next().expect("one existing subtree per old entry")
                    };
                    final_children.push(child);
                }
            } else {
                debug_assert!(
                    df.is_synthetic(),
                    "only a synthetic frontier re-yields previously emitted matchings"
                );
                final_children = grafted.clone();
                replaced_subtrees = true;
            }
            self.doc.reset_children(prob, final_children.clone());
            for (child, m) in final_children.iter().zip(&p.all.matchings) {
                self.doc.set_poss_prob(*child, m.weight);
            }
            refined.push(RefinedComponent {
                path: df.path().to_string(),
                kept_before: df.kept(),
                kept_after: p.all.matchings.len(),
                discarded_before: df.discarded_mass(),
                discarded_after: p.all.discarded_mass,
                exhausted: !p.all.truncated,
            });
            updates.push((p.slot, p.left));
            // Nested frontiers carry scratch-relative probability ids;
            // their source-document group ids are unchanged.
            for mut f in p.nested {
                f.set_prob(id_map.remap(f.prob()));
                nested_all.push(f);
            }
        }
        // Components still open keep their *advanced enumerator* resident:
        // the next step resumes it with a cheap clone instead of a
        // persist/restore round-trip. Drained components drop out.
        let mut drained: Vec<usize> = Vec::new();
        for (i, left) in updates {
            match left {
                Some(en) => self.frontiers[i].install(en),
                None => drained.push(i),
            }
        }
        // Drop drained frontiers (largest index first so removals don't
        // shift pending ones), then adopt the frontiers of components
        // that truncated *inside* the grafted subtrees.
        drained.sort_unstable_by(|a, b| b.cmp(a));
        for i in drained {
            self.frontiers.remove(i);
        }
        self.frontiers.extend(nested_all);
        // A synthetic replacement detached its old subtrees; frontiers
        // recorded inside them are gone with their nodes. The normal
        // incremental path only appends and permutes, so nothing can
        // become unreachable and the arena-wide scan is skipped.
        if replaced_subtrees {
            let reachable: HashSet<PxNodeId> = self.doc.descendants(self.doc.root()).collect();
            self.frontiers.retain(|f| reachable.contains(&f.prob()));
        }
        self.sync_truncation_stats();
        if self.frontiers.is_empty() {
            // The document is exact now: run the deferred finishing pass
            // and let go of the retained sources.
            if self.options.simplify {
                self.doc.simplify();
            }
            self.sources = None;
        }
        self.emitted_nodes += emitted_nodes;
        let arena = self.doc.arena_stats();
        #[cfg(feature = "strict-invariants")]
        verify::shadow_check(self, "refine");
        Ok(RefineStep {
            refined,
            remaining: self.frontiers.len(),
            max_discarded_mass: self.max_discarded_mass(),
            emitted_nodes,
            arena_live: arena.live,
            arena_total: arena.total,
            compacted: false,
            search,
        })
    }

    /// Cumulative arena nodes grafted by every [`refine`](Self::refine)
    /// call on this outcome so far.
    pub fn emitted_nodes(&self) -> usize {
        self.emitted_nodes
    }

    /// Drop the arena slots detached by refinement and feedback,
    /// renumbering the surviving nodes and re-anchoring the open
    /// frontiers. The document's content — fingerprint, worlds, query
    /// answers — is unchanged; only node ids move. Returns the remap so
    /// callers holding their own [`PxNodeId`]s can follow.
    pub fn compact_arena(&mut self) -> imprecise_pxml::CompactMap {
        let map = self.doc.compact();
        if !map.is_identity() {
            for f in &mut self.frontiers {
                let prob = map
                    .remap(f.prob())
                    // lint:allow(expect-in-lib, refine retains only frontiers whose anchors stayed reachable, and compact keeps every reachable node)
                    .expect("open frontiers anchor reachable probability nodes");
                f.set_prob(prob);
            }
        }
        #[cfg(feature = "strict-invariants")]
        verify::shadow_check(self, "compact_arena");
        map
    }

    /// Detach the refinable state from this outcome, leaving it exact
    /// and returning `None` when there was nothing to refine.
    ///
    /// This is the catalog-storage seam: a versioned store keeps the
    /// (shared) document and the [`RefineState`] side by side, keyed by
    /// the same version, and reassembles them with
    /// [`IntegrationOutcome::with_refine_state`] when a refinement is
    /// requested.
    pub fn detach_refine_state(&mut self) -> Option<RefineState> {
        if self.frontiers.is_empty() {
            return None;
        }
        Some(RefineState {
            stats: self.stats.clone(),
            frontiers: std::mem::take(&mut self.frontiers),
            sources: self
                .sources
                .take()
                // lint:allow(expect-in-lib, holds by construction: open frontiers retain their sources)
                .expect("open frontiers retain their sources"),
            options: self.options,
            emitted_nodes: self.emitted_nodes,
        })
    }

    /// Reassemble an outcome from a document and the [`RefineState`]
    /// detached from it. `doc` must be the same document version the
    /// state was detached from — the frontiers point into its arena.
    pub fn with_refine_state(doc: PxDoc, state: RefineState) -> Self {
        IntegrationOutcome {
            doc,
            stats: state.stats,
            frontiers: state.frontiers,
            sources: Some(state.sources),
            options: state.options,
            emitted_nodes: state.emitted_nodes,
        }
    }

    /// Rewrite the truncation records from the live frontiers (the
    /// enumeration counters keep describing the initial run).
    fn sync_truncation_stats(&mut self) {
        self.stats.truncated_components = self
            .frontiers
            .iter()
            .map(|f| TruncatedComponent {
                path: f.path().to_string(),
                live_pairs: f.live_pairs(),
                kept: f.kept(),
                discarded_mass: f.discarded_mass(),
                frontier_nodes: f.open_nodes(),
                resumable: true,
            })
            .collect();
        self.stats.max_discarded_mass = self.max_discarded_mass();
    }
}

/// One refined component's Phase-A product: the resumed enumeration and
/// the scratch arena holding only the *new* matchings' possibility
/// subtrees, ready to be grafted under the component's probability
/// anchor.
struct PreparedComponent {
    /// Index into the outcome's frontier list.
    slot: usize,
    /// The full canonical kept set (weights renormalised).
    all: matching::BudgetedMatchings,
    /// Parallel to `all.matchings`: which entries this step yielded.
    is_new: Vec<bool>,
    /// The advanced enumerator, still open — installed back on the
    /// site when the step commits. `None` when the component drained.
    left: Option<FrontierEnumerator>,
    /// Scratch arena: a root probability node whose children are the
    /// new possibility subtrees.
    scratch: PxDoc,
    /// The scratch ids of those subtrees, in canonical (emission) order.
    new_poss: Vec<PxNodeId>,
    /// Frontiers of tag groups truncated *inside* the new subtrees,
    /// with scratch-relative probability ids.
    nested: Vec<DocFrontier>,
}

/// Phase A of a refine step for one component: resume the enumeration
/// (on a clone of the site's resident enumerator, or a restore of its
/// stored frontier) with up to `threads` expansion workers, and emit
/// the delta into a scratch arena. Touches nothing shared — the site
/// itself is only updated when the step commits, so errors stay atomic.
#[allow(clippy::too_many_arguments)]
fn prepare_one(
    frontiers: &[DocFrontier],
    slot: usize,
    src_a: &PxDoc,
    src_b: &PxDoc,
    oracle: &Oracle,
    schema: Option<&Schema>,
    reemit_options: &IntegrationOptions,
    options: &RefineOptions,
    arena_base: usize,
    threads: usize,
) -> Result<PreparedComponent, IntegrateError> {
    let df = &frontiers[slot];
    let mut en = df.enumerator()?;
    let max_matchings = if options.extra_matchings == usize::MAX {
        usize::MAX
    } else {
        en.kept().saturating_add(options.extra_matchings.max(1))
    };
    let (all, is_new) = en.run_delta(
        &MatchBudget {
            max_matchings,
            min_retained_mass: options.min_retained_mass,
        },
        threads,
    );
    let left = if en.is_drained() { None } else { Some(en) };
    let mut builder =
        merge::Builder::scratch(src_a, src_b, oracle, schema, reemit_options, arena_base);
    let new_poss = builder.emit_new_possibilities(df, &all.matchings, &is_new)?;
    let (scratch, _stats, nested) = builder.finish_with_frontiers();
    Ok(PreparedComponent {
        slot,
        all,
        is_new,
        left,
        scratch,
        new_poss,
        nested,
    })
}

/// Phase A over every selected frontier, fanning out over scoped worker
/// threads when the options allow and more than one component is
/// selected. Results come back in selection order and the first error
/// (in that order) wins, so serial and parallel runs agree exactly.
#[allow(clippy::too_many_arguments)]
fn prepare_components(
    frontiers: &[DocFrontier],
    order: &[usize],
    src_a: &PxDoc,
    src_b: &PxDoc,
    oracle: &Oracle,
    schema: Option<&Schema>,
    reemit_options: &IntegrationOptions,
    options: &RefineOptions,
    arena_base: usize,
) -> Result<Vec<PreparedComponent>, IntegrateError> {
    // The thread budget goes across components first, and what is left
    // over goes *into* each component's search — one big component gets
    // every thread inside its best-first expansion.
    let total = options
        .threads
        .unwrap_or(reemit_options.parallelism)
        .effective();
    let outer = total.min(order.len()).max(1);
    let inner = (total / outer).max(1);
    if outer <= 1 || order.len() < 2 {
        return order
            .iter()
            .map(|&i| {
                prepare_one(
                    frontiers,
                    i,
                    src_a,
                    src_b,
                    oracle,
                    schema,
                    reemit_options,
                    options,
                    arena_base,
                    inner,
                )
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..outer {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= order.len() {
                    break;
                }
                let result = prepare_one(
                    frontiers,
                    order[k],
                    src_a,
                    src_b,
                    oracle,
                    schema,
                    reemit_options,
                    options,
                    arena_base,
                    inner,
                );
                if tx.send((k, result)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<Result<PreparedComponent, IntegrateError>>> =
        order.iter().map(|_| None).collect();
    for (k, result) in rx {
        slots[k] = Some(result);
    }
    slots
        .into_iter()
        // lint:allow(expect-in-lib, holds by construction: every selected component was prepared)
        .map(|slot| slot.expect("every selected component was prepared"))
        .collect()
}

/// The document-independent refinable state of a truncated
/// [`IntegrationOutcome`]: the persisted frontiers, the retained source
/// documents, the stats and the options the run used. Opaque plain data
/// (`Send + Sync`), meant to live in a versioned catalog next to the
/// document it belongs to.
#[derive(Debug, Clone)]
pub struct RefineState {
    stats: IntegrationStats,
    frontiers: Vec<DocFrontier>,
    sources: (Arc<PxDoc>, Arc<PxDoc>),
    options: IntegrationOptions,
    emitted_nodes: usize,
}

impl RefineState {
    /// Number of truncated components still open.
    pub fn open_components(&self) -> usize {
        self.frontiers.len()
    }

    /// Cumulative arena nodes grafted by the refine calls this state
    /// has passed through (the emission side of the pay-as-you-go
    /// cost).
    pub fn emitted_nodes(&self) -> usize {
        self.emitted_nodes
    }

    /// Largest per-component discarded mass over the open frontiers.
    pub fn max_discarded_mass(&self) -> f64 {
        self.frontiers
            .iter()
            .map(|f| f.discarded_mass())
            .fold(0.0, f64::max)
    }

    /// The two source documents this state was captured against, in
    /// integration order. A durable store persists them separately
    /// (deduplicated — many catalog entries share a source) and hands
    /// them back to [`codec::decode_refine_state`] on recovery.
    pub fn sources(&self) -> (&Arc<PxDoc>, &Arc<PxDoc>) {
        (&self.sources.0, &self.sources.1)
    }
}

/// Integrate two certain XML documents.
pub fn integrate_xml(
    a: &XmlDoc,
    b: &XmlDoc,
    oracle: &Oracle,
    schema: Option<&Schema>,
    options: &IntegrationOptions,
) -> Result<IntegrationOutcome, IntegrateError> {
    let pa = from_xml(a);
    let pb = from_xml(b);
    integrate_px(&pa, &pb, oracle, schema, options)
}

/// Integrate two (possibly already probabilistic) documents.
///
/// When the budget truncates components, the returned outcome retains
/// clones of both sources so it stays refinable; use
/// [`integrate_px_shared`] to share already-`Arc`ed documents without
/// copying.
pub fn integrate_px(
    a: &PxDoc,
    b: &PxDoc,
    oracle: &Oracle,
    schema: Option<&Schema>,
    options: &IntegrationOptions,
) -> Result<IntegrationOutcome, IntegrateError> {
    integrate_inner(a, b, oracle, schema, options, RetainSources::Clone)
}

/// [`integrate_px`] over shared documents: a truncated outcome retains
/// cheap `Arc` clones of the sources instead of deep copies.
pub fn integrate_px_shared(
    a: &Arc<PxDoc>,
    b: &Arc<PxDoc>,
    oracle: &Oracle,
    schema: Option<&Schema>,
    options: &IntegrationOptions,
) -> Result<IntegrationOutcome, IntegrateError> {
    integrate_inner(
        a,
        b,
        oracle,
        schema,
        options,
        RetainSources::Shared(Arc::clone(a), Arc::clone(b)),
    )
}

/// How a truncated outcome gets hold of its sources for later
/// refinement.
enum RetainSources {
    /// Deep-copy the borrowed inputs (only when actually truncated).
    Clone,
    /// Share these `Arc`s.
    Shared(Arc<PxDoc>, Arc<PxDoc>),
    /// Drop the frontiers instead: the result is not refinable (used for
    /// the intermediate steps of a fold, whose documents are consumed by
    /// the next step anyway).
    Discard,
}

fn integrate_inner(
    a: &PxDoc,
    b: &PxDoc,
    oracle: &Oracle,
    schema: Option<&Schema>,
    options: &IntegrationOptions,
    retain: RetainSources,
) -> Result<IntegrationOutcome, IntegrateError> {
    options.validate()?;
    a.validate()?;
    b.validate()?;
    let mut builder = merge::Builder::new(a, b, oracle, schema, options);
    builder.integrate_roots()?;
    let (mut doc, mut stats, mut frontiers) = builder.finish_with_frontiers();
    let sources = if frontiers.is_empty() {
        None
    } else {
        match retain {
            RetainSources::Clone => Some((Arc::new(a.clone()), Arc::new(b.clone()))),
            RetainSources::Shared(sa, sb) => Some((sa, sb)),
            RetainSources::Discard => {
                frontiers.clear();
                // The truncation records keep their real frontier sizes;
                // only the resumability flag is withdrawn with the
                // dropped frontiers.
                for t in &mut stats.truncated_components {
                    t.resumable = false;
                }
                None
            }
        }
    };
    // Simplification may merge or collapse the very probability nodes
    // the frontiers point at, so it is deferred while any frontier is
    // open; `refine` runs it once the document becomes exact.
    if options.simplify && frontiers.is_empty() {
        doc.simplify();
    }
    let outcome = IntegrationOutcome {
        doc,
        stats,
        frontiers,
        sources,
        options: *options,
        emitted_nodes: 0,
    };
    #[cfg(feature = "strict-invariants")]
    verify::shadow_check(&outcome, "integrate");
    Ok(outcome)
}

/// The result of an N-source fold: the final integrated outcome plus the
/// statistics of each pairwise step, in fold order.
#[derive(Debug, Clone)]
pub struct ManyIntegration {
    /// The final fold result. Only the *last* step's truncation
    /// frontiers are retained (earlier steps' documents were consumed by
    /// the fold), so refinement applies to the published result.
    pub outcome: IntegrationOutcome,
    /// One [`IntegrationStats`] per pairwise integration
    /// (`sources.len() - 1` entries; empty for a single source).
    pub steps: Vec<IntegrationStats>,
}

/// Integrate any number of sources by left-fold:
/// `((s₀ ⊕ s₁) ⊕ s₂) ⊕ …` — the paper's incremental integration loop
/// ("improved incrementally while the integrated source is being used")
/// run to a fixpoint over a batch of sources.
///
/// Each intermediate result is already probabilistic, so later steps
/// exercise the local-worlds machinery; budgets apply per step. The
/// final step's truncation frontiers are retained on the returned
/// outcome, so a budget-truncated fold can still be refined in place.
/// Errors with [`IntegrateError::NoSources`] on an empty slice; a single
/// source is validated and returned unchanged.
pub fn integrate_many_px(
    sources: &[&PxDoc],
    oracle: &Oracle,
    schema: Option<&Schema>,
    options: &IntegrationOptions,
) -> Result<ManyIntegration, IntegrateError> {
    options.validate()?;
    let (first, rest) = sources.split_first().ok_or(IntegrateError::NoSources)?;
    first.validate()?;
    let mut doc: Arc<PxDoc> = Arc::new((*first).clone());
    let mut steps = Vec::with_capacity(rest.len());
    let mut outcome: Option<IntegrationOutcome> = None;
    for (k, source) in rest.iter().enumerate() {
        let last = k + 1 == rest.len();
        if last {
            let src = Arc::new((**source).clone());
            let step = integrate_px_shared(&doc, &src, oracle, schema, options)?;
            steps.push(step.stats.clone());
            outcome = Some(step);
        } else {
            // Intermediate documents are consumed by the next step:
            // their frontiers would dangle, so they are not retained.
            let step = integrate_inner(
                &doc,
                source,
                oracle,
                schema,
                options,
                RetainSources::Discard,
            )?;
            steps.push(step.stats.clone());
            doc = Arc::new(step.doc);
        }
    }
    let outcome = outcome.unwrap_or_else(|| IntegrationOutcome {
        doc: Arc::try_unwrap(doc).unwrap_or_else(|arc| (*arc).clone()),
        stats: IntegrationStats::default(),
        frontiers: Vec::new(),
        sources: None,
        options: *options,
        emitted_nodes: 0,
    });
    Ok(ManyIntegration { outcome, steps })
}
