//! # imprecise-integrate — probabilistic XML integration
//!
//! §III of the IMPrECISE paper: *"The probabilistic integration process is
//! executed in a recursive fashion starting from the roots of both source
//! documents. The integration function tries to match the child nodes of
//! both sources. Two child nodes match if they refer to the same rwo. …
//! In many cases, this can't be established with certainty, so the system
//! needs to consider two cases."*
//!
//! The engine works bottom-up per element pair:
//!
//! 1. Child elements of two matched parents are grouped by tag.
//! 2. For a tag the schema declares single-valued, one element per side is
//!    merged unconditionally (the parent identity implies the child
//!    identity: a movie has exactly one real title); conflicting text
//!    values become a mutually exclusive choice (this is exactly the
//!    paper's "persons only have one phone number" pruning).
//! 3. For multi-valued tags, every cross-source pair is judged by the
//!    Oracle. Certain non-matches are discarded, certain matches forced,
//!    undecided pairs enumerated: each injective set of undecided pairs
//!    (a *matching*) becomes one possibility, weighted by
//!    ∏ p · ∏ (1 − p) over taken/not-taken candidate pairs and normalised.
//!    The "no two siblings in one source refer to the same rwo" generic
//!    rule is what makes matchings injective.
//! 4. Connected components of the candidate graph have independent
//!    matchings and get independent probability nodes (the *factored*
//!    representation; the classic engine's unfactored equivalent is
//!    available analytically via `imprecise-pxml`).
//!
//! Inputs may already be probabilistic (incremental integration): choice
//! points encountered in a child list are locally enumerated (with a cap)
//! and the alternatives integrated per combination.
//!
//! ## Example: the paper's Fig. 2
//!
//! ```
//! use imprecise_integrate::{integrate_xml, IntegrationOptions};
//! use imprecise_oracle::presets::addressbook_oracle;
//! use imprecise_xmlkit::{parse, Schema};
//!
//! let a = parse("<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>").unwrap();
//! let b = parse("<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>").unwrap();
//! let schema = Schema::parse(
//!     "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
//!      <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>").unwrap();
//! let oracle = addressbook_oracle();
//! let result = integrate_xml(&a, &b, &oracle, Some(&schema), &IntegrationOptions::default()).unwrap();
//! // One person with an uncertain phone, or two persons: 3 possible worlds.
//! assert_eq!(result.doc.world_count(), 3);
//! ```

pub mod combos;
pub mod matching;
mod merge;

pub use matching::{Candidate, Component, Matching, TooManyMatchings};

use imprecise_oracle::Oracle;
use imprecise_pxml::{from_xml, PxDoc, PxInvariantError};
use imprecise_xmlkit::{Schema, XmlDoc};
use std::collections::BTreeMap;
use std::fmt;

/// Tuning knobs of the integration engine.
#[derive(Debug, Clone, Copy)]
pub struct IntegrationOptions {
    /// Relative trust in (source a, source b), used to weight value
    /// conflicts and attribute conflicts. Normalised internally.
    pub source_weights: (f64, f64),
    /// Hard cap on the number of matchings enumerated for one connected
    /// component of the candidate graph.
    pub max_matchings_per_component: usize,
    /// Hard cap on locally enumerated alternative combinations when an
    /// input child list contains choice points (incremental integration).
    pub max_local_worlds: usize,
    /// Hard cap on the total size of the output arena (a memory guard for
    /// parameter sweeps; exceeded ⇒ [`IntegrateError::OutputTooLarge`]).
    pub max_output_nodes: usize,
    /// Run pxml simplification on the result (drop zero-probability
    /// possibilities, merge equal ones, collapse certain choice points).
    pub simplify: bool,
}

impl Default for IntegrationOptions {
    fn default() -> Self {
        IntegrationOptions {
            source_weights: (0.5, 0.5),
            max_matchings_per_component: 1 << 18,
            max_local_worlds: 4096,
            max_output_nodes: 40_000_000,
            simplify: true,
        }
    }
}

/// Why an integration was aborted.
#[derive(Debug, Clone, PartialEq)]
pub enum IntegrateError {
    /// The two documents have differently tagged roots — the paper assumes
    /// schemas are already aligned, so this is a usage error.
    RootTagMismatch {
        /// Root tag of source a.
        a: String,
        /// Root tag of source b.
        b: String,
    },
    /// A candidate-graph component admits more matchings than the cap.
    TooManyMatchings {
        /// Number of undecided candidate pairs in the component.
        component_pairs: usize,
        /// The configured cap.
        cap: usize,
    },
    /// Local enumeration of input choice points exceeded the cap.
    TooManyLocalWorlds {
        /// The configured cap.
        cap: usize,
    },
    /// The output grew beyond [`IntegrationOptions::max_output_nodes`].
    OutputTooLarge {
        /// The configured cap.
        cap: usize,
    },
    /// An input document violates the probabilistic XML invariants.
    InvalidInput(PxInvariantError),
}

impl fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrateError::RootTagMismatch { a, b } => {
                write!(f, "root tags differ: <{a}> vs <{b}> (schemas not aligned?)")
            }
            IntegrateError::TooManyMatchings {
                component_pairs,
                cap,
            } => write!(
                f,
                "a component with {component_pairs} undecided pairs exceeds {cap} matchings; \
                 add rules to let the Oracle make absolute decisions"
            ),
            IntegrateError::TooManyLocalWorlds { cap } => {
                write!(f, "more than {cap} local alternative combinations")
            }
            IntegrateError::OutputTooLarge { cap } => {
                write!(f, "integration result exceeds {cap} nodes")
            }
            IntegrateError::InvalidInput(e) => write!(f, "invalid input document: {e}"),
        }
    }
}

impl std::error::Error for IntegrateError {}

impl From<PxInvariantError> for IntegrateError {
    fn from(e: PxInvariantError) -> Self {
        IntegrateError::InvalidInput(e)
    }
}

/// Counters describing what the engine (and its Oracle) did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntegrationStats {
    /// Distinct element pairs submitted to the Oracle.
    pub pairs_judged: usize,
    /// … of which certainly matched.
    pub judged_match: usize,
    /// … of which certainly non-matched.
    pub judged_nonmatch: usize,
    /// … of which stayed undecided (the paper's "occasions the Oracle
    /// could not make an absolute decision").
    pub judged_possible: usize,
    /// Undecided pairs broken down by element tag (movie-level confusion
    /// vs nested value confusion such as director-name conventions).
    pub undecided_by_tag: BTreeMap<String, usize>,
    /// Absolute decisions per rule name.
    pub rule_decisions: BTreeMap<String, usize>,
    /// Tag-group components processed.
    pub components_total: usize,
    /// … of which required a choice point (more than one matching).
    pub components_with_choice: usize,
    /// Total matchings enumerated across all components.
    pub matchings_enumerated: usize,
    /// Largest per-component matching count seen.
    pub max_component_matchings: usize,
    /// Text-value conflicts turned into choices.
    pub value_conflicts: usize,
    /// Attribute conflicts turned into element-variant choices.
    pub attr_conflicts: usize,
    /// Forced (certain-match) pairs demoted to undecided because they
    /// conflicted with another forced pair on the same element
    /// (contradictory knowledge in the sources).
    pub demoted_forced: usize,
}

/// An integration result: the probabilistic document plus statistics.
#[derive(Debug, Clone)]
pub struct Integration {
    /// The integrated probabilistic document.
    pub doc: PxDoc,
    /// What happened during integration.
    pub stats: IntegrationStats,
}

/// Integrate two certain XML documents.
pub fn integrate_xml(
    a: &XmlDoc,
    b: &XmlDoc,
    oracle: &Oracle,
    schema: Option<&Schema>,
    options: &IntegrationOptions,
) -> Result<Integration, IntegrateError> {
    let pa = from_xml(a);
    let pb = from_xml(b);
    integrate_px(&pa, &pb, oracle, schema, options)
}

/// Integrate two (possibly already probabilistic) documents.
pub fn integrate_px(
    a: &PxDoc,
    b: &PxDoc,
    oracle: &Oracle,
    schema: Option<&Schema>,
    options: &IntegrationOptions,
) -> Result<Integration, IntegrateError> {
    a.validate()?;
    b.validate()?;
    let mut builder = merge::Builder::new(a, b, oracle, schema, options);
    builder.integrate_roots()?;
    let (mut doc, stats) = builder.finish();
    if options.simplify {
        doc.simplify();
    }
    Ok(Integration { doc, stats })
}
