//! Candidate graphs and enumeration of injective matchings.
//!
//! For a tag group with `n_a` left and `n_b` right elements the Oracle
//! produces, per cross pair, a certain match (forced), a certain non-match
//! (discarded), or an undecided probability. A *matching* is a set of
//! undecided pairs that, together with the forced pairs, uses every element
//! at most once — injectivity is the structural form of the paper's "no
//! two siblings in one source refer to the same rwo" rule.
//!
//! The number of matchings of a complete bipartite n×m candidate graph is
//! `Σ_k C(n,k)·C(m,k)·k!` — 13 327 already for 6×6, which is precisely the
//! paper's "exploding number of theoretical possibilities". Rules shrink
//! the graph; connected components factor the enumeration.
//!
//! Two enumerators share one canonical output form (matchings sorted by
//! descending weight, normalised in that order):
//!
//! * [`enumerate_matchings`] — the exhaustive recursion; errors with
//!   [`TooManyMatchings`] past a cap (strict mode);
//! * [`enumerate_budgeted`] — a best-first branch-and-bound search that
//!   yields matchings in descending weight and stops at a
//!   [`MatchBudget`], renormalising what was kept and accounting the
//!   probability mass it dropped (the paper's "good is good enough"
//!   trade, made explicit).
//!
//! The budgeted search is implemented by [`FrontierEnumerator`], whose
//! heap state snapshots into a [`ComponentFrontier`]: a truncated run's
//! frontier can be persisted and *resumed* later with more budget, and
//! resuming to an unlimited budget reproduces the exhaustive enumeration
//! bit for bit — the foundation of pay-as-you-go refinement.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::{mpsc, Arc, OnceLock};

/// An undecided candidate pair with its match probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Index into the left (source a) element list.
    pub a: usize,
    /// Index into the right (source b) element list.
    pub b: usize,
    /// Oracle probability that the pair co-refers, strictly in `(0, 1)`.
    pub p: f64,
}

/// A connected component of the candidate graph over one tag group.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Component {
    /// Left element indices in this component (ascending).
    pub a_nodes: Vec<usize>,
    /// Right element indices in this component (ascending).
    pub b_nodes: Vec<usize>,
    /// Certainly matched pairs (always part of every matching).
    pub forced: Vec<(usize, usize)>,
    /// Undecided pairs to enumerate over.
    pub possible: Vec<Candidate>,
}

/// One enumerated matching with its normalised probability.
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    /// The matched pairs (forced pairs included), in deterministic order.
    pub pairs: Vec<(usize, usize)>,
    /// Normalised probability of this matching within its component.
    pub weight: f64,
}

/// Error: a component admits more matchings than the configured cap
/// (strict mode only — budgeted enumeration truncates instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooManyMatchings {
    /// Undecided pairs in the offending component.
    pub component_pairs: usize,
    /// The cap that was exceeded.
    pub cap: usize,
    /// Element path of the component's tag group (e.g. `/catalog/movie`),
    /// empty when the enumerator was called outside the merge pipeline.
    pub path: String,
}

impl TooManyMatchings {
    /// Attach the tag-group element path the pipeline was working under.
    pub(crate) fn at_path(mut self, path: &str) -> Self {
        self.path = path.to_string();
        self
    }
}

impl fmt::Display for TooManyMatchings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "component with {} undecided pairs exceeds {} matchings",
            self.component_pairs, self.cap
        )?;
        if !self.path.is_empty() {
            write!(f, " at {}", self.path)?;
        }
        Ok(())
    }
}

impl std::error::Error for TooManyMatchings {}

/// How much of a component's matching distribution to enumerate.
///
/// The budget stops best-first enumeration once *either* limit is hit:
/// at most `max_matchings` matchings, or — when `min_retained_mass` is
/// set — as soon as the retained (heaviest-first) matchings are
/// guaranteed to cover that fraction of the component's total
/// probability mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchBudget {
    /// Keep at most this many matchings (the heaviest ones).
    pub max_matchings: usize,
    /// Stop early once the retained mass fraction reaches this value.
    pub min_retained_mass: Option<f64>,
}

impl MatchBudget {
    /// No budget: enumerate everything (equivalent to the exhaustive
    /// enumerator, byte for byte).
    pub const UNLIMITED: MatchBudget = MatchBudget {
        max_matchings: usize::MAX,
        min_retained_mass: None,
    };
}

/// The result of budgeted enumeration of one component.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetedMatchings {
    /// The retained matchings in canonical order (descending weight),
    /// renormalised so their weights sum to 1.
    pub matchings: Vec<Matching>,
    /// Live undecided pairs the search ran over (undecided pairs whose
    /// endpoints were not consumed by forced pairs).
    pub live_pairs: usize,
    /// Fraction of the component's probability mass the retained
    /// matchings cover: `1.0` when enumeration completed, otherwise a
    /// guaranteed lower bound (the frontier bound over-estimates what
    /// remains, never what was kept).
    pub retained_mass: f64,
    /// Fraction of mass dropped by the budget — a conservative upper
    /// bound on the true loss; `retained_mass + discarded_mass == 1`.
    pub discarded_mass: f64,
    /// True when the budget cut enumeration short.
    pub truncated: bool,
    /// Open search states left on the frontier (0 when enumeration
    /// completed): the size of the state a resumed run would start from.
    pub frontier_nodes: usize,
    /// Search-side work counters of the run that produced this result.
    pub search: SearchStats,
}

/// The one parallelism knob, shared by the component-level fan-out and
/// the intra-component search: `0` means "all available cores"
/// (resolved once and cached — `available_parallelism` is a
/// cgroup/sysfs read), `1` is serial, `N` pins the thread count.
///
/// Thread counts are pure *scheduling* hints in this pipeline: every
/// parallel stage reassembles results in deterministic order, so
/// published bytes are identical at every value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism(usize);

impl Parallelism {
    /// Serial execution (the default).
    pub const SERIAL: Parallelism = Parallelism(1);
    /// Use every core `available_parallelism` reports.
    pub const AUTO: Parallelism = Parallelism(0);

    /// Wrap a raw `0|1|N` knob value (`0` = all cores).
    pub fn new(raw: usize) -> Self {
        Parallelism(raw)
    }

    /// The raw `0|1|N` value (what the CLI accepted and the codec
    /// stores — *not* resolved against the host's core count).
    pub fn raw(self) -> usize {
        self.0
    }

    /// The concrete thread count: `0` resolves to the cached core count.
    pub fn effective(self) -> usize {
        match self.0 {
            0 => {
                static CORES: OnceLock<usize> = OnceLock::new();
                *CORES.get_or_init(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                })
            }
            n => n,
        }
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::SERIAL
    }
}

/// Search-side work counters of one [`FrontierEnumerator`] run,
/// aggregated upward into [`RefineStep`](crate::RefineStep) so the
/// cost of a refine step is observable without a profiler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// States popped off the best-first heap (complete and incomplete).
    pub popped: u64,
    /// Incomplete states expanded into children.
    pub expanded: u64,
    /// Rounds whose expansion batch was cut short by the shared bound:
    /// a complete matching surfaced at the heap top, so everything
    /// below it was left unexpanded until the certified phase ruled on
    /// it.
    pub cutoffs: u64,
    /// Expansion rounds driven (each round is one worker fan-out).
    pub rounds: u64,
    /// Worker threads that expanded batches (1 = serial).
    pub workers: usize,
}

impl SearchStats {
    /// Fold another run's counters into this one: counters add, the
    /// worker count reports the maximum seen.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.popped += other.popped;
        self.expanded += other.expanded;
        self.cutoffs += other.cutoffs;
        self.rounds += other.rounds;
        self.workers = self.workers.max(other.workers);
    }
}

/// Split a tag group's candidate graph into connected components.
///
/// Every left/right element index in `0..n_a` / `0..n_b` appears in exactly
/// one component; elements without any edge become singleton components.
/// Components are ordered by their smallest member (left-first), which
/// keeps integration output deterministic.
pub fn split_components(
    n_a: usize,
    n_b: usize,
    forced: &[(usize, usize)],
    possible: &[Candidate],
) -> Vec<Component> {
    // Union-find over n_a + n_b node slots (left first).
    let mut parent: Vec<usize> = (0..n_a + n_b).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let union = |parent: &mut [usize], x: usize, y: usize| {
        let rx = find(parent, x);
        let ry = find(parent, y);
        if rx != ry {
            parent[rx.max(ry)] = rx.min(ry);
        }
    };
    for &(a, b) in forced {
        union(&mut parent, a, n_a + b);
    }
    for c in possible {
        union(&mut parent, c.a, n_a + c.b);
    }
    // Group by root, in order of first appearance (ascending slot id =
    // left elements first in index order, then right).
    let mut components: Vec<Component> = Vec::new();
    let mut root_to_idx: Vec<Option<usize>> = vec![None; n_a + n_b];
    for slot in 0..n_a + n_b {
        let root = find(&mut parent, slot);
        let idx = match root_to_idx[root] {
            Some(i) => i,
            None => {
                root_to_idx[root] = Some(components.len());
                components.push(Component::default());
                components.len() - 1
            }
        };
        if slot < n_a {
            components[idx].a_nodes.push(slot);
        } else {
            components[idx].b_nodes.push(slot - n_a);
        }
    }
    for &(a, b) in forced {
        let root = find(&mut parent, a);
        // lint:allow(expect-in-lib, holds by construction: component exists)
        let idx = root_to_idx[root].expect("component exists");
        components[idx].forced.push((a, b));
    }
    for c in possible {
        let root = find(&mut parent, c.a);
        // lint:allow(expect-in-lib, holds by construction: component exists)
        let idx = root_to_idx[root].expect("component exists");
        components[idx].possible.push(*c);
    }
    components
}

/// The undecided candidates that can actually be taken: pairs whose
/// endpoints are consumed by forced pairs can never be part of a
/// matching; their `(1 − p)` factors are constant across matchings and
/// cancel under normalisation, so they are excluded up front.
pub fn live_candidates(component: &Component) -> Vec<Candidate> {
    let mut used_a: Vec<usize> = component.forced.iter().map(|&(a, _)| a).collect();
    let mut used_b: Vec<usize> = component.forced.iter().map(|&(_, b)| b).collect();
    used_a.sort_unstable();
    used_b.sort_unstable();
    component
        .possible
        .iter()
        .copied()
        .filter(|c| used_a.binary_search(&c.a).is_err() && used_b.binary_search(&c.b).is_err())
        .collect()
}

/// Canonical output form shared by both enumerators: descending weight,
/// ties broken by the pair list, normalised by a sum taken in that
/// order. Two enumerators producing the same matching set therefore
/// produce bit-identical weights.
fn canonicalise(out: Vec<Matching>) -> Vec<Matching> {
    canonicalise_tagged(out, 0).0
}

/// [`canonicalise`] that additionally reports, per canonical entry,
/// whether its source index was at or past `watermark` — i.e. whether it
/// is *new* relative to a previously emitted prefix of `yielded`. The
/// sort, the normalisation sum (taken in canonical order) and the
/// divisions are exactly those of [`canonicalise`], so the weights stay
/// bit-identical; only the provenance flags are extra.
fn canonicalise_tagged(yielded: Vec<Matching>, watermark: usize) -> (Vec<Matching>, Vec<bool>) {
    let mut tagged: Vec<(Matching, bool)> = yielded
        .into_iter()
        .enumerate()
        .map(|(i, m)| (m, i >= watermark))
        .collect();
    tagged.sort_by(|x, y| {
        y.0.weight
            .total_cmp(&x.0.weight)
            .then_with(|| x.0.pairs.cmp(&y.0.pairs))
    });
    // lint:allow(float-accumulation, summed in the canonical weight-then-pairs order fixed by the sort_by above, so every run adds in the same order)
    let total: f64 = tagged.iter().map(|t| t.0.weight).sum();
    debug_assert!(total > 0.0, "at least the empty matching exists");
    let mut out = Vec::with_capacity(tagged.len());
    let mut is_new = Vec::with_capacity(tagged.len());
    for (mut m, fresh) in tagged {
        m.weight /= total;
        out.push(m);
        is_new.push(fresh);
    }
    (out, is_new)
}

/// Enumerate all injective matchings of a component, normalised, in
/// canonical (descending weight) order. Errors past `cap` — this is the
/// strict-mode enumerator; see [`enumerate_budgeted`] for the graceful
/// one.
pub fn enumerate_matchings(
    component: &Component,
    cap: usize,
) -> Result<Vec<Matching>, TooManyMatchings> {
    let live = live_candidates(component);
    let mut out: Vec<Matching> = Vec::new();
    let mut taken: Vec<(usize, usize)> = Vec::new();
    let mut err: Option<TooManyMatchings> = None;
    recurse(
        &live, 0, 1.0, &mut taken, &mut out, cap, &mut err, component,
    );
    if let Some(e) = err {
        return Err(e);
    }
    Ok(canonicalise(out))
}

/// A frontier state of the best-first search: the first `idx` live
/// candidates are decided, `weight` is the product of their factors.
#[derive(Debug, Clone)]
struct SearchState {
    /// Admissible bound on the weight of any completion (`weight` times
    /// the best possible remaining factors). Complete states have
    /// `bound == weight`, so states pop in descending true weight.
    bound: f64,
    /// Insertion sequence number; equal bounds at equal depth pop
    /// newest-first, which keeps the search deterministic.
    seq: u64,
    idx: usize,
    weight: f64,
    /// Included pairs of the prefix. Shared (`Arc`) because every
    /// exclude-branch child and every frontier snapshot carries its
    /// parent's inclusions unchanged — with tens of thousands of open
    /// states, per-state vector clones dominate resume cost otherwise.
    taken: Arc<[(usize, usize)]>,
}

impl PartialEq for SearchState {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl Eq for SearchState {}
impl PartialOrd for SearchState {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SearchState {
    fn cmp(&self, other: &Self) -> Ordering {
        // Equal bounds break toward the DEEPER state (then newest):
        // admissibility already guarantees completes pop in descending
        // true weight, and on tie plateaus (e.g. a uniform-p component,
        // where every bound is identical) depth-first reaches complete
        // matchings after O(depth) pops where breadth-first would
        // materialise the whole exponential frontier first.
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| self.idx.cmp(&other.idx))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The per-suffix ingredients of the branch-and-bound weight bound.
///
/// For a state that has decided the first `i` candidates with `k`
/// further inclusions still structurally possible, the best completion
/// weight is at most `base[i] · gain[i][min(k, gain[i].len())]`:
/// `base[i]` excludes every remaining candidate, and `gain[i]` holds
/// cumulative products of the sorted inclusion ratios `p/(1−p) > 1` —
/// the most any `k` inclusions could multiply the all-excluded weight
/// by, ignoring which endpoints they need. This is what makes the
/// search dive instead of drowning in high-probability dense graphs.
#[derive(Debug, Clone)]
struct SuffixBounds {
    base: Vec<f64>,
    gain: Vec<Vec<f64>>,
}

impl SuffixBounds {
    fn new(live: &[Candidate], max_take: usize) -> Self {
        let n = live.len();
        let mut base = vec![1.0f64; n + 1];
        for i in (0..n).rev() {
            base[i] = base[i + 1] * (1.0 - live[i].p);
        }
        let mut gain: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let mut ratios: Vec<f64> = live[i..]
                .iter()
                .map(|c| c.p / (1.0 - c.p))
                .filter(|r| *r > 1.0)
                .collect();
            ratios.sort_by(|a, b| b.total_cmp(a));
            ratios.truncate(max_take);
            let mut cum = Vec::with_capacity(ratios.len());
            let mut acc = 1.0f64;
            for r in ratios {
                acc *= r;
                cum.push(acc);
            }
            gain.push(cum);
        }
        SuffixBounds { base, gain }
    }

    /// Upper bound on the product of the undecided factors of a state at
    /// candidate index `i` that can still include at most `k` edges.
    fn remaining(&self, i: usize, k: usize) -> f64 {
        let gain = &self.gain[i];
        match k.min(gain.len()) {
            0 => self.base[i],
            t => self.base[i] * gain[t - 1],
        }
    }
}

/// Exact total mass of all injective matchings over the live edges:
/// `Σ_M Π_{e∈M} p_e · Π_{e∉M} (1−p_e)`, computed *without* enumeration
/// by a bitmask inclusion–exclusion scan over the smaller side
/// (processing the larger side node by node, tracking which smaller-side
/// nodes are matched). `O(larger · 2^smaller · degree)` — a dense
/// ratio-space table up to [`EXACT_MASS_MAX_SIDE`] smaller-side nodes,
/// then a Ryser-style log-domain scan up to
/// [`EXACT_MASS_LOG_MAX_SIDE`] (also the fallback when ratio space
/// over- or underflows), and `None` beyond that (callers fall back to
/// the conservative frontier bound).
fn exact_total_mass(live: &[Candidate]) -> Option<f64> {
    if live.is_empty() {
        return Some(1.0);
    }
    let sides = MassSides::of(live);
    if sides.small.len() <= EXACT_MASS_MAX_SIDE {
        let z = exact_total_mass_ratio(live, &sides);
        if z.is_finite() && z > 0.0 {
            return Some(z);
        }
        // Ratio-space over/underflow (e.g. many near-1 demoted pairs):
        // redo the inclusion–exclusion in the log domain.
    } else if sides.small.len() > EXACT_MASS_LOG_MAX_SIDE
        || (live.len() as u64) << sides.small.len() > EXACT_MASS_LOG_MAX_WORK
    {
        return None;
    }
    Some(exact_total_mass_log(live, &sides))
}

/// The two endpoint sets of the live edges, smaller side first — the DP
/// masks the smaller side and walks the larger one.
struct MassSides {
    small: Vec<usize>,
    large: Vec<usize>,
    small_is_a: bool,
}

impl MassSides {
    fn of(live: &[Candidate]) -> Self {
        let mut a_ids: Vec<usize> = live.iter().map(|c| c.a).collect();
        let mut b_ids: Vec<usize> = live.iter().map(|c| c.b).collect();
        a_ids.sort_unstable();
        a_ids.dedup();
        b_ids.sort_unstable();
        b_ids.dedup();
        if a_ids.len() <= b_ids.len() {
            MassSides {
                small: a_ids,
                large: b_ids,
                small_is_a: true,
            }
        } else {
            MassSides {
                small: b_ids,
                large: a_ids,
                small_is_a: false,
            }
        }
    }

    /// The live edges of larger-side node `l`, as `(small bit, value)`
    /// with `value = f(p)` (the inclusion ratio, or its log).
    fn edges_of(&self, live: &[Candidate], l: usize, f: impl Fn(f64) -> f64) -> Vec<(usize, f64)> {
        // lint:allow(expect-in-lib, holds by construction: live endpoint)
        let small_index = |id: usize| self.small.binary_search(&id).expect("live endpoint");
        live.iter()
            .filter(|c| if self.small_is_a { c.b == l } else { c.a == l })
            .map(|c| {
                let s = small_index(if self.small_is_a { c.a } else { c.b });
                (1usize << s, f(c.p))
            })
            .collect()
    }
}

fn exact_total_mass_ratio(live: &[Candidate], sides: &MassSides) -> f64 {
    // All-excluded product, factored out so the DP runs in ratio space.
    let base: f64 = live.iter().map(|c| 1.0 - c.p).product();
    let mut dp = vec![0.0f64; 1 << sides.small.len()];
    dp[0] = 1.0;
    for &l in &sides.large {
        let edges = sides.edges_of(live, l, |p| p / (1.0 - p));
        for mask in (0..dp.len()).rev() {
            if dp[mask] == 0.0 {
                continue;
            }
            for &(bit, r) in &edges {
                if mask & bit == 0 {
                    dp[mask | bit] += dp[mask] * r;
                }
            }
        }
    }
    // lint:allow(float-accumulation, the DP vector is indexed by subset mask, so the summation order is the fixed 0..2^n mask order)
    base * dp.iter().sum::<f64>()
}

/// The same subset inclusion–exclusion, Ryser-style in the log domain:
/// every table entry holds `ln` of its ratio-space value and additions
/// become `log-sum-exp`, so the scan neither overflows (demoted forced
/// pairs contribute ratios near `1/ε`) nor underflows (the all-excluded
/// base is a product of hundreds of `1−p` factors). Extends the exact
/// accounting to [`EXACT_MASS_LOG_MAX_SIDE`] smaller-side nodes, where
/// the dense ratio table stops at [`EXACT_MASS_MAX_SIDE`].
fn exact_total_mass_log(live: &[Candidate], sides: &MassSides) -> f64 {
    // lint:allow(float-accumulation, live candidates are a Vec in canonical component order, so the log-sum order is reproducible)
    let log_base: f64 = live.iter().map(|c| (1.0 - c.p).ln()).sum();
    let mut dp = vec![f64::NEG_INFINITY; 1 << sides.small.len()];
    dp[0] = 0.0;
    for &l in &sides.large {
        let edges = sides.edges_of(live, l, |p| p.ln() - (1.0 - p).ln());
        for mask in (0..dp.len()).rev() {
            if dp[mask] == f64::NEG_INFINITY {
                continue;
            }
            for &(bit, lr) in &edges {
                if mask & bit == 0 {
                    dp[mask | bit] = log_add(dp[mask | bit], dp[mask] + lr);
                }
            }
        }
    }
    let log_sum = dp.iter().fold(f64::NEG_INFINITY, |acc, &v| log_add(acc, v));
    (log_base + log_sum).exp()
}

/// `ln(e^a + e^b)` without leaving the log domain.
fn log_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Largest smaller-side size the ratio-space exact-mass DP handles
/// (`2^16` masks of dense `f64`s).
const EXACT_MASS_MAX_SIDE: usize = 16;

/// Largest smaller side the log-domain scan extends exactness to. The
/// table is `2^20` entries (8 MiB) and each inner step is a `log-sum-exp`
/// rather than a fused multiply-add, so a work guard
/// ([`EXACT_MASS_LOG_MAX_WORK`] table-times-edges steps) keeps worst-case
/// components from stalling a refine step; past it the conservative
/// frontier bound applies as before.
const EXACT_MASS_LOG_MAX_SIDE: usize = 20;

/// Work guard for the log-domain scan: `edges · 2^small` inner steps.
const EXACT_MASS_LOG_MAX_WORK: u64 = 1 << 26;

/// `min_retained_mass` never truncates a component below this many
/// matchings: cutting a handful of matchings saves nothing and would
/// destroy small components' uncertainty outright (a single undecided
/// pair at p ≥ t would collapse to its match case).
const MASS_STOP_FLOOR: usize = 16;

/// One open node of a persisted search frontier: the prefix decisions
/// (`idx` candidates decided, `taken` included), the prefix weight, the
/// admissible completion bound and the tie-break sequence number. All of
/// it is plain data — a frontier can cross threads, be stored in a
/// catalog and resumed sessions later.
#[derive(Debug, Clone, PartialEq)]
struct FrontierNode {
    idx: usize,
    weight: f64,
    taken: Arc<[(usize, usize)]>,
    bound: f64,
    seq: u64,
}

/// The persisted state of one component's truncated enumeration: what a
/// [`FrontierEnumerator`] needs to *continue* best-first search exactly
/// where a budgeted run stopped.
///
/// The contract that makes resumption safe: restoring a frontier and
/// running it to [`MatchBudget::UNLIMITED`] produces the same canonical
/// matching list — bit for bit — as an unbudgeted run from scratch
/// (prefix weights, pop order and normalisation order are all
/// preserved), so pay-as-you-go refinement converges to the exhaustive
/// result instead of merely near it.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentFrontier {
    /// Open search states, in descending pop order.
    open: Vec<FrontierNode>,
    /// Next tie-break sequence number (continues the original run's).
    next_seq: u64,
    /// Matchings already yielded, raw (unnormalised) weights, in yield
    /// order. Kept so a resumed run re-emits the *full* matching set.
    yielded: Vec<Matching>,
    /// Running sum of the yielded raw weights, in yield order.
    retained: f64,
    /// True when `yielded` holds the synthesised all-excluded fallback
    /// (the expansion valve fired before any real matching was reached);
    /// a resumed run discards it — the open states still cover the whole
    /// search space, including that matching.
    synthetic: bool,
    /// Digest of the component's forced pairs and live candidates
    /// (endpoints + probability bits): a frontier only restores against
    /// the component that produced it.
    digest: u64,
    /// Live undecided pairs of the component (consistency check on
    /// restore).
    pub live_pairs: usize,
    /// Mass accounting of the run that produced this frontier
    /// (`retained_mass + discarded_mass == 1`).
    pub retained_mass: f64,
    /// Conservative upper bound on the mass still unenumerated — the
    /// refinement planner's priority key.
    pub discarded_mass: f64,
}

impl ComponentFrontier {
    /// Number of open search states.
    pub fn open_nodes(&self) -> usize {
        self.open.len()
    }

    /// Number of matchings the producing run kept.
    pub fn kept(&self) -> usize {
        self.yielded.len()
    }

    /// True when the kept set is the synthesised all-excluded fallback:
    /// a resumed run discards it and re-yields the whole set, so a
    /// delta-aware emitter must replace — not extend — what it emitted
    /// for this frontier.
    pub fn is_synthetic(&self) -> bool {
        self.synthetic
    }

    /// True when this frontier's recorded content digest matches
    /// `component` — the same check [`FrontierEnumerator::restore`]
    /// enforces, exposed so a decoded frontier can be validated against
    /// its decoded component before any enumeration is attempted.
    pub(crate) fn matches_component(&self, component: &Component) -> bool {
        self.digest == component_digest(&component.forced, &live_candidates(component))
    }

    /// Serialise the frontier for the durable store (appends to `out`).
    ///
    /// Open states are already held in descending pop order (the
    /// deterministic external form produced by `make_frontier`), so the
    /// encoding is a pure function of the frontier's logical content.
    /// `taken` prefix vectors are heavily shared between open states
    /// (children extend their parent's `Arc`); they are written once
    /// into a content-deduplicated pool, in first-reference order, and
    /// each state stores a pool index — the decoder re-shares them.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        use imprecise_pxml::codec::{put_f64, put_len, put_u64, put_u8};
        let mut pool: Vec<&Arc<[(usize, usize)]>> = Vec::new();
        let mut by_content: std::collections::HashMap<&[(usize, usize)], usize> =
            std::collections::HashMap::new();
        let mut node_prefix: Vec<usize> = Vec::with_capacity(self.open.len());
        for node in &self.open {
            let idx = *by_content.entry(&node.taken[..]).or_insert_with(|| {
                pool.push(&node.taken);
                pool.len() - 1
            });
            node_prefix.push(idx);
        }
        put_len(out, pool.len());
        for prefix in &pool {
            put_len(out, prefix.len());
            for &(a, b) in prefix.iter() {
                put_len(out, a);
                put_len(out, b);
            }
        }
        put_len(out, self.open.len());
        for (node, &prefix) in self.open.iter().zip(&node_prefix) {
            put_len(out, node.idx);
            put_f64(out, node.weight);
            put_f64(out, node.bound);
            put_u64(out, node.seq);
            put_len(out, prefix);
        }
        put_u64(out, self.next_seq);
        put_len(out, self.yielded.len());
        for m in &self.yielded {
            encode_matching(m, out);
        }
        put_f64(out, self.retained);
        put_u8(out, u8::from(self.synthetic));
        put_u64(out, self.digest);
        put_len(out, self.live_pairs);
        put_f64(out, self.retained_mass);
        put_f64(out, self.discarded_mass);
    }

    /// Decode a frontier written by [`encode`](Self::encode).
    ///
    /// Restores the `Arc` sharing of `taken` prefixes through the pool.
    /// The recorded component digest is carried through verbatim; the
    /// caller must still check the frontier against its component (see
    /// [`matches_component`](Self::matches_component) and
    /// [`FrontierEnumerator::restore`]).
    pub(crate) fn decode(
        r: &mut imprecise_pxml::codec::Reader<'_>,
    ) -> Result<Self, imprecise_pxml::codec::CodecError> {
        let n_pool = r.take_len("taken-prefix pool size")?;
        let mut pool: Vec<Arc<[(usize, usize)]>> = Vec::with_capacity(n_pool.min(1 << 20));
        for _ in 0..n_pool {
            let n = r.take_len("taken-prefix length")?;
            let mut prefix = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let a = r.take_len("taken pair a")?;
                let b = r.take_len("taken pair b")?;
                prefix.push((a, b));
            }
            pool.push(prefix.into());
        }
        let n_open = r.take_len("open state count")?;
        let mut open = Vec::with_capacity(n_open.min(1 << 20));
        for _ in 0..n_open {
            let idx = r.take_len("open state idx")?;
            let weight = r.take_f64("open state weight")?;
            let bound = r.take_f64("open state bound")?;
            let seq = r.take_u64("open state seq")?;
            let prefix = r.take_len("open state prefix index")?;
            let taken = pool
                .get(prefix)
                .cloned()
                .ok_or_else(|| r.err("prefix index within pool"))?;
            open.push(FrontierNode {
                idx,
                weight,
                taken,
                bound,
                seq,
            });
        }
        let next_seq = r.take_u64("next_seq")?;
        let n_yielded = r.take_len("yielded count")?;
        let mut yielded = Vec::with_capacity(n_yielded.min(1 << 20));
        for _ in 0..n_yielded {
            yielded.push(decode_matching(r)?);
        }
        let retained = r.take_f64("retained")?;
        let synthetic = match r.take_u8("synthetic flag")? {
            0 => false,
            1 => true,
            _ => return Err(r.err("synthetic flag")),
        };
        let digest = r.take_u64("component digest")?;
        let live_pairs = r.take_len("live pair count")?;
        let retained_mass = r.take_f64("retained mass")?;
        let discarded_mass = r.take_f64("discarded mass")?;
        Ok(ComponentFrontier {
            open,
            next_seq,
            yielded,
            retained,
            synthetic,
            digest,
            live_pairs,
            retained_mass,
            discarded_mass,
        })
    }
}

/// Serialise one matching (pairs + bit-exact weight). Appends to `out`.
pub(crate) fn encode_matching(m: &Matching, out: &mut Vec<u8>) {
    use imprecise_pxml::codec::{put_f64, put_len};
    put_len(out, m.pairs.len());
    for &(a, b) in &m.pairs {
        put_len(out, a);
        put_len(out, b);
    }
    put_f64(out, m.weight);
}

/// Decode a matching written by [`encode_matching`].
pub(crate) fn decode_matching(
    r: &mut imprecise_pxml::codec::Reader<'_>,
) -> Result<Matching, imprecise_pxml::codec::CodecError> {
    let n = r.take_len("matching pair count")?;
    let mut pairs = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let a = r.take_len("matching pair a")?;
        let b = r.take_len("matching pair b")?;
        pairs.push((a, b));
    }
    let weight = r.take_f64("matching weight")?;
    Ok(Matching { pairs, weight })
}

/// FNV-1a digest of a component's matching-relevant content: forced
/// pairs plus every live candidate's endpoints and probability bits.
/// Two components whose digests differ can never legally exchange
/// frontiers; equal digests differ only with hash probability.
fn component_digest(forced: &[(usize, usize)], live: &[Candidate]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(forced.len() as u64);
    for &(a, b) in forced {
        mix(a as u64);
        mix(b as u64);
    }
    for c in live {
        mix(c.a as u64);
        mix(c.b as u64);
        mix(c.p.to_bits());
    }
    h
}

/// A persisted frontier was restored against a component it does not
/// belong to: the component's content digest (forced pairs + live
/// candidate endpoints and probability bits) differs from the one
/// recorded at truncation time.
///
/// Refinement state is versioned alongside the document it belongs to,
/// so this error indicates state corruption (or a caller mixing
/// frontiers across documents) — surfaced as a typed error so an engine
/// can reject the refine call instead of tearing down the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierMismatch {
    /// The digest recorded in the persisted frontier.
    pub expected: u64,
    /// The digest of the component the restore was attempted against.
    pub found: u64,
}

impl fmt::Display for FrontierMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frontier does not belong to this component (digest {:#018x}, component {:#018x})",
            self.expected, self.found
        )
    }
}

impl std::error::Error for FrontierMismatch {}

/// A resumable best-first branch-and-bound enumerator over one
/// component's live candidates.
///
/// The enumerator owns its component (`Arc`-shared with the pipeline)
/// and the heap of open search states, so it can stay *resident* across
/// refine steps instead of round-tripping through the persisted form.
/// [`run`] drives it until a [`MatchBudget`] is satisfied (budgets count
/// *total* kept matchings, across runs); [`frontier`] snapshots the
/// remaining state into a [`ComponentFrontier`]; [`restore`] rebuilds an
/// enumerator from such a snapshot so a later run continues the search
/// bit-identically. Cloning is cheap relative to a snapshot round-trip:
/// the open states' `taken` prefixes are `Arc`-shared, and no
/// sort-into-canonical-order or re-heapify is paid.
///
/// [`run`]: FrontierEnumerator::run
/// [`frontier`]: FrontierEnumerator::frontier
/// [`restore`]: FrontierEnumerator::restore
#[derive(Debug, Clone)]
pub struct FrontierEnumerator {
    component: Arc<Component>,
    live: Vec<Candidate>,
    max_take: usize,
    bounds: SuffixBounds,
    heap: BinaryHeap<SearchState>,
    seq: u64,
    /// Yielded matchings with raw weights, in yield order.
    yielded: Vec<Matching>,
    retained: f64,
    synthetic: bool,
    /// Mass accounting of the latest [`run`](Self::run).
    retained_mass: f64,
    discarded_mass: f64,
    /// Lazily computed exact total mass (see [`exact_total_mass`]).
    total_mass_cache: Option<Option<f64>>,
}

impl FrontierEnumerator {
    /// A fresh enumerator over `component`, nothing yielded yet.
    pub fn new(component: Arc<Component>) -> Self {
        let live = live_candidates(&component);
        // Inclusions can never exceed the free endpoints on either side
        // (forced pairs already consumed theirs, and live candidates
        // avoid them by construction).
        let max_take = component
            .a_nodes
            .len()
            .min(component.b_nodes.len())
            .saturating_sub(component.forced.len());
        let bounds = SuffixBounds::new(&live, max_take);
        let mut heap = BinaryHeap::new();
        heap.push(SearchState {
            bound: bounds.remaining(0, max_take),
            seq: 0,
            idx: 0,
            weight: 1.0,
            taken: Arc::from(Vec::new()),
        });
        FrontierEnumerator {
            component,
            live,
            max_take,
            bounds,
            heap,
            seq: 0,
            yielded: Vec::new(),
            retained: 0.0,
            synthetic: false,
            retained_mass: 1.0,
            discarded_mass: 0.0,
            total_mass_cache: None,
        }
    }

    /// Rebuild an enumerator from a persisted frontier of the *same*
    /// component, positioned exactly where the producing run stopped.
    ///
    /// Fails with [`FrontierMismatch`] if the frontier was produced by a
    /// different component — different forced pairs, candidate endpoints
    /// or probabilities (a content digest is checked, not just the
    /// live-pair count).
    pub fn restore(
        component: Arc<Component>,
        frontier: &ComponentFrontier,
    ) -> Result<Self, FrontierMismatch> {
        let mut this = Self::new(component);
        let found = component_digest(&this.component.forced, &this.live);
        if found != frontier.digest {
            return Err(FrontierMismatch {
                expected: frontier.digest,
                found,
            });
        }
        this.heap = frontier
            .open
            .iter()
            .map(|n| SearchState {
                bound: n.bound,
                seq: n.seq,
                idx: n.idx,
                weight: n.weight,
                taken: n.taken.clone(),
            })
            .collect();
        this.seq = frontier.next_seq;
        this.yielded = frontier.yielded.clone();
        this.retained = frontier.retained;
        this.synthetic = frontier.synthetic;
        this.retained_mass = frontier.retained_mass;
        this.discarded_mass = frontier.discarded_mass;
        Ok(this)
    }

    /// True when the search space is exhausted: the yielded matchings
    /// are the complete canonical enumeration.
    pub fn is_drained(&self) -> bool {
        self.heap.is_empty()
    }

    /// The component this enumerator searches.
    pub fn component(&self) -> &Arc<Component> {
        &self.component
    }

    /// Matchings yielded so far — what a snapshot's kept set would hold.
    pub fn kept(&self) -> usize {
        self.yielded.len()
    }

    /// Open search states on the heap.
    pub fn open_nodes(&self) -> usize {
        self.heap.len()
    }

    /// Live undecided pairs the search runs over.
    pub fn live_pairs(&self) -> usize {
        self.live.len()
    }

    /// Retained-mass figure of the latest run (`1.0` before any run).
    pub fn retained_mass(&self) -> f64 {
        self.retained_mass
    }

    /// Discarded-mass figure of the latest run (`0.0` before any run).
    pub fn discarded_mass(&self) -> f64 {
        self.discarded_mass
    }

    /// True when the latest run ended in the synthesised all-excluded
    /// fallback matching (see [`run_delta`](Self::run_delta)).
    pub fn is_synthetic(&self) -> bool {
        self.synthetic
    }

    /// Snapshot the search state unconditionally — unlike
    /// [`frontier`](Self::frontier) this works on a drained enumerator
    /// too (yielding a frontier with no open states). This is where a
    /// *live* enumerator materialises into the plain-data form for the
    /// durable store codec and invariant verification.
    pub fn snapshot_frontier(&self) -> ComponentFrontier {
        self.make_frontier(self.heap.iter().cloned().collect(), self.yielded.clone())
    }

    /// Snapshot the remaining search state, or `None` when the
    /// enumeration completed (nothing left to resume).
    pub fn frontier(&self) -> Option<ComponentFrontier> {
        if self.is_drained() {
            return None;
        }
        Some(self.make_frontier(self.heap.iter().cloned().collect(), self.yielded.clone()))
    }

    /// [`frontier`](Self::frontier) without the copies: consume the
    /// enumerator and *move* its open states and yielded matchings into
    /// the persisted form. A truncated frontier can hold tens of
    /// thousands of open states, each with a prefix-decision vector —
    /// on the integrate hot path this is the difference between
    /// persisting a pointer move and deep-copying the whole search
    /// frontier.
    pub fn into_frontier(mut self) -> Option<ComponentFrontier> {
        if self.heap.is_empty() {
            return None;
        }
        let open = std::mem::take(&mut self.heap).into_vec();
        let yielded = std::mem::take(&mut self.yielded);
        Some(self.make_frontier(open, yielded))
    }

    /// The one serialisation point both snapshot flavours share: open
    /// states in descending pop order (a deterministic external form
    /// regardless of heap layout) plus the yield/mass bookkeeping.
    fn make_frontier(
        &self,
        mut open: Vec<SearchState>,
        yielded: Vec<Matching>,
    ) -> ComponentFrontier {
        open.sort_by(|x, y| y.cmp(x));
        ComponentFrontier {
            open: open
                .into_iter()
                .map(|s| FrontierNode {
                    idx: s.idx,
                    weight: s.weight,
                    taken: s.taken,
                    bound: s.bound,
                    seq: s.seq,
                })
                .collect(),
            next_seq: self.seq,
            yielded,
            retained: self.retained,
            synthetic: self.synthetic,
            digest: component_digest(&self.component.forced, &self.live),
            live_pairs: self.live.len(),
            retained_mass: self.retained_mass,
            discarded_mass: self.discarded_mass,
        }
    }

    /// Continue best-first enumeration until `budget` is satisfied and
    /// return the canonical form of *everything* yielded so far (this
    /// run and all previous ones): matchings in descending weight,
    /// renormalised over the kept set, with the unenumerated tail's mass
    /// accounted.
    ///
    /// `budget.max_matchings` counts total kept matchings — a resumed
    /// run that should add `k` more passes `kept() + k`. With
    /// [`MatchBudget::UNLIMITED`] the search drains completely and the
    /// result is bit-identical to [`enumerate_matchings`], no matter how
    /// many budgeted runs came before.
    pub fn run(&mut self, budget: &MatchBudget) -> BudgetedMatchings {
        self.run_delta(budget, 1).0
    }

    /// [`run`](Self::run) with an expansion worker pool of up to
    /// `threads` threads. Bitwise-identical results at every thread
    /// count — see [`run_delta`](Self::run_delta).
    pub fn run_with(&mut self, budget: &MatchBudget, threads: usize) -> BudgetedMatchings {
        self.run_delta(budget, threads).0
    }

    /// [`run`](Self::run) for incremental emitters: the same canonical
    /// result (bit-identical weights — the sort and the normalisation sum
    /// are shared), plus a parallel flag vector marking which canonical
    /// entries were yielded by *this* call. A caller that already emitted
    /// the previous kept set only has to materialise the flagged entries
    /// and rescale the surviving siblings to the returned weights — the
    /// renormalisation factor is folded into every weight.
    ///
    /// When the previous run ended in the synthesised all-excluded
    /// fallback, that matching is discarded and re-derived honestly, so
    /// *every* entry comes back flagged new: emitters must replace, not
    /// extend, what they emitted for a synthetic frontier (they can tell
    /// by the flagged-old count no longer matching what they hold).
    ///
    /// # Determinism across thread counts
    ///
    /// The search proceeds in *rounds*: a sequential "certified" phase
    /// yields complete matchings while one sits at the top of the heap
    /// (no unexpanded state's admissible bound outranks it — the shared
    /// bound every worker's output is certified against), then a batch
    /// — the maximal run of consecutive incomplete states at the top of
    /// the heap, capped at `EXPAND_BATCH` — is popped and
    /// expanded — serially or split across `threads` workers — and the
    /// children are merged back in batch order with sequentially
    /// assigned tie-break numbers. Batch composition, `seq` numbering
    /// and every stop decision are pure functions of the heap's pop
    /// order, never of worker timing, so the yielded matchings, the
    /// mass sums and the frontier snapshot are **bitwise identical** at
    /// every `threads` value (`run_delta(b, 1)` and `run_delta(b, 7)`
    /// agree bit for bit). Stops (budget, retained-mass, expansion
    /// valve) only ever fire between rounds with the heap intact, which
    /// is also what makes a staged stop-and-resume replay the one-shot
    /// run exactly.
    pub fn run_delta(
        &mut self,
        budget: &MatchBudget,
        threads: usize,
    ) -> (BudgetedMatchings, Vec<bool>) {
        if self.synthetic {
            // Discard the synthesised fallback: the open states cover
            // the entire space (including the all-excluded matching), so
            // continuing the search re-derives it honestly.
            self.yielded.clear();
            self.retained = 0.0;
            self.synthetic = false;
        }
        let watermark = self.yielded.len();
        let live_len = self.live.len();
        // Safety valve: with the ratio-capped bound the search dives
        // almost straight at complete matchings, but a pathological
        // component could still explore far more partial states than it
        // yields; cap the expansions (never active when unlimited, never
        // before the first matching) and fall back to honest mass
        // accounting for whatever was not reached.
        let max_expansions = if budget.max_matchings == usize::MAX {
            usize::MAX
        } else {
            budget
                .max_matchings
                .saturating_mul(live_len.max(1))
                .saturating_mul(8)
                .max(1 << 14)
                // Round-based expansion explores up to one batch of
                // breadth per depth level before the first completion
                // (a uniform-p tie plateau is the worst case), so the
                // valve floor must scale with the batch size too.
                .max(
                    EXPAND_BATCH
                        .saturating_mul(live_len.max(1))
                        .saturating_mul(4),
                )
        };
        let workers = if threads > 1 && live_len >= MIN_PARALLEL_LIVE {
            threads
        } else {
            1
        };
        let mut stats = SearchStats {
            workers,
            ..SearchStats::default()
        };
        if self.yielded.len() < budget.max_matchings {
            let FrontierEnumerator {
                ref component,
                ref live,
                max_take,
                ref bounds,
                ref mut heap,
                ref mut seq,
                ref mut yielded,
                ref mut retained,
                ref mut total_mass_cache,
                ..
            } = *self;
            let mut cursor = SearchCursor {
                forced: &component.forced,
                live,
                bounds,
                max_take,
                heap,
                seq,
                yielded,
                retained,
                total_mass_cache,
            };
            if workers > 1 {
                expand_pooled(&mut cursor, budget, max_expansions, workers, &mut stats);
            } else {
                cursor.drive(budget, max_expansions, &mut stats, &mut |batch| {
                    batch
                        .into_iter()
                        .map(|s| expand_state(s, live, bounds, max_take))
                        .collect()
                });
            }
        }
        if self.yielded.is_empty() {
            // The expansion valve fired before any complete matching was
            // reached (a pathological bound landscape): fall back to the
            // one matching that always exists — everything excluded.
            self.retained = self.bounds.base[0];
            self.yielded.push(Matching {
                pairs: self.component.forced.clone(),
                weight: self.retained,
            });
            self.synthetic = true;
        }
        // The enumeration is complete exactly when the frontier drained;
        // then the kept matchings carry everything regardless of float
        // residue in the mass figures.
        let truncated = !self.heap.is_empty();
        let (retained_mass, discarded_mass) = if !truncated {
            (1.0, 0.0)
        } else {
            match self.total_mass() {
                // Exact: the tail mass is the total minus what was kept
                // (clamped — the two are summed in different orders).
                Some(z) if z > 0.0 => {
                    let kept = (self.retained / z).clamp(0.0, 1.0);
                    (kept, 1.0 - kept)
                }
                // Conservative: the frontier bound over-estimates the
                // tail.
                _ => {
                    let pending = frontier_mass(&self.heap);
                    let total = self.retained + pending;
                    (self.retained / total, pending / total)
                }
            }
        };
        self.retained_mass = retained_mass;
        self.discarded_mass = discarded_mass;
        let (matchings, is_new) = canonicalise_tagged(self.yielded.clone(), watermark);
        (
            BudgetedMatchings {
                matchings,
                live_pairs: live_len,
                retained_mass,
                discarded_mass,
                truncated,
                frontier_nodes: self.heap.len(),
                search: stats,
            },
            is_new,
        )
    }

    /// The exact total matching mass, when the component is small enough
    /// for the bitmask DP: makes both the `min_retained_mass` stop and
    /// the final discarded-mass figure exact. Computed lazily — a run
    /// that completes without truncation (the common case) never pays
    /// for the DP.
    fn total_mass(&mut self) -> Option<f64> {
        let live = &self.live;
        *self
            .total_mass_cache
            .get_or_insert_with(|| exact_total_mass(live))
    }
}

/// How many of the best open (incomplete) states one expansion round
/// pops for simultaneous expansion. The batch is what parallel workers
/// split; it is a fixed constant — NOT derived from the thread count —
/// so the pop/expansion schedule (and with it every yielded matching,
/// mass sum and frontier snapshot) is bitwise-identical at every
/// `threads` value.
const EXPAND_BATCH: usize = 256;

/// How many *exactly tied* `(bound, depth)` states one batch may take
/// before cutting the round short. On tie plateaus this reproduces the
/// sequential search's depth-first dive — this many branches abreast —
/// instead of materialising the plateau's exponential breadth. A fixed
/// constant for the same reason as [`EXPAND_BATCH`]: the batch schedule
/// must be a pure function of the heap's pop order.
const TIE_WIDTH: usize = 8;

/// Components with fewer live pairs than this expand serially even when
/// more threads are offered: the per-round channel round-trip would cost
/// more than the expansion arithmetic it parallelises. Purely a
/// scheduling gate — both paths run the identical round algorithm, so
/// the gate cannot affect results.
const MIN_PARALLEL_LIVE: usize = 16;

/// Fallback frontier bound: each open state's subtree mass is at most
/// its weight (remaining factors sum to at most 1 per candidate, and
/// injectivity only removes terms). The weights are summed in ascending
/// `total_cmp` order — a canonical order independent of the heap's
/// physical layout, which differs between a live resident enumerator
/// and one restored from a persisted frontier (heapify) even when the
/// open set is identical; sorting first keeps the mass figures bitwise
/// equal across that boundary. Recomputed from the heap on demand — an
/// incrementally maintained running sum would be destroyed by
/// floating-point absorption once weights shrink tens of orders of
/// magnitude below the root's 1.0.
fn frontier_mass(heap: &BinaryHeap<SearchState>) -> f64 {
    let mut weights: Vec<f64> = heap.iter().map(|s| s.weight).collect();
    weights.sort_unstable_by(|a, b| a.total_cmp(b));
    // lint:allow(float-accumulation, summed in ascending total_cmp order — canonical and independent of heap layout)
    weights.iter().sum::<f64>()
}

/// The children of one expanded incomplete state, computed as pure
/// arithmetic over shared read-only tables so a batch can fan out to
/// worker threads. Heap pushes and `seq` assignment stay with the
/// sequential merge, so tie-break numbering is independent of worker
/// timing.
struct Expanded {
    /// The expanded parent (owns the `taken` prefix its exclude child
    /// reuses).
    state: SearchState,
    excl_weight: f64,
    excl_bound: f64,
    /// The include child, when both endpoints are free.
    incl: Option<InclChild>,
}

/// An include child's `(weight, bound, taken-prefix extended by the new
/// pair)`.
type InclChild = (f64, f64, Arc<[(usize, usize)]>);

/// Expand one incomplete state into its exclude/include children.
///
/// Pure and panic-free (the driver guarantees `state.idx` indexes
/// `live`): workers run it with no shared mutable state, so the scoped
/// pool only ever computes and joins — no locks, no result races.
fn expand_state(
    state: SearchState,
    live: &[Candidate],
    bounds: &SuffixBounds,
    max_take: usize,
) -> Expanded {
    let c = live[state.idx];
    let takeable = max_take - state.taken.len();
    // Exclude edge idx.
    let w_excl = state.weight * (1.0 - c.p);
    let excl_bound = w_excl * bounds.remaining(state.idx + 1, takeable);
    // Include edge idx when both endpoints are free; a blocked
    // inclusion's mass never existed among valid matchings, so it simply
    // vanishes from the frontier (tightening the bound).
    let free = takeable > 0 && !state.taken.iter().any(|&(a, b)| a == c.a || b == c.b);
    let incl: Option<InclChild> = if free {
        let w_incl = state.weight * c.p;
        let mut taken = Vec::with_capacity(state.taken.len() + 1);
        taken.extend_from_slice(&state.taken);
        taken.push((c.a, c.b));
        Some((
            w_incl,
            w_incl * bounds.remaining(state.idx + 1, takeable - 1),
            Arc::from(taken),
        ))
    } else {
        None
    };
    Expanded {
        state,
        excl_weight: w_excl,
        excl_bound,
        incl,
    }
}

/// Split borrows of the enumerator fields the sequential side of the
/// round algorithm mutates, separated from the read-only search tables
/// (`live`, `bounds`) that worker threads borrow for the lifetime of
/// the pool's scope.
struct SearchCursor<'e> {
    forced: &'e [(usize, usize)],
    live: &'e [Candidate],
    bounds: &'e SuffixBounds,
    max_take: usize,
    heap: &'e mut BinaryHeap<SearchState>,
    seq: &'e mut u64,
    yielded: &'e mut Vec<Matching>,
    retained: &'e mut f64,
    total_mass_cache: &'e mut Option<Option<f64>>,
}

impl SearchCursor<'_> {
    /// The round loop of [`FrontierEnumerator::run_delta`]: certified
    /// yields, batch selection, expansion via `expand` (inline or a
    /// worker pool — the only pluggable part), sequential merge.
    fn drive(
        &mut self,
        budget: &MatchBudget,
        max_expansions: usize,
        stats: &mut SearchStats,
        expand: &mut dyn FnMut(Vec<SearchState>) -> Vec<Expanded>,
    ) {
        let live_len = self.live.len();
        // Without an exact total, early-stop checks cost O(frontier), so
        // they run at exponentially spaced yield counts — total checking
        // cost stays linear, at the price of overshooting the requested
        // mass by at most one doubling of the kept matchings.
        let mut next_mass_check = MASS_STOP_FLOOR;
        let mut expansions = 0usize;
        loop {
            // Certified phase: while the globally best open state is a
            // complete matching, no unexpanded state's admissible bound
            // outranks it — yield it. Every stop (budget, retained
            // mass, valve) fires between rounds with the heap intact
            // and no half-expanded batch in flight, so a staged
            // stop-and-resume replays the remaining rounds bit for bit.
            while self.heap.peek().is_some_and(|s| s.idx == live_len) {
                let Some(state) = self.heap.pop() else { break };
                stats.popped += 1;
                let mut pairs = self.forced.to_vec();
                pairs.extend_from_slice(&state.taken);
                pairs.sort_unstable();
                *self.retained += state.weight;
                self.yielded.push(Matching {
                    pairs,
                    weight: state.weight,
                });
                if self.yielded.len() >= budget.max_matchings {
                    return;
                }
                if let Some(t) = budget.min_retained_mass {
                    if self.yielded.len() >= MASS_STOP_FLOOR {
                        match self.total_mass() {
                            Some(z) => {
                                if *self.retained >= t * z {
                                    return;
                                }
                            }
                            None => {
                                if self.yielded.len() >= next_mass_check {
                                    next_mass_check = self.yielded.len().saturating_mul(2);
                                    let pending = frontier_mass(self.heap);
                                    if *self.retained / (*self.retained + pending) >= t {
                                        return;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Batch selection: pop a run of *consecutive* incomplete
            // states off the top of the heap, capped at the batch size.
            // Two canonical cutoffs keep the batch work-optimal:
            //
            // * a complete matching surfacing at the top ends the run —
            //   the shared bound: every batched incomplete outranked it
            //   (pop order descends under admissible bounds), but
            //   nothing below it can outrank it except this batch's own
            //   children, so expanding past it would do work the
            //   certified phase may be about to make unnecessary;
            // * an exact `(bound, idx)` tie run longer than
            //   [`TIE_WIDTH`] ends the run — on a tie plateau (uniform
            //   probabilities make these common) the sequential search
            //   dives depth-first through one tied branch at a time,
            //   and a wide batch would instead materialise the whole
            //   exponential breadth of the plateau; capping the tied
            //   take reproduces the dive, [`TIE_WIDTH`] branches
            //   abreast.
            //
            // Both cutoffs read only the heap's pop order and
            // constants — never the budget, the thread count, or worker
            // timing — so the expansion schedule (and with it every seq
            // number, yield and frontier) stays a canonical property of
            // the component, identical across stagings and thread
            // counts.
            let target = EXPAND_BATCH.min(max_expansions - expansions);
            if target == 0 {
                // The expansion valve fired. The heap is intact, so the
                // final accounting still sees every subtree's mass. (If
                // nothing complete was reached yet, the caller
                // synthesises the all-excluded matching.)
                return;
            }
            let mut batch = Vec::with_capacity(TIE_WIDTH.min(self.heap.len()));
            let mut tie_key = (0u64, 0usize);
            let mut tie_run = 0usize;
            while batch.len() < target {
                match self.heap.peek() {
                    Some(s) if s.idx == live_len => {
                        // The certified phase pops completes off the
                        // top, so a cutoff always strikes a non-empty
                        // batch.
                        stats.cutoffs += 1;
                        break;
                    }
                    Some(s) => {
                        let key = (s.bound.to_bits(), s.idx);
                        if tie_run > 0 && key == tie_key {
                            tie_run += 1;
                            if tie_run > TIE_WIDTH {
                                break;
                            }
                        } else {
                            tie_key = key;
                            tie_run = 1;
                        }
                        let Some(s) = self.heap.pop() else { break };
                        stats.popped += 1;
                        batch.push(s);
                    }
                    None => break,
                }
            }
            if batch.is_empty() {
                // Drained: the certified phase consumed every complete
                // state above this point, so an empty batch means an
                // empty heap.
                return;
            }
            expansions += batch.len();
            stats.expanded += batch.len() as u64;
            stats.rounds += 1;
            let results = expand(batch);
            // Merge, sequential and in batch order: `seq` numbering is
            // a pure function of the pop history, independent of how
            // many workers computed the expansions.
            for ex in results {
                *self.seq += 1;
                self.heap.push(SearchState {
                    bound: ex.excl_bound,
                    seq: *self.seq,
                    idx: ex.state.idx + 1,
                    weight: ex.excl_weight,
                    taken: ex.state.taken,
                });
                if let Some((weight, bound, taken)) = ex.incl {
                    *self.seq += 1;
                    self.heap.push(SearchState {
                        bound,
                        seq: *self.seq,
                        idx: ex.state.idx + 1,
                        weight,
                        taken,
                    });
                }
            }
        }
    }

    /// See [`FrontierEnumerator::total_mass`] — same lazy cache, reached
    /// through the split borrow.
    fn total_mass(&mut self) -> Option<f64> {
        let live = self.live;
        *self
            .total_mass_cache
            .get_or_insert_with(|| exact_total_mass(live))
    }
}

/// Drive the round algorithm with a persistent expansion pool: `workers`
/// scoped threads each own a job channel, the driver splits every batch
/// into contiguous per-worker chunks, and results are reassembled in
/// worker-index order — the deterministic-reassembly pattern (atomic-free
/// here: plain channels, no shared mutable state inside the scope), so
/// worker timing cannot reorder anything the merge sees. The pool
/// persists across all rounds of one run: spawning threads per round
/// would swamp the expansions they compute.
fn expand_pooled(
    cursor: &mut SearchCursor<'_>,
    budget: &MatchBudget,
    max_expansions: usize,
    workers: usize,
    stats: &mut SearchStats,
) {
    let live = cursor.live;
    let bounds = cursor.bounds;
    let max_take = cursor.max_take;
    std::thread::scope(|s| {
        let (res_tx, res_rx) = mpsc::channel::<(usize, Vec<Expanded>)>();
        let mut jobs: Vec<mpsc::Sender<Vec<SearchState>>> = Vec::with_capacity(workers);
        for w in 0..workers {
            let (job_tx, job_rx) = mpsc::channel::<Vec<SearchState>>();
            jobs.push(job_tx);
            let res_tx = res_tx.clone();
            s.spawn(move || {
                while let Ok(chunk) = job_rx.recv() {
                    let out: Vec<Expanded> = chunk
                        .into_iter()
                        .map(|st| expand_state(st, live, bounds, max_take))
                        .collect();
                    if res_tx.send((w, out)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(res_tx);
        cursor.drive(budget, max_expansions, stats, &mut |batch| {
            // Contiguous ceil-div chunks: every worker gets a (possibly
            // empty) chunk, so exactly `workers` results come back and
            // index-ordered reassembly restores the original batch
            // order.
            let expected = batch.len();
            let per = expected.div_ceil(workers);
            let mut items = batch.into_iter();
            for job in &jobs {
                let chunk: Vec<SearchState> = items.by_ref().take(per).collect();
                // Workers only exit when `jobs` drops at scope end, and
                // `expand_state` is panic-free, so sends and receives
                // cannot fail here.
                let _ = job.send(chunk);
            }
            let mut slots: Vec<Vec<Expanded>> = (0..workers).map(|_| Vec::new()).collect();
            for _ in 0..workers {
                if let Ok((w, out)) = res_rx.recv() {
                    slots[w] = out;
                }
            }
            let merged: Vec<Expanded> = slots.into_iter().flatten().collect();
            debug_assert_eq!(merged.len(), expected, "a worker dropped expansions");
            merged
        });
        // Dropping `jobs` closes the channels; the scope joins the pool.
    });
}

/// Enumerate the heaviest matchings of a component under a budget.
///
/// A best-first branch-and-bound search over the live candidates yields
/// complete matchings in descending weight order and stops once the
/// budget is satisfied. The retained matchings are renormalised among
/// themselves; the mass of the unenumerated tail is reported as
/// [`BudgetedMatchings::discarded_mass`] — computed *exactly* against
/// the component's total matching mass (a bitmask dynamic program over
/// the smaller side) whenever that side has at most 16 nodes, and as a
/// conservative frontier upper bound beyond that.
///
/// With [`MatchBudget::UNLIMITED`] the search drains completely and the
/// result is bit-identical to [`enumerate_matchings`]. This is the
/// one-shot convenience over [`FrontierEnumerator`], which additionally
/// persists and resumes the search state.
pub fn enumerate_budgeted(component: &Component, budget: &MatchBudget) -> BudgetedMatchings {
    FrontierEnumerator::new(Arc::new(component.clone())).run(budget)
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    live: &[Candidate],
    i: usize,
    weight: f64,
    taken: &mut Vec<(usize, usize)>,
    out: &mut Vec<Matching>,
    cap: usize,
    err: &mut Option<TooManyMatchings>,
    component: &Component,
) {
    if err.is_some() {
        return;
    }
    if i == live.len() {
        if out.len() >= cap {
            *err = Some(TooManyMatchings {
                component_pairs: live.len(),
                cap,
                path: String::new(),
            });
            return;
        }
        let mut pairs = component.forced.clone();
        pairs.extend_from_slice(taken);
        pairs.sort_unstable();
        out.push(Matching { pairs, weight });
        return;
    }
    let c = live[i];
    // Exclude edge i.
    recurse(
        live,
        i + 1,
        weight * (1.0 - c.p),
        taken,
        out,
        cap,
        err,
        component,
    );
    // Include edge i when both endpoints are free.
    let free = !taken.iter().any(|&(a, b)| a == c.a || b == c.b);
    if free {
        taken.push((c.a, c.b));
        recurse(live, i + 1, weight * c.p, taken, out, cap, err, component);
        taken.pop();
    }
}

/// Closed-form count of matchings of the complete bipartite graph
/// `n × m`: `Σ_k C(n,k)·C(m,k)·k!`. Used by tests and by the experiment
/// harnesses to report the theoretical possibility count.
pub fn complete_bipartite_matchings(n: u64, m: u64) -> u128 {
    let k_max = n.min(m);
    let mut total: u128 = 0;
    for k in 0..=k_max {
        total = total.saturating_add(
            binomial(n, k)
                .saturating_mul(binomial(m, k))
                .saturating_mul(factorial(k)),
        );
    }
    total
}

fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    for i in 0..k {
        num = num.saturating_mul((n - i) as u128) / (i + 1) as u128;
    }
    num
}

fn factorial(k: u64) -> u128 {
    (1..=k as u128).fold(1u128, |acc, x| acc.saturating_mul(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_graph(n: usize, m: usize, p: f64) -> Component {
        let mut possible = Vec::new();
        for a in 0..n {
            for b in 0..m {
                possible.push(Candidate { a, b, p });
            }
        }
        Component {
            a_nodes: (0..n).collect(),
            b_nodes: (0..m).collect(),
            forced: Vec::new(),
            possible,
        }
    }

    #[test]
    fn closed_form_counts() {
        assert_eq!(complete_bipartite_matchings(1, 1), 2);
        assert_eq!(complete_bipartite_matchings(2, 2), 7);
        assert_eq!(complete_bipartite_matchings(3, 3), 34);
        assert_eq!(complete_bipartite_matchings(6, 6), 13_327);
        assert_eq!(complete_bipartite_matchings(2, 20), 421);
        assert_eq!(complete_bipartite_matchings(0, 5), 1);
    }

    #[test]
    fn enumeration_matches_closed_form() {
        for (n, m) in [(1, 1), (2, 2), (2, 3), (3, 3), (2, 5)] {
            let c = full_graph(n, m, 0.5);
            let matchings = enumerate_matchings(&c, 1_000_000).unwrap();
            assert_eq!(
                matchings.len() as u128,
                complete_bipartite_matchings(n as u64, m as u64),
                "{n}x{m}"
            );
        }
    }

    #[test]
    fn weights_normalise_to_one() {
        let c = full_graph(2, 2, 0.3);
        let matchings = enumerate_matchings(&c, 1000).unwrap();
        let total: f64 = matchings.iter().map(|m| m.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_probability_gives_uniform_matchings() {
        // p = 0.5 makes every matching weight (0.5)^|edges|, uniform.
        let c = full_graph(2, 2, 0.5);
        let matchings = enumerate_matchings(&c, 1000).unwrap();
        assert_eq!(matchings.len(), 7);
        for m in &matchings {
            assert!((m.weight - 1.0 / 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn high_probability_favours_larger_matchings() {
        let c = full_graph(1, 1, 0.9);
        let matchings = enumerate_matchings(&c, 10).unwrap();
        assert_eq!(matchings.len(), 2);
        let empty = matchings.iter().find(|m| m.pairs.is_empty()).unwrap();
        let taken = matchings.iter().find(|m| !m.pairs.is_empty()).unwrap();
        assert!((taken.weight - 0.9).abs() < 1e-12);
        assert!((empty.weight - 0.1).abs() < 1e-12);
    }

    #[test]
    fn forced_pairs_appear_in_every_matching() {
        let c = Component {
            a_nodes: vec![0, 1],
            b_nodes: vec![0, 1],
            forced: vec![(0, 0)],
            possible: vec![Candidate { a: 1, b: 1, p: 0.5 }],
        };
        let matchings = enumerate_matchings(&c, 100).unwrap();
        assert_eq!(matchings.len(), 2);
        for m in &matchings {
            assert!(m.pairs.contains(&(0, 0)));
        }
    }

    #[test]
    fn dead_candidates_are_pruned() {
        // (0,0) forced; candidate (0,1) can never be taken.
        let c = Component {
            a_nodes: vec![0],
            b_nodes: vec![0, 1],
            forced: vec![(0, 0)],
            possible: vec![Candidate { a: 0, b: 1, p: 0.7 }],
        };
        let matchings = enumerate_matchings(&c, 100).unwrap();
        assert_eq!(matchings.len(), 1);
        assert!((matchings[0].weight - 1.0).abs() < 1e-12);
        assert_eq!(matchings[0].pairs, vec![(0, 0)]);
    }

    #[test]
    fn injectivity_is_enforced() {
        // Two candidates sharing a left node can never both be taken.
        let c = Component {
            a_nodes: vec![0],
            b_nodes: vec![0, 1],
            forced: vec![],
            possible: vec![
                Candidate { a: 0, b: 0, p: 0.5 },
                Candidate { a: 0, b: 1, p: 0.5 },
            ],
        };
        let matchings = enumerate_matchings(&c, 100).unwrap();
        // ∅, {(0,0)}, {(0,1)} — not both.
        assert_eq!(matchings.len(), 3);
        for m in &matchings {
            assert!(m.pairs.len() <= 1);
        }
    }

    #[test]
    fn cap_is_enforced() {
        let c = full_graph(3, 3, 0.5);
        let err = enumerate_matchings(&c, 10).unwrap_err();
        assert_eq!(err.cap, 10);
    }

    #[test]
    fn component_split_groups_connected_elements() {
        // Edges: (0,0), (1,0) → one component {a0,a1,b0}; a2, b1 isolated.
        let possible = vec![
            Candidate { a: 0, b: 0, p: 0.5 },
            Candidate { a: 1, b: 0, p: 0.5 },
        ];
        let comps = split_components(3, 2, &[], &possible);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].a_nodes, vec![0, 1]);
        assert_eq!(comps[0].b_nodes, vec![0]);
        assert_eq!(comps[0].possible.len(), 2);
        assert_eq!(comps[1].a_nodes, vec![2]);
        assert!(comps[1].b_nodes.is_empty());
        assert_eq!(comps[2].b_nodes, vec![1]);
        assert!(comps[2].a_nodes.is_empty());
    }

    #[test]
    fn forced_edges_also_connect() {
        let comps = split_components(2, 2, &[(0, 1)], &[]);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].a_nodes, vec![0]);
        assert_eq!(comps[0].b_nodes, vec![1]);
        assert_eq!(comps[0].forced, vec![(0, 1)]);
    }

    #[test]
    fn empty_group_is_one_empty_matching() {
        let c = Component {
            a_nodes: vec![0],
            b_nodes: vec![],
            forced: vec![],
            possible: vec![],
        };
        let matchings = enumerate_matchings(&c, 10).unwrap();
        assert_eq!(matchings.len(), 1);
        assert!(matchings[0].pairs.is_empty());
        assert!((matchings[0].weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matchings_come_out_heaviest_first() {
        let c = full_graph(2, 2, 0.8);
        let matchings = enumerate_matchings(&c, 1000).unwrap();
        assert!(matchings
            .windows(2)
            .all(|w| w[0].weight >= w[1].weight - 1e-15));
        // The heaviest matching of a high-p graph is a maximum matching.
        assert_eq!(matchings[0].pairs.len(), 2);
    }

    #[test]
    fn unlimited_budget_equals_exhaustive_bitwise() {
        for (n, m, p) in [(2, 2, 0.3), (3, 3, 0.7), (2, 5, 0.5), (4, 3, 0.9)] {
            let c = full_graph(n, m, p);
            let exhaustive = enumerate_matchings(&c, usize::MAX).unwrap();
            let budgeted = enumerate_budgeted(&c, &MatchBudget::UNLIMITED);
            assert!(!budgeted.truncated);
            assert_eq!(budgeted.retained_mass, 1.0);
            assert_eq!(budgeted.discarded_mass, 0.0);
            assert_eq!(budgeted.matchings.len(), exhaustive.len());
            for (a, b) in budgeted.matchings.iter().zip(&exhaustive) {
                assert_eq!(a.pairs, b.pairs);
                assert_eq!(a.weight.to_bits(), b.weight.to_bits(), "{n}x{m} p={p}");
            }
        }
    }

    /// A full bipartite graph whose edge probabilities are all distinct,
    /// so every matching weight is distinct and the top-K is unique.
    fn graded_graph(n: usize, m: usize) -> Component {
        let mut possible = Vec::new();
        for a in 0..n {
            for b in 0..m {
                possible.push(Candidate {
                    a,
                    b,
                    p: 0.30 + 0.047 * (a * m + b) as f64,
                });
            }
        }
        Component {
            a_nodes: (0..n).collect(),
            b_nodes: (0..m).collect(),
            forced: Vec::new(),
            possible,
        }
    }

    #[test]
    fn budget_keeps_the_heaviest_matchings() {
        let c = graded_graph(3, 3);
        let all = enumerate_matchings(&c, usize::MAX).unwrap();
        let kept = enumerate_budgeted(
            &c,
            &MatchBudget {
                max_matchings: 5,
                min_retained_mass: None,
            },
        );
        assert!(kept.truncated);
        assert_eq!(kept.matchings.len(), 5);
        // The kept set is exactly the 5 heaviest of the full enumeration
        // (comparing unnormalised rank via the pair lists).
        for (k, a) in kept.matchings.iter().zip(&all) {
            assert_eq!(k.pairs, a.pairs);
        }
        // Renormalised among themselves…
        let total: f64 = kept.matchings.iter().map(|m| m.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // …with the dropped mass accounted.
        assert!(kept.discarded_mass > 0.0);
        assert!((kept.retained_mass + kept.discarded_mass - 1.0).abs() < 1e-12);
        // The bound is conservative: true retained mass ≥ reported.
        let true_retained: f64 = all[..5].iter().map(|m| m.weight).sum();
        assert!(kept.retained_mass <= true_retained + 1e-12);
    }

    #[test]
    fn min_retained_mass_stops_early() {
        let c = full_graph(3, 3, 0.2);
        let result = enumerate_budgeted(
            &c,
            &MatchBudget {
                max_matchings: usize::MAX,
                min_retained_mass: Some(0.6),
            },
        );
        assert!(result.truncated);
        assert!(result.retained_mass >= 0.6, "{}", result.retained_mass);
        assert!(result.matchings.len() < 34, "did not stop early");
    }

    #[test]
    fn budgeted_empty_component_is_one_empty_matching() {
        let c = Component {
            a_nodes: vec![0],
            b_nodes: vec![],
            forced: vec![],
            possible: vec![],
        };
        let result = enumerate_budgeted(
            &c,
            &MatchBudget {
                max_matchings: 1,
                min_retained_mass: None,
            },
        );
        assert!(!result.truncated);
        assert_eq!(result.matchings.len(), 1);
        assert!(result.matchings[0].pairs.is_empty());
        assert_eq!(result.discarded_mass, 0.0);
    }

    #[test]
    fn budgeted_respects_forced_pairs() {
        let c = Component {
            a_nodes: vec![0, 1],
            b_nodes: vec![0, 1],
            forced: vec![(0, 0)],
            possible: vec![Candidate { a: 1, b: 1, p: 0.5 }],
        };
        let result = enumerate_budgeted(
            &c,
            &MatchBudget {
                max_matchings: 1,
                min_retained_mass: None,
            },
        );
        assert_eq!(result.matchings.len(), 1);
        assert!(result.matchings[0].pairs.contains(&(0, 0)));
        assert!((result.retained_mass - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_probability_plateau_stays_fast() {
        // p = 0.5 everywhere makes every inclusion ratio 1.0, so every
        // search-state bound ties — the tie-break must dive (depth
        // first) instead of materialising the exponential frontier
        // breadth-first. A 10×10 component has ~2.3e10 matchings; a
        // budget of 16 must return promptly with sane accounting.
        let c = full_graph(10, 10, 0.5);
        let result = enumerate_budgeted(
            &c,
            &MatchBudget {
                max_matchings: 16,
                min_retained_mass: None,
            },
        );
        assert_eq!(result.matchings.len(), 16);
        assert!(result.truncated);
        assert!(result.discarded_mass > 0.0);
        assert!((result.retained_mass + result.discarded_mass - 1.0).abs() < 1e-9);
    }

    fn budget(max: usize) -> MatchBudget {
        MatchBudget {
            max_matchings: max,
            min_retained_mass: None,
        }
    }

    #[test]
    fn resumed_enumeration_matches_exhaustive_bitwise() {
        for (n, m, p) in [(3, 3, 0.7), (4, 3, 0.35), (4, 4, 0.5)] {
            let c = full_graph(n, m, p);
            let exhaustive = enumerate_matchings(&c, usize::MAX).unwrap();
            // Truncate, persist, restore, run to completion.
            let mut first = FrontierEnumerator::new(Arc::new(c.clone()));
            let partial = first.run(&budget(5));
            assert!(partial.truncated);
            assert_eq!(
                partial.frontier_nodes,
                first.frontier().unwrap().open_nodes()
            );
            let frontier = first.frontier().unwrap();
            assert_eq!(frontier.kept(), 5);
            let mut resumed = FrontierEnumerator::restore(Arc::new(c.clone()), &frontier)
                .expect("same component");
            let full = resumed.run(&MatchBudget::UNLIMITED);
            assert!(resumed.is_drained());
            assert!(resumed.frontier().is_none());
            assert!(!full.truncated);
            assert_eq!(full.frontier_nodes, 0);
            assert_eq!(full.matchings.len(), exhaustive.len(), "{n}x{m} p={p}");
            for (a, b) in full.matchings.iter().zip(&exhaustive) {
                assert_eq!(a.pairs, b.pairs);
                assert_eq!(a.weight.to_bits(), b.weight.to_bits(), "{n}x{m} p={p}");
            }
        }
    }

    #[test]
    fn staged_resumes_shrink_discarded_mass_monotonically() {
        // A 4×4 graph with distinct probabilities strictly inside (0, 1).
        let mut possible = Vec::new();
        for a in 0..4usize {
            for b in 0..4usize {
                possible.push(Candidate {
                    a,
                    b,
                    p: 0.15 + 0.05 * (a * 4 + b) as f64,
                });
            }
        }
        let c = Component {
            a_nodes: (0..4).collect(),
            b_nodes: (0..4).collect(),
            forced: Vec::new(),
            possible,
        };
        let mut en = FrontierEnumerator::new(Arc::new(c.clone()));
        let mut last = en.run(&budget(3));
        assert!(last.truncated);
        let mut steps = 0;
        // Round-trip through the persisted form every step.
        while let Some(frontier) = en.frontier() {
            en = FrontierEnumerator::restore(Arc::new(c.clone()), &frontier)
                .expect("same component");
            let next = en.run(&budget(frontier.kept() + 7));
            assert!(
                next.discarded_mass <= last.discarded_mass + 1e-12,
                "discarded mass grew: {} -> {}",
                last.discarded_mass,
                next.discarded_mass
            );
            assert!((next.retained_mass + next.discarded_mass - 1.0).abs() < 1e-9);
            // Kept weights stay a proper distribution at every stage.
            let total: f64 = next.matchings.iter().map(|m| m.weight).sum();
            assert!((total - 1.0).abs() < 1e-9);
            if en.is_drained() {
                assert_eq!(next.discarded_mass, 0.0);
                break;
            }
            last = next;
            steps += 1;
            assert!(steps < 1000, "refinement failed to converge");
        }
        assert!(steps >= 1, "budget 3 on 209 matchings must need stages");
    }

    #[test]
    fn restore_rejects_foreign_component() {
        let c = graded_graph(3, 3);
        let mut en = FrontierEnumerator::new(Arc::new(c.clone()));
        en.run(&budget(2));
        let frontier = en.frontier().unwrap();
        let other = full_graph(2, 2, 0.5);
        let err = FrontierEnumerator::restore(Arc::new(other.clone()), &frontier)
            .expect_err("mismatched component must be rejected");
        assert_eq!(err.expected, frontier.digest);
        assert_ne!(err.expected, err.found);
        // Same shape and live-pair count, different probabilities: the
        // content digest still rejects it.
        let lookalike = full_graph(3, 3, 0.4);
        assert!(
            FrontierEnumerator::restore(Arc::new(lookalike.clone()), &frontier).is_err(),
            "lookalike component must be rejected"
        );
    }

    #[test]
    fn too_many_matchings_reports_path() {
        let err = TooManyMatchings {
            component_pairs: 9,
            cap: 4,
            path: "/catalog/movie".into(),
        };
        assert!(err.to_string().contains("/catalog/movie"), "{err}");
        let bare = TooManyMatchings {
            component_pairs: 9,
            cap: 4,
            path: String::new(),
        };
        assert!(!bare.to_string().contains(" at "), "{bare}");
    }

    #[test]
    fn chain_component_counts() {
        // a0-b0, a1-b0, a1-b1: matchings: ∅, {a0b0}, {a1b0}, {a1b1},
        // {a0b0,a1b1} = 5.
        let possible = vec![
            Candidate { a: 0, b: 0, p: 0.5 },
            Candidate { a: 1, b: 0, p: 0.5 },
            Candidate { a: 1, b: 1, p: 0.5 },
        ];
        let c = Component {
            a_nodes: vec![0, 1],
            b_nodes: vec![0, 1],
            forced: vec![],
            possible,
        };
        let matchings = enumerate_matchings(&c, 100).unwrap();
        assert_eq!(matchings.len(), 5);
    }

    /// A 4×4 graph with distinct probabilities strictly inside (0, 1)
    /// (unlike `graded_graph(4, 4)`, whose last edges exceed 1).
    fn proper_graph44() -> Component {
        let mut possible = Vec::new();
        for a in 0..4usize {
            for b in 0..4usize {
                possible.push(Candidate {
                    a,
                    b,
                    p: 0.15 + 0.05 * (a * 4 + b) as f64,
                });
            }
        }
        Component {
            a_nodes: (0..4).collect(),
            b_nodes: (0..4).collect(),
            forced: Vec::new(),
            possible,
        }
    }

    #[test]
    fn run_delta_flags_exactly_the_new_matchings() {
        let c = proper_graph44();
        let mut en = FrontierEnumerator::new(Arc::new(c.clone()));
        let first = en.run(&budget(5));
        assert!(first.truncated);
        let first_pairs: Vec<Vec<(usize, usize)>> =
            first.matchings.iter().map(|m| m.pairs.clone()).collect();
        let (next, is_new) = en.run_delta(&budget(5 + 4), 1);
        assert_eq!(next.matchings.len(), 9);
        assert_eq!(is_new.len(), next.matchings.len());
        assert_eq!(is_new.iter().filter(|&&n| n).count(), 4);
        // Old entries are exactly the first run's matchings (same pairs),
        // rescaled; new ones were not in the first kept set.
        for (m, &fresh) in next.matchings.iter().zip(&is_new) {
            assert_eq!(!first_pairs.contains(&m.pairs), fresh, "{:?}", m.pairs);
        }
        // Bitwise agreement with a single-shot run over the same budget:
        // the delta form only adds provenance, never changes weights.
        let oneshot = FrontierEnumerator::new(Arc::new(c.clone())).run(&budget(9));
        for (a, b) in next.matchings.iter().zip(&oneshot.matchings) {
            assert_eq!(a.pairs, b.pairs);
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }

    #[test]
    fn run_delta_survives_the_frontier_round_trip() {
        let c = proper_graph44();
        let mut en = FrontierEnumerator::new(Arc::new(c.clone()));
        en.run(&budget(3));
        let frontier = en.frontier().unwrap();
        let mut resumed =
            FrontierEnumerator::restore(Arc::new(c.clone()), &frontier).expect("same component");
        let (full, is_new) = resumed.run_delta(&MatchBudget::UNLIMITED, 1);
        assert!(!full.truncated);
        assert_eq!(is_new.iter().filter(|&&n| !n).count(), 3);
        let exhaustive = enumerate_matchings(&c, usize::MAX).unwrap();
        for (a, b) in full.matchings.iter().zip(&exhaustive) {
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }

    #[test]
    fn log_domain_mass_agrees_with_the_ratio_table() {
        for c in [proper_graph44(), full_graph(3, 5, 0.42)] {
            let live = live_candidates(&c);
            let sides = MassSides::of(&live);
            let ratio = exact_total_mass_ratio(&live, &sides);
            let log = exact_total_mass_log(&live, &sides);
            assert!(
                ((ratio - log) / ratio).abs() < 1e-12,
                "ratio {ratio} vs log {log}"
            );
        }
    }

    #[test]
    fn log_domain_mass_extends_past_the_dense_cap() {
        // Six disjoint 3×3 gadgets: an 18-node smaller side (past the
        // dense ratio table's 16) whose exact mass is the product of the
        // per-gadget masses, each small enough for the ratio table.
        let gadget_edges = |g: usize| -> Vec<Candidate> {
            let mut edges = Vec::new();
            for i in 0..3usize {
                for j in 0..3usize {
                    edges.push(Candidate {
                        a: 3 * g + i,
                        b: 3 * g + j,
                        p: 0.2 + 0.09 * ((g + 3 * i + j) % 7) as f64,
                    });
                }
            }
            edges
        };
        let mut possible = Vec::new();
        let mut expected = 1.0f64;
        for g in 0..6 {
            let edges = gadget_edges(g);
            let sides = MassSides::of(&edges);
            expected *= exact_total_mass_ratio(&edges, &sides);
            possible.extend(edges);
        }
        let got = exact_total_mass(&possible).expect("log-domain scan covers 18 nodes");
        assert!(
            ((got - expected) / expected).abs() < 1e-9,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn mass_past_the_log_cap_stays_conservative() {
        // 21 disjoint edges: both sides have 21 nodes, past every exact
        // cap — callers get the conservative frontier bound.
        let possible: Vec<Candidate> = (0..21).map(|i| Candidate { a: i, b: i, p: 0.5 }).collect();
        assert_eq!(exact_total_mass(&possible), None);
    }

    /// Shared-state audit: a live enumerator is kept resident inside
    /// `RefineState`, which crosses threads behind an `Arc` in the
    /// engine — it must be plain `Send + Sync` data (its `Arc`-shared
    /// prefixes are immutable; nothing inside locks).
    #[test]
    fn enumerator_is_plain_shared_data() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrontierEnumerator>();
        assert_send_sync::<ComponentFrontier>();
        assert_send_sync::<SearchStats>();
        assert_send_sync::<Parallelism>();
    }

    /// A 5×5 graph with distinct probabilities: 25 live pairs (past the
    /// parallel scheduling gate) and a unique top-K at every budget.
    fn parallel_graph55() -> Component {
        let mut possible = Vec::new();
        for a in 0..5usize {
            for b in 0..5usize {
                possible.push(Candidate {
                    a,
                    b,
                    p: 0.10 + 0.031 * (a * 5 + b) as f64,
                });
            }
        }
        Component {
            a_nodes: (0..5).collect(),
            b_nodes: (0..5).collect(),
            forced: Vec::new(),
            possible,
        }
    }

    #[test]
    fn parallel_search_is_bitwise_identical_at_every_thread_count() {
        let c = Arc::new(parallel_graph55());
        // Two staged installments plus a snapshot, at each thread count.
        let staged = |threads: usize| {
            let mut en = FrontierEnumerator::new(Arc::clone(&c));
            let (first, first_new) = en.run_delta(&budget(40), threads);
            let (second, second_new) = en.run_delta(&budget(40 + 33), threads);
            let mut bytes = Vec::new();
            en.frontier().expect("still truncated").encode(&mut bytes);
            (first, first_new, second, second_new, bytes)
        };
        let (s1, sn1, s2, sn2, sbytes) = staged(1);
        assert_eq!(s1.search.workers, 1);
        assert!(s1.search.popped > 0 && s1.search.expanded > 0);
        for threads in [2, 4, 7] {
            let (p1, pn1, p2, pn2, pbytes) = staged(threads);
            assert_eq!(p1.search.workers, threads, "pool must engage");
            for (serial, parallel) in [(&s1, &p1), (&s2, &p2)] {
                assert_eq!(serial.matchings.len(), parallel.matchings.len());
                for (a, b) in serial.matchings.iter().zip(&parallel.matchings) {
                    assert_eq!(a.pairs, b.pairs, "threads={threads}");
                    assert_eq!(a.weight.to_bits(), b.weight.to_bits(), "threads={threads}");
                }
                assert_eq!(
                    serial.retained_mass.to_bits(),
                    parallel.retained_mass.to_bits()
                );
                assert_eq!(
                    serial.discarded_mass.to_bits(),
                    parallel.discarded_mass.to_bits()
                );
                assert_eq!(serial.frontier_nodes, parallel.frontier_nodes);
                // The schedule itself is thread-count independent, so
                // the work counters agree exactly too.
                assert_eq!(serial.search.popped, parallel.search.popped);
                assert_eq!(serial.search.expanded, parallel.search.expanded);
                assert_eq!(serial.search.cutoffs, parallel.search.cutoffs);
                assert_eq!(serial.search.rounds, parallel.search.rounds);
            }
            assert_eq!(sn1, pn1, "threads={threads}");
            assert_eq!(sn2, pn2, "threads={threads}");
            assert_eq!(sbytes, pbytes, "snapshot bytes, threads={threads}");
        }
    }

    #[test]
    fn parallel_resume_from_snapshot_matches_serial_continuation() {
        let c = Arc::new(parallel_graph55());
        let mut en = FrontierEnumerator::new(Arc::clone(&c));
        en.run(&budget(25));
        let snapshot = en.frontier().expect("truncated");
        // Continue the live enumerator serially…
        let live = en.run_with(&MatchBudget::UNLIMITED, 1);
        // …and a restored one with a worker pool.
        let mut restored =
            FrontierEnumerator::restore(Arc::clone(&c), &snapshot).expect("same component");
        let resumed = restored.run_with(&MatchBudget::UNLIMITED, 4);
        assert!(!live.truncated && !resumed.truncated);
        assert_eq!(live.matchings.len(), resumed.matchings.len());
        for (a, b) in live.matchings.iter().zip(&resumed.matchings) {
            assert_eq!(a.pairs, b.pairs);
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }

    #[test]
    fn conservative_mass_is_layout_independent_across_restore() {
        // 21 disjoint edges: past every exact-mass cap, so truncated
        // accounting takes the conservative frontier bound — the one
        // path whose float sum ranges over the whole open heap. A live
        // enumerator's heap layout differs from a restored (re-heapified)
        // one even with an identical open set; the canonical-order sum
        // must make the mass figures agree bit for bit anyway.
        let possible: Vec<Candidate> = (0..21)
            .map(|i| Candidate {
                a: i,
                b: i,
                p: 0.30 + 0.02 * (i % 10) as f64,
            })
            .collect();
        let c = Arc::new(Component {
            a_nodes: (0..21).collect(),
            b_nodes: (0..21).collect(),
            forced: Vec::new(),
            possible,
        });
        let mut live_en = FrontierEnumerator::new(Arc::clone(&c));
        live_en.run(&budget(32));
        let snapshot = live_en.frontier().expect("2^21 matchings stay truncated");
        let live = live_en.run(&budget(64));
        let mut restored =
            FrontierEnumerator::restore(Arc::clone(&c), &snapshot).expect("same component");
        let resumed = restored.run(&budget(64));
        assert!(live.truncated && resumed.truncated);
        assert_eq!(
            live.retained_mass.to_bits(),
            resumed.retained_mass.to_bits()
        );
        assert_eq!(
            live.discarded_mass.to_bits(),
            resumed.discarded_mass.to_bits()
        );
        for (a, b) in live.matchings.iter().zip(&resumed.matchings) {
            assert_eq!(a.pairs, b.pairs);
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }
}
