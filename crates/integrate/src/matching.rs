//! Candidate graphs and enumeration of injective matchings.
//!
//! For a tag group with `n_a` left and `n_b` right elements the Oracle
//! produces, per cross pair, a certain match (forced), a certain non-match
//! (discarded), or an undecided probability. A *matching* is a set of
//! undecided pairs that, together with the forced pairs, uses every element
//! at most once — injectivity is the structural form of the paper's "no
//! two siblings in one source refer to the same rwo" rule.
//!
//! The number of matchings of a complete bipartite n×m candidate graph is
//! `Σ_k C(n,k)·C(m,k)·k!` — 13 327 already for 6×6, which is precisely the
//! paper's "exploding number of theoretical possibilities". Rules shrink
//! the graph; connected components factor the enumeration.

use std::fmt;

/// An undecided candidate pair with its match probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Index into the left (source a) element list.
    pub a: usize,
    /// Index into the right (source b) element list.
    pub b: usize,
    /// Oracle probability that the pair co-refers, strictly in `(0, 1)`.
    pub p: f64,
}

/// A connected component of the candidate graph over one tag group.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Component {
    /// Left element indices in this component (ascending).
    pub a_nodes: Vec<usize>,
    /// Right element indices in this component (ascending).
    pub b_nodes: Vec<usize>,
    /// Certainly matched pairs (always part of every matching).
    pub forced: Vec<(usize, usize)>,
    /// Undecided pairs to enumerate over.
    pub possible: Vec<Candidate>,
}

/// One enumerated matching with its normalised probability.
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    /// The matched pairs (forced pairs included), in deterministic order.
    pub pairs: Vec<(usize, usize)>,
    /// Normalised probability of this matching within its component.
    pub weight: f64,
}

/// Error: a component admits more matchings than the configured cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooManyMatchings {
    /// Undecided pairs in the offending component.
    pub component_pairs: usize,
    /// The cap that was exceeded.
    pub cap: usize,
}

impl fmt::Display for TooManyMatchings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "component with {} undecided pairs exceeds {} matchings",
            self.component_pairs, self.cap
        )
    }
}

impl std::error::Error for TooManyMatchings {}

/// Split a tag group's candidate graph into connected components.
///
/// Every left/right element index in `0..n_a` / `0..n_b` appears in exactly
/// one component; elements without any edge become singleton components.
/// Components are ordered by their smallest member (left-first), which
/// keeps integration output deterministic.
pub fn split_components(
    n_a: usize,
    n_b: usize,
    forced: &[(usize, usize)],
    possible: &[Candidate],
) -> Vec<Component> {
    // Union-find over n_a + n_b node slots (left first).
    let mut parent: Vec<usize> = (0..n_a + n_b).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let union = |parent: &mut [usize], x: usize, y: usize| {
        let rx = find(parent, x);
        let ry = find(parent, y);
        if rx != ry {
            parent[rx.max(ry)] = rx.min(ry);
        }
    };
    for &(a, b) in forced {
        union(&mut parent, a, n_a + b);
    }
    for c in possible {
        union(&mut parent, c.a, n_a + c.b);
    }
    // Group by root, in order of first appearance (ascending slot id =
    // left elements first in index order, then right).
    let mut components: Vec<Component> = Vec::new();
    let mut root_to_idx: Vec<Option<usize>> = vec![None; n_a + n_b];
    for slot in 0..n_a + n_b {
        let root = find(&mut parent, slot);
        let idx = match root_to_idx[root] {
            Some(i) => i,
            None => {
                root_to_idx[root] = Some(components.len());
                components.push(Component::default());
                components.len() - 1
            }
        };
        if slot < n_a {
            components[idx].a_nodes.push(slot);
        } else {
            components[idx].b_nodes.push(slot - n_a);
        }
    }
    for &(a, b) in forced {
        let root = find(&mut parent, a);
        let idx = root_to_idx[root].expect("component exists");
        components[idx].forced.push((a, b));
    }
    for c in possible {
        let root = find(&mut parent, c.a);
        let idx = root_to_idx[root].expect("component exists");
        components[idx].possible.push(*c);
    }
    components
}

/// Enumerate all injective matchings of a component, normalised.
///
/// Forced pairs are part of every matching. Undecided pairs whose
/// endpoints are consumed by forced pairs can never be taken; their
/// `(1 − p)` factors are constant across matchings and cancel under
/// normalisation, so they are excluded up front.
pub fn enumerate_matchings(
    component: &Component,
    cap: usize,
) -> Result<Vec<Matching>, TooManyMatchings> {
    let mut used_a: Vec<usize> = component.forced.iter().map(|&(a, _)| a).collect();
    let mut used_b: Vec<usize> = component.forced.iter().map(|&(_, b)| b).collect();
    used_a.sort_unstable();
    used_b.sort_unstable();
    let live: Vec<Candidate> = component
        .possible
        .iter()
        .copied()
        .filter(|c| used_a.binary_search(&c.a).is_err() && used_b.binary_search(&c.b).is_err())
        .collect();
    let mut out: Vec<Matching> = Vec::new();
    let mut taken: Vec<(usize, usize)> = Vec::new();
    let mut err: Option<TooManyMatchings> = None;
    recurse(
        &live, 0, 1.0, &mut taken, &mut out, cap, &mut err, component,
    );
    if let Some(e) = err {
        return Err(e);
    }
    let total: f64 = out.iter().map(|m| m.weight).sum();
    debug_assert!(total > 0.0, "at least the empty matching exists");
    for m in &mut out {
        m.weight /= total;
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    live: &[Candidate],
    i: usize,
    weight: f64,
    taken: &mut Vec<(usize, usize)>,
    out: &mut Vec<Matching>,
    cap: usize,
    err: &mut Option<TooManyMatchings>,
    component: &Component,
) {
    if err.is_some() {
        return;
    }
    if i == live.len() {
        if out.len() >= cap {
            *err = Some(TooManyMatchings {
                component_pairs: live.len(),
                cap,
            });
            return;
        }
        let mut pairs = component.forced.clone();
        pairs.extend_from_slice(taken);
        pairs.sort_unstable();
        out.push(Matching { pairs, weight });
        return;
    }
    let c = live[i];
    // Exclude edge i.
    recurse(
        live,
        i + 1,
        weight * (1.0 - c.p),
        taken,
        out,
        cap,
        err,
        component,
    );
    // Include edge i when both endpoints are free.
    let free = !taken.iter().any(|&(a, b)| a == c.a || b == c.b);
    if free {
        taken.push((c.a, c.b));
        recurse(live, i + 1, weight * c.p, taken, out, cap, err, component);
        taken.pop();
    }
}

/// Closed-form count of matchings of the complete bipartite graph
/// `n × m`: `Σ_k C(n,k)·C(m,k)·k!`. Used by tests and by the experiment
/// harnesses to report the theoretical possibility count.
pub fn complete_bipartite_matchings(n: u64, m: u64) -> u128 {
    let k_max = n.min(m);
    let mut total: u128 = 0;
    for k in 0..=k_max {
        total = total.saturating_add(
            binomial(n, k)
                .saturating_mul(binomial(m, k))
                .saturating_mul(factorial(k)),
        );
    }
    total
}

fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    for i in 0..k {
        num = num.saturating_mul((n - i) as u128) / (i + 1) as u128;
    }
    num
}

fn factorial(k: u64) -> u128 {
    (1..=k as u128).fold(1u128, |acc, x| acc.saturating_mul(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_graph(n: usize, m: usize, p: f64) -> Component {
        let mut possible = Vec::new();
        for a in 0..n {
            for b in 0..m {
                possible.push(Candidate { a, b, p });
            }
        }
        Component {
            a_nodes: (0..n).collect(),
            b_nodes: (0..m).collect(),
            forced: Vec::new(),
            possible,
        }
    }

    #[test]
    fn closed_form_counts() {
        assert_eq!(complete_bipartite_matchings(1, 1), 2);
        assert_eq!(complete_bipartite_matchings(2, 2), 7);
        assert_eq!(complete_bipartite_matchings(3, 3), 34);
        assert_eq!(complete_bipartite_matchings(6, 6), 13_327);
        assert_eq!(complete_bipartite_matchings(2, 20), 421);
        assert_eq!(complete_bipartite_matchings(0, 5), 1);
    }

    #[test]
    fn enumeration_matches_closed_form() {
        for (n, m) in [(1, 1), (2, 2), (2, 3), (3, 3), (2, 5)] {
            let c = full_graph(n, m, 0.5);
            let matchings = enumerate_matchings(&c, 1_000_000).unwrap();
            assert_eq!(
                matchings.len() as u128,
                complete_bipartite_matchings(n as u64, m as u64),
                "{n}x{m}"
            );
        }
    }

    #[test]
    fn weights_normalise_to_one() {
        let c = full_graph(2, 2, 0.3);
        let matchings = enumerate_matchings(&c, 1000).unwrap();
        let total: f64 = matchings.iter().map(|m| m.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_probability_gives_uniform_matchings() {
        // p = 0.5 makes every matching weight (0.5)^|edges|, uniform.
        let c = full_graph(2, 2, 0.5);
        let matchings = enumerate_matchings(&c, 1000).unwrap();
        assert_eq!(matchings.len(), 7);
        for m in &matchings {
            assert!((m.weight - 1.0 / 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn high_probability_favours_larger_matchings() {
        let c = full_graph(1, 1, 0.9);
        let matchings = enumerate_matchings(&c, 10).unwrap();
        assert_eq!(matchings.len(), 2);
        let empty = matchings.iter().find(|m| m.pairs.is_empty()).unwrap();
        let taken = matchings.iter().find(|m| !m.pairs.is_empty()).unwrap();
        assert!((taken.weight - 0.9).abs() < 1e-12);
        assert!((empty.weight - 0.1).abs() < 1e-12);
    }

    #[test]
    fn forced_pairs_appear_in_every_matching() {
        let c = Component {
            a_nodes: vec![0, 1],
            b_nodes: vec![0, 1],
            forced: vec![(0, 0)],
            possible: vec![Candidate { a: 1, b: 1, p: 0.5 }],
        };
        let matchings = enumerate_matchings(&c, 100).unwrap();
        assert_eq!(matchings.len(), 2);
        for m in &matchings {
            assert!(m.pairs.contains(&(0, 0)));
        }
    }

    #[test]
    fn dead_candidates_are_pruned() {
        // (0,0) forced; candidate (0,1) can never be taken.
        let c = Component {
            a_nodes: vec![0],
            b_nodes: vec![0, 1],
            forced: vec![(0, 0)],
            possible: vec![Candidate { a: 0, b: 1, p: 0.7 }],
        };
        let matchings = enumerate_matchings(&c, 100).unwrap();
        assert_eq!(matchings.len(), 1);
        assert!((matchings[0].weight - 1.0).abs() < 1e-12);
        assert_eq!(matchings[0].pairs, vec![(0, 0)]);
    }

    #[test]
    fn injectivity_is_enforced() {
        // Two candidates sharing a left node can never both be taken.
        let c = Component {
            a_nodes: vec![0],
            b_nodes: vec![0, 1],
            forced: vec![],
            possible: vec![
                Candidate { a: 0, b: 0, p: 0.5 },
                Candidate { a: 0, b: 1, p: 0.5 },
            ],
        };
        let matchings = enumerate_matchings(&c, 100).unwrap();
        // ∅, {(0,0)}, {(0,1)} — not both.
        assert_eq!(matchings.len(), 3);
        for m in &matchings {
            assert!(m.pairs.len() <= 1);
        }
    }

    #[test]
    fn cap_is_enforced() {
        let c = full_graph(3, 3, 0.5);
        let err = enumerate_matchings(&c, 10).unwrap_err();
        assert_eq!(err.cap, 10);
    }

    #[test]
    fn component_split_groups_connected_elements() {
        // Edges: (0,0), (1,0) → one component {a0,a1,b0}; a2, b1 isolated.
        let possible = vec![
            Candidate { a: 0, b: 0, p: 0.5 },
            Candidate { a: 1, b: 0, p: 0.5 },
        ];
        let comps = split_components(3, 2, &[], &possible);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].a_nodes, vec![0, 1]);
        assert_eq!(comps[0].b_nodes, vec![0]);
        assert_eq!(comps[0].possible.len(), 2);
        assert_eq!(comps[1].a_nodes, vec![2]);
        assert!(comps[1].b_nodes.is_empty());
        assert_eq!(comps[2].b_nodes, vec![1]);
        assert!(comps[2].a_nodes.is_empty());
    }

    #[test]
    fn forced_edges_also_connect() {
        let comps = split_components(2, 2, &[(0, 1)], &[]);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].a_nodes, vec![0]);
        assert_eq!(comps[0].b_nodes, vec![1]);
        assert_eq!(comps[0].forced, vec![(0, 1)]);
    }

    #[test]
    fn empty_group_is_one_empty_matching() {
        let c = Component {
            a_nodes: vec![0],
            b_nodes: vec![],
            forced: vec![],
            possible: vec![],
        };
        let matchings = enumerate_matchings(&c, 10).unwrap();
        assert_eq!(matchings.len(), 1);
        assert!(matchings[0].pairs.is_empty());
        assert!((matchings[0].weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_component_counts() {
        // a0-b0, a1-b0, a1-b1: matchings: ∅, {a0b0}, {a1b0}, {a1b1},
        // {a0b0,a1b1} = 5.
        let possible = vec![
            Candidate { a: 0, b: 0, p: 0.5 },
            Candidate { a: 1, b: 0, p: 0.5 },
            Candidate { a: 1, b: 1, p: 0.5 },
        ];
        let c = Component {
            a_nodes: vec![0, 1],
            b_nodes: vec![0, 1],
            forced: vec![],
            possible,
        };
        let matchings = enumerate_matchings(&c, 100).unwrap();
        assert_eq!(matchings.len(), 5);
    }
}
