//! The merge stage of the integration pipeline: walks both sources in
//! lockstep, consults the Oracle (stage 1: candidate generation), and
//! assembles the output document from the per-component
//! [`ComponentOutcome`]s the pipeline hands back (stages 2–3 live in
//! [`crate::pipeline`]; this layer is agnostic to how — or on how many
//! threads — the matchings were produced).

use crate::combos::{local_combos, prob_alternatives, LocalWorldsOverflow};
use crate::matching::{Candidate, Component, Matching};
use crate::pipeline::{self, CandidateSet, ComponentOutcome, DocFrontier};
use crate::{IntegrateError, IntegrationOptions, IntegrationStats, TruncatedComponent};
use imprecise_oracle::{Decision, ElemRef, Judgment, Oracle};
use imprecise_pxml::{px_deep_equal, PxDoc, PxNodeId};
use imprecise_xmlkit::{Attr, Schema};
use std::collections::HashMap;

impl From<LocalWorldsOverflow> for IntegrateError {
    fn from(e: LocalWorldsOverflow) -> Self {
        IntegrateError::TooManyLocalWorlds { cap: e.cap }
    }
}

/// A tag group's identity for the blocking cache: the two sides'
/// element lists in document order.
type GroupKey = (Vec<PxNodeId>, Vec<PxNodeId>);

pub(crate) struct Builder<'a> {
    a: &'a PxDoc,
    b: &'a PxDoc,
    oracle: &'a Oracle,
    schema: Option<&'a Schema>,
    opts: &'a IntegrationOptions,
    out: PxDoc,
    /// Arena slots the output document already holds elsewhere when
    /// `out` is a scratch arena (see [`Builder::scratch`]); counted into
    /// the size guard so scratch emission respects the same
    /// `max_output_nodes` cap as direct emission.
    arena_base: usize,
    /// Normalised source weights.
    w_a: f64,
    w_b: f64,
    /// Judgment cache: the same element pair is judged once even when it
    /// participates in thousands of enumerated matchings.
    judgments: HashMap<(PxNodeId, PxNodeId), Judgment>,
    /// Blocking cache: one tag group is blocked once even though
    /// `integrate_group` re-runs for it per enumerated world, so the
    /// pruned/windowed counters tally unique pairs exactly like
    /// `pairs_judged` tallies unique judgments.
    blocked_groups: HashMap<GroupKey, Vec<(usize, usize)>>,
    /// Element-tag stack from the root to the pair currently being
    /// merged; tag groups report their position as
    /// `/<stack>/<group tag>` in errors and truncation records.
    path: Vec<String>,
    stats: IntegrationStats,
    /// Resumable truncation sites collected during emission: one per
    /// truncated component, pointing at its output probability node.
    frontiers: Vec<DocFrontier>,
}

impl<'a> Builder<'a> {
    pub(crate) fn new(
        a: &'a PxDoc,
        b: &'a PxDoc,
        oracle: &'a Oracle,
        schema: Option<&'a Schema>,
        opts: &'a IntegrationOptions,
    ) -> Self {
        let (ra, rb) = opts.source_weights;
        let total = ra + rb;
        let (w_a, w_b) = if total > 0.0 {
            (ra / total, rb / total)
        } else {
            (0.5, 0.5)
        };
        Builder {
            a,
            b,
            oracle,
            schema,
            opts,
            out: PxDoc::new(),
            arena_base: 0,
            w_a,
            w_b,
            judgments: HashMap::new(),
            blocked_groups: HashMap::new(),
            path: Vec::new(),
            stats: IntegrationStats::default(),
            frontiers: Vec::new(),
        }
    }

    /// A builder emitting into a fresh *scratch* arena, for refinement:
    /// [`emit_new_possibilities`](Self::emit_new_possibilities) appends
    /// a resumed component's delta subtrees here, and the caller grafts
    /// them back into the real document in deterministic order. Scratch
    /// emission touches nothing shared, so refined components fan out
    /// over threads exactly like enumeration does. `a` and `b` must be
    /// the sources the document was integrated from; `arena_base` is the
    /// real document's current arena size, counted into the output-size
    /// guard.
    pub(crate) fn scratch(
        a: &'a PxDoc,
        b: &'a PxDoc,
        oracle: &'a Oracle,
        schema: Option<&'a Schema>,
        opts: &'a IntegrationOptions,
        arena_base: usize,
    ) -> Self {
        let mut builder = Builder::new(a, b, oracle, schema, opts);
        builder.arena_base = arena_base;
        builder
    }

    /// Emit the *new* possibility subtrees of a resumed component — the
    /// canonical entries flagged in `is_new` — as children of the
    /// scratch root, in canonical order, each with its final (already
    /// renormalised) weight. Returns the scratch possibility ids in
    /// emission order. Tag groups truncated *inside* the new subtrees
    /// record frontiers on this builder, with scratch-relative node ids
    /// the caller re-anchors when grafting.
    ///
    /// This is the append-only half of refinement: previously emitted
    /// possibilities stay where they are in the real document (the
    /// caller only rescales their weights in place), so a refine step
    /// costs the *delta* emission, not the whole growing kept set.
    pub(crate) fn emit_new_possibilities(
        &mut self,
        site: &DocFrontier,
        matchings: &[Matching],
        is_new: &[bool],
    ) -> Result<Vec<PxNodeId>, IntegrateError> {
        // Seed the element-tag stack from the frontier's recorded path
        // (minus the group tag itself, which `merge_pair` pushes), so
        // nested truncation records carry the same paths as the
        // original emission.
        self.path = site
            .path()
            .split('/')
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        self.path.pop();
        let root = self.out.root();
        let (ga, gb) = site.groups();
        let mut new_poss = Vec::with_capacity(is_new.iter().filter(|&&n| n).count());
        for (m, &fresh) in matchings.iter().zip(is_new) {
            if !fresh {
                continue;
            }
            self.guard_size()?;
            let poss = self.out.add_poss(root, m.weight);
            self.emit_matching(poss, ga, gb, site.component(), m)?;
            new_poss.push(poss);
        }
        self.path.clear();
        Ok(new_poss)
    }

    /// The element path of a tag group under the current merge position.
    fn group_path(&self, tag: &str) -> String {
        let mut out = String::new();
        for segment in &self.path {
            out.push('/');
            out.push_str(segment);
        }
        out.push('/');
        out.push_str(tag);
        out
    }

    pub(crate) fn finish_with_frontiers(self) -> (PxDoc, IntegrationStats, Vec<DocFrontier>) {
        (self.out, self.stats, self.frontiers)
    }

    /// Integrate the two root probability nodes: the cross product of the
    /// sources' top-level alternatives, each pair of root elements merged
    /// as the same real-world object (aligned schemas ⇒ the documents
    /// describe the same collection).
    pub(crate) fn integrate_roots(&mut self) -> Result<(), IntegrateError> {
        let cap = self.opts.max_local_worlds;
        let alts_a = prob_alternatives(self.a, self.a.root(), cap)?;
        let alts_b = prob_alternatives(self.b, self.b.root(), cap)?;
        if alts_a.len().saturating_mul(alts_b.len()) > cap {
            return Err(IntegrateError::TooManyLocalWorlds { cap });
        }
        for (items_a, wa) in &alts_a {
            for (items_b, wb) in &alts_b {
                // Validated documents guarantee exactly one root element
                // per alternative.
                let ea = items_a[0];
                let eb = items_b[0];
                // lint:allow(expect-in-lib, holds by construction: root content is an element)
                let tag_a = self.a.tag(ea).expect("root content is an element");
                // lint:allow(expect-in-lib, holds by construction: root content is an element)
                let tag_b = self.b.tag(eb).expect("root content is an element");
                if tag_a != tag_b {
                    return Err(IntegrateError::RootTagMismatch {
                        a: tag_a.to_string(),
                        b: tag_b.to_string(),
                    });
                }
                let root = self.out.root();
                let poss = self.out.add_poss(root, wa * wb);
                self.merge_pair(poss, ea, eb)?;
            }
        }
        Ok(())
    }

    /// Consult the Oracle (through the cache) about one cross-source pair.
    fn judge(&mut self, an: PxNodeId, bn: PxNodeId) -> Judgment {
        if let Some(j) = self.judgments.get(&(an, bn)) {
            return j.clone();
        }
        let j = self.oracle.judge(
            &ElemRef {
                doc: self.a,
                node: an,
            },
            &ElemRef {
                doc: self.b,
                node: bn,
            },
        );
        self.note_judgment(an, bn, &j);
        j
    }

    /// Consult the Oracle about one left element against many right
    /// elements, through the cache. Bit-identical to calling
    /// [`Builder::judge`] per pair (including every stats counter), but
    /// uncached pairs go through [`Oracle::judge_row`] so rules amortise
    /// their left-hand preprocessing across the row.
    fn judge_row(&mut self, an: PxNodeId, bns: &[PxNodeId]) -> Vec<Judgment> {
        let mut out: Vec<Option<Judgment>> = bns
            .iter()
            .map(|bn| self.judgments.get(&(an, *bn)).cloned())
            .collect();
        let missing: Vec<usize> = (0..bns.len()).filter(|&i| out[i].is_none()).collect();
        if !missing.is_empty() {
            let a_ref = ElemRef {
                doc: self.a,
                node: an,
            };
            let b_refs: Vec<ElemRef<'_>> = missing
                .iter()
                .map(|&i| ElemRef {
                    doc: self.b,
                    node: bns[i],
                })
                .collect();
            let judged = self.oracle.judge_row(&a_ref, &b_refs);
            for (&i, j) in missing.iter().zip(judged) {
                self.note_judgment(an, bns[i], &j);
                out[i] = Some(j);
            }
        }
        out.into_iter()
            .map(|j| {
                // lint:allow(expect-in-lib, holds by construction: every empty slot was filled from the batch judgment above)
                j.expect("judge_row filled every slot")
            })
            .collect()
    }

    /// Record one fresh judgment into the stats counters and the cache.
    fn note_judgment(&mut self, an: PxNodeId, bn: PxNodeId, j: &Judgment) {
        self.stats.pairs_judged += 1;
        match j.decision {
            Decision::Match => self.stats.judged_match += 1,
            Decision::NonMatch => self.stats.judged_nonmatch += 1,
            Decision::Possible(_) => {
                self.stats.judged_possible += 1;
                if let Some(tag) = self.a.tag(an) {
                    *self
                        .stats
                        .undecided_by_tag
                        .entry(tag.to_string())
                        .or_insert(0) += 1;
                }
            }
        }
        if let Some(rule) = &j.rule {
            *self.stats.rule_decisions.entry(rule.clone()).or_insert(0) += 1;
        }
        self.judgments.insert((an, bn), j.clone());
    }

    fn guard_size(&self) -> Result<(), IntegrateError> {
        if self.arena_base + self.out.arena_len() > self.opts.max_output_nodes {
            Err(IntegrateError::OutputTooLarge {
                cap: self.opts.max_output_nodes,
            })
        } else {
            Ok(())
        }
    }

    /// Merge two elements that refer to the same real-world object,
    /// appending the merged element (or, on attribute conflict, a choice
    /// of element variants) under `parent` in the output.
    fn merge_pair(
        &mut self,
        parent: PxNodeId,
        ae: PxNodeId,
        be: PxNodeId,
    ) -> Result<(), IntegrateError> {
        self.guard_size()?;
        let tag = self
            .a
            .tag(ae)
            // lint:allow(expect-in-lib, holds by construction: merge_pair called on elements)
            .expect("merge_pair called on elements")
            .to_string();
        debug_assert_eq!(self.b.tag(be), Some(tag.as_str()));
        self.path.push(tag.clone());
        let result = self.merge_pair_inner(parent, ae, be, tag);
        self.path.pop();
        result
    }

    fn merge_pair_inner(
        &mut self,
        parent: PxNodeId,
        ae: PxNodeId,
        be: PxNodeId,
        tag: String,
    ) -> Result<(), IntegrateError> {
        let attrs_a = self.a.attrs(ae).to_vec();
        let attrs_b = self.b.attrs(be).to_vec();
        let mut conflicts = false;
        for x in &attrs_a {
            if let Some(y) = attrs_b.iter().find(|y| y.name == x.name) {
                if y.value != x.value {
                    conflicts = true;
                    break;
                }
            }
        }
        if !conflicts {
            let el = self.out.add_elem(parent, tag);
            for attr in union_attrs(&attrs_a, &attrs_b) {
                self.out.set_attr(el, attr.name, attr.value);
            }
            self.merge_children(el, &tag_of(self.a, ae), ae, be)
        } else {
            // The true attribute set is either source a's or source b's:
            // a two-way choice between complete element variants, each with
            // its own copy of the merged children.
            self.stats.attr_conflicts += 1;
            let prob = self.out.add_prob(parent);
            let (wa, wb) = (self.w_a, self.w_b);
            let poss_a = self.out.add_poss(prob, wa);
            let el_a = self.out.add_elem(poss_a, tag.clone());
            for attr in union_attrs(&attrs_a, &attrs_b) {
                self.out.set_attr(el_a, attr.name, attr.value);
            }
            self.merge_children(el_a, &tag, ae, be)?;
            let poss_b = self.out.add_poss(prob, wb);
            let el_b = self.out.add_elem(poss_b, tag.clone());
            for attr in union_attrs(&attrs_b, &attrs_a) {
                self.out.set_attr(el_b, attr.name, attr.value);
            }
            self.merge_children(el_b, &tag, ae, be)
        }
    }

    /// Merge the child lists of two matched elements into `el_out`.
    fn merge_children(
        &mut self,
        el_out: PxNodeId,
        parent_tag: &str,
        ae: PxNodeId,
        be: PxNodeId,
    ) -> Result<(), IntegrateError> {
        let a_items = self.a.children(ae).to_vec();
        let b_items = self.b.children(be).to_vec();
        let has_choice = a_items.iter().any(|&n| self.a.is_prob(n))
            || b_items.iter().any(|&n| self.b.is_prob(n));
        if !has_choice {
            return self.integrate_lists(el_out, parent_tag, &a_items, &b_items);
        }
        let cap = self.opts.max_local_worlds;
        let combos_a = local_combos(self.a, &a_items, cap)?;
        let combos_b = local_combos(self.b, &b_items, cap)?;
        if combos_a.len().saturating_mul(combos_b.len()) > cap {
            return Err(IntegrateError::TooManyLocalWorlds { cap });
        }
        if combos_a.len() == 1 && combos_b.len() == 1 {
            return self.integrate_lists(el_out, parent_tag, &combos_a[0].0, &combos_b[0].0);
        }
        let prob = self.out.add_prob(el_out);
        for (la, wa) in &combos_a {
            for (lb, wb) in &combos_b {
                let poss = self.out.add_poss(prob, wa * wb);
                self.integrate_lists(poss, parent_tag, la, lb)?;
            }
        }
        Ok(())
    }

    /// Integrate two concrete (choice-free at top level) item lists under
    /// `parent` (an element or possibility node of the output).
    fn integrate_lists(
        &mut self,
        parent: PxNodeId,
        parent_tag: &str,
        a_items: &[PxNodeId],
        b_items: &[PxNodeId],
    ) -> Result<(), IntegrateError> {
        self.guard_size()?;
        // 1. Character data: compare the concatenated text of both sides.
        let text_a = concat_text(self.a, a_items);
        let text_b = concat_text(self.b, b_items);
        match (text_a.is_empty(), text_b.is_empty()) {
            (true, true) => {}
            (false, true) => {
                self.out.add_text(parent, text_a);
            }
            (true, false) => {
                self.out.add_text(parent, text_b);
            }
            (false, false) => {
                if text_a == text_b {
                    self.out.add_text(parent, text_a);
                } else {
                    // A value conflict: exactly one of the observations is
                    // right (the paper's John-phone-number situation).
                    self.stats.value_conflicts += 1;
                    let prob = self.out.add_prob(parent);
                    let (wa, wb) = (self.w_a, self.w_b);
                    let pa = self.out.add_poss(prob, wa);
                    self.out.add_text(pa, text_a);
                    let pb = self.out.add_poss(prob, wb);
                    self.out.add_text(pb, text_b);
                }
            }
        }
        // 2. Elements, grouped by tag in order of first appearance.
        let groups = group_by_tag(self.a, a_items, self.b, b_items);
        for (tag, ga, gb) in groups {
            self.integrate_group(parent, parent_tag, &tag, &ga, &gb)?;
        }
        Ok(())
    }

    /// Integrate one tag group.
    fn integrate_group(
        &mut self,
        parent: PxNodeId,
        parent_tag: &str,
        tag: &str,
        ga: &[PxNodeId],
        gb: &[PxNodeId],
    ) -> Result<(), IntegrateError> {
        // One-sided groups copy over unchanged (certain content).
        if ga.is_empty() {
            for &n in gb {
                self.out.graft_px(parent, self.b, n);
            }
            return Ok(());
        }
        if gb.is_empty() {
            for &n in ga {
                self.out.graft_px(parent, self.a, n);
            }
            return Ok(());
        }
        // Schema-declared single-valued children of a matched parent refer
        // to the same rwo by construction (a movie has one real title): a
        // forced merge, with conflicting text handled as a value choice.
        let single = self
            .schema
            .is_some_and(|s| s.is_single_valued(parent_tag, tag));
        if single && ga.len() == 1 && gb.len() == 1 {
            if px_deep_equal(self.a, ga[0], self.b, gb[0]) {
                self.out.graft_px(parent, self.a, ga[0]);
            } else {
                self.merge_pair(parent, ga[0], gb[0])?;
            }
            return Ok(());
        }
        // Multi-valued: run the staged matching pipeline.
        //
        // Stage 1 — candidate generation: consult the Oracle about every
        // cross pair (or, under blocking, only the pairs that survive the
        // prefilters — recall-safe pruning drops provable `NonMatch`es, so
        // it cannot change what lands in `forced_raw`/`possible`), then
        // make the forced set injective.
        let mut forced_raw: Vec<(usize, usize)> = Vec::new();
        let mut possible: Vec<Candidate> = Vec::new();
        if self.opts.blocking == crate::BlockingMode::Off {
            for (ai, &an) in ga.iter().enumerate() {
                for (bi, &bn) in gb.iter().enumerate() {
                    match self.judge(an, bn).decision {
                        Decision::Match => forced_raw.push((ai, bi)),
                        Decision::NonMatch => {}
                        Decision::Possible(p) => possible.push(Candidate { a: ai, b: bi, p }),
                    }
                }
            }
        } else {
            let key = (ga.to_vec(), gb.to_vec());
            if !self.blocked_groups.contains_key(&key) {
                let blocked = pipeline::block_candidates(
                    self.a,
                    ga,
                    self.b,
                    gb,
                    self.oracle,
                    tag,
                    self.opts.blocking,
                );
                self.stats.pairs_pruned += blocked.pruned;
                self.stats.pairs_windowed_out += blocked.windowed_out;
                self.blocked_groups.insert(key.clone(), blocked.pairs);
            }
            let pairs = self.blocked_groups.get(&key).cloned().unwrap_or_default();
            // Judge the survivors row by row (they are in row-major
            // order) so the oracle amortises per-row preprocessing.
            let mut start = 0;
            while start < pairs.len() {
                let ai = pairs[start].0;
                let mut end = start;
                while end < pairs.len() && pairs[end].0 == ai {
                    end += 1;
                }
                let row = &pairs[start..end];
                let bns: Vec<PxNodeId> = row.iter().map(|&(_, bi)| gb[bi]).collect();
                let judgments = self.judge_row(ga[ai], &bns);
                for (&(_, bi), judgment) in row.iter().zip(judgments) {
                    match judgment.decision {
                        Decision::Match => forced_raw.push((ai, bi)),
                        Decision::NonMatch => {}
                        Decision::Possible(p) => possible.push(Candidate { a: ai, b: bi, p }),
                    }
                }
                start = end;
            }
        }
        let candidates = CandidateSet::resolve(forced_raw, possible);
        self.stats.demoted_forced += candidates.demoted;
        // Stage 2 — component split.
        let components = pipeline::split(&candidates, ga.len(), gb.len());
        // Stage 3 — budgeted (or strict) matching enumeration, possibly
        // fanned out over worker threads; independent of this builder.
        let group_path = self.group_path(tag);
        let outcomes =
            pipeline::enumerate_components(components, self.opts, &group_path).map_err(|e| {
                IntegrateError::TooManyMatchings {
                    component_pairs: e.component_pairs,
                    cap: e.cap,
                    path: e.path,
                }
            })?;
        // Stage 4 — merge the outcomes into the output document.
        for outcome in outcomes {
            self.record_outcome(&group_path, &outcome);
            self.emit_outcome(parent, ga, gb, outcome, &group_path)?;
        }
        Ok(())
    }

    /// Fold one component outcome into the integration statistics.
    fn record_outcome(&mut self, group_path: &str, outcome: &ComponentOutcome) {
        self.stats.components_total += 1;
        self.stats.matchings_enumerated += outcome.matchings.len();
        self.stats.max_component_matchings = self
            .stats
            .max_component_matchings
            .max(outcome.matchings.len());
        if outcome.truncated {
            self.stats.max_discarded_mass =
                self.stats.max_discarded_mass.max(outcome.discarded_mass);
            self.stats.truncated_components.push(TruncatedComponent {
                path: group_path.to_string(),
                live_pairs: outcome.live_pairs,
                kept: outcome.matchings.len(),
                discarded_mass: outcome.discarded_mass,
                frontier_nodes: outcome.frontier.as_ref().map_or(0, |f| f.open_nodes()),
                resumable: outcome.frontier.is_some(),
            });
        }
    }

    /// Emit one component outcome: a single certain matching inline, or
    /// a probability node holding one possibility per kept matching.
    /// Truncated components *always* get a probability node — the stable
    /// anchor refinement re-emits into — and their persisted frontier is
    /// recorded against it.
    fn emit_outcome(
        &mut self,
        parent: PxNodeId,
        ga: &[PxNodeId],
        gb: &[PxNodeId],
        outcome: ComponentOutcome,
        group_path: &str,
    ) -> Result<(), IntegrateError> {
        let ComponentOutcome {
            component,
            matchings,
            frontier,
            ..
        } = outcome;
        if matchings.len() == 1 && frontier.is_none() {
            return self.emit_matching(parent, ga, gb, &component, &matchings[0]);
        }
        self.stats.components_with_choice += 1;
        let prob = self.out.add_prob(parent);
        for m in &matchings {
            self.guard_size()?;
            let poss = self.out.add_poss(prob, m.weight);
            self.emit_matching(poss, ga, gb, &component, m)?;
        }
        if let Some(frontier) = frontier {
            self.frontiers.push(DocFrontier::new(
                group_path.to_string(),
                prob,
                ga.to_vec(),
                gb.to_vec(),
                component,
                frontier,
            ));
        }
        Ok(())
    }

    /// Emit one matching of a component: merged pairs at the position of
    /// their left element, then unmatched right elements.
    fn emit_matching(
        &mut self,
        parent: PxNodeId,
        ga: &[PxNodeId],
        gb: &[PxNodeId],
        comp: &Component,
        m: &Matching,
    ) -> Result<(), IntegrateError> {
        let mut b_of_a: HashMap<usize, usize> = HashMap::with_capacity(m.pairs.len());
        let mut b_used: Vec<bool> = vec![false; gb.len()];
        for &(ai, bi) in &m.pairs {
            b_of_a.insert(ai, bi);
            b_used[bi] = true;
        }
        for &ai in &comp.a_nodes {
            match b_of_a.get(&ai) {
                Some(&bi) => self.merge_pair(parent, ga[ai], gb[bi])?,
                None => {
                    self.out.graft_px(parent, self.a, ga[ai]);
                }
            }
        }
        for &bi in &comp.b_nodes {
            if !b_used[bi] {
                self.out.graft_px(parent, self.b, gb[bi]);
            }
        }
        Ok(())
    }
}

fn tag_of(doc: &PxDoc, node: PxNodeId) -> String {
    // lint:allow(expect-in-lib, holds by construction: element node)
    doc.tag(node).expect("element node").to_string()
}

/// Union of two attribute lists; on shared names, `primary` wins.
fn union_attrs(primary: &[Attr], secondary: &[Attr]) -> Vec<Attr> {
    let mut out: Vec<Attr> = primary.to_vec();
    for attr in secondary {
        if !out.iter().any(|x| x.name == attr.name) {
            out.push(attr.clone());
        }
    }
    out
}

/// Concatenated text of the text items of a list.
fn concat_text(doc: &PxDoc, items: &[PxNodeId]) -> String {
    let mut out = String::new();
    for &n in items {
        if let Some(t) = doc.text(n) {
            out.push_str(t);
        }
    }
    out
}

/// Group the element items of both lists by tag, in order of first
/// appearance (left list scanned first).
fn group_by_tag(
    a: &PxDoc,
    a_items: &[PxNodeId],
    b: &PxDoc,
    b_items: &[PxNodeId],
) -> Vec<(String, Vec<PxNodeId>, Vec<PxNodeId>)> {
    let mut groups: Vec<(String, Vec<PxNodeId>, Vec<PxNodeId>)> = Vec::new();
    for &n in a_items {
        if let Some(tag) = a.tag(n) {
            match groups.iter_mut().find(|g| g.0 == tag) {
                Some(g) => g.1.push(n),
                None => groups.push((tag.to_string(), vec![n], Vec::new())),
            }
        }
    }
    for &n in b_items {
        if let Some(tag) = b.tag(n) {
            match groups.iter_mut().find(|g| g.0 == tag) {
                Some(g) => g.2.push(n),
                None => groups.push((tag.to_string(), Vec::new(), vec![n])),
            }
        }
    }
    groups
}
