//! The staged integration pipeline for one tag group.
//!
//! Matching a multi-valued tag group runs as four explicit stages:
//!
//! 1. **Candidate generation** — Oracle judgments over the cross product
//!    become a [`CandidateSet`]: forced pairs (certain matches, made
//!    injective by demotion) plus undecided [`Candidate`]s.
//! 2. **Component split** — [`split`] factors the candidate graph into
//!    independent connected [`Component`]s.
//! 3. **Budgeted enumeration** — [`enumerate_components`] turns each
//!    component into a [`ComponentOutcome`]: its matchings in
//!    descending weight, cut off at the configured [`MatchBudget`] with
//!    the dropped probability mass accounted (or, in strict mode, a
//!    [`TooManyMatchings`] error). Components are independent, so this
//!    stage fans out over [`std::thread::scope`] when
//!    [`IntegrationOptions::parallelism`] allows.
//! 4. **Merge** — the builder in `merge` consumes the outcomes and
//!    assembles the output document; it never sees how (or on how many
//!    threads) the matchings were produced.
//!
//! Every stage is deterministic: outcomes are reassembled in component
//! order and each component's enumeration is self-contained, so serial
//! and parallel runs build bit-identical documents.

use crate::matching::{
    enumerate_matchings, live_candidates, split_components, Candidate, Component,
    ComponentFrontier, FrontierEnumerator, FrontierMismatch, MatchBudget, Matching,
    TooManyMatchings,
};
use crate::{BlockingMode, BudgetPlan, IntegrationOptions};
use imprecise_oracle::value::PossibleValues;
use imprecise_oracle::{BlockingPlan, ElemRef, ElementFeatures, Oracle, PruneFilter};
use imprecise_pxml::{PxDoc, PxNodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Stage-1 output: the judged cross product of one tag group.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CandidateSet {
    /// Certainly matched pairs, injective (see [`CandidateSet::resolve`]).
    pub forced: Vec<(usize, usize)>,
    /// Undecided pairs with their match probabilities.
    pub possible: Vec<Candidate>,
    /// Forced pairs demoted to near-certain candidates because they
    /// conflicted with an earlier forced pair on the same element.
    pub demoted: usize,
}

impl CandidateSet {
    /// Build a candidate set from raw Oracle output, demoting forced
    /// pairs that would break injectivity (contradictory certain
    /// knowledge — e.g. one source holding two elements deep-equal to
    /// the same element of the other source) to highly probable
    /// undecided pairs.
    pub fn resolve(raw_forced: Vec<(usize, usize)>, mut possible: Vec<Candidate>) -> Self {
        let mut forced: Vec<(usize, usize)> = Vec::new();
        let n_a = raw_forced.iter().map(|&(a, _)| a + 1).max().unwrap_or(0);
        let n_b = raw_forced.iter().map(|&(_, b)| b + 1).max().unwrap_or(0);
        let mut used_a = vec![false; n_a];
        let mut used_b = vec![false; n_b];
        let mut demoted = 0;
        for (ai, bi) in raw_forced {
            if used_a[ai] || used_b[bi] {
                demoted += 1;
                possible.push(Candidate {
                    a: ai,
                    b: bi,
                    p: 1.0 - 1e-6,
                });
            } else {
                used_a[ai] = true;
                used_b[bi] = true;
                forced.push((ai, bi));
            }
        }
        CandidateSet {
            forced,
            possible,
            demoted,
        }
    }
}

/// Stage 2: factor the candidate graph of a `n_a × n_b` tag group into
/// independent connected components.
pub fn split(set: &CandidateSet, n_a: usize, n_b: usize) -> Vec<Component> {
    split_components(n_a, n_b, &set.forced, &set.possible)
}

/// Stage-0 output: the pairs of one tag group that survive blocking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockedPairs {
    /// Surviving `(a_index, b_index)` pairs in row-major order — exactly
    /// the iteration order of the unblocked double loop.
    pub pairs: Vec<(usize, usize)>,
    /// Pairs dropped by recall-safe filters (provable `NonMatch`es).
    pub pruned: usize,
    /// Pairs dropped unexamined by heuristic windowing (recall risk).
    pub windowed_out: usize,
}

/// Stage 0 (optional): generate the candidate pairs of one tag group
/// without judging the full cross product.
///
/// In [`BlockingMode::RecallSafe`] the surviving pairs contain every
/// pair the oracle would not certainly reject: the plan's equality
/// filter (if any) becomes a hash join over certain key values and the
/// remaining filters run on cheap precomputed features, so generation
/// is sub-quadratic whenever keys spread the group into small buckets.
/// Pruned pairs are provably `NonMatch` (see
/// [`imprecise_oracle::BlockingPlan`]), so downstream output is
/// bit-identical to judging everything.
///
/// [`BlockingMode::Heuristic`] additionally restricts candidates to a
/// sorted-neighbourhood window and may therefore miss true matches; the
/// unexamined count is reported as `windowed_out`.
pub fn block_candidates(
    a: &PxDoc,
    ga: &[PxNodeId],
    b: &PxDoc,
    gb: &[PxNodeId],
    oracle: &Oracle,
    tag: &str,
    mode: BlockingMode,
) -> BlockedPairs {
    let total = ga.len() * gb.len();
    if mode == BlockingMode::Off {
        return BlockedPairs {
            pairs: cross_product(ga.len(), gb.len()),
            pruned: 0,
            windowed_out: 0,
        };
    }
    let plan = oracle.blocking_plan(tag);
    let fa: Vec<ElementFeatures> = ga
        .iter()
        .map(|&n| plan.features(&ElemRef { doc: a, node: n }))
        .collect();
    let fb: Vec<ElementFeatures> = gb
        .iter()
        .map(|&n| plan.features(&ElemRef { doc: b, node: n }))
        .collect();
    if let BlockingMode::Heuristic { window } = mode {
        let considered = window_pairs(&plan, a, ga, b, gb, window);
        let windowed_out = total - considered.len();
        let mut pairs = Vec::with_capacity(considered.len());
        let mut pruned = 0;
        for (ai, bi) in considered {
            if plan.prunes(&fa[ai], &fb[bi]) {
                pruned += 1;
            } else {
                pairs.push((ai, bi));
            }
        }
        BlockedPairs {
            pairs,
            pruned,
            windowed_out,
        }
    } else {
        let pairs = recall_safe_pairs(&plan, &fa, &fb);
        BlockedPairs {
            pruned: total - pairs.len(),
            windowed_out: 0,
            pairs,
        }
    }
}

fn cross_product(n_a: usize, n_b: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(n_a * n_b);
    for ai in 0..n_a {
        for bi in 0..n_b {
            pairs.push((ai, bi));
        }
    }
    pairs
}

/// Every pair the plan cannot prove `NonMatch`, in row-major order.
fn recall_safe_pairs(
    plan: &BlockingPlan,
    fa: &[ElementFeatures],
    fb: &[ElementFeatures],
) -> Vec<(usize, usize)> {
    if plan.is_empty() {
        return cross_product(fa.len(), fb.len());
    }
    let Some(join) = plan.join_filter() else {
        // No equality filter to join on: scan the cross product with the
        // cheap feature predicate (still zero oracle calls per pruned pair).
        let mut pairs = Vec::new();
        for (ai, ffa) in fa.iter().enumerate() {
            for (bi, ffb) in fb.iter().enumerate() {
                if !plan.prunes(ffa, ffb) {
                    pairs.push((ai, bi));
                }
            }
        }
        return pairs;
    };
    // Hash-join on the equality filter's certain keys. Elements without
    // certain keys are "wild": that filter can never prune them, so they
    // pair with everything.
    let mut buckets: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut wild_b: Vec<usize> = Vec::new();
    for (bi, f) in fb.iter().enumerate() {
        match f.join_keys(join) {
            Some(ks) => {
                for k in ks {
                    buckets.entry(k.as_str()).or_default().push(bi);
                }
            }
            None => wild_b.push(bi),
        }
    }
    let mut pairs = Vec::new();
    let mut cands: Vec<usize> = Vec::new();
    for (ai, ffa) in fa.iter().enumerate() {
        cands.clear();
        match ffa.join_keys(join) {
            None => cands.extend(0..fb.len()),
            Some(ks) => {
                cands.extend(wild_b.iter().copied());
                for k in ks {
                    if let Some(bs) = buckets.get(k.as_str()) {
                        cands.extend(bs.iter().copied());
                    }
                }
                // Multi-valued keys (or wild overlap) can enqueue a
                // candidate twice; sorted-dedup keeps row-major order
                // without a tree insert per candidate.
                cands.sort_unstable();
                cands.dedup();
            }
        }
        for &bi in &cands {
            if !plan.prunes(ffa, &fb[bi]) {
                pairs.push((ai, bi));
            }
        }
    }
    pairs
}

/// Sorted-neighbourhood candidates: both groups sort together on a
/// normalised key; only pairs within `window` positions of each other in
/// the combined order are considered. Returned in row-major order.
fn window_pairs(
    plan: &BlockingPlan,
    a: &PxDoc,
    ga: &[PxNodeId],
    b: &PxDoc,
    gb: &[PxNodeId],
    window: usize,
) -> Vec<(usize, usize)> {
    // (key, side, index): side and index break key ties deterministically.
    let mut entries: Vec<(String, u8, usize)> = Vec::with_capacity(ga.len() + gb.len());
    for (ai, &n) in ga.iter().enumerate() {
        entries.push((window_key(plan, &ElemRef { doc: a, node: n }), 0, ai));
    }
    for (bi, &n) in gb.iter().enumerate() {
        entries.push((window_key(plan, &ElemRef { doc: b, node: n }), 1, bi));
    }
    entries.sort();
    let mut pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (i, (_, side_i, idx_i)) in entries.iter().enumerate() {
        for (_, side_j, idx_j) in entries.iter().skip(i + 1).take(window) {
            match (side_i, side_j) {
                (0, 1) => {
                    pairs.insert((*idx_i, *idx_j));
                }
                (1, 0) => {
                    pairs.insert((*idx_j, *idx_i));
                }
                _ => {}
            }
        }
    }
    pairs.into_iter().collect()
}

/// The key heuristic windowing sorts elements by: the first value of the
/// plan's first similarity filter (where near-matches share prefixes),
/// else the first equality key, else the element's own text.
fn window_key(plan: &BlockingPlan, e: &ElemRef<'_>) -> String {
    const KEY_CAP: usize = 4;
    let first_value = |path: &str| match e.possible_values_at(path, KEY_CAP) {
        PossibleValues::Values(vs) => vs.into_iter().next(),
        _ => None,
    };
    let key = plan
        .filters()
        .iter()
        .find_map(|f| match f {
            PruneFilter::SimilarityBelow { value_path, .. } => first_value(value_path),
            _ => None,
        })
        .or_else(|| {
            plan.filters().iter().find_map(|f| match f {
                PruneFilter::KeyDiffers { value_path } => first_value(value_path),
                PruneFilter::TextDiffers => e
                    .possible_own_texts(KEY_CAP)
                    .and_then(|t| t.into_iter().next()),
                PruneFilter::SimilarityBelow { .. } => None,
            })
        })
        .or_else(|| {
            e.possible_own_texts(KEY_CAP)
                .and_then(|t| t.into_iter().next())
        });
    key.unwrap_or_default().trim().to_lowercase()
}

/// Stage-3 output: one component's enumerated matchings plus the mass
/// accounting the merge layer records into `IntegrationStats`. The
/// merge layer is agnostic to how the outcome was produced — strict or
/// budgeted, serial or parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentOutcome {
    /// The component these matchings belong to (shared with the live
    /// enumerator a truncated outcome's refinement keeps resident).
    pub component: Arc<Component>,
    /// Matchings in canonical (descending weight) order, weights
    /// normalised to sum to 1 over the *kept* matchings.
    pub matchings: Vec<Matching>,
    /// Live undecided pairs the enumerator actually searched over.
    pub live_pairs: usize,
    /// Guaranteed lower bound on the probability mass the kept
    /// matchings cover (1.0 when enumeration completed).
    pub retained_mass: f64,
    /// Conservative upper bound on the mass dropped by the budget
    /// (`retained_mass + discarded_mass == 1`).
    pub discarded_mass: f64,
    /// True when the budget cut this component's enumeration short.
    pub truncated: bool,
    /// The persisted search frontier of a truncated enumeration: what a
    /// later refinement pass resumes from. `None` when the enumeration
    /// completed (or ran in strict mode, which never truncates).
    pub frontier: Option<ComponentFrontier>,
}

/// The enumeration state a [`DocFrontier`] carries: either a resident
/// [`FrontierEnumerator`] that the staged refinement path advances
/// directly, or the plain persisted [`ComponentFrontier`] that the
/// codec decodes and integration produces.
///
/// The two forms are interchangeable bit for bit: a live enumerator
/// materialises into exactly the stored frontier a snapshot round-trip
/// would have produced, and restoring that snapshot rebuilds the same
/// enumerator. Keeping the live form resident just skips paying the
/// snapshot (canonical sort) + restore (re-heapify) round-trip on every
/// refine step.
#[derive(Debug, Clone)]
enum FrontierForm {
    /// A resident enumerator, advanced in place by refinement.
    Live(FrontierEnumerator),
    /// Plain persisted data, upgraded to `Live` on first refinement.
    Stored(ComponentFrontier),
}

/// A resumable truncation site inside an integrated document: one
/// truncated component, its enumeration state, and where its
/// possibilities live — the output probability node plus the source
/// element groups re-emission walks again.
///
/// Everything inside is owned data (`Send + Sync`), so frontiers can be
/// stored in a catalog next to the document version they belong to and
/// refined from any thread. Serialisation always goes through the
/// plain-data [`ComponentFrontier`] form regardless of which form is
/// resident in memory.
#[derive(Debug, Clone)]
pub struct DocFrontier {
    /// Element path of the component's tag group (e.g. `/catalog/movie`).
    path: String,
    /// The output document's probability node holding this component's
    /// possibilities; refinement replaces its children in place.
    prob: PxNodeId,
    /// The tag group's element nodes in source a, in group order.
    ga: Vec<PxNodeId>,
    /// The tag group's element nodes in source b, in group order.
    gb: Vec<PxNodeId>,
    /// The candidate-graph component, shared with the live enumerator.
    component: Arc<Component>,
    /// The enumeration state, live or stored.
    form: FrontierForm,
}

impl DocFrontier {
    /// Serialise this truncation site for the durable store (appends to
    /// `out`). Node ids are written raw: the store persists the output
    /// document and both sources alongside the frontier, so the ids
    /// stay valid across the round-trip.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        use imprecise_pxml::codec::{put_len, put_node_id, put_str};
        put_str(out, &self.path);
        put_node_id(out, self.prob);
        put_len(out, self.ga.len());
        for &id in &self.ga {
            put_node_id(out, id);
        }
        put_len(out, self.gb.len());
        for &id in &self.gb {
            put_node_id(out, id);
        }
        crate::codec::encode_component(&self.component, out);
        match &self.form {
            FrontierForm::Stored(frontier) => frontier.encode(out),
            // A live enumerator materialises through the same canonical
            // snapshot a stored frontier was made from, so the bytes are
            // identical whichever form happened to be resident.
            FrontierForm::Live(en) => en.snapshot_frontier().encode(out),
        }
    }

    /// Decode a truncation site written by [`encode`](Self::encode),
    /// validating every node id against the arenas it points into
    /// (`doc_len` for the output document, `a_len`/`b_len` for the
    /// sources) and the frontier's content digest against the decoded
    /// component — corrupted or mismatched state is a typed error, never
    /// a latent out-of-bounds id.
    pub(crate) fn decode(
        r: &mut imprecise_pxml::codec::Reader<'_>,
        doc_len: usize,
        a_len: usize,
        b_len: usize,
    ) -> Result<Self, imprecise_pxml::codec::CodecError> {
        use imprecise_pxml::codec::take_node_id;
        let path = r.take_str("frontier path")?;
        let prob = take_node_id(r, "frontier prob node")?;
        if prob.index() >= doc_len {
            return Err(r.err("prob node within output arena"));
        }
        let n_ga = r.take_len("group-a size")?;
        let mut ga = Vec::with_capacity(n_ga.min(1 << 20));
        for _ in 0..n_ga {
            let id = take_node_id(r, "group-a node")?;
            if id.index() >= a_len {
                return Err(r.err("group-a node within source arena"));
            }
            ga.push(id);
        }
        let n_gb = r.take_len("group-b size")?;
        let mut gb = Vec::with_capacity(n_gb.min(1 << 20));
        for _ in 0..n_gb {
            let id = take_node_id(r, "group-b node")?;
            if id.index() >= b_len {
                return Err(r.err("group-b node within source arena"));
            }
            gb.push(id);
        }
        let component = crate::codec::decode_component(r)?;
        let frontier = ComponentFrontier::decode(r)?;
        if !frontier.matches_component(&component) {
            return Err(r.err("frontier digest matching its component"));
        }
        Ok(DocFrontier {
            path,
            prob,
            ga,
            gb,
            component: Arc::new(component),
            form: FrontierForm::Stored(frontier),
        })
    }

    pub(crate) fn new(
        path: String,
        prob: PxNodeId,
        ga: Vec<PxNodeId>,
        gb: Vec<PxNodeId>,
        component: Arc<Component>,
        frontier: ComponentFrontier,
    ) -> Self {
        DocFrontier {
            path,
            prob,
            ga,
            gb,
            component,
            form: FrontierForm::Stored(frontier),
        }
    }

    /// Element path of the truncated component's tag group.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The output probability node the component's possibilities hang
    /// off.
    pub fn prob(&self) -> PxNodeId {
        self.prob
    }

    /// Conservative upper bound on the probability mass still
    /// unenumerated — the refinement priority.
    pub fn discarded_mass(&self) -> f64 {
        match &self.form {
            FrontierForm::Live(en) => en.discarded_mass(),
            FrontierForm::Stored(f) => f.discarded_mass,
        }
    }

    /// Matchings kept so far.
    pub fn kept(&self) -> usize {
        match &self.form {
            FrontierForm::Live(en) => en.kept(),
            FrontierForm::Stored(f) => f.kept(),
        }
    }

    /// Open search states on the frontier.
    pub fn open_nodes(&self) -> usize {
        match &self.form {
            FrontierForm::Live(en) => en.open_nodes(),
            FrontierForm::Stored(f) => f.open_nodes(),
        }
    }

    /// Live undecided pairs of the component.
    pub fn live_pairs(&self) -> usize {
        match &self.form {
            FrontierForm::Live(en) => en.live_pairs(),
            FrontierForm::Stored(f) => f.live_pairs,
        }
    }

    /// True when the enumeration state is the synthesised all-excluded
    /// fallback (see [`FrontierEnumerator::run_delta`]).
    pub fn is_synthetic(&self) -> bool {
        match &self.form {
            FrontierForm::Live(en) => en.is_synthetic(),
            FrontierForm::Stored(f) => f.is_synthetic(),
        }
    }

    /// True when a live enumerator is resident (the staged path has
    /// refined this site at least once since it was decoded/integrated).
    pub fn is_live(&self) -> bool {
        matches!(self.form, FrontierForm::Live(_))
    }

    /// The candidate-graph component this frontier belongs to.
    pub fn component(&self) -> &Arc<Component> {
        &self.component
    }

    /// Materialise the enumeration state into its plain persisted form
    /// (clones the stored form; snapshots the live one).
    pub fn snapshot_frontier(&self) -> ComponentFrontier {
        match &self.form {
            FrontierForm::Live(en) => en.snapshot_frontier(),
            FrontierForm::Stored(f) => f.clone(),
        }
    }

    /// An enumerator positioned exactly where this site's enumeration
    /// stopped: a cheap clone of the resident one (open states share
    /// their `taken` prefixes), or a restore of the stored frontier.
    /// Advancing the result does not touch this site — refinement
    /// installs the advanced enumerator back via [`install`] only after
    /// the step commits ([`Self::install`]).
    pub(crate) fn enumerator(&self) -> Result<FrontierEnumerator, FrontierMismatch> {
        match &self.form {
            FrontierForm::Live(en) => Ok(en.clone()),
            FrontierForm::Stored(f) => FrontierEnumerator::restore(Arc::clone(&self.component), f),
        }
    }

    /// The source element groups (left, right) re-emission walks.
    pub(crate) fn groups(&self) -> (&[PxNodeId], &[PxNodeId]) {
        (&self.ga, &self.gb)
    }

    /// Keep the enumerator a resumed run advanced resident for the next
    /// step — the staged path stops paying the snapshot/restore
    /// round-trip from here on.
    pub(crate) fn install(&mut self, en: FrontierEnumerator) {
        self.form = FrontierForm::Live(en);
    }

    /// Demote a resident enumerator back to the plain persisted form
    /// (measurement hook: the round-trip cost the live form avoids).
    pub fn materialise(&mut self) {
        if let FrontierForm::Live(en) = &self.form {
            self.form = FrontierForm::Stored(en.snapshot_frontier());
        }
    }

    /// Re-anchor the output probability node after an arena compaction
    /// renumbered the document's ids.
    pub(crate) fn set_prob(&mut self, prob: PxNodeId) {
        self.prob = prob;
    }
}

/// Distribute a total matching budget across a tag group's components
/// proportionally to their live-pair counts ([`BudgetPlan::Total`]).
///
/// Every component is guaranteed a budget of at least 1 (the matching
/// that always exists); the remainder after the proportional floor
/// split goes to the components with the largest fractional shares
/// (ties: earlier component first), so the split is deterministic and
/// sums to `max(total, number of components)`.
pub fn plan_budgets(live_pairs: &[usize], total: usize) -> Vec<usize> {
    let n = live_pairs.len();
    if n == 0 {
        return Vec::new();
    }
    let sum: u128 = live_pairs.iter().map(|&p| p as u128).sum();
    if sum == 0 {
        return vec![1; n];
    }
    let total = total.max(1) as u128;
    let mut budgets: Vec<usize> = Vec::with_capacity(n);
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(n);
    let mut assigned: u128 = 0;
    for (i, &pairs) in live_pairs.iter().enumerate() {
        let exact = total * pairs as u128;
        let floor = exact / sum;
        budgets.push(floor.min(usize::MAX as u128) as usize);
        assigned += floor;
        remainders.push((exact % sum, i));
    }
    // Hand the unassigned remainder to the largest fractional shares.
    let mut leftover = total.saturating_sub(assigned) as usize;
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in &remainders {
        if leftover == 0 {
            break;
        }
        budgets[i] = budgets[i].saturating_add(1);
        leftover -= 1;
    }
    // The guaranteed minimum: no component is ever starved below the
    // one matching it certainly has.
    for b in &mut budgets {
        *b = (*b).max(1);
    }
    budgets
}

/// The per-component matching caps of one tag group under the options'
/// budget plan.
fn component_budgets(components: &[Component], options: &IntegrationOptions) -> Vec<usize> {
    match options.budget_plan {
        BudgetPlan::PerComponent => {
            vec![options.max_matchings_per_component; components.len()]
        }
        BudgetPlan::Total(total) => {
            let live: Vec<usize> = components
                .iter()
                .map(|c| live_candidates(c).len())
                .collect();
            plan_budgets(&live, total)
        }
    }
}

/// A component is worth shipping to a worker thread only when its
/// enumeration is non-trivial; below this many undecided pairs the
/// search is cheaper than the scheduling.
const MIN_PARALLEL_PAIRS: usize = 8;

/// Stage 3: enumerate the matchings of every component under the
/// options' budget, in parallel when allowed and worthwhile.
///
/// With several busy components the fan-out is *across* components
/// (each enumeration self-contained and serial); with one busy
/// component the thread budget goes *into* its best-first search
/// instead ([`FrontierEnumerator::run_with`]). Either way results are
/// bit-identical to the serial path.
///
/// In budgeted mode (the default) this never fails: over-budget
/// components are truncated to their heaviest matchings with the
/// dropped mass recorded on the outcome. In strict mode
/// ([`IntegrationOptions::strict_matchings`]) an over-budget component
/// aborts with [`TooManyMatchings`] carrying `path` (the tag group's
/// element path).
pub fn enumerate_components(
    components: Vec<Component>,
    options: &IntegrationOptions,
    path: &str,
) -> Result<Vec<ComponentOutcome>, TooManyMatchings> {
    let budgets = component_budgets(&components, options);
    let components: Vec<Arc<Component>> = components.into_iter().map(Arc::new).collect();
    let threads = options.parallelism.effective();
    let busy = components
        .iter()
        .filter(|c| c.possible.len() >= MIN_PARALLEL_PAIRS)
        .count();
    if threads > 1 && busy >= 2 {
        let results = enumerate_parallel(
            &components,
            options,
            &budgets,
            threads.min(components.len()),
        );
        components
            .into_iter()
            .zip(results)
            .map(|(component, result)| {
                result
                    .map(|e| e.into_outcome(component))
                    .map_err(|e| e.at_path(path))
            })
            .collect()
    } else {
        // Serial over components: a strict-mode failure short-circuits
        // before later components are enumerated. A single busy
        // component still gets the whole thread budget, inside its
        // search.
        components
            .into_iter()
            .zip(&budgets)
            .map(|(component, &budget)| {
                enumerate_one(&component, options, budget, threads)
                    .map(|e| e.into_outcome(component))
                    .map_err(|e| e.at_path(path))
            })
            .collect()
    }
}

/// The component-independent part of a [`ComponentOutcome`]: what the
/// enumerator produced, before the component is moved back in.
struct Enumerated {
    matchings: Vec<Matching>,
    live_pairs: usize,
    retained_mass: f64,
    discarded_mass: f64,
    truncated: bool,
    frontier: Option<ComponentFrontier>,
}

impl Enumerated {
    fn into_outcome(self, component: Arc<Component>) -> ComponentOutcome {
        ComponentOutcome {
            component,
            matchings: self.matchings,
            live_pairs: self.live_pairs,
            retained_mass: self.retained_mass,
            discarded_mass: self.discarded_mass,
            truncated: self.truncated,
            frontier: self.frontier,
        }
    }
}

/// Enumerate one component under the options' policy, capped at
/// `max_matchings` (the per-component figure the budget plan assigned),
/// with up to `threads` expansion workers inside the search.
fn enumerate_one(
    component: &Arc<Component>,
    options: &IntegrationOptions,
    max_matchings: usize,
    threads: usize,
) -> Result<Enumerated, TooManyMatchings> {
    if options.strict_matchings {
        let live_pairs = live_candidates(component).len();
        let matchings = enumerate_matchings(component, max_matchings)?;
        Ok(Enumerated {
            matchings,
            live_pairs,
            retained_mass: 1.0,
            discarded_mass: 0.0,
            truncated: false,
            frontier: None,
        })
    } else {
        let budget = MatchBudget {
            max_matchings,
            min_retained_mass: options.min_retained_mass,
        };
        let mut enumerator = FrontierEnumerator::new(Arc::clone(component));
        let result = enumerator.run_with(&budget, threads);
        Ok(Enumerated {
            frontier: enumerator.into_frontier(),
            matchings: result.matchings,
            live_pairs: result.live_pairs,
            retained_mass: result.retained_mass,
            discarded_mass: result.discarded_mass,
            truncated: result.truncated,
        })
    }
}

/// Resume a persisted frontier with `extra` more matchings of budget
/// (and/or a retained-mass target), returning the full canonical
/// matching set enumerated so far and the frontier left open (`None`
/// when the component drained). Fails with [`FrontierMismatch`] when
/// the frontier does not belong to `component`.
pub fn resume_component(
    component: &Arc<Component>,
    frontier: &ComponentFrontier,
    extra: usize,
    min_retained_mass: Option<f64>,
) -> Result<
    (
        crate::matching::BudgetedMatchings,
        Option<ComponentFrontier>,
    ),
    FrontierMismatch,
> {
    let delta = resume_component_delta(component, frontier, extra, min_retained_mass)?;
    Ok((delta.all, delta.left))
}

/// A resumed run's result in the form the incremental emitter consumes:
/// the full canonical kept set (weights carry the renormalisation
/// factor), provenance flags marking which entries this resume step
/// yielded, and the frontier left open.
pub struct ResumedDelta {
    /// Everything kept so far, canonical order, renormalised.
    pub all: crate::matching::BudgetedMatchings,
    /// Parallel to `all.matchings`: `true` for entries yielded by *this*
    /// resume step (the only ones whose subtrees need emitting).
    pub is_new: Vec<bool>,
    /// The frontier left open, `None` when the component drained.
    pub left: Option<ComponentFrontier>,
}

/// [`resume_component`] for incremental emitters: identical canonical
/// result (bit for bit), plus which entries are new this step. A caller
/// holding the previously emitted possibility subtrees appends only the
/// flagged ones and rescales the survivors in place.
pub fn resume_component_delta(
    component: &Arc<Component>,
    frontier: &ComponentFrontier,
    extra: usize,
    min_retained_mass: Option<f64>,
) -> Result<ResumedDelta, FrontierMismatch> {
    let mut enumerator = FrontierEnumerator::restore(Arc::clone(component), frontier)?;
    let max_matchings = if extra == usize::MAX {
        usize::MAX
    } else {
        frontier.kept().saturating_add(extra.max(1))
    };
    let (all, is_new) = enumerator.run_delta(
        &MatchBudget {
            max_matchings,
            min_retained_mass,
        },
        1,
    );
    let left = enumerator.into_frontier();
    Ok(ResumedDelta { all, is_new, left })
}

/// Fan the components out over scoped worker threads (no extra deps:
/// plain [`std::thread::scope`]). Workers pull indices from a shared
/// counter — natural load balancing when component sizes are skewed —
/// and the results are reassembled in component order, so the output is
/// identical to the serial path.
fn enumerate_parallel(
    components: &[Arc<Component>],
    options: &IntegrationOptions,
    budgets: &[usize],
    threads: usize,
) -> Vec<Result<Enumerated, TooManyMatchings>> {
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= components.len() {
                    break;
                }
                let outcome = enumerate_one(&components[i], options, budgets[i], 1);
                if tx.send((i, outcome)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<Result<Enumerated, TooManyMatchings>>> =
        components.iter().map(|_| None).collect();
    for (i, outcome) in rx {
        slots[i] = Some(outcome);
    }
    // Every index was claimed exactly once via the atomic counter, so
    // each slot is filled — unless a worker died before sending (e.g. a
    // panic unwound across the channel). Enumeration is deterministic,
    // so re-running the missing component serially yields exactly what
    // the worker would have produced; no panic, no divergence.
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| enumerate_one(&components[i], options, budgets[i], 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_graph(n: usize, m: usize, p: f64) -> Component {
        let mut possible = Vec::new();
        for a in 0..n {
            for b in 0..m {
                possible.push(Candidate { a, b, p });
            }
        }
        Component {
            a_nodes: (0..n).collect(),
            b_nodes: (0..m).collect(),
            forced: Vec::new(),
            possible,
        }
    }

    #[test]
    fn resolve_demotes_conflicting_forced_pairs() {
        let set = CandidateSet::resolve(vec![(0, 0), (1, 0)], vec![]);
        assert_eq!(set.forced, vec![(0, 0)]);
        assert_eq!(set.demoted, 1);
        assert_eq!(set.possible.len(), 1);
        assert_eq!((set.possible[0].a, set.possible[0].b), (1, 0));
        assert!(set.possible[0].p > 0.99);
    }

    #[test]
    fn split_matches_split_components() {
        let set = CandidateSet::resolve(vec![(0, 1)], vec![Candidate { a: 1, b: 0, p: 0.5 }]);
        let comps = split(&set, 2, 2);
        assert_eq!(comps, split_components(2, 2, &set.forced, &set.possible));
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn strict_mode_errors_with_path() {
        let components = vec![full_graph(3, 3, 0.5)];
        let opts = IntegrationOptions {
            strict_matchings: true,
            max_matchings_per_component: 10,
            ..IntegrationOptions::default()
        };
        let err = enumerate_components(components, &opts, "/catalog/movie").unwrap_err();
        assert_eq!(err.path, "/catalog/movie");
        assert_eq!(err.cap, 10);
    }

    #[test]
    fn budgeted_mode_truncates_instead_of_erroring() {
        let components = vec![full_graph(3, 3, 0.5)];
        let opts = IntegrationOptions {
            max_matchings_per_component: 10,
            ..IntegrationOptions::default()
        };
        let outcomes = enumerate_components(components, &opts, "/catalog/movie").unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].truncated);
        assert_eq!(outcomes[0].matchings.len(), 10);
        assert!(outcomes[0].discarded_mass > 0.0);
        assert!(
            (outcomes[0].retained_mass + outcomes[0].discarded_mass - 1.0).abs() < 1e-9,
            "mass accounting must close"
        );
    }

    #[test]
    fn parallel_and_serial_agree() {
        let components: Vec<Component> = (0..6)
            .map(|i| full_graph(3, 3, 0.3 + 0.05 * i as f64))
            .collect();
        let serial_opts = IntegrationOptions {
            max_matchings_per_component: 12,
            parallelism: crate::Parallelism::SERIAL,
            ..IntegrationOptions::default()
        };
        let parallel_opts = IntegrationOptions {
            parallelism: crate::Parallelism::new(4),
            ..serial_opts
        };
        let serial = enumerate_components(components.clone(), &serial_opts, "/x").unwrap();
        let parallel = enumerate_components(components, &parallel_opts, "/x").unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.matchings.len(), p.matchings.len());
            for (a, b) in s.matchings.iter().zip(&p.matchings) {
                assert_eq!(a.pairs, b.pairs);
                assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            }
            assert_eq!(s.discarded_mass.to_bits(), p.discarded_mass.to_bits());
        }
    }

    #[test]
    fn parallelism_zero_means_all_cores() {
        assert!(crate::Parallelism::AUTO.effective() >= 1);
        assert_eq!(crate::Parallelism::new(3).effective(), 3);
        assert_eq!(crate::Parallelism::default(), crate::Parallelism::SERIAL);
    }

    #[test]
    fn plan_splits_total_proportionally_to_live_pairs() {
        // 25 + 9 + 2 live pairs, total 36: exact proportional shares.
        assert_eq!(plan_budgets(&[25, 9, 2], 36), vec![25, 9, 2]);
        // Uneven split: floors plus largest-remainder distribution
        // (shares 62.5 / 31.25 / 6.25 — the first fraction wins the
        // leftover unit).
        let split = plan_budgets(&[10, 5, 1], 100);
        assert_eq!(split.iter().sum::<usize>(), 100);
        assert_eq!(split, vec![63, 31, 6]);
        // Proportionality is monotone in live pairs.
        assert!(split[0] > split[1] && split[1] > split[2]);
    }

    #[test]
    fn plan_guarantees_one_matching_per_component() {
        // Total smaller than the component count: everyone still gets 1.
        assert_eq!(plan_budgets(&[50, 50, 50, 50], 2), vec![1, 1, 1, 1]);
        // Pair-less components get their single matching without
        // consuming anything from the busy ones.
        assert_eq!(plan_budgets(&[0, 12, 0], 10), vec![1, 10, 1]);
        // No components, no budgets; all-trivial groups get all ones.
        assert_eq!(plan_budgets(&[], 10), Vec::<usize>::new());
        assert_eq!(plan_budgets(&[0, 0], 10), vec![1, 1]);
    }

    #[test]
    fn plan_remainder_split_is_deterministic() {
        // Equal live pairs, indivisible total: earlier components win
        // the remainder, and repeated calls agree.
        let split = plan_budgets(&[7, 7, 7], 10);
        assert_eq!(split, vec![4, 3, 3]);
        assert_eq!(split, plan_budgets(&[7, 7, 7], 10));
    }

    #[test]
    fn total_plan_budgets_group_as_a_whole() {
        // Two busy components under a shared total of 24: the bigger
        // one gets the bigger share, and the whole group respects the
        // total (up to the min-1 floor).
        let components = vec![full_graph(3, 3, 0.4), full_graph(2, 2, 0.4)];
        let opts = IntegrationOptions {
            budget_plan: crate::BudgetPlan::Total(24),
            ..IntegrationOptions::default()
        };
        let outcomes = enumerate_components(components, &opts, "/x").unwrap();
        let kept: Vec<usize> = outcomes.iter().map(|o| o.matchings.len()).collect();
        // 9 vs 4 live pairs: shares 17 and 7. The 2×2 component only has
        // 7 matchings total, so it completes exactly under its share.
        assert_eq!(kept, vec![17, 7]);
        assert!(outcomes[0].truncated && !outcomes[1].truncated);
        assert!(outcomes[0].frontier.is_some());
        assert!(outcomes[1].frontier.is_none());
    }

    #[test]
    fn truncated_outcomes_carry_resumable_frontiers() {
        let components = vec![full_graph(3, 3, 0.5)];
        let opts = IntegrationOptions {
            max_matchings_per_component: 10,
            ..IntegrationOptions::default()
        };
        let outcomes = enumerate_components(components, &opts, "/x").unwrap();
        let frontier = outcomes[0].frontier.as_ref().expect("truncated");
        assert_eq!(frontier.kept(), 10);
        assert!(frontier.open_nodes() > 0);
        // Resuming to completion reproduces the exhaustive enumeration.
        let (full, left) = resume_component(&outcomes[0].component, frontier, usize::MAX, None)
            .expect("frontier belongs to its component");
        assert!(left.is_none());
        let exhaustive = enumerate_matchings(&outcomes[0].component, usize::MAX).unwrap();
        assert_eq!(full.matchings.len(), exhaustive.len());
        for (a, b) in full.matchings.iter().zip(&exhaustive) {
            assert_eq!(a.pairs, b.pairs);
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }
}
