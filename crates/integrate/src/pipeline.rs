//! The staged integration pipeline for one tag group.
//!
//! Matching a multi-valued tag group runs as four explicit stages:
//!
//! 1. **Candidate generation** — Oracle judgments over the cross product
//!    become a [`CandidateSet`]: forced pairs (certain matches, made
//!    injective by demotion) plus undecided [`Candidate`]s.
//! 2. **Component split** — [`split`] factors the candidate graph into
//!    independent connected [`Component`]s.
//! 3. **Budgeted enumeration** — [`enumerate_components`] turns each
//!    component into a [`ComponentOutcome`]: its matchings in
//!    descending weight, cut off at the configured [`MatchBudget`] with
//!    the dropped probability mass accounted (or, in strict mode, a
//!    [`TooManyMatchings`] error). Components are independent, so this
//!    stage fans out over [`std::thread::scope`] when
//!    [`IntegrationOptions::parallelism`] allows.
//! 4. **Merge** — the builder in `merge` consumes the outcomes and
//!    assembles the output document; it never sees how (or on how many
//!    threads) the matchings were produced.
//!
//! Every stage is deterministic: outcomes are reassembled in component
//! order and each component's enumeration is self-contained, so serial
//! and parallel runs build bit-identical documents.

use crate::matching::{
    enumerate_budgeted, enumerate_matchings, split_components, Candidate, Component, MatchBudget,
    Matching, TooManyMatchings,
};
use crate::IntegrationOptions;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Stage-1 output: the judged cross product of one tag group.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CandidateSet {
    /// Certainly matched pairs, injective (see [`CandidateSet::resolve`]).
    pub forced: Vec<(usize, usize)>,
    /// Undecided pairs with their match probabilities.
    pub possible: Vec<Candidate>,
    /// Forced pairs demoted to near-certain candidates because they
    /// conflicted with an earlier forced pair on the same element.
    pub demoted: usize,
}

impl CandidateSet {
    /// Build a candidate set from raw Oracle output, demoting forced
    /// pairs that would break injectivity (contradictory certain
    /// knowledge — e.g. one source holding two elements deep-equal to
    /// the same element of the other source) to highly probable
    /// undecided pairs.
    pub fn resolve(raw_forced: Vec<(usize, usize)>, mut possible: Vec<Candidate>) -> Self {
        let mut forced: Vec<(usize, usize)> = Vec::new();
        let n_a = raw_forced.iter().map(|&(a, _)| a + 1).max().unwrap_or(0);
        let n_b = raw_forced.iter().map(|&(_, b)| b + 1).max().unwrap_or(0);
        let mut used_a = vec![false; n_a];
        let mut used_b = vec![false; n_b];
        let mut demoted = 0;
        for (ai, bi) in raw_forced {
            if used_a[ai] || used_b[bi] {
                demoted += 1;
                possible.push(Candidate {
                    a: ai,
                    b: bi,
                    p: 1.0 - 1e-6,
                });
            } else {
                used_a[ai] = true;
                used_b[bi] = true;
                forced.push((ai, bi));
            }
        }
        CandidateSet {
            forced,
            possible,
            demoted,
        }
    }
}

/// Stage 2: factor the candidate graph of a `n_a × n_b` tag group into
/// independent connected components.
pub fn split(set: &CandidateSet, n_a: usize, n_b: usize) -> Vec<Component> {
    split_components(n_a, n_b, &set.forced, &set.possible)
}

/// Stage-3 output: one component's enumerated matchings plus the mass
/// accounting the merge layer records into `IntegrationStats`. The
/// merge layer is agnostic to how the outcome was produced — strict or
/// budgeted, serial or parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentOutcome {
    /// The component these matchings belong to.
    pub component: Component,
    /// Matchings in canonical (descending weight) order, weights
    /// normalised to sum to 1 over the *kept* matchings.
    pub matchings: Vec<Matching>,
    /// Live undecided pairs the enumerator actually searched over.
    pub live_pairs: usize,
    /// Guaranteed lower bound on the probability mass the kept
    /// matchings cover (1.0 when enumeration completed).
    pub retained_mass: f64,
    /// Conservative upper bound on the mass dropped by the budget
    /// (`retained_mass + discarded_mass == 1`).
    pub discarded_mass: f64,
    /// True when the budget cut this component's enumeration short.
    pub truncated: bool,
}

/// A component is worth shipping to a worker thread only when its
/// enumeration is non-trivial; below this many undecided pairs the
/// search is cheaper than the scheduling.
const MIN_PARALLEL_PAIRS: usize = 8;

fn effective_parallelism(parallelism: usize) -> usize {
    match parallelism {
        0 => {
            // Cached: the pipeline runs once per tag group, and
            // `available_parallelism` is a cgroup/sysfs read.
            static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
            *CORES.get_or_init(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
        }
        n => n,
    }
}

/// Stage 3: enumerate the matchings of every component under the
/// options' budget, in parallel when allowed and worthwhile.
///
/// In budgeted mode (the default) this never fails: over-budget
/// components are truncated to their heaviest matchings with the
/// dropped mass recorded on the outcome. In strict mode
/// ([`IntegrationOptions::strict_matchings`]) an over-budget component
/// aborts with [`TooManyMatchings`] carrying `path` (the tag group's
/// element path).
pub fn enumerate_components(
    components: Vec<Component>,
    options: &IntegrationOptions,
    path: &str,
) -> Result<Vec<ComponentOutcome>, TooManyMatchings> {
    let threads = effective_parallelism(options.parallelism);
    let busy = components
        .iter()
        .filter(|c| c.possible.len() >= MIN_PARALLEL_PAIRS)
        .count();
    if threads > 1 && busy >= 2 {
        let results = enumerate_parallel(&components, options, threads.min(components.len()));
        components
            .into_iter()
            .zip(results)
            .map(|(component, result)| {
                result
                    .map(|e| e.into_outcome(component))
                    .map_err(|e| e.at_path(path))
            })
            .collect()
    } else {
        // Serial: components move into their outcomes, and a strict-mode
        // failure short-circuits before later components are enumerated.
        components
            .into_iter()
            .map(|component| {
                enumerate_one(&component, options)
                    .map(|e| e.into_outcome(component))
                    .map_err(|e| e.at_path(path))
            })
            .collect()
    }
}

/// The component-independent part of a [`ComponentOutcome`]: what the
/// enumerator produced, before the component is moved back in.
struct Enumerated {
    matchings: Vec<Matching>,
    live_pairs: usize,
    retained_mass: f64,
    discarded_mass: f64,
    truncated: bool,
}

impl Enumerated {
    fn into_outcome(self, component: Component) -> ComponentOutcome {
        ComponentOutcome {
            component,
            matchings: self.matchings,
            live_pairs: self.live_pairs,
            retained_mass: self.retained_mass,
            discarded_mass: self.discarded_mass,
            truncated: self.truncated,
        }
    }
}

/// Enumerate one component under the options' policy.
fn enumerate_one(
    component: &Component,
    options: &IntegrationOptions,
) -> Result<Enumerated, TooManyMatchings> {
    if options.strict_matchings {
        let live_pairs = crate::matching::live_candidates(component).len();
        let matchings = enumerate_matchings(component, options.max_matchings_per_component)?;
        Ok(Enumerated {
            matchings,
            live_pairs,
            retained_mass: 1.0,
            discarded_mass: 0.0,
            truncated: false,
        })
    } else {
        let budget: MatchBudget = options.match_budget();
        let result = enumerate_budgeted(component, &budget);
        Ok(Enumerated {
            matchings: result.matchings,
            live_pairs: result.live_pairs,
            retained_mass: result.retained_mass,
            discarded_mass: result.discarded_mass,
            truncated: result.truncated,
        })
    }
}

/// Fan the components out over scoped worker threads (no extra deps:
/// plain [`std::thread::scope`]). Workers pull indices from a shared
/// counter — natural load balancing when component sizes are skewed —
/// and the results are reassembled in component order, so the output is
/// identical to the serial path.
fn enumerate_parallel(
    components: &[Component],
    options: &IntegrationOptions,
    threads: usize,
) -> Vec<Result<Enumerated, TooManyMatchings>> {
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= components.len() {
                    break;
                }
                let outcome = enumerate_one(&components[i], options);
                if tx.send((i, outcome)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<Result<Enumerated, TooManyMatchings>>> =
        components.iter().map(|_| None).collect();
    for (i, outcome) in rx {
        slots[i] = Some(outcome);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every component was enumerated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_graph(n: usize, m: usize, p: f64) -> Component {
        let mut possible = Vec::new();
        for a in 0..n {
            for b in 0..m {
                possible.push(Candidate { a, b, p });
            }
        }
        Component {
            a_nodes: (0..n).collect(),
            b_nodes: (0..m).collect(),
            forced: Vec::new(),
            possible,
        }
    }

    #[test]
    fn resolve_demotes_conflicting_forced_pairs() {
        let set = CandidateSet::resolve(vec![(0, 0), (1, 0)], vec![]);
        assert_eq!(set.forced, vec![(0, 0)]);
        assert_eq!(set.demoted, 1);
        assert_eq!(set.possible.len(), 1);
        assert_eq!((set.possible[0].a, set.possible[0].b), (1, 0));
        assert!(set.possible[0].p > 0.99);
    }

    #[test]
    fn split_matches_split_components() {
        let set = CandidateSet::resolve(vec![(0, 1)], vec![Candidate { a: 1, b: 0, p: 0.5 }]);
        let comps = split(&set, 2, 2);
        assert_eq!(comps, split_components(2, 2, &set.forced, &set.possible));
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn strict_mode_errors_with_path() {
        let components = vec![full_graph(3, 3, 0.5)];
        let opts = IntegrationOptions {
            strict_matchings: true,
            max_matchings_per_component: 10,
            ..IntegrationOptions::default()
        };
        let err = enumerate_components(components, &opts, "/catalog/movie").unwrap_err();
        assert_eq!(err.path, "/catalog/movie");
        assert_eq!(err.cap, 10);
    }

    #[test]
    fn budgeted_mode_truncates_instead_of_erroring() {
        let components = vec![full_graph(3, 3, 0.5)];
        let opts = IntegrationOptions {
            max_matchings_per_component: 10,
            ..IntegrationOptions::default()
        };
        let outcomes = enumerate_components(components, &opts, "/catalog/movie").unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].truncated);
        assert_eq!(outcomes[0].matchings.len(), 10);
        assert!(outcomes[0].discarded_mass > 0.0);
        assert!(
            (outcomes[0].retained_mass + outcomes[0].discarded_mass - 1.0).abs() < 1e-9,
            "mass accounting must close"
        );
    }

    #[test]
    fn parallel_and_serial_agree() {
        let components: Vec<Component> = (0..6)
            .map(|i| full_graph(3, 3, 0.3 + 0.05 * i as f64))
            .collect();
        let serial_opts = IntegrationOptions {
            max_matchings_per_component: 12,
            parallelism: 1,
            ..IntegrationOptions::default()
        };
        let parallel_opts = IntegrationOptions {
            parallelism: 4,
            ..serial_opts
        };
        let serial = enumerate_components(components.clone(), &serial_opts, "/x").unwrap();
        let parallel = enumerate_components(components, &parallel_opts, "/x").unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.matchings.len(), p.matchings.len());
            for (a, b) in s.matchings.iter().zip(&p.matchings) {
                assert_eq!(a.pairs, b.pairs);
                assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            }
            assert_eq!(s.discarded_mass.to_bits(), p.discarded_mass.to_bits());
        }
    }

    #[test]
    fn parallelism_zero_means_all_cores() {
        assert!(effective_parallelism(0) >= 1);
        assert_eq!(effective_parallelism(3), 3);
    }
}
