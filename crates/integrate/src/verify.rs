//! Deep verification of refinement state against the document it
//! belongs to.
//!
//! [`PxDoc::deep_check`] certifies the arena representation; this
//! module certifies the *integration bookkeeping* layered on top: every
//! persisted [`DocFrontier`] must anchor at a live probability node of
//! the document, the anchor's possibilities must be exactly the kept
//! matchings in canonical (descending-probability) order, the
//! per-component mass accounting must close (`retained + discarded == 1`),
//! and the frontier must still restore against its component (content
//! digest check).
//!
//! Two entry points:
//! * [`RefineState::verify`] / [`IntegrationOutcome::verify_invariants`]
//!   — on-demand checks, also surfaced as `Engine::check_invariants`.
//! * The `strict-invariants` cargo feature — shadow-checks every
//!   publish (integrate, refine, feedback, compact) by calling
//!   `shadow_check` (compiled only under the feature) at the end of
//!   each mutation, turning a silent corruption into an immediate,
//!   located panic.

use crate::matching::FrontierEnumerator;
use crate::pipeline::DocFrontier;
use crate::{IntegrationOutcome, RefineState};
use imprecise_pxml::{DeepCheckError, PxDoc, PxNodeKind};
use std::fmt;

/// Tolerance for mass-accounting and ordering comparisons. Wider than
/// machine epsilon because renormalisation divides by running sums, but
/// far below anything a real corruption would produce.
const MASS_EPSILON: f64 = 1e-9;

/// A violated integration invariant, found by [`RefineState::verify`].
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// The document arena itself is corrupt.
    Doc(DeepCheckError),
    /// A frontier's probability anchor points outside the arena — the
    /// classic stale-anchor corruption after an untranslated compaction.
    AnchorOutOfBounds {
        /// Tag-group path of the offending component.
        path: String,
        /// The stale anchor id.
        prob: usize,
        /// Arena size the id must stay below.
        arena_len: usize,
    },
    /// A frontier's anchor exists but is no longer reachable from the
    /// root (it was detached by a later mutation).
    AnchorDetached {
        /// Tag-group path of the offending component.
        path: String,
        /// The detached anchor id.
        prob: usize,
    },
    /// A frontier's anchor is not a probability node.
    AnchorNotProb {
        /// Tag-group path of the offending component.
        path: String,
        /// The anchor id.
        prob: usize,
    },
    /// The anchor's possibility count disagrees with the frontier's
    /// kept-matching count.
    KeptMismatch {
        /// Tag-group path of the offending component.
        path: String,
        /// Possibilities found under the anchor.
        children: usize,
        /// Matchings the frontier says were kept.
        kept: usize,
    },
    /// The anchor's possibilities are not in canonical
    /// descending-probability order.
    NonCanonicalOrder {
        /// Tag-group path of the offending component.
        path: String,
        /// Index of the first out-of-order possibility.
        index: usize,
    },
    /// A component's mass accounting does not close.
    MassAccounting {
        /// Tag-group path of the offending component.
        path: String,
        /// Retained mass recorded on the frontier.
        retained: f64,
        /// Discarded mass recorded on the frontier.
        discarded: f64,
    },
    /// The frontier no longer restores against its own component (see
    /// [`crate::matching::FrontierMismatch`]).
    DigestMismatch {
        /// Tag-group path of the offending component.
        path: String,
        /// The underlying digest mismatch.
        mismatch: crate::matching::FrontierMismatch,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::Doc(e) => write!(f, "document arena: {e}"),
            InvariantViolation::AnchorOutOfBounds {
                path,
                prob,
                arena_len,
            } => write!(
                f,
                "frontier at {path}: anchor node {prob} outside arena (len {arena_len})"
            ),
            InvariantViolation::AnchorDetached { path, prob } => {
                write!(f, "frontier at {path}: anchor node {prob} is detached")
            }
            InvariantViolation::AnchorNotProb { path, prob } => {
                write!(
                    f,
                    "frontier at {path}: anchor node {prob} is not a probability node"
                )
            }
            InvariantViolation::KeptMismatch {
                path,
                children,
                kept,
            } => write!(
                f,
                "frontier at {path}: anchor holds {children} possibilities but {kept} \
                 matchings were kept"
            ),
            InvariantViolation::NonCanonicalOrder { path, index } => write!(
                f,
                "frontier at {path}: possibility {index} breaks descending-probability order"
            ),
            InvariantViolation::MassAccounting {
                path,
                retained,
                discarded,
            } => write!(
                f,
                "frontier at {path}: retained {retained} + discarded {discarded} != 1"
            ),
            InvariantViolation::DigestMismatch { path, mismatch } => {
                write!(f, "frontier at {path}: {mismatch}")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InvariantViolation::Doc(e) => Some(e),
            InvariantViolation::DigestMismatch { mismatch, .. } => Some(mismatch),
            _ => None,
        }
    }
}

impl From<DeepCheckError> for InvariantViolation {
    fn from(e: DeepCheckError) -> Self {
        InvariantViolation::Doc(e)
    }
}

/// Verify one persisted frontier against the document it anchors into.
pub fn verify_frontier(doc: &PxDoc, df: &DocFrontier) -> Result<(), InvariantViolation> {
    let path = || df.path().to_owned();
    let anchor = df.prob();
    let arena_len = doc.arena_len();
    if anchor.index() >= arena_len {
        return Err(InvariantViolation::AnchorOutOfBounds {
            path: path(),
            prob: anchor.index(),
            arena_len,
        });
    }
    // Reachability: walk the parent chain up to the root. The chain is
    // bounded by the arena size; deep_check separately guarantees the
    // live arena is a tree, so no cycle guard beyond that is needed.
    let mut cursor = anchor;
    let mut steps = 0usize;
    while let Some(parent) = doc.parent(cursor) {
        cursor = parent;
        steps += 1;
        if steps > arena_len {
            return Err(InvariantViolation::AnchorDetached {
                path: path(),
                prob: anchor.index(),
            });
        }
    }
    if cursor != doc.root() {
        return Err(InvariantViolation::AnchorDetached {
            path: path(),
            prob: anchor.index(),
        });
    }
    if !doc.is_prob(anchor) {
        return Err(InvariantViolation::AnchorNotProb {
            path: path(),
            prob: anchor.index(),
        });
    }
    // Materialise the enumeration state: a resident live enumerator is
    // checked through exactly the snapshot the codec would persist.
    let cf = df.snapshot_frontier();
    let kids = doc.children(anchor);
    if kids.len() != cf.kept() {
        return Err(InvariantViolation::KeptMismatch {
            path: path(),
            children: kids.len(),
            kept: cf.kept(),
        });
    }
    let mut prev = f64::INFINITY;
    for (i, &kid) in kids.iter().enumerate() {
        if let PxNodeKind::Poss(p) = doc.kind(kid) {
            if *p > prev + MASS_EPSILON {
                return Err(InvariantViolation::NonCanonicalOrder {
                    path: path(),
                    index: i,
                });
            }
            prev = *p;
        }
    }
    if (cf.retained_mass + cf.discarded_mass - 1.0).abs() > MASS_EPSILON {
        return Err(InvariantViolation::MassAccounting {
            path: path(),
            retained: cf.retained_mass,
            discarded: cf.discarded_mass,
        });
    }
    if let Err(mismatch) = FrontierEnumerator::restore(std::sync::Arc::clone(df.component()), &cf) {
        return Err(InvariantViolation::DigestMismatch {
            path: path(),
            mismatch,
        });
    }
    Ok(())
}

impl RefineState {
    /// Verify this refinement state against the document version it is
    /// stored with: arena deep-check plus every open frontier's anchor,
    /// ordering, mass accounting, and component digest.
    pub fn verify(&self, doc: &PxDoc) -> Result<(), InvariantViolation> {
        doc.deep_check()?;
        for df in &self.frontiers {
            verify_frontier(doc, df)?;
        }
        Ok(())
    }
}

impl IntegrationOutcome {
    /// Verify the outcome's document and every retained frontier. This
    /// is what the `strict-invariants` feature runs after each
    /// integrate/refine/compact, and what `Engine::check_invariants`
    /// exposes on demand.
    pub fn verify_invariants(&self) -> Result<(), InvariantViolation> {
        self.doc.deep_check()?;
        for df in &self.frontiers {
            verify_frontier(&self.doc, df)?;
        }
        Ok(())
    }
}

/// Shadow-check an outcome after a mutation, aborting with a located
/// message on corruption. Compiled (and called) only under the
/// `strict-invariants` feature: the default build pays nothing.
#[cfg(feature = "strict-invariants")]
pub fn shadow_check(outcome: &IntegrationOutcome, context: &str) {
    if let Err(violation) = outcome.verify_invariants() {
        // lint:allow(panic-in-lib, strict-invariants shadow checks exist to abort on corruption)
        panic!("strict-invariants: after {context}: {violation}");
    }
}

/// Shadow-check a document/state pair (the engine-publish form).
#[cfg(feature = "strict-invariants")]
pub fn shadow_check_state(doc: &PxDoc, state: Option<&RefineState>, context: &str) {
    let result = match state {
        Some(state) => state.verify(doc),
        None => doc.deep_check().map_err(InvariantViolation::from),
    };
    if let Err(violation) = result {
        // lint:allow(panic-in-lib, strict-invariants shadow checks exist to abort on corruption)
        panic!("strict-invariants: after {context}: {violation}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{integrate_xml, IntegrationOptions, IntegrationOutcome, RefineOptions};
    use imprecise_oracle::presets::addressbook_oracle;
    use imprecise_xmlkit::{parse, Schema, XmlDoc};

    fn schema() -> Schema {
        Schema::parse(
            "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
             <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
        )
        .expect("schema parses")
    }

    fn book(tels: &[&str]) -> XmlDoc {
        let persons: String = tels
            .iter()
            .map(|t| format!("<person><nm>John</nm><tel>{t}</tel></person>"))
            .collect();
        parse(&format!("<addressbook>{persons}</addressbook>")).expect("xml parses")
    }

    /// A budget-truncated integration whose open component persists a
    /// frontier: every-John-matches-every-John, far more matchings than
    /// the budget of 2 keeps.
    fn truncated_outcome() -> IntegrationOutcome {
        let outcome = integrate_xml(
            &book(&["1111", "2222", "3333"]),
            &book(&["4444", "5555", "6666"]),
            &addressbook_oracle(),
            Some(&schema()),
            &IntegrationOptions {
                max_matchings_per_component: 2,
                ..IntegrationOptions::default()
            },
        )
        .expect("integrates");
        assert!(outcome.is_refinable(), "budget of 2 must truncate");
        outcome
    }

    #[test]
    fn clean_truncated_outcome_verifies() {
        truncated_outcome().verify_invariants().expect("clean");
    }

    #[test]
    fn refined_outcome_still_verifies() {
        let mut outcome = truncated_outcome();
        outcome
            .refine(
                &addressbook_oracle(),
                Some(&schema()),
                &RefineOptions {
                    extra_matchings: 2,
                    ..RefineOptions::default()
                },
            )
            .expect("refines");
        outcome.verify_invariants().expect("clean after refine");
    }

    #[test]
    fn non_canonical_anchor_order_is_caught() {
        let mut outcome = truncated_outcome();
        let anchor = outcome.frontiers()[0].prob();
        let kids = outcome.doc.children(anchor).to_vec();
        assert!(kids.len() >= 2, "budget of 2 keeps two possibilities");
        // Ascending weights that still sum to what the siblings summed
        // to before, so only the ordering invariant is violated.
        let total: f64 = kids
            .iter()
            .map(|&k| outcome.doc.poss_prob(k).expect("anchor child is poss"))
            .sum();
        outcome.doc.set_poss_prob(kids[0], 0.25 * total);
        outcome.doc.set_poss_prob(kids[1], 0.75 * total);
        for &k in &kids[2..] {
            outcome.doc.set_poss_prob(k, 0.0);
        }
        assert!(matches!(
            outcome.verify_invariants(),
            Err(InvariantViolation::NonCanonicalOrder { .. })
        ));
    }

    #[test]
    fn detached_frontier_anchor_is_caught() {
        let mut outcome = truncated_outcome();
        let anchor = outcome.frontiers()[0].prob();
        outcome.doc.detach(anchor);
        assert!(matches!(
            outcome.verify_invariants(),
            Err(InvariantViolation::AnchorDetached { .. }
                | InvariantViolation::Doc(DeepCheckError::Model(_)))
        ));
    }

    #[test]
    fn stale_frontier_anchors_are_caught() {
        // The classic stale-anchor corruption: a refine state paired
        // with a document version it does not belong to (the bug the
        // engine's versioned slots exist to prevent). After a refine,
        // the frontiers anchor into the refined arena — against the
        // pre-refine document they must not verify.
        let mut outcome = truncated_outcome();
        let stale_doc = outcome.doc.clone();
        outcome
            .refine(
                &addressbook_oracle(),
                Some(&schema()),
                &RefineOptions {
                    extra_matchings: 2,
                    ..RefineOptions::default()
                },
            )
            .expect("refines");
        assert!(outcome.is_refinable(), "component stays open");
        let state = outcome.detach_refine_state().expect("state persists");
        state.verify(&outcome.doc).expect("matching pair verifies");
        assert!(
            state.verify(&stale_doc).is_err(),
            "stale document/state pairing must not verify"
        );
    }

    #[test]
    fn broken_probability_sum_is_caught() {
        let mut outcome = truncated_outcome();
        let anchor = outcome.frontiers()[0].prob();
        let first = outcome.doc.children(anchor)[0];
        outcome.doc.set_poss_prob(first, 0.123);
        assert!(matches!(
            outcome.verify_invariants(),
            Err(InvariantViolation::Doc(DeepCheckError::Model(_)))
        ));
    }
}
