//! End-to-end tests of the integration engine against the behaviours the
//! paper describes.

use imprecise_integrate::{
    integrate_px, integrate_xml, BudgetPlan, IntegrateError, IntegrationOptions, Parallelism,
    RefineOptions,
};
use imprecise_oracle::presets::{addressbook_oracle, movie_oracle, MovieOracleConfig};
use imprecise_oracle::Oracle;
use imprecise_xmlkit::{parse, to_string, Schema, XmlDoc};

fn addressbook_schema() -> Schema {
    Schema::parse(
        "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
         <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
    )
    .unwrap()
}

fn movie_schema() -> Schema {
    Schema::parse(
        "<!ELEMENT catalog (movie*)>\
         <!ELEMENT movie (title, year?, genre*, director*)>\
         <!ELEMENT title (#PCDATA)><!ELEMENT year (#PCDATA)>\
         <!ELEMENT genre (#PCDATA)><!ELEMENT director (#PCDATA)>",
    )
    .unwrap()
}

fn john(tel: &str) -> XmlDoc {
    parse(&format!(
        "<addressbook><person><nm>John</nm><tel>{tel}</tel></person></addressbook>"
    ))
    .unwrap()
}

#[test]
fn fig2_three_worlds_with_dtd() {
    let schema = addressbook_schema();
    let oracle = addressbook_oracle();
    let result = integrate_xml(
        &john("1111"),
        &john("2222"),
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    result.doc.validate().unwrap();
    assert_eq!(result.doc.world_count(), 3);
    let dist = result.doc.world_distribution(100).unwrap();
    assert_eq!(dist.len(), 3);
    // Most probable world: two distinct persons (p = 0.5).
    assert!((dist[0].prob - 0.5).abs() < 1e-9);
    assert_eq!(to_string(&dist[0].doc).matches("<person>").count(), 2);
    // The two one-person worlds at 0.25 each, phone either 1111 or 2222.
    for w in &dist[1..] {
        assert!((w.prob - 0.25).abs() < 1e-9);
        let s = to_string(&w.doc);
        assert_eq!(s.matches("<person>").count(), 1);
        assert_eq!(s.matches("<tel>").count(), 1);
    }
    // No world gives a single John two phone numbers: the DTD rejected it
    // (the two-person world has both numbers, but on different persons).
    for w in &dist {
        let s = to_string(&w.doc);
        if s.matches("<person>").count() == 1 {
            assert!(!(s.contains("1111") && s.contains("2222")), "{s}");
        }
    }
}

#[test]
fn without_dtd_john_can_have_two_phones() {
    // The same integration without schema knowledge: the two-phone world
    // exists (the paper's motivation for DTD-based pruning).
    let oracle = addressbook_oracle();
    let result = integrate_xml(
        &john("1111"),
        &john("2222"),
        &oracle,
        None,
        &IntegrationOptions::default(),
    )
    .unwrap();
    result.doc.validate().unwrap();
    let dist = result.doc.world_distribution(100).unwrap();
    assert_eq!(dist.len(), 2);
    let two_phone = dist.iter().find(|w| {
        to_string(&w.doc).matches("<tel>").count() == 2
            && to_string(&w.doc).matches("<person>").count() == 1
    });
    assert!(
        two_phone.is_some(),
        "expected a world where John has both phones"
    );
}

#[test]
fn identical_sources_integrate_to_certainty() {
    let schema = addressbook_schema();
    let oracle = addressbook_oracle();
    let a = john("1111");
    let result = integrate_xml(
        &a,
        &john("1111"),
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    assert_eq!(result.doc.world_count(), 1);
    assert!(result.doc.is_certain());
    let worlds = result.doc.worlds(10).unwrap();
    assert!(imprecise_xmlkit::deep_equal(&worlds[0].doc, &a));
    assert_eq!(result.stats.judged_match, 1);
}

#[test]
fn disjoint_persons_concatenate() {
    let schema = addressbook_schema();
    let oracle = addressbook_oracle();
    let a =
        parse("<addressbook><person><nm>Alice</nm><tel>1</tel></person></addressbook>").unwrap();
    let b = parse("<addressbook><person><nm>Bob</nm><tel>2</tel></person></addressbook>").unwrap();
    let result = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    assert_eq!(result.doc.world_count(), 1);
    let s = to_string(&result.doc.worlds(10).unwrap()[0].doc);
    assert!(s.contains("Alice") && s.contains("Bob"));
    assert_eq!(result.stats.judged_nonmatch, 1);
    assert_eq!(
        result.stats.rule_decisions.get("person-name").copied(),
        Some(1)
    );
}

#[test]
fn undecided_movie_pair_creates_two_worlds() {
    let schema = movie_schema();
    let oracle = movie_oracle(MovieOracleConfig::default());
    let a = parse(
        "<catalog><movie><title>Jaws</title><year>1975</year><genre>Horror</genre></movie></catalog>",
    )
    .unwrap();
    let b = parse(
        "<catalog><movie><title>Jaws (TV)</title><year>1975</year><genre>Horror</genre></movie></catalog>",
    )
    .unwrap();
    let result = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    result.doc.validate().unwrap();
    assert_eq!(result.stats.judged_possible, 1);
    // Match world (title conflict inside) + non-match world.
    let dist = result.doc.world_distribution(100).unwrap();
    // Worlds: {merged movie w/ title Jaws}, {merged w/ title Jaws (TV)},
    // {two movies} — 3 worlds.
    assert_eq!(dist.len(), 3);
    let two_movies = dist
        .iter()
        .filter(|w| to_string(&w.doc).matches("<movie>").count() == 2)
        .count();
    assert_eq!(two_movies, 1);
}

#[test]
fn year_rule_separates_different_years() {
    let schema = movie_schema();
    let oracle = movie_oracle(MovieOracleConfig::default());
    let a =
        parse("<catalog><movie><title>Jaws</title><year>1975</year></movie></catalog>").unwrap();
    let b =
        parse("<catalog><movie><title>Jaws</title><year>1978</year></movie></catalog>").unwrap();
    let result = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    // Certainly two distinct movies.
    assert_eq!(result.doc.world_count(), 1);
    assert_eq!(
        result.stats.rule_decisions.get("movie-year").copied(),
        Some(1)
    );
    let s = to_string(&result.doc.worlds(10).unwrap()[0].doc);
    assert_eq!(s.matches("<movie>").count(), 2);
}

#[test]
fn genre_union_on_matched_movies() {
    // Matched movies with different genres (genre rule on): both genres
    // are kept — genre* is multi-valued.
    let schema = movie_schema();
    let oracle = movie_oracle(MovieOracleConfig::default());
    let a = parse(
        "<catalog><movie><title>Jaws</title><year>1975</year><genre>Horror</genre></movie></catalog>",
    )
    .unwrap();
    let b = parse(
        "<catalog><movie><title>Jaws</title><year>1975</year><genre>Thriller</genre></movie></catalog>",
    )
    .unwrap();
    let result = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    // Movies deep-differ only in genre; the movie pair is undecided (prior)
    // but in the match-world the merged movie holds both genres certainly.
    let dist = result.doc.world_distribution(100).unwrap();
    let merged = dist
        .iter()
        .find(|w| to_string(&w.doc).matches("<movie>").count() == 1)
        .expect("match world exists");
    let s = to_string(&merged.doc);
    assert!(s.contains("Horror") && s.contains("Thriller"));
}

/// An `n × n` all-undecided movie catalog pair (no rules can separate
/// the entries): one candidate component with `n²` live pairs.
fn confusable_catalogs(n: usize) -> (imprecise_xmlkit::XmlDoc, imprecise_xmlkit::XmlDoc) {
    let mk = |src: usize| {
        let mut s = String::from("<catalog>");
        for i in 0..n {
            s.push_str(&format!(
                "<movie><title>M{src}{i}</title><year>19{i}0</year></movie>"
            ));
        }
        s.push_str("</catalog>");
        parse(&s).unwrap()
    };
    (mk(1), mk(2))
}

fn uninformed_movie_oracle() -> Oracle {
    movie_oracle(MovieOracleConfig {
        genre_rule: false,
        title_rule: false,
        year_rule: false,
        graded_prior: false,
        ..MovieOracleConfig::default()
    })
}

#[test]
fn strict_mode_aborts_with_component_path() {
    let schema = movie_schema();
    // 4×4 all-undecided movies → 209 matchings > cap 100.
    let (a, b) = confusable_catalogs(4);
    let opts = IntegrationOptions {
        max_matchings_per_component: 100,
        strict_matchings: true,
        ..IntegrationOptions::default()
    };
    let err = integrate_xml(&a, &b, &uninformed_movie_oracle(), Some(&schema), &opts).unwrap_err();
    match &err {
        IntegrateError::TooManyMatchings {
            component_pairs,
            cap,
            path,
        } => {
            assert_eq!(*component_pairs, 16);
            assert_eq!(*cap, 100);
            assert_eq!(path, "/catalog/movie", "{err}");
        }
        other => panic!("expected TooManyMatchings, got {other:?}"),
    }
    assert!(err.to_string().contains("/catalog/movie"), "{err}");
}

#[test]
fn budget_completes_where_strict_mode_fails() {
    let schema = movie_schema();
    let oracle = uninformed_movie_oracle();
    // The same over-cap scenario without strict mode: integration
    // completes, keeping the 100 heaviest matchings and reporting the
    // dropped probability mass.
    let (a, b) = confusable_catalogs(4);
    let opts = IntegrationOptions {
        max_matchings_per_component: 100,
        ..IntegrationOptions::default()
    };
    let result = integrate_xml(&a, &b, &oracle, Some(&schema), &opts).unwrap();
    result.doc.validate().unwrap();
    assert_eq!(result.stats.components_truncated(), 1);
    assert!(!result.stats.is_exact());
    let t = &result.stats.truncated_components[0];
    assert_eq!(t.path, "/catalog/movie");
    assert_eq!(t.live_pairs, 16);
    assert_eq!(t.kept, 100);
    assert!(t.discarded_mass > 0.0, "{t:?}");
    assert!(t.discarded_mass < 1.0, "{t:?}");
    assert!((result.stats.max_discarded_mass - t.discarded_mass).abs() < 1e-15);
    // The kept worlds renormalise to a proper distribution.
    let dist = result.doc.world_distribution(1_000_000).unwrap();
    let total: f64 = dist.iter().map(|w| w.prob).sum();
    assert!((total - 1.0).abs() < 1e-9, "world mass {total}");
}

#[test]
fn min_retained_mass_stops_component_enumeration_early() {
    let schema = movie_schema();
    let oracle = uninformed_movie_oracle();
    let (a, b) = confusable_catalogs(4);
    let opts = IntegrationOptions {
        min_retained_mass: Some(0.5),
        ..IntegrationOptions::default()
    };
    let result = integrate_xml(&a, &b, &oracle, Some(&schema), &opts).unwrap();
    result.doc.validate().unwrap();
    // 209 total matchings, but half the mass needs far fewer.
    assert!(result.stats.matchings_enumerated < 209);
    let t = &result.stats.truncated_components[0];
    assert!(t.discarded_mass <= 0.5 + 1e-9, "{t:?}");
}

#[test]
fn nonsensical_options_are_rejected() {
    let schema = movie_schema();
    let oracle = uninformed_movie_oracle();
    let (a, b) = confusable_catalogs(2);
    for bad in [-0.5, 0.0, 1.5] {
        let err = integrate_xml(
            &a,
            &b,
            &oracle,
            Some(&schema),
            &IntegrationOptions {
                min_retained_mass: Some(bad),
                ..IntegrationOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, IntegrateError::InvalidOptions(_)),
            "min_retained_mass {bad}: {err}"
        );
    }
    let err = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions {
            max_matchings_per_component: 0,
            ..IntegrationOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, IntegrateError::InvalidOptions(_)), "{err}");
}

#[test]
fn uniform_prior_catalogs_integrate_under_budget() {
    // Ten indistinguishable records per side under the uninformed 0.5
    // prior: every search bound ties, which used to degenerate the
    // budgeted enumerator into an exponential breadth-first sweep.
    let schema = movie_schema();
    let oracle = uninformed_movie_oracle();
    let (a, b) = confusable_catalogs(10);
    let result = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions {
            max_matchings_per_component: 16,
            ..IntegrationOptions::default()
        },
    )
    .unwrap();
    result.doc.validate().unwrap();
    let t = &result.stats.truncated_components[0];
    assert_eq!(t.live_pairs, 100);
    assert_eq!(t.kept, 16);
    assert!(t.discarded_mass > 0.0 && t.discarded_mass < 1.0);
}

#[test]
fn parallel_integration_is_deterministic() {
    use imprecise_pxml::px_fingerprint;
    let schema = movie_schema();
    // Three year-groups of 4 movies per source: the year rule separates
    // the groups, everything within a group stays undecided → three
    // independent 4×4 components, enough to engage the worker threads.
    let mk = |src: usize| {
        let mut s = String::from("<catalog>");
        for g in 0..3 {
            for i in 0..4 {
                s.push_str(&format!(
                    "<movie><title>G{g} M{src}{i}</title><year>{}</year></movie>",
                    1900 + g * 10
                ));
            }
        }
        s.push_str("</catalog>");
        parse(&s).unwrap()
    };
    let oracle = movie_oracle(MovieOracleConfig {
        genre_rule: false,
        title_rule: false,
        year_rule: true,
        graded_prior: false,
        ..MovieOracleConfig::default()
    });
    let run = |parallelism: usize| {
        integrate_xml(
            &mk(1),
            &mk(2),
            &oracle,
            Some(&schema),
            &IntegrationOptions {
                max_matchings_per_component: 64,
                parallelism: Parallelism::new(parallelism),
                ..IntegrationOptions::default()
            },
        )
        .unwrap()
    };
    let serial = run(1);
    let parallel = run(0);
    assert_eq!(serial.stats.components_truncated(), 3);
    assert_eq!(
        px_fingerprint(&serial.doc, serial.doc.root()),
        px_fingerprint(&parallel.doc, parallel.doc.root()),
        "parallel enumeration must not change the result"
    );
    assert_eq!(serial.stats, parallel.stats);
}

#[test]
fn refine_to_exhaustive_matches_one_shot_fingerprint() {
    let schema = movie_schema();
    let oracle = uninformed_movie_oracle();
    let (a, b) = confusable_catalogs(4);
    // The ground truth: one unbudgeted integration.
    let exact = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    assert!(!exact.is_refinable());
    // A tight budget, then one exhaustive refinement in place.
    let mut budgeted = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions {
            max_matchings_per_component: 8,
            ..IntegrationOptions::default()
        },
    )
    .unwrap();
    assert!(budgeted.is_refinable());
    assert_ne!(exact.doc.fingerprint(), budgeted.doc.fingerprint());
    let step = budgeted
        .refine(&oracle, Some(&schema), &RefineOptions::to_exhaustive())
        .unwrap();
    assert_eq!(step.remaining, 0);
    assert_eq!(step.max_discarded_mass, 0.0);
    assert!(step.refined.iter().all(|r| r.exhausted));
    assert!(!budgeted.is_refinable());
    assert!(budgeted.stats.is_exact());
    assert_eq!(
        exact.doc.fingerprint(),
        budgeted.doc.fingerprint(),
        "refined-to-unlimited must be bit-identical to the one-shot run"
    );
}

#[test]
fn staged_refinement_converges_with_closing_mass() {
    let schema = movie_schema();
    let oracle = uninformed_movie_oracle();
    let (a, b) = confusable_catalogs(4);
    let exact = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    let mut outcome = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions {
            max_matchings_per_component: 5,
            ..IntegrationOptions::default()
        },
    )
    .unwrap();
    let mut last_mass = outcome.max_discarded_mass();
    assert!(last_mass > 0.0);
    let mut steps = 0;
    while outcome.is_refinable() {
        let step = outcome
            .refine(
                &oracle,
                Some(&schema),
                &RefineOptions {
                    extra_matchings: 40,
                    ..RefineOptions::default()
                },
            )
            .unwrap();
        // Mass accounting closes for every refined component…
        for r in &step.refined {
            assert!(
                r.discarded_after <= r.discarded_before + 1e-12,
                "{}: {} -> {}",
                r.path,
                r.discarded_before,
                r.discarded_after
            );
        }
        // …and the document stays a valid distribution at every stage.
        outcome.doc.validate().unwrap();
        // The headline figure shrinks monotonically.
        assert!(
            step.max_discarded_mass <= last_mass + 1e-12,
            "max discarded mass grew: {last_mass} -> {}",
            step.max_discarded_mass
        );
        last_mass = step.max_discarded_mass;
        // Stats stay in sync with the live frontiers.
        assert_eq!(outcome.stats.components_truncated(), step.remaining);
        steps += 1;
        assert!(steps < 100, "failed to converge");
    }
    assert!(steps >= 2, "209 matchings at 5+40 per step need stages");
    assert_eq!(exact.doc.fingerprint(), outcome.doc.fingerprint());
}

#[test]
fn refine_is_a_noop_on_exact_results_and_rejects_bad_options() {
    let schema = addressbook_schema();
    let oracle = addressbook_oracle();
    let mut result = integrate_xml(
        &john("1111"),
        &john("2222"),
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    assert!(!result.is_refinable());
    let step = result
        .refine(&oracle, Some(&schema), &RefineOptions::default())
        .unwrap();
    assert!(step.refined.is_empty());
    assert_eq!(step.remaining, 0);
    let err = result
        .refine(
            &oracle,
            Some(&schema),
            &RefineOptions {
                extra_matchings: 0,
                min_retained_mass: None,
                max_components: usize::MAX,
                threads: None,
            },
        )
        .unwrap_err();
    assert!(matches!(err, IntegrateError::InvalidOptions(_)), "{err}");
}

#[test]
fn refine_top_component_picks_largest_discarded_mass() {
    let schema = movie_schema();
    // Two year-separated confusable groups of different size: two
    // components whose discarded mass differs.
    let mk = |src: usize| {
        let mut s = String::from("<catalog>");
        for i in 0..4 {
            s.push_str(&format!(
                "<movie><title>Big {src}{i}</title><year>1900</year></movie>"
            ));
        }
        for i in 0..3 {
            s.push_str(&format!(
                "<movie><title>Small {src}{i}</title><year>1950</year></movie>"
            ));
        }
        s.push_str("</catalog>");
        parse(&s).unwrap()
    };
    let oracle = movie_oracle(MovieOracleConfig {
        genre_rule: false,
        title_rule: false,
        year_rule: true,
        graded_prior: false,
        ..MovieOracleConfig::default()
    });
    let mut outcome = integrate_xml(
        &mk(1),
        &mk(2),
        &oracle,
        Some(&schema),
        &IntegrationOptions {
            max_matchings_per_component: 6,
            ..IntegrationOptions::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.frontiers().len(), 2);
    let worst = outcome.max_discarded_mass();
    let step = outcome
        .refine(
            &oracle,
            Some(&schema),
            &RefineOptions {
                extra_matchings: 16,
                min_retained_mass: None,
                max_components: 1,
                threads: None,
            },
        )
        .unwrap();
    assert_eq!(step.refined.len(), 1);
    assert!(
        (step.refined[0].discarded_before - worst).abs() < 1e-15,
        "must refine the worst component first"
    );
    // Both components stay open: the refined one is not exhausted yet
    // and the other was not touched.
    assert!(!step.refined[0].exhausted);
    assert_eq!(step.remaining, 2);
    assert!(step.max_discarded_mass < worst);
}

#[test]
fn exhaustive_refine_under_total_plan_still_converges() {
    // Movies with two ambiguous directors each: matched movie pairs
    // carry a nested 2×2 director group (7 matchings). Under
    // BudgetPlan::Total(4) both the movie group and the nested director
    // groups truncate — an exhaustive refinement must lift the plan for
    // its re-emissions too, or the nested groups re-truncate forever.
    let schema = movie_schema();
    let mk = |src: usize| {
        let mut s = String::from("<catalog>");
        for i in 0..3 {
            s.push_str(&format!(
                "<movie><title>M{src}{i}</title><year>1975</year>\
                 <director>D{src}a</director><director>D{src}b</director></movie>"
            ));
        }
        s.push_str("</catalog>");
        parse(&s).unwrap()
    };
    let oracle = uninformed_movie_oracle();
    let opts = IntegrationOptions {
        budget_plan: BudgetPlan::Total(4),
        ..IntegrationOptions::default()
    };
    let exact = integrate_xml(
        &mk(1),
        &mk(2),
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    let mut budgeted = integrate_xml(&mk(1), &mk(2), &oracle, Some(&schema), &opts).unwrap();
    assert!(budgeted.is_refinable());
    // One exhaustive call converges despite the Total plan: re-emitted
    // nested groups enumerate unbudgeted.
    let step = budgeted
        .refine(&oracle, Some(&schema), &RefineOptions::to_exhaustive())
        .unwrap();
    assert_eq!(step.remaining, 0, "{step:?}");
    assert_eq!(exact.doc.fingerprint(), budgeted.doc.fingerprint());
}

#[test]
fn failed_refine_rolls_back_to_the_pre_refine_outcome() {
    let schema = movie_schema();
    let oracle = uninformed_movie_oracle();
    let (a, b) = confusable_catalogs(4);
    // Find the budgeted document's arena size, then re-integrate with an
    // output cap just above it: integration fits, but an exhaustive
    // refinement (16 -> 209 matchings) must blow the guard.
    let probe = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions {
            max_matchings_per_component: 16,
            ..IntegrationOptions::default()
        },
    )
    .unwrap();
    // Headroom for a small refinement (which re-emits the component
    // once more) but nowhere near the 209-matching exhaustive emission.
    let cap = probe.doc.arena_len() * 3;
    let mut outcome = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions {
            max_matchings_per_component: 16,
            max_output_nodes: cap,
            ..IntegrationOptions::default()
        },
    )
    .unwrap();
    let fingerprint = outcome.doc.fingerprint();
    let frontiers_before: Vec<_> = outcome
        .frontiers()
        .iter()
        .map(|f| (f.path().to_string(), f.kept(), f.open_nodes()))
        .collect();
    let arena_before = outcome.doc.arena_len();
    let err = outcome
        .refine(&oracle, Some(&schema), &RefineOptions::to_exhaustive())
        .unwrap_err();
    assert!(
        matches!(err, IntegrateError::OutputTooLarge { .. }),
        "{err}"
    );
    // Atomic failure: document (arena included) and frontiers exactly
    // as before…
    assert_eq!(outcome.doc.fingerprint(), fingerprint);
    assert_eq!(outcome.doc.arena_len(), arena_before);
    outcome.doc.validate().unwrap();
    let frontiers_after: Vec<_> = outcome
        .frontiers()
        .iter()
        .map(|f| (f.path().to_string(), f.kept(), f.open_nodes()))
        .collect();
    assert_eq!(frontiers_before, frontiers_after);
    // …and still refinable: a smaller installment succeeds.
    let step = outcome
        .refine(
            &oracle,
            Some(&schema),
            &RefineOptions {
                extra_matchings: 4,
                ..RefineOptions::default()
            },
        )
        .unwrap();
    assert_eq!(step.refined.len(), 1);
    outcome.doc.validate().unwrap();
}

#[test]
fn total_budget_plan_splits_across_group_components() {
    let schema = movie_schema();
    // A 4-movie group and a 2-movie group in different years: two
    // components with 16 vs 4 live pairs sharing one total budget.
    let mk = |src: usize| {
        let mut s = String::from("<catalog>");
        for i in 0..4 {
            s.push_str(&format!(
                "<movie><title>Big {src}{i}</title><year>1900</year></movie>"
            ));
        }
        for i in 0..2 {
            s.push_str(&format!(
                "<movie><title>Small {src}{i}</title><year>1950</year></movie>"
            ));
        }
        s.push_str("</catalog>");
        parse(&s).unwrap()
    };
    let oracle = movie_oracle(MovieOracleConfig {
        genre_rule: false,
        title_rule: false,
        year_rule: true,
        graded_prior: false,
        ..MovieOracleConfig::default()
    });
    let result = integrate_xml(
        &mk(1),
        &mk(2),
        &oracle,
        Some(&schema),
        &IntegrationOptions {
            budget_plan: BudgetPlan::Total(20),
            ..IntegrationOptions::default()
        },
    )
    .unwrap();
    result.doc.validate().unwrap();
    // 16 vs 4 live pairs: shares 16 and 4. The big component truncates
    // at 16 of its 209 matchings; the small one completes (7 ≤ … no —
    // budget 4 < 7 matchings, so it truncates at 4).
    let kept: Vec<usize> = result
        .stats
        .truncated_components
        .iter()
        .map(|t| t.kept)
        .collect();
    assert_eq!(kept, vec![16, 4]);
    assert!(result
        .stats
        .truncated_components
        .iter()
        .all(|t| t.frontier_nodes > 0));
}

#[test]
fn root_tag_mismatch_is_reported() {
    let oracle = Oracle::uninformed();
    let a = parse("<catalog/>").unwrap();
    let b = parse("<addressbook/>").unwrap();
    let err = integrate_xml(&a, &b, &oracle, None, &IntegrationOptions::default()).unwrap_err();
    assert_eq!(
        err,
        IntegrateError::RootTagMismatch {
            a: "catalog".into(),
            b: "addressbook".into()
        }
    );
}

#[test]
fn incremental_integration_of_probabilistic_result() {
    // Integrate two sources, then integrate a third (certain) source into
    // the probabilistic result — the paper's incremental improvement loop.
    let schema = addressbook_schema();
    let oracle = addressbook_oracle();
    let first = integrate_xml(
        &john("1111"),
        &john("2222"),
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    assert_eq!(first.doc.world_count(), 3);
    let third = imprecise_pxml::from_xml(
        &parse("<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>").unwrap(),
    );
    let second = integrate_px(
        &first.doc,
        &third,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    second.doc.validate().unwrap();
    // Mary matches nobody (name rule): worlds unchanged in count, each
    // now containing Mary.
    assert_eq!(second.doc.world_count(), 3);
    for w in second.doc.worlds(100).unwrap() {
        assert!(to_string(&w.doc).contains("Mary"));
    }
}

#[test]
fn integration_is_symmetric_in_world_count() {
    let schema = movie_schema();
    let oracle = movie_oracle(MovieOracleConfig::default());
    let a = parse(
        "<catalog><movie><title>Jaws</title><year>1975</year></movie>\
         <movie><title>Jaws 2</title><year>1978</year></movie></catalog>",
    )
    .unwrap();
    let b =
        parse("<catalog><movie><title>Jaws</title><year>1975</year></movie></catalog>").unwrap();
    let ab = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    let ba = integrate_xml(
        &b,
        &a,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    assert_eq!(ab.doc.world_count(), ba.doc.world_count());
    assert_eq!(ab.stats.judged_possible, ba.stats.judged_possible);
}

#[test]
fn attribute_conflicts_become_variants() {
    let oracle = addressbook_oracle();
    let schema = addressbook_schema();
    let a =
        parse("<addressbook><person id=\"p1\"><nm>John</nm><tel>1111</tel></person></addressbook>")
            .unwrap();
    let b =
        parse("<addressbook><person id=\"p9\"><nm>John</nm><tel>1111</tel></person></addressbook>")
            .unwrap();
    let result = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    result.doc.validate().unwrap();
    assert!(result.stats.attr_conflicts >= 1);
    // Two worlds for the match case (id=p1 / id=p9) + the two-person world.
    let dist = result.doc.world_distribution(100).unwrap();
    let ids: Vec<String> = dist
        .iter()
        .map(|w| to_string(&w.doc))
        .filter(|s| s.matches("<person").count() == 1)
        .collect();
    assert!(ids.iter().any(|s| s.contains("id=\"p1\"")));
    assert!(ids.iter().any(|s| s.contains("id=\"p9\"")));
}

#[test]
fn simplify_does_not_change_world_distribution() {
    let schema = movie_schema();
    let oracle = movie_oracle(MovieOracleConfig::default());
    let a = parse(
        "<catalog><movie><title>Jaws</title><year>1975</year><genre>Horror</genre></movie></catalog>",
    )
    .unwrap();
    let b = parse(
        "<catalog><movie><title>Jaws (TV)</title><year>1975</year><genre>Horror</genre></movie></catalog>",
    )
    .unwrap();
    let plain = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions {
            simplify: false,
            ..IntegrationOptions::default()
        },
    )
    .unwrap();
    let simplified = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    let d1 = plain.doc.world_distribution(1000).unwrap();
    let d2 = simplified.doc.world_distribution(1000).unwrap();
    assert_eq!(d1.len(), d2.len());
    for (x, y) in d1.iter().zip(d2.iter()) {
        assert!((x.prob - y.prob).abs() < 1e-9);
        assert!(imprecise_xmlkit::deep_equal(&x.doc, &y.doc));
    }
    assert!(simplified.doc.reachable_count() <= plain.doc.reachable_count());
}

#[test]
fn empty_catalogs_integrate_to_empty_catalog() {
    let oracle = Oracle::uninformed();
    let a = parse("<catalog/>").unwrap();
    let b = parse("<catalog/>").unwrap();
    let result = integrate_xml(&a, &b, &oracle, None, &IntegrationOptions::default()).unwrap();
    assert_eq!(result.doc.world_count(), 1);
    assert_eq!(
        to_string(&result.doc.worlds(2).unwrap()[0].doc),
        "<catalog/>"
    );
}

#[test]
fn one_sided_content_copies_certainly() {
    let oracle = movie_oracle(MovieOracleConfig::default());
    let schema = movie_schema();
    let a =
        parse("<catalog><movie><title>Jaws</title><year>1975</year></movie></catalog>").unwrap();
    let b = parse("<catalog/>").unwrap();
    let result = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    assert_eq!(result.doc.world_count(), 1);
    assert!(to_string(&result.doc.worlds(2).unwrap()[0].doc).contains("Jaws"));
    assert_eq!(result.stats.pairs_judged, 0);
}

#[test]
fn value_conflict_weights_follow_source_weights() {
    let schema = addressbook_schema();
    let oracle = addressbook_oracle();
    let opts = IntegrationOptions {
        source_weights: (3.0, 1.0),
        ..IntegrationOptions::default()
    };
    let result =
        integrate_xml(&john("1111"), &john("2222"), &oracle, Some(&schema), &opts).unwrap();
    let dist = result.doc.world_distribution(100).unwrap();
    // Match world splits 0.5 × (0.75 / 0.25) between the phones.
    let p1111 = dist
        .iter()
        .find(|w| {
            let s = to_string(&w.doc);
            s.matches("<person>").count() == 1 && s.contains("1111")
        })
        .unwrap();
    let p2222 = dist
        .iter()
        .find(|w| {
            let s = to_string(&w.doc);
            s.matches("<person>").count() == 1 && s.contains("2222")
        })
        .unwrap();
    assert!((p1111.prob - 0.375).abs() < 1e-9);
    assert!((p2222.prob - 0.125).abs() < 1e-9);
}

#[test]
fn stats_track_components_and_matchings() {
    let schema = movie_schema();
    let oracle = movie_oracle(MovieOracleConfig::default());
    // Two franchises, one undecided pair each → two components with two
    // matchings each (match / no-match).
    let a = parse(
        "<catalog><movie><title>Jaws</title><year>1975</year></movie>\
         <movie><title>Die Hard</title><year>1988</year></movie></catalog>",
    )
    .unwrap();
    let b = parse(
        "<catalog><movie><title>Jaws (TV)</title><year>1975</year></movie>\
         <movie><title>Die Hard (TV)</title><year>1988</year></movie></catalog>",
    )
    .unwrap();
    let result = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .unwrap();
    assert_eq!(result.stats.judged_possible, 2);
    assert_eq!(result.stats.components_with_choice, 2);
    assert_eq!(result.stats.max_component_matchings, 2);
    // Factored: per franchise, no-match (1 world) or match with an internal
    // title-value choice (2 worlds) → 3 worlds each, 3 × 3 = 9 total.
    assert_eq!(result.doc.world_count(), 9);
}
