//! Blocking plans: recall-safe prefilters derived from an Oracle's rules.
//!
//! Candidate generation judges every cross-source pair, which is O(n·m)
//! oracle calls. A [`BlockingPlan`] extracts, from the configured rule
//! list, cheap per-element features (normalised keys, token sets, q-gram
//! profiles) and a pairwise `prunes` predicate with one guarantee:
//!
//! > If the plan prunes a pair, the oracle judges that pair `NonMatch`.
//!
//! Pruned pairs can therefore be dropped *before* any oracle call without
//! changing the integration result — the recall-safe property the
//! blocking property tests check bitwise.
//!
//! # How soundness is derived
//!
//! Each rule reports a [`BlockingHint`]. Walking the rule list in
//! consultation order for one element tag:
//!
//! * [`BlockingHint::Transparent`] rules (deep-equal) only ever `Match`
//!   content-identical pairs. No filter below can prune such a pair —
//!   equality filters see a shared value pairing, and similarity filters
//!   bound `sim(x, x) = 1 ≥ threshold` — so collection continues.
//! * Tag-gated rules for a *different* tag abstain on every pair of this
//!   tag; collection continues.
//! * Tag-gated rules for *this* tag contribute their `NonMatch` condition
//!   as a [`PruneFilter`] (an under-approximation: the filter fires only
//!   where the rule certainly fires). A rule that can also `Match`
//!   (exact-text) ends collection after contributing, because a later
//!   filter could otherwise prune a pair this rule would have matched.
//! * Unknown ([`BlockingHint::Opaque`]) rules end collection.
//!
//! Similarity filters compare *upper bounds*: exact values where the
//! measure is set arithmetic (Jaccard, Dice), and length/q-gram/character
//! -multiset bounds for the edit-based measures, padded with a slack that
//! absorbs any f64 rounding asymmetry. When a cheap bound is too loose to
//! prune, the edit-based filters fall back to evaluating the measure
//! itself on the precomputed (normalised) values — still a fraction of a
//! full oracle consultation, and the price of keeping the scored set
//! near-linear on workloads the q-gram bound cannot separate. A pair is
//! pruned only when every possible-value pairing is provably below the
//! rule's threshold.

use crate::rules::{Rule, SimMeasure};
use crate::value::{ElemRef, PossibleValues};
use imprecise_sim as sim;
use std::collections::BTreeSet;

/// Variant budget for feature extraction — must equal the rules' own cap
/// so "certain values" means the same thing on both paths.
use crate::rules::VALUE_VARIANT_CAP;

/// Safety margin added to every similarity upper bound: pruning uses a
/// strict `ub < threshold` comparison, so the margin only ever *keeps*
/// borderline pairs, never drops them.
const UB_SLACK: f64 = 1e-9;

/// How a rule behaves for blocking purposes. See the module docs for how
/// the plan derivation consumes these.
#[derive(Debug, Clone)]
pub enum BlockingHint {
    /// Decides `Match` only on content-identical pairs and never decides
    /// `NonMatch`; invisible to every filter below it.
    Transparent,
    /// Abstains unless both elements have `tag`; may decide `NonMatch`
    /// exactly where `filter` fires, and can decide `Match` at all only
    /// if `decides_match`.
    TagGated {
        /// Tag the rule is gated on.
        tag: String,
        /// Sound under-approximation of the rule's `NonMatch` condition,
        /// if one is extractable.
        filter: Option<PruneFilter>,
        /// Whether the rule can ever decide `Match`.
        decides_match: bool,
    },
    /// Behaviour unknown; blocks filter collection at this point.
    Opaque,
}

/// One prunable `NonMatch` condition, evaluated on cached features.
#[derive(Debug, Clone, PartialEq)]
pub enum PruneFilter {
    /// Every pairing of trimmed key values differs (key-inequality rules).
    KeyDiffers {
        /// Path from the element to the key value.
        value_path: String,
    },
    /// Every pairing of own-text values differs (exact-text rules).
    TextDiffers,
    /// Every pairing of values is provably below the threshold.
    SimilarityBelow {
        /// Path from the element to the compared value.
        value_path: String,
        /// The rule's threshold.
        threshold: f64,
        /// The rule's measure (selects the upper-bound features).
        measure: SimMeasure,
    },
}

impl PruneFilter {
    /// Whether this filter prunes on pure value equality, making it
    /// usable as a hash-join key by the candidate generator.
    pub fn is_equality(&self) -> bool {
        matches!(
            self,
            PruneFilter::KeyDiffers { .. } | PruneFilter::TextDiffers
        )
    }
}

/// The prefilters that are sound for one element tag under one oracle.
#[derive(Debug, Clone)]
pub struct BlockingPlan {
    tag: String,
    filters: Vec<PruneFilter>,
}

impl BlockingPlan {
    /// Derive the plan for `tag` by walking `rules` in consultation order.
    pub(crate) fn derive(rules: &[Box<dyn Rule>], tag: &str) -> BlockingPlan {
        let mut filters = Vec::new();
        for rule in rules {
            match rule.blocking_hint() {
                BlockingHint::Transparent => continue,
                BlockingHint::TagGated { tag: t, .. } if t != tag => continue,
                BlockingHint::TagGated {
                    filter,
                    decides_match,
                    ..
                } => {
                    if let Some(f) = filter {
                        filters.push(f);
                    }
                    if decides_match {
                        break;
                    }
                }
                BlockingHint::Opaque => break,
            }
        }
        BlockingPlan {
            tag: tag.to_string(),
            filters,
        }
    }

    /// Tag this plan applies to.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// The collected filters, in rule-consultation order.
    pub fn filters(&self) -> &[PruneFilter] {
        &self.filters
    }

    /// Whether the plan can prune anything at all.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Index of the first equality filter — the natural hash-join key for
    /// sub-quadratic pair generation.
    pub fn join_filter(&self) -> Option<usize> {
        self.filters.iter().position(PruneFilter::is_equality)
    }

    /// Extract this plan's per-element features. Cheap for elements of
    /// another tag (every filter becomes inapplicable and never prunes).
    pub fn features(&self, e: &ElemRef<'_>) -> ElementFeatures {
        if e.tag() != self.tag {
            return ElementFeatures {
                per_filter: vec![FilterFeatures::Inapplicable; self.filters.len()],
            };
        }
        let per_filter = self
            .filters
            .iter()
            .map(|f| match f {
                PruneFilter::KeyDiffers { value_path } => {
                    match e.possible_values_at(value_path, VALUE_VARIANT_CAP) {
                        PossibleValues::Values(vs) if !vs.is_empty() => FilterFeatures::Equality(
                            vs.iter().map(|v| v.trim().to_string()).collect(),
                        ),
                        _ => FilterFeatures::Inapplicable,
                    }
                }
                PruneFilter::TextDiffers => match e.possible_own_texts(VALUE_VARIANT_CAP) {
                    Some(ts) if !ts.is_empty() => FilterFeatures::Equality(ts),
                    _ => FilterFeatures::Inapplicable,
                },
                PruneFilter::SimilarityBelow {
                    value_path,
                    measure,
                    ..
                } => match e.possible_values_at(value_path, VALUE_VARIANT_CAP) {
                    PossibleValues::Values(vs) if !vs.is_empty() => FilterFeatures::Similarity(
                        vs.iter().map(|v| SimFeature::new(*measure, v)).collect(),
                    ),
                    _ => FilterFeatures::Inapplicable,
                },
            })
            .collect();
        ElementFeatures { per_filter }
    }

    /// Whether the pair `(a, b)` is provably a `NonMatch` for the oracle
    /// this plan was derived from.
    pub fn prunes(&self, a: &ElementFeatures, b: &ElementFeatures) -> bool {
        self.filters
            .iter()
            .zip(a.per_filter.iter().zip(&b.per_filter))
            .any(|(f, (fa, fb))| filter_fires(f, fa, fb))
    }
}

/// Per-element cached inputs to one plan's filters, index-aligned with
/// [`BlockingPlan::filters`].
#[derive(Debug, Clone)]
pub struct ElementFeatures {
    per_filter: Vec<FilterFeatures>,
}

impl ElementFeatures {
    /// Join keys for an equality filter: `Some(values)` when the element
    /// has certain values there, `None` when the filter cannot prune this
    /// element (uncertain/missing value — must pair with everything).
    pub fn join_keys(&self, filter_idx: usize) -> Option<&[String]> {
        match self.per_filter.get(filter_idx) {
            Some(FilterFeatures::Equality(ks)) => Some(ks),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
enum FilterFeatures {
    /// The filter abstains for this element (wrong tag, missing or
    /// uncertain value) and must never prune a pair involving it.
    Inapplicable,
    /// Certain values for an equality filter, trimmed where the rule
    /// trims.
    Equality(Vec<String>),
    /// Upper-bound features, one per possible value.
    Similarity(Vec<SimFeature>),
}

fn filter_fires(f: &PruneFilter, a: &FilterFeatures, b: &FilterFeatures) -> bool {
    match (f, a, b) {
        (
            PruneFilter::KeyDiffers { .. } | PruneFilter::TextDiffers,
            FilterFeatures::Equality(ka),
            FilterFeatures::Equality(kb),
        ) => ka.iter().all(|x| kb.iter().all(|y| x != y)),
        (
            PruneFilter::SimilarityBelow { threshold, .. },
            FilterFeatures::Similarity(sa),
            FilterFeatures::Similarity(sb),
        ) => sa.iter().all(|x| {
            sb.iter().all(|y| {
                x.upper_bound(y) < *threshold
                    || x.exact(y).is_some_and(|v| v + UB_SLACK < *threshold)
            })
        }),
        _ => false,
    }
}

/// Character-bigram multiset of a string — each edit operation disturbs
/// at most two bigrams, giving the q-gram edit-distance lower bound.
/// Stored as a sorted run-length vector: the prefilter intersects these
/// pairwise on every hash-join candidate, and a two-pointer merge over
/// short sorted slices beats a tree lookup per gram by an order of
/// magnitude.
type Bigrams = Vec<((char, char), usize)>;

fn sorted_counts<K: Ord + Copy>(mut keys: Vec<K>) -> Vec<(K, usize)> {
    keys.sort_unstable();
    let mut out: Vec<(K, usize)> = Vec::with_capacity(keys.len());
    for k in keys {
        match out.last_mut() {
            Some((last, n)) if *last == k => *n += 1,
            _ => out.push((k, 1)),
        }
    }
    out
}

fn bigrams(s: &str) -> Bigrams {
    let chars: Vec<char> = s.chars().collect();
    sorted_counts(chars.windows(2).map(|w| (w[0], w[1])).collect())
}

fn multiset_common<K: Ord + Copy>(a: &[(K, usize)], b: &[(K, usize)]) -> usize {
    let (mut i, mut j, mut common) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += a[i].1.min(b[j].1);
                i += 1;
                j += 1;
            }
        }
    }
    common
}

fn char_counts(s: &str) -> Vec<(char, usize)> {
    sorted_counts(s.chars().collect())
}

/// Jaccard over sorted, deduplicated token vectors — the same
/// intersection and union counts (and therefore the same f64 bits) as
/// [`sim::jaccard_token_sets`] on the corresponding sets, via a
/// two-pointer merge instead of tree walks.
fn jaccard_sorted(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (mut i, mut j, mut common) = (0, 0, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - common;
    common as f64 / union as f64
}

/// Upper bound on `1 − d/max_len` from two edit-distance lower bounds:
/// the length difference and the q-gram (q = 2) bound
/// `d ≥ ⌈(max_grams − common_grams) / 2⌉`.
fn lev_similarity_ub(ca: usize, cb: usize, ba: &Bigrams, bb: &Bigrams) -> f64 {
    let max_len = ca.max(cb);
    if max_len == 0 {
        return 1.0;
    }
    let len_lb = ca.abs_diff(cb);
    let max_grams = ca.saturating_sub(1).max(cb.saturating_sub(1));
    let qgram_lb = (max_grams - multiset_common(ba, bb)).div_ceil(2);
    let d_lb = len_lb.max(qgram_lb);
    1.0 - d_lb as f64 / max_len as f64
}

/// Precomputed per-value features for one similarity measure, supporting
/// a sound (never smaller than the true similarity) pairwise upper bound.
#[derive(Debug, Clone)]
enum SimFeature {
    Title {
        norm: String,
        tokens: Vec<String>,
        chars: usize,
        grams: Bigrams,
    },
    PersonName {
        norm: String,
        chars: usize,
        counts: Vec<(char, usize)>,
    },
    Levenshtein {
        value: String,
        chars: usize,
        grams: Bigrams,
    },
    JaroWinkler {
        value: String,
        chars: usize,
        counts: Vec<(char, usize)>,
    },
    TokenJaccard {
        tokens: Vec<String>,
    },
    TrigramDice {
        lower: String,
        trigrams: BTreeSet<Vec<char>>,
    },
}

impl SimFeature {
    fn new(measure: SimMeasure, v: &str) -> SimFeature {
        match measure {
            SimMeasure::Title => {
                let n = sim::normalize_title(v);
                SimFeature::Title {
                    tokens: sim::token_set(&n).into_iter().collect(),
                    chars: n.chars().count(),
                    grams: bigrams(&n),
                    norm: n,
                }
            }
            SimMeasure::PersonName => {
                let n = sim::normalize_person_name(v);
                SimFeature::PersonName {
                    chars: n.chars().count(),
                    counts: char_counts(&n),
                    norm: n,
                }
            }
            SimMeasure::Levenshtein => SimFeature::Levenshtein {
                value: v.to_string(),
                chars: v.chars().count(),
                grams: bigrams(v),
            },
            SimMeasure::JaroWinkler => SimFeature::JaroWinkler {
                value: v.to_string(),
                chars: v.chars().count(),
                counts: char_counts(v),
            },
            SimMeasure::TokenJaccard => SimFeature::TokenJaccard {
                tokens: sim::token_set(v).into_iter().collect(),
            },
            SimMeasure::TrigramDice => {
                let lower = v.to_lowercase();
                let trigrams = sim::token::trigram_set(&lower);
                SimFeature::TrigramDice { lower, trigrams }
            }
        }
    }

    /// An upper bound on the measure applied to the two underlying
    /// values. Mismatched feature kinds (impossible through
    /// [`BlockingPlan::features`]) return `1.0`, which never prunes.
    fn upper_bound(&self, other: &SimFeature) -> f64 {
        match (self, other) {
            (
                SimFeature::Title {
                    tokens: ta,
                    chars: ca,
                    grams: ga,
                    ..
                },
                SimFeature::Title {
                    tokens: tb,
                    chars: cb,
                    grams: gb,
                    ..
                },
            ) => {
                // title_similarity = max(token Jaccard, Levenshtein sim)
                // on the normalised titles: Jaccard is exact here, the
                // edit part is bounded.
                let jac = jaccard_sorted(ta, tb);
                jac.max(lev_similarity_ub(*ca, *cb, ga, gb)) + UB_SLACK
            }
            (
                SimFeature::PersonName {
                    chars: ca,
                    counts: na,
                    ..
                },
                SimFeature::PersonName {
                    chars: cb,
                    counts: nb,
                    ..
                },
            )
            | (
                SimFeature::JaroWinkler {
                    chars: ca,
                    counts: na,
                    ..
                },
                SimFeature::JaroWinkler {
                    chars: cb,
                    counts: nb,
                    ..
                },
            ) => jaro_winkler_ub(*ca, *cb, na, nb),
            (
                SimFeature::Levenshtein {
                    chars: ca,
                    grams: ga,
                    ..
                },
                SimFeature::Levenshtein {
                    chars: cb,
                    grams: gb,
                    ..
                },
            ) => lev_similarity_ub(*ca, *cb, ga, gb) + UB_SLACK,
            (SimFeature::TokenJaccard { tokens: ta }, SimFeature::TokenJaccard { tokens: tb }) => {
                jaccard_sorted(ta, tb) + UB_SLACK
            }
            (
                SimFeature::TrigramDice {
                    lower: la,
                    trigrams: ta,
                },
                SimFeature::TrigramDice {
                    lower: lb,
                    trigrams: tb,
                },
            ) => sim::token::dice_trigram_sets(la, ta, lb, tb) + UB_SLACK,
            _ => 1.0,
        }
    }

    /// The measure itself, evaluated on the stored (already-normalised)
    /// values — the tight fallback [`filter_fires`] uses when the cheap
    /// bound cannot prune. `None` for the set-arithmetic measures, whose
    /// "bound" already *is* the measure, and for mismatched kinds.
    ///
    /// Each arm replays exactly what [`SimMeasure::apply`] computes after
    /// its normalisation step (including the both-empty short-circuits),
    /// so the returned value equals the rule's own similarity bitwise.
    fn exact(&self, other: &SimFeature) -> Option<f64> {
        match (self, other) {
            (
                SimFeature::Title {
                    norm: na,
                    tokens: ta,
                    ..
                },
                SimFeature::Title {
                    norm: nb,
                    tokens: tb,
                    ..
                },
            ) => {
                if na.is_empty() && nb.is_empty() {
                    return Some(1.0);
                }
                Some(jaccard_sorted(ta, tb).max(sim::levenshtein_similarity(na, nb)))
            }
            (SimFeature::PersonName { norm: na, .. }, SimFeature::PersonName { norm: nb, .. }) => {
                if na.is_empty() && nb.is_empty() {
                    return Some(1.0);
                }
                Some(sim::jaro_winkler(na, nb))
            }
            (
                SimFeature::Levenshtein { value: va, .. },
                SimFeature::Levenshtein { value: vb, .. },
            ) => Some(sim::levenshtein_similarity(va, vb)),
            (
                SimFeature::JaroWinkler { value: va, .. },
                SimFeature::JaroWinkler { value: vb, .. },
            ) => Some(sim::jaro_winkler(va, vb)),
            _ => None,
        }
    }
}

/// Jaro-Winkler upper bound from character multisets: Jaro's match count
/// is an injective pairing of equal characters, so `m ≤ |multiset
/// intersection|`, and the transposition term is at most 1; Winkler's
/// boost is maximal at a full 4-character prefix.
fn jaro_winkler_ub(ca: usize, cb: usize, na: &[(char, usize)], nb: &[(char, usize)]) -> f64 {
    if ca == 0 || cb == 0 {
        // Both empty is exactly 1.0 (and `person_name_similarity` short-
        // circuits to 1.0 before Jaro); one empty side scores 0.0, but
        // 1.0 is still a sound bound and keeps the edge case trivial.
        return 1.0;
    }
    let c = multiset_common(na, nb);
    if c == 0 {
        // No shared character: no Jaro matches and no shared prefix.
        return UB_SLACK;
    }
    let c = c as f64;
    let ub_jaro = (c / ca as f64 + c / cb as f64 + 1.0) / 3.0;
    let ub_jaro = ub_jaro.min(1.0);
    ub_jaro + 0.4 * (1.0 - ub_jaro) + UB_SLACK
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{DeepEqualRule, ExactTextRule, KeyInequalityRule, SimilarityThresholdRule};
    use crate::Oracle;
    use imprecise_pxml::{from_xml, PxDoc};
    use imprecise_xmlkit::parse;

    fn px(xml: &str) -> PxDoc {
        from_xml(&parse(xml).unwrap())
    }

    fn root_elem(doc: &PxDoc) -> ElemRef<'_> {
        let poss = doc.children(doc.root())[0];
        ElemRef {
            doc,
            node: doc.children(poss)[0],
        }
    }

    fn movie_oracle_like() -> Oracle {
        let mut o = Oracle::uninformed();
        o.push_rule(Box::new(DeepEqualRule));
        o.push_rule(Box::new(ExactTextRule::new("genre")));
        o.push_rule(Box::new(SimilarityThresholdRule::movie_title(0.55)));
        o.push_rule(Box::new(KeyInequalityRule::movie_year()));
        o
    }

    #[test]
    fn plan_collects_movie_filters_past_transparent_rules() {
        let plan = movie_oracle_like().blocking_plan("movie");
        assert_eq!(plan.filters().len(), 2, "title similarity + year key");
        assert!(matches!(
            plan.filters()[0],
            PruneFilter::SimilarityBelow { .. }
        ));
        assert!(matches!(plan.filters()[1], PruneFilter::KeyDiffers { .. }));
        assert_eq!(plan.join_filter(), Some(1));
    }

    #[test]
    fn plan_stops_at_match_capable_rules() {
        // The genre exact-text rule can Match, so for the `genre` tag only
        // its own filter is collected even with later genre-gated rules.
        let mut o = movie_oracle_like();
        o.push_rule(Box::new(KeyInequalityRule {
            rule_name: "genre-key".into(),
            tag: "genre".into(),
            value_path: ".".into(),
        }));
        let plan = o.blocking_plan("genre");
        assert_eq!(plan.filters(), &[PruneFilter::TextDiffers]);
    }

    #[test]
    fn unknown_rules_block_collection() {
        struct Mystery;
        impl Rule for Mystery {
            fn name(&self) -> &str {
                "mystery"
            }
            fn judge(&self, _: &ElemRef<'_>, _: &ElemRef<'_>) -> Option<crate::Decision> {
                None
            }
        }
        let mut o = Oracle::uninformed();
        o.push_rule(Box::new(Mystery));
        o.push_rule(Box::new(SimilarityThresholdRule::movie_title(0.55)));
        let plan = o.blocking_plan("movie");
        assert!(plan.is_empty(), "opaque rule must stop collection");
    }

    #[test]
    fn over_unit_thresholds_emit_no_filter() {
        // threshold > 1 makes the rule reject even identical titles,
        // which conflicts with deep-equal transparency — no filter.
        let mut o = Oracle::uninformed();
        o.push_rule(Box::new(DeepEqualRule));
        o.push_rule(Box::new(SimilarityThresholdRule {
            rule_name: "impossible".into(),
            tag: "movie".into(),
            value_path: "title".into(),
            threshold: 1.5,
            measure: SimMeasure::Title,
        }));
        assert!(o.blocking_plan("movie").is_empty());
    }

    /// The central soundness property on concrete documents: whenever the
    /// plan prunes, the oracle says NonMatch.
    #[test]
    fn pruning_implies_nonmatch() {
        let oracle = movie_oracle_like();
        let plan = oracle.blocking_plan("movie");
        let docs: Vec<PxDoc> = [
            "<movie><title>Jaws</title><year>1975</year></movie>",
            "<movie><title>Jaws 2</title><year>1978</year></movie>",
            "<movie><title>Die Hard: With a Vengeance</title><year>1995</year></movie>",
            "<movie><title>Die Hard</title><year>1988</year></movie>",
            "<movie><title>Mission: Impossible II</title><year>2000</year></movie>",
            "<movie><title>Mission Impossible 2</title><year>2000</year></movie>",
            "<movie><title>jaws</title></movie>",
            "<movie><year>1975</year></movie>",
        ]
        .iter()
        .map(|x| px(x))
        .collect();
        let mut pruned = 0;
        for da in &docs {
            for db in &docs {
                let (a, b) = (root_elem(da), root_elem(db));
                let fa = plan.features(&a);
                let fb = plan.features(&b);
                if plan.prunes(&fa, &fb) {
                    pruned += 1;
                    let j = oracle.judge(&a, &b);
                    assert_eq!(
                        j.decision,
                        crate::Decision::NonMatch,
                        "pruned a pair the oracle would not reject"
                    );
                }
            }
        }
        assert!(pruned > 0, "plan should prune at least the obvious pairs");
    }

    #[test]
    fn similarity_upper_bounds_dominate_the_measures() {
        let values = [
            "Jaws",
            "Jaws 2",
            "Die Hard: With a Vengeance",
            "Mission: Impossible II",
            "mission impossible 2",
            "McTiernan, John",
            "John Woo",
            "",
            "tv",
        ];
        for measure in [
            SimMeasure::Title,
            SimMeasure::PersonName,
            SimMeasure::Levenshtein,
            SimMeasure::JaroWinkler,
            SimMeasure::TokenJaccard,
            SimMeasure::TrigramDice,
        ] {
            for a in values {
                let fa = SimFeature::new(measure, a);
                for b in values {
                    let fb = SimFeature::new(measure, b);
                    let ub = fa.upper_bound(&fb);
                    let actual = measure.apply(a, b);
                    assert!(
                        ub >= actual,
                        "{measure:?} ub {ub} < actual {actual} for {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_fallback_matches_the_measure_bitwise() {
        let values = [
            "Jaws",
            "Jaws 2",
            "Die Hard: With a Vengeance",
            "Mission: Impossible II",
            "mission impossible 2",
            "McTiernan, John",
            "John Woo",
            "",
            "tv",
        ];
        // The edit-based measures must offer the exact fallback, and it
        // must reproduce the rule's own similarity to the bit — that is
        // what makes pruning on it recall-safe.
        for measure in [
            SimMeasure::Title,
            SimMeasure::PersonName,
            SimMeasure::Levenshtein,
            SimMeasure::JaroWinkler,
        ] {
            for a in values {
                let fa = SimFeature::new(measure, a);
                for b in values {
                    let fb = SimFeature::new(measure, b);
                    let exact = fa
                        .exact(&fb)
                        .unwrap_or_else(|| panic!("{measure:?} must provide an exact fallback"));
                    let actual = measure.apply(a, b);
                    assert_eq!(
                        exact.to_bits(),
                        actual.to_bits(),
                        "{measure:?} exact {exact} != measure {actual} for {a:?} vs {b:?}"
                    );
                }
            }
        }
        // Set-arithmetic measures already bound exactly; no fallback.
        for measure in [SimMeasure::TokenJaccard, SimMeasure::TrigramDice] {
            let fa = SimFeature::new(measure, "Jaws");
            let fb = SimFeature::new(measure, "Jaws 2");
            assert_eq!(fa.exact(&fb), None);
        }
    }

    #[test]
    fn join_keys_surface_trimmed_certain_values() {
        let plan = movie_oracle_like().blocking_plan("movie");
        let d = px("<movie><title>Jaws</title><year> 1975 </year></movie>");
        let f = plan.features(&root_elem(&d));
        assert_eq!(f.join_keys(1), Some(&["1975".to_string()][..]));
        let missing = px("<movie><title>Jaws</title></movie>");
        let fm = plan.features(&root_elem(&missing));
        assert_eq!(fm.join_keys(1), None, "missing year must stay wild");
    }

    #[test]
    fn other_tag_features_never_prune() {
        let plan = movie_oracle_like().blocking_plan("movie");
        let movie = px("<movie><title>Jaws</title><year>1975</year></movie>");
        let person = px("<person><nm>Jaws</nm></person>");
        let fm = plan.features(&root_elem(&movie));
        let fp = plan.features(&root_elem(&person));
        assert!(!plan.prunes(&fm, &fp));
        assert!(!plan.prunes(&fp, &fm));
    }
}
