//! Oracle decisions.

/// The Oracle's verdict on whether two elements refer to the same
/// real-world object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Certainly the same real-world object.
    Match,
    /// Certainly different real-world objects.
    NonMatch,
    /// Undecided: they match with this probability (strictly inside
    /// `(0, 1)`). These pairs are what create possibilities during
    /// integration.
    Possible(f64),
}

impl Decision {
    /// True when the decision is absolute (match or non-match).
    pub fn is_certain(&self) -> bool {
        !matches!(self, Decision::Possible(_))
    }

    /// The match probability implied by the decision.
    pub fn probability(&self) -> f64 {
        match self {
            Decision::Match => 1.0,
            Decision::NonMatch => 0.0,
            Decision::Possible(p) => *p,
        }
    }
}

/// A decision together with the name of the rule that produced it
/// (`None` when the prior model produced it).
#[derive(Debug, Clone, PartialEq)]
pub struct Judgment {
    /// The verdict.
    pub decision: Decision,
    /// Name of the deciding rule, if any.
    pub rule: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certainty_classification() {
        assert!(Decision::Match.is_certain());
        assert!(Decision::NonMatch.is_certain());
        assert!(!Decision::Possible(0.5).is_certain());
    }

    #[test]
    fn probabilities() {
        assert_eq!(Decision::Match.probability(), 1.0);
        assert_eq!(Decision::NonMatch.probability(), 0.0);
        assert_eq!(Decision::Possible(0.3).probability(), 0.3);
    }
}
