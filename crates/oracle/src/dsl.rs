//! A textual configuration language for the Oracle.
//!
//! §V: *"Semantical knowledge is given to 'The Oracle' in terms of rules
//! … The rules need to be as simple as possible, because the purpose of
//! probabilistic integration is to significantly reduce manual effort, so
//! rule specification overhead should be minimal."* This module is that
//! minimal surface: a line-oriented language a user writes in a small
//! file, paralleling the XQuery-function rules of the original prototype.
//!
//! ```text
//! # The paper's movie configuration (§V)
//! rule deep-equal
//! rule exact-text genre
//! rule similarity movie title >= 0.55 using title
//! rule key movie year
//! prior similarity movie title range 0.05 0.95
//! ```
//!
//! One directive per line; `#` starts a comment. Directives:
//!
//! | Directive | Meaning |
//! |---|---|
//! | `rule deep-equal` | [`crate::rules::DeepEqualRule`] |
//! | `rule exact-text <tag>` | [`crate::rules::ExactTextRule`] |
//! | `rule similarity <tag> <path> >= <θ> [using <measure>]` | [`crate::rules::SimilarityThresholdRule`] (reject below θ) |
//! | `rule key <tag> <path>` | [`crate::rules::KeyInequalityRule`] |
//! | `prior uniform [p]` | [`crate::prior::UniformPrior`] |
//! | `prior similarity <tag> <path> range <lo> <hi> [using <measure>]` | [`crate::prior::SimilarityPrior`] |
//!
//! Measures: `title`, `person-name`, `levenshtein`, `jaro-winkler`,
//! `token-jaccard`, `trigram-dice` (default `levenshtein`; the `<tag>` of
//! a similarity prior is informational only — the prior applies to
//! whatever pair the rules left undecided).

use crate::prior::{SimilarityPrior, UniformPrior};
use crate::rules::{
    DeepEqualRule, ExactTextRule, KeyInequalityRule, SimMeasure, SimilarityThresholdRule,
};
use crate::Oracle;
use std::fmt;

/// A rule-file parse error, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// 1-based line of the offending directive.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

/// Parse a rule file into a configured [`Oracle`].
///
/// Rules are consulted in file order. At most one `prior` directive is
/// allowed; without one the uniform ½ prior applies.
pub fn parse_rules(text: &str) -> Result<Oracle, DslError> {
    let mut oracle = Oracle::uninformed();
    let mut prior_seen = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "rule" => parse_rule(&tokens[1..], line_no, &mut oracle)?,
            "prior" => {
                if prior_seen {
                    return Err(err(line_no, "duplicate prior directive"));
                }
                prior_seen = true;
                parse_prior(&tokens[1..], line_no, &mut oracle)?;
            }
            other => {
                return Err(err(
                    line_no,
                    format!("unknown directive {other:?} (expected `rule` or `prior`)"),
                ))
            }
        }
    }
    Ok(oracle)
}

fn err(line: usize, message: impl Into<String>) -> DslError {
    DslError {
        line,
        message: message.into(),
    }
}

fn parse_rule(args: &[&str], line: usize, oracle: &mut Oracle) -> Result<(), DslError> {
    match args.first() {
        Some(&"deep-equal") => {
            expect_len(args, 1, line, "rule deep-equal")?;
            oracle.push_rule(Box::new(DeepEqualRule));
            Ok(())
        }
        Some(&"exact-text") => {
            expect_len(args, 2, line, "rule exact-text <tag>")?;
            oracle.push_rule(Box::new(ExactTextRule::new(args[1])));
            Ok(())
        }
        Some(&"similarity") => {
            // rule similarity <tag> <path> >= <θ> [using <measure>]
            if args.len() != 5 && args.len() != 7 {
                return Err(err(
                    line,
                    "expected: rule similarity <tag> <path> >= <threshold> [using <measure>]",
                ));
            }
            if args[3] != ">=" {
                return Err(err(line, format!("expected `>=`, found {:?}", args[3])));
            }
            let threshold = parse_prob(args[4], line, "threshold")?;
            let measure = parse_optional_measure(&args[5..], line)?;
            oracle.push_rule(Box::new(SimilarityThresholdRule {
                rule_name: format!("{}-{}", args[1], args[2].replace('/', "-")),
                tag: args[1].to_string(),
                value_path: args[2].to_string(),
                threshold,
                measure,
            }));
            Ok(())
        }
        Some(&"key") => {
            expect_len(args, 3, line, "rule key <tag> <path>")?;
            oracle.push_rule(Box::new(KeyInequalityRule {
                rule_name: format!("{}-{}", args[1], args[2].replace('/', "-")),
                tag: args[1].to_string(),
                value_path: args[2].to_string(),
            }));
            Ok(())
        }
        Some(other) => Err(err(
            line,
            format!(
                "unknown rule kind {other:?} \
                 (expected deep-equal | exact-text | similarity | key)"
            ),
        )),
        None => Err(err(line, "empty rule directive")),
    }
}

fn parse_prior(args: &[&str], line: usize, oracle: &mut Oracle) -> Result<(), DslError> {
    match args.first() {
        Some(&"uniform") => {
            let p = match args.len() {
                1 => 0.5,
                2 => parse_prob(args[1], line, "probability")?,
                _ => return Err(err(line, "expected: prior uniform [p]")),
            };
            oracle.set_prior(Box::new(UniformPrior { p }));
            Ok(())
        }
        Some(&"similarity") => {
            // prior similarity <tag> <path> range <lo> <hi> [using <measure>]
            if args.len() != 6 && args.len() != 8 {
                return Err(err(
                    line,
                    "expected: prior similarity <tag> <path> range <lo> <hi> [using <measure>]",
                ));
            }
            if args[3] != "range" {
                return Err(err(line, format!("expected `range`, found {:?}", args[3])));
            }
            let lo = parse_prob(args[4], line, "range low")?;
            let hi = parse_prob(args[5], line, "range high")?;
            if lo > hi {
                return Err(err(line, format!("empty range: {lo} > {hi}")));
            }
            let measure = parse_optional_measure(&args[6..], line)?;
            oracle.set_prior(Box::new(SimilarityPrior {
                lo,
                hi,
                value_path: Some(args[2].to_string()),
                measure,
            }));
            Ok(())
        }
        Some(other) => Err(err(
            line,
            format!("unknown prior {other:?} (expected uniform | similarity)"),
        )),
        None => Err(err(line, "empty prior directive")),
    }
}

fn expect_len(args: &[&str], n: usize, line: usize, usage: &str) -> Result<(), DslError> {
    if args.len() == n {
        Ok(())
    } else {
        Err(err(line, format!("expected: {usage}")))
    }
}

fn parse_prob(token: &str, line: usize, what: &str) -> Result<f64, DslError> {
    let v: f64 = token
        .parse()
        .map_err(|_| err(line, format!("{what} is not a number: {token:?}")))?;
    if !(0.0..=1.0).contains(&v) {
        return Err(err(line, format!("{what} must be in [0, 1], got {v}")));
    }
    Ok(v)
}

fn parse_optional_measure(rest: &[&str], line: usize) -> Result<SimMeasure, DslError> {
    match rest {
        [] => Ok(SimMeasure::Levenshtein),
        ["using", m] => parse_measure(m, line),
        _ => Err(err(line, "trailing tokens (expected `using <measure>`)")),
    }
}

fn parse_measure(token: &str, line: usize) -> Result<SimMeasure, DslError> {
    match token {
        "title" => Ok(SimMeasure::Title),
        "person-name" => Ok(SimMeasure::PersonName),
        "levenshtein" => Ok(SimMeasure::Levenshtein),
        "jaro-winkler" => Ok(SimMeasure::JaroWinkler),
        "token-jaccard" => Ok(SimMeasure::TokenJaccard),
        "trigram-dice" => Ok(SimMeasure::TrigramDice),
        other => Err(err(
            line,
            format!(
                "unknown measure {other:?} (title | person-name | levenshtein | \
                 jaro-winkler | token-jaccard | trigram-dice)"
            ),
        )),
    }
}

/// The paper's §V movie configuration as a rule file (used by examples,
/// the CLI's `--rules movie` shorthand, and equivalence tests).
pub const MOVIE_RULES: &str = "\
# IMPrECISE §V movie-domain configuration
rule deep-equal
rule exact-text genre            # no typos occur in genres
rule similarity movie title >= 0.55 using title
rule key movie year              # movies of different years cannot match
prior similarity movie title range 0.05 0.95 using title
";

/// The Fig. 2 address-book configuration as a rule file.
pub const ADDRESSBOOK_RULES: &str = "\
rule deep-equal
rule similarity person nm >= 0.85 using person-name
rule exact-text tel
rule exact-text nm
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ElemRef;
    use crate::Decision;
    use imprecise_pxml::{from_xml, PxDoc};
    use imprecise_xmlkit::parse;

    fn px(xml: &str) -> PxDoc {
        from_xml(&parse(xml).unwrap())
    }

    fn root_elem(doc: &PxDoc) -> ElemRef<'_> {
        let poss = doc.children(doc.root())[0];
        ElemRef {
            doc,
            node: doc.children(poss)[0],
        }
    }

    #[test]
    fn movie_rules_parse_and_name_rules() {
        let oracle = parse_rules(MOVIE_RULES).unwrap();
        assert_eq!(
            oracle.rule_names(),
            vec!["deep-equal", "exact-text", "movie-title", "movie-year"]
        );
    }

    #[test]
    fn parsed_movie_rules_decide_like_the_preset() {
        let dsl = parse_rules(MOVIE_RULES).unwrap();
        let preset = crate::presets::movie_oracle(crate::presets::MovieOracleConfig::default());
        let pairs = [
            (
                "<movie><title>Jaws</title><year>1975</year></movie>",
                "<movie><title>Die Hard</title><year>1988</year></movie>",
            ),
            (
                "<movie><title>Jaws</title><year>1975</year></movie>",
                "<movie><title>Jaws 2</title><year>1978</year></movie>",
            ),
            (
                "<movie><title>Jaws</title><year>1975</year></movie>",
                "<movie><title>Jaws (TV)</title><year>1975</year></movie>",
            ),
            ("<genre>Horror</genre>", "<genre>Horror</genre>"),
        ];
        for (a, b) in pairs {
            let (da, db) = (px(a), px(b));
            let ja = dsl.judge(&root_elem(&da), &root_elem(&db));
            let jb = preset.judge(&root_elem(&da), &root_elem(&db));
            match (ja.decision, jb.decision) {
                (Decision::Possible(x), Decision::Possible(y)) => {
                    assert!((x - y).abs() < 1e-12, "{a} ~ {b}")
                }
                (x, y) => assert_eq!(x, y, "{a} ~ {b}"),
            }
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let oracle = parse_rules("\n  # only a comment\n\nrule deep-equal # trailing\n").unwrap();
        assert_eq!(oracle.rule_names(), vec!["deep-equal"]);
    }

    #[test]
    fn uniform_prior_with_and_without_probability() {
        parse_rules("prior uniform").unwrap();
        parse_rules("prior uniform 0.3").unwrap();
        let e = parse_rules("prior uniform 1.5").unwrap_err();
        assert!(e.message.contains("[0, 1]"), "{e}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_rules("rule deep-equal\nrule bogus x\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
        let e = parse_rules("rule similarity movie title > 0.5").unwrap_err();
        assert!(e.message.contains(">="));
        let e = parse_rules("nonsense").unwrap_err();
        assert!(e.message.contains("unknown directive"));
        let e = parse_rules("rule similarity movie title >= 0.5 using sounds-like").unwrap_err();
        assert!(e.message.contains("unknown measure"));
        let e = parse_rules("prior uniform\nprior uniform").unwrap_err();
        assert!(e.message.contains("duplicate prior"));
        let e = parse_rules("prior similarity movie title range 0.9 0.1").unwrap_err();
        assert!(e.message.contains("empty range"));
    }

    #[test]
    fn addressbook_rules_reproduce_fig2_judgments() {
        let oracle = parse_rules(ADDRESSBOOK_RULES).unwrap();
        let john1 = px("<person><nm>John</nm><tel>1111</tel></person>");
        let john2 = px("<person><nm>John</nm><tel>2222</tel></person>");
        let mary = px("<person><nm>Mary</nm><tel>1111</tel></person>");
        assert!(matches!(
            oracle
                .judge(&root_elem(&john1), &root_elem(&john2))
                .decision,
            Decision::Possible(_)
        ));
        assert_eq!(
            oracle.judge(&root_elem(&john1), &root_elem(&mary)).decision,
            Decision::NonMatch
        );
    }

    #[test]
    fn similarity_rule_defaults_to_levenshtein() {
        let oracle = parse_rules("rule similarity movie title >= 0.9").unwrap();
        // "Jaws" vs "Jaws 2" at Levenshtein similarity 4/6 < 0.9 → reject.
        let a = px("<movie><title>Jaws</title></movie>");
        let b = px("<movie><title>Jaws 2</title></movie>");
        assert_eq!(
            oracle.judge(&root_elem(&a), &root_elem(&b)).decision,
            Decision::NonMatch
        );
    }
}
