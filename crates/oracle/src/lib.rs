//! # imprecise-oracle — "The Oracle"
//!
//! §IV–§V of the IMPrECISE paper: *"A specific component, called 'The
//! Oracle', determines the probability that two XML elements refer to the
//! same rwo \[real-world object\] based on knowledge rules."*
//!
//! Rules "make statements about when, with certainty, two elements match or
//! not" — they are absolute deciders, deliberately simple so that
//! configuring the system costs minimal human effort. Pairs no rule
//! decides remain *possible* matches with a probability supplied by a
//! [`prior::PriorModel`]; those are exactly the pairs that multiply the
//! possibility space during integration.
//!
//! The paper's rules map onto this crate as follows:
//!
//! | Paper rule | Implementation |
//! |---|---|
//! | "Two deep-equal elements refer to the same rwo" | [`rules::DeepEqualRule`] |
//! | "No two siblings in one source refer to the same rwo" | structural in the matcher (injective matchings), not a `Rule` |
//! | Genre rule: "no typos occur in genres" | [`rules::ExactTextRule`] on `genre` |
//! | Title rule: "two movies cannot match if their titles are not sufficiently similar" | [`rules::SimilarityThresholdRule`] on `movie`/`title` |
//! | Year rule: "movies of different years cannot match" | [`rules::KeyInequalityRule`] on `movie`/`year` |
//!
//! [`presets`] assembles the exact §V configurations used by the Table I /
//! Figure 5 experiments.

pub mod blocking;
pub mod decision;
pub mod dsl;
pub mod prior;
pub mod rules;
pub mod value;

pub mod presets;

pub use blocking::{BlockingHint, BlockingPlan, ElementFeatures, PruneFilter};
pub use decision::{Decision, Judgment};
pub use dsl::{parse_rules, DslError};
pub use prior::{PriorModel, SimilarityPrior, UniformPrior};
pub use rules::{
    DeepEqualRule, ExactTextRule, KeyInequalityRule, Rule, SimMeasure, SimilarityThresholdRule,
};
pub use value::{ElemRef, ValueLookup};

/// The Oracle: an ordered rule list plus a prior for undecided pairs.
///
/// Rules are consulted in order; the first rule that does not abstain
/// decides the pair with certainty. If every rule abstains the pair is
/// *possible* and receives the prior's probability (clamped to the open
/// interval so it never silently becomes a certain decision).
pub struct Oracle {
    rules: Vec<Box<dyn Rule>>,
    prior: Box<dyn PriorModel>,
}

impl Oracle {
    /// An oracle with no rules and a uniform 0.5 prior: the paper's "too
    /// little semantical knowledge" regime in which everything is possible.
    pub fn uninformed() -> Self {
        Oracle {
            rules: Vec::new(),
            prior: Box::new(UniformPrior::default()),
        }
    }

    /// Create an oracle from rules and a prior model.
    pub fn new(rules: Vec<Box<dyn Rule>>, prior: Box<dyn PriorModel>) -> Self {
        Oracle { rules, prior }
    }

    /// Append a rule (consulted after the existing ones).
    pub fn push_rule(&mut self, rule: Box<dyn Rule>) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Replace the prior model.
    pub fn set_prior(&mut self, prior: Box<dyn PriorModel>) -> &mut Self {
        self.prior = prior;
        self
    }

    /// Names of the configured rules, in consultation order.
    pub fn rule_names(&self) -> Vec<&str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Judge whether `a` and `b` refer to the same real-world object.
    pub fn judge(&self, a: &ElemRef<'_>, b: &ElemRef<'_>) -> Judgment {
        for rule in &self.rules {
            if let Some(decision) = rule.judge(a, b) {
                return Judgment {
                    decision,
                    rule: Some(rule.name().to_string()),
                };
            }
        }
        let p = self.prior.probability(a, b).clamp(1e-6, 1.0 - 1e-6);
        Judgment {
            decision: Decision::Possible(p),
            rule: None,
        }
    }

    /// Judge one left element against a whole row of right elements.
    ///
    /// Semantically identical to calling [`Oracle::judge`] per pair —
    /// same decisions, same deciding rules, same prior probabilities, bit
    /// for bit — but rules get to amortise their left-hand preprocessing
    /// across the row via [`Rule::judge_row`].
    pub fn judge_row(&self, a: &ElemRef<'_>, bs: &[ElemRef<'_>]) -> Vec<Judgment> {
        let mut decisions: Vec<Option<Decision>> = vec![None; bs.len()];
        let mut deciders: Vec<Option<&str>> = vec![None; bs.len()];
        let mut undecided = bs.len();
        for rule in &self.rules {
            if undecided == 0 {
                break;
            }
            let before: Vec<bool> = decisions.iter().map(Option::is_some).collect();
            rule.judge_row(a, bs, &mut decisions);
            for (i, was_decided) in before.iter().enumerate() {
                if !was_decided && decisions[i].is_some() {
                    deciders[i] = Some(rule.name());
                    undecided -= 1;
                }
            }
        }
        bs.iter()
            .zip(decisions.into_iter().zip(deciders))
            .map(|(b, (decision, decider))| match decision {
                Some(decision) => Judgment {
                    decision,
                    rule: decider.map(str::to_string),
                },
                None => {
                    let p = self.prior.probability(a, b).clamp(1e-6, 1.0 - 1e-6);
                    Judgment {
                        decision: Decision::Possible(p),
                        rule: None,
                    }
                }
            })
            .collect()
    }

    /// The recall-safe blocking plan this rule configuration supports for
    /// elements of `tag` (see [`blocking`]).
    pub fn blocking_plan(&self, tag: &str) -> BlockingPlan {
        BlockingPlan::derive(&self.rules, tag)
    }
}

impl std::fmt::Debug for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oracle")
            .field("rules", &self.rule_names())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imprecise_pxml::{from_xml, PxDoc};
    use imprecise_xmlkit::parse;

    fn px(xml: &str) -> PxDoc {
        from_xml(&parse(xml).unwrap())
    }

    fn elem_of(doc: &PxDoc) -> ElemRef<'_> {
        // Root poss's single element.
        let poss = doc.children(doc.root())[0];
        ElemRef {
            doc,
            node: doc.children(poss)[0],
        }
    }

    #[test]
    fn uninformed_oracle_says_possible_half() {
        let a = px("<movie><title>Jaws</title></movie>");
        let b = px("<movie><title>Die Hard</title></movie>");
        let oracle = Oracle::uninformed();
        let j = oracle.judge(&elem_of(&a), &elem_of(&b));
        assert_eq!(j.decision, Decision::Possible(0.5));
        assert!(j.rule.is_none());
    }

    #[test]
    fn first_deciding_rule_wins_and_is_named() {
        let a = px("<movie><title>Jaws</title></movie>");
        let b = px("<movie><title>Jaws</title></movie>");
        let mut oracle = Oracle::uninformed();
        oracle.push_rule(Box::new(DeepEqualRule));
        let j = oracle.judge(&elem_of(&a), &elem_of(&b));
        assert_eq!(j.decision, Decision::Match);
        assert_eq!(j.rule.as_deref(), Some("deep-equal"));
    }

    #[test]
    fn rules_consulted_in_order() {
        // Title rule (non-match for dissimilar) placed before deep-equal.
        let a = px("<movie><title>Jaws</title></movie>");
        let b = px("<movie><title>Die Hard</title></movie>");
        let mut oracle = Oracle::uninformed();
        oracle.push_rule(Box::new(SimilarityThresholdRule::movie_title(0.5)));
        oracle.push_rule(Box::new(DeepEqualRule));
        let j = oracle.judge(&elem_of(&a), &elem_of(&b));
        assert_eq!(j.decision, Decision::NonMatch);
        assert_eq!(j.rule.as_deref(), Some("movie-title"));
    }

    #[test]
    fn prior_is_clamped_to_open_interval() {
        struct ExtremePrior;
        impl PriorModel for ExtremePrior {
            fn probability(&self, _: &ElemRef<'_>, _: &ElemRef<'_>) -> f64 {
                1.0
            }
            fn name(&self) -> &str {
                "extreme"
            }
        }
        let a = px("<g>Horror</g>");
        let b = px("<g>Horror</g>");
        let oracle = Oracle::new(Vec::new(), Box::new(ExtremePrior));
        match oracle.judge(&elem_of(&a), &elem_of(&b)).decision {
            Decision::Possible(p) => assert!(p < 1.0 && p > 0.0),
            other => panic!("expected Possible, got {other:?}"),
        }
    }

    #[test]
    fn judge_row_is_bit_identical_to_per_pair_judging() {
        let mut oracle = Oracle::uninformed();
        oracle.set_prior(Box::new(SimilarityPrior::movie_title(0.1, 0.9)));
        oracle.push_rule(Box::new(DeepEqualRule));
        oracle.push_rule(Box::new(rules::ExactTextRule::new("genre")));
        oracle.push_rule(Box::new(SimilarityThresholdRule::movie_title(0.55)));
        oracle.push_rule(Box::new(rules::KeyInequalityRule::movie_year()));
        let docs: Vec<PxDoc> = [
            "<movie><title>Jaws</title><year>1975</year></movie>",
            "<movie><title>Jaws</title><year>1975</year></movie>",
            "<movie><title>Jaws 2</title><year>1978</year></movie>",
            "<movie><title>Die Hard</title><year>1988</year></movie>",
            "<movie><title>Mission: Impossible II</title></movie>",
            "<genre>Horror</genre>",
            "<genre>Action</genre>",
            "<person><nm>John Woo</nm></person>",
        ]
        .iter()
        .map(|x| px(x))
        .collect();
        for da in &docs {
            let a = elem_of(da);
            let row: Vec<ElemRef<'_>> = docs.iter().map(elem_of).collect();
            let batched = oracle.judge_row(&a, &row);
            assert_eq!(batched.len(), row.len());
            for (b, got) in row.iter().zip(batched) {
                let expect = oracle.judge(&a, b);
                assert_eq!(got.rule, expect.rule);
                match (got.decision, expect.decision) {
                    (Decision::Possible(p), Decision::Possible(q)) => {
                        assert_eq!(p.to_bits(), q.to_bits());
                    }
                    (g, e) => assert_eq!(g, e),
                }
            }
        }
    }

    #[test]
    fn debug_lists_rules() {
        let mut oracle = Oracle::uninformed();
        oracle.push_rule(Box::new(DeepEqualRule));
        let s = format!("{oracle:?}");
        assert!(s.contains("deep-equal"));
    }
}
