//! Pre-assembled oracles for the paper's two demo scenarios.
//!
//! The Table I experiment compares five *effective rule sets* on the movie
//! workload; [`TableIRuleSet`] enumerates them exactly as the table's rows.

use crate::prior::{SimilarityPrior, UniformPrior};
use crate::rules::{DeepEqualRule, ExactTextRule, KeyInequalityRule, SimilarityThresholdRule};
use crate::Oracle;

/// Default similarity threshold of the movie-title rule. Sequels and
/// format variants ("Jaws" / "Jaws 2" / "Jaws (TV)") stay above it;
/// unrelated titles fall below.
pub const DEFAULT_TITLE_THRESHOLD: f64 = 0.55;

/// Configuration for the movie-domain oracle.
#[derive(Debug, Clone, Copy)]
pub struct MovieOracleConfig {
    /// Enable the genre rule ("no typos occur in genres").
    pub genre_rule: bool,
    /// Enable the title rule with [`MovieOracleConfig::title_threshold`].
    pub title_rule: bool,
    /// Enable the year rule ("movies of different years cannot match").
    pub year_rule: bool,
    /// Similarity threshold of the title rule.
    pub title_threshold: f64,
    /// Grade undecided movie pairs by title similarity instead of the
    /// uniform ½ prior (gives the §VI-style ranked answers their spread).
    pub graded_prior: bool,
}

impl Default for MovieOracleConfig {
    fn default() -> Self {
        MovieOracleConfig {
            genre_rule: true,
            title_rule: true,
            year_rule: true,
            title_threshold: DEFAULT_TITLE_THRESHOLD,
            graded_prior: true,
        }
    }
}

/// Build the movie-domain oracle of §V. The deep-equal generic rule is
/// always present; domain rules are added per the configuration.
pub fn movie_oracle(cfg: MovieOracleConfig) -> Oracle {
    let mut oracle = Oracle::uninformed();
    oracle.push_rule(Box::new(DeepEqualRule));
    if cfg.genre_rule {
        oracle.push_rule(Box::new(ExactTextRule::new("genre")));
    }
    if cfg.title_rule {
        oracle.push_rule(Box::new(SimilarityThresholdRule::movie_title(
            cfg.title_threshold,
        )));
    }
    if cfg.year_rule {
        oracle.push_rule(Box::new(KeyInequalityRule::movie_year()));
    }
    // Directors are value-like person names: treat exact-equal directors as
    // the same rwo (deep-equal already covers it), and let the prior handle
    // near-matches.
    if cfg.graded_prior {
        oracle.set_prior(Box::new(SimilarityPrior::movie_title(0.05, 0.95)));
    } else {
        oracle.set_prior(Box::new(UniformPrior::default()));
    }
    oracle
}

/// The rows of Table I: which rules are *effective* during integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableIRuleSet {
    /// "none" — only the generic rules.
    None,
    /// "Genre rule".
    Genre,
    /// "Movie title rule".
    Title,
    /// "Genre and movie title rule".
    GenreTitle,
    /// "Genre, movie title and year rule".
    GenreTitleYear,
}

impl TableIRuleSet {
    /// All rows in the table's order.
    pub const ALL: [TableIRuleSet; 5] = [
        TableIRuleSet::None,
        TableIRuleSet::Genre,
        TableIRuleSet::Title,
        TableIRuleSet::GenreTitle,
        TableIRuleSet::GenreTitleYear,
    ];

    /// The row label as printed in the paper.
    pub fn label(&self) -> &'static str {
        match self {
            TableIRuleSet::None => "none",
            TableIRuleSet::Genre => "Genre rule",
            TableIRuleSet::Title => "Movie title rule",
            TableIRuleSet::GenreTitle => "Genre and movie title rule",
            TableIRuleSet::GenreTitleYear => "Genre, movie title and year rule",
        }
    }

    /// The oracle for this row. Undecided pairs get the uniform prior so
    /// the row's possibility count depends only on the rules (as in the
    /// paper, which counts nodes, not probabilities).
    pub fn oracle(&self) -> Oracle {
        let cfg = match self {
            TableIRuleSet::None => MovieOracleConfig {
                genre_rule: false,
                title_rule: false,
                year_rule: false,
                graded_prior: false,
                ..MovieOracleConfig::default()
            },
            TableIRuleSet::Genre => MovieOracleConfig {
                genre_rule: true,
                title_rule: false,
                year_rule: false,
                graded_prior: false,
                ..MovieOracleConfig::default()
            },
            TableIRuleSet::Title => MovieOracleConfig {
                genre_rule: false,
                title_rule: true,
                year_rule: false,
                graded_prior: false,
                ..MovieOracleConfig::default()
            },
            TableIRuleSet::GenreTitle => MovieOracleConfig {
                genre_rule: true,
                title_rule: true,
                year_rule: false,
                graded_prior: false,
                ..MovieOracleConfig::default()
            },
            TableIRuleSet::GenreTitleYear => MovieOracleConfig {
                genre_rule: true,
                title_rule: true,
                year_rule: true,
                graded_prior: false,
                ..MovieOracleConfig::default()
            },
        };
        movie_oracle(cfg)
    }
}

/// Oracle for the Fig. 2 address-book scenario: deep-equal persons match;
/// persons with clearly different names cannot match; phone numbers are
/// value-identified. A person pair with equal names but different phones
/// stays undecided at ½ — producing exactly the paper's three worlds.
pub fn addressbook_oracle() -> Oracle {
    let mut oracle = Oracle::uninformed();
    oracle.push_rule(Box::new(DeepEqualRule));
    oracle.push_rule(Box::new(SimilarityThresholdRule::person_name(0.85)));
    oracle.push_rule(Box::new(ExactTextRule::new("tel")));
    oracle.push_rule(Box::new(ExactTextRule::new("nm")));
    oracle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ElemRef;
    use crate::Decision;
    use imprecise_pxml::{from_xml, PxDoc};
    use imprecise_xmlkit::parse;

    fn px(xml: &str) -> PxDoc {
        from_xml(&parse(xml).unwrap())
    }

    fn root_elem(doc: &PxDoc) -> ElemRef<'_> {
        let poss = doc.children(doc.root())[0];
        ElemRef {
            doc,
            node: doc.children(poss)[0],
        }
    }

    #[test]
    fn rule_sets_have_expected_rule_counts() {
        assert_eq!(TableIRuleSet::None.oracle().rule_names().len(), 1);
        assert_eq!(TableIRuleSet::Genre.oracle().rule_names().len(), 2);
        assert_eq!(TableIRuleSet::Title.oracle().rule_names().len(), 2);
        assert_eq!(TableIRuleSet::GenreTitle.oracle().rule_names().len(), 3);
        assert_eq!(TableIRuleSet::GenreTitleYear.oracle().rule_names().len(), 4);
    }

    #[test]
    fn labels_match_paper_rows() {
        let labels: Vec<&str> = TableIRuleSet::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(
            labels,
            vec![
                "none",
                "Genre rule",
                "Movie title rule",
                "Genre and movie title rule",
                "Genre, movie title and year rule",
            ]
        );
    }

    #[test]
    fn full_rule_set_rejects_cross_franchise_pairs() {
        let oracle = TableIRuleSet::GenreTitleYear.oracle();
        let jaws = px("<movie><title>Jaws</title><year>1975</year></movie>");
        let die_hard = px("<movie><title>Die Hard</title><year>1988</year></movie>");
        let j = oracle.judge(&root_elem(&jaws), &root_elem(&die_hard));
        assert_eq!(j.decision, Decision::NonMatch);
    }

    #[test]
    fn year_rule_separates_sequels_title_rule_does_not() {
        let jaws = px("<movie><title>Jaws</title><year>1975</year></movie>");
        let jaws2 = px("<movie><title>Jaws 2</title><year>1978</year></movie>");
        let title_only = TableIRuleSet::Title.oracle();
        let with_year = TableIRuleSet::GenreTitleYear.oracle();
        assert!(matches!(
            title_only
                .judge(&root_elem(&jaws), &root_elem(&jaws2))
                .decision,
            Decision::Possible(_)
        ));
        assert_eq!(
            with_year
                .judge(&root_elem(&jaws), &root_elem(&jaws2))
                .decision,
            Decision::NonMatch
        );
    }

    #[test]
    fn none_rule_set_leaves_everything_possible() {
        let oracle = TableIRuleSet::None.oracle();
        let jaws = px("<movie><title>Jaws</title><year>1975</year></movie>");
        let die_hard = px("<movie><title>Die Hard</title><year>1988</year></movie>");
        assert!(matches!(
            oracle
                .judge(&root_elem(&jaws), &root_elem(&die_hard))
                .decision,
            Decision::Possible(_)
        ));
    }

    #[test]
    fn addressbook_oracle_fig2_case() {
        let oracle = addressbook_oracle();
        let john1 = px("<person><nm>John</nm><tel>1111</tel></person>");
        let john2 = px("<person><nm>John</nm><tel>2222</tel></person>");
        let mary = px("<person><nm>Mary</nm><tel>1111</tel></person>");
        // Same name, different phone: undecided (the Fig. 2 situation).
        assert!(matches!(
            oracle
                .judge(&root_elem(&john1), &root_elem(&john2))
                .decision,
            Decision::Possible(_)
        ));
        // Different names: certainly different persons.
        assert_eq!(
            oracle.judge(&root_elem(&john1), &root_elem(&mary)).decision,
            Decision::NonMatch
        );
        // Identical persons: certainly the same.
        let john1b = px("<person><nm>John</nm><tel>1111</tel></person>");
        assert_eq!(
            oracle
                .judge(&root_elem(&john1), &root_elem(&john1b))
                .decision,
            Decision::Match
        );
    }

    #[test]
    fn addressbook_oracle_decides_tel_and_nm_values() {
        let oracle = addressbook_oracle();
        let t1 = px("<tel>1111</tel>");
        let t2 = px("<tel>2222</tel>");
        let t1b = px("<tel>1111</tel>");
        assert_eq!(
            oracle.judge(&root_elem(&t1), &root_elem(&t2)).decision,
            Decision::NonMatch
        );
        assert_eq!(
            oracle.judge(&root_elem(&t1), &root_elem(&t1b)).decision,
            Decision::Match
        );
    }
}
