//! Prior models for pairs no rule decides.
//!
//! When every rule abstains the pair stays *possible*; the prior supplies
//! its match probability. The paper does not commit to a particular prior
//! (its experiments measure how rules shrink the undecided set, not the
//! probabilities of the undecided pairs); the reproduction offers the
//! uninformed uniform prior and a similarity-based prior that grades
//! near-duplicates higher, which is what gives the §VI query rankings
//! their useful spread.

use crate::rules::SimMeasure;
use crate::value::{ElemRef, ValueLookup};

/// Supplies match probabilities for undecided pairs.
pub trait PriorModel: Send + Sync {
    /// Match probability in `(0, 1)` (the Oracle clamps defensively).
    fn probability(&self, a: &ElemRef<'_>, b: &ElemRef<'_>) -> f64;

    /// Short stable name for traces.
    fn name(&self) -> &str;
}

/// The uninformed prior: every undecided pair matches with the same
/// probability (default ½ — maximum uncertainty).
#[derive(Debug, Clone, Copy)]
pub struct UniformPrior {
    /// The constant probability.
    pub p: f64,
}

impl Default for UniformPrior {
    fn default() -> Self {
        UniformPrior { p: 0.5 }
    }
}

impl PriorModel for UniformPrior {
    fn probability(&self, _: &ElemRef<'_>, _: &ElemRef<'_>) -> f64 {
        self.p
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

/// A similarity-graded prior: the probability interpolates between `lo`
/// and `hi` with the similarity of a designated value (or, without a value
/// path, of the elements' full text).
#[derive(Debug, Clone)]
pub struct SimilarityPrior {
    /// Probability at similarity 0.
    pub lo: f64,
    /// Probability at similarity 1.
    pub hi: f64,
    /// Path to the compared value below each element (`None` ⇒ full text).
    pub value_path: Option<String>,
    /// Similarity measure.
    pub measure: SimMeasure,
}

impl SimilarityPrior {
    /// Prior for movie elements graded by title similarity, spanning
    /// `[lo, hi]`.
    pub fn movie_title(lo: f64, hi: f64) -> Self {
        SimilarityPrior {
            lo,
            hi,
            value_path: Some("title".into()),
            measure: SimMeasure::Title,
        }
    }

    fn lookup(&self, e: &ElemRef<'_>) -> ValueLookup {
        match &self.value_path {
            Some(path) => e.value_at(path),
            None => e.own_text(),
        }
    }
}

impl PriorModel for SimilarityPrior {
    fn probability(&self, a: &ElemRef<'_>, b: &ElemRef<'_>) -> f64 {
        match (self.lookup(a), self.lookup(b)) {
            (ValueLookup::Value(va), ValueLookup::Value(vb)) => {
                let s = self.measure.apply(&va, &vb);
                self.lo + s * (self.hi - self.lo)
            }
            // Unknown evidence: sit in the middle of the configured band.
            _ => 0.5 * (self.lo + self.hi),
        }
    }

    fn name(&self) -> &str {
        "similarity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imprecise_pxml::{from_xml, PxDoc};
    use imprecise_xmlkit::parse;

    fn px(xml: &str) -> PxDoc {
        from_xml(&parse(xml).unwrap())
    }

    fn root_elem(doc: &PxDoc) -> ElemRef<'_> {
        let poss = doc.children(doc.root())[0];
        ElemRef {
            doc,
            node: doc.children(poss)[0],
        }
    }

    #[test]
    fn uniform_prior_is_constant() {
        let p = UniformPrior::default();
        let a = px("<movie><title>Jaws</title></movie>");
        let b = px("<movie><title>Die Hard</title></movie>");
        assert_eq!(p.probability(&root_elem(&a), &root_elem(&b)), 0.5);
    }

    #[test]
    fn similarity_prior_grades_by_title() {
        let prior = SimilarityPrior::movie_title(0.1, 0.9);
        let jaws = px("<movie><title>Jaws</title></movie>");
        let jaws_dup = px("<movie><title>Jaws</title><year>1975</year></movie>");
        let jaws2 = px("<movie><title>Jaws 2</title></movie>");
        let die_hard = px("<movie><title>Die Hard</title></movie>");
        let p_same = prior.probability(&root_elem(&jaws), &root_elem(&jaws_dup));
        let p_sequel = prior.probability(&root_elem(&jaws), &root_elem(&jaws2));
        let p_other = prior.probability(&root_elem(&jaws), &root_elem(&die_hard));
        assert!((p_same - 0.9).abs() < 1e-12);
        assert!(p_sequel < p_same && p_sequel > p_other);
        assert!(p_other >= 0.1);
    }

    #[test]
    fn similarity_prior_falls_back_to_band_middle() {
        let prior = SimilarityPrior::movie_title(0.2, 0.8);
        let with_title = px("<movie><title>Jaws</title></movie>");
        let without = px("<movie><year>1975</year></movie>");
        let p = prior.probability(&root_elem(&with_title), &root_elem(&without));
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_text_mode_compares_own_text() {
        let prior = SimilarityPrior {
            lo: 0.0,
            hi: 1.0,
            value_path: None,
            measure: SimMeasure::Levenshtein,
        };
        let a = px("<g>Horror</g>");
        let b = px("<g>Horror</g>");
        assert_eq!(prior.probability(&root_elem(&a), &root_elem(&b)), 1.0);
    }
}
