//! Knowledge rules.
//!
//! "The rules need to be as simple as possible, because the purpose of
//! probabilistic integration is to significantly reduce manual effort, so
//! rule specification overhead should be minimal" (§V). Each rule here is
//! one sentence of domain knowledge; a rule either decides a pair with
//! certainty or abstains.

use crate::blocking::{BlockingHint, PruneFilter};
use crate::decision::Decision;
use crate::value::{ElemRef, PossibleValues};
use imprecise_pxml::{px_deep_equal, px_fingerprint};
use imprecise_sim as sim;

/// Variant budget when a rule inspects values through choice points. An
/// element whose value takes more variants than this makes rules abstain.
pub(crate) const VALUE_VARIANT_CAP: usize = 16;

/// A knowledge rule consulted by the Oracle.
pub trait Rule: Send + Sync {
    /// Short stable name used in traces and statistics.
    fn name(&self) -> &str;

    /// Judge the pair, or abstain with `None`.
    fn judge(&self, a: &ElemRef<'_>, b: &ElemRef<'_>) -> Option<Decision>;

    /// Judge one left element against a row of right elements, writing
    /// into the `None` slots of `out` (a decided slot belongs to an
    /// earlier rule and must be left alone).
    ///
    /// The default is the per-pair loop; rules whose left-hand work is
    /// amortisable (normalisation, tokenisation) override this. Overrides
    /// must stay *bit-identical* to per-pair judging.
    fn judge_row(&self, a: &ElemRef<'_>, bs: &[ElemRef<'_>], out: &mut [Option<Decision>]) {
        for (b, slot) in bs.iter().zip(out.iter_mut()) {
            if slot.is_none() {
                *slot = self.judge(a, b);
            }
        }
    }

    /// How this rule behaves for blocking-plan derivation (see
    /// [`crate::blocking`]). The conservative default marks the rule
    /// opaque, which stops prefilter collection at it — always sound.
    fn blocking_hint(&self) -> BlockingHint {
        BlockingHint::Opaque
    }
}

/// Generic rule: *two deep-equal elements refer to the same rwo*.
///
/// Only ever produces [`Decision::Match`]; unequal elements are left to
/// other rules (inequality is no evidence of distinctness — the whole point
/// of the system is that differing descriptions may still co-refer).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeepEqualRule;

impl Rule for DeepEqualRule {
    fn name(&self) -> &str {
        "deep-equal"
    }

    fn judge(&self, a: &ElemRef<'_>, b: &ElemRef<'_>) -> Option<Decision> {
        // Fingerprint as a cheap pre-filter, structural compare to confirm.
        if px_fingerprint(a.doc, a.node) == px_fingerprint(b.doc, b.node)
            && px_deep_equal(a.doc, a.node, b.doc, b.node)
        {
            Some(Decision::Match)
        } else {
            None
        }
    }

    fn blocking_hint(&self) -> BlockingHint {
        // Matches only content-identical pairs; never non-matches.
        BlockingHint::Transparent
    }
}

/// Value-identity rule for elements identified by their text, like the
/// paper's genre rule ("no typos occur in genres"): two `tag` elements
/// refer to the same rwo iff their text is equal.
///
/// Decides in *both* directions (match on equal, non-match on different),
/// which is what makes it so effective at pruning: every genre pair gets
/// an absolute decision. When a side's text is uncertain (a value-conflict
/// choice from an earlier integration round) the rule still decides if
/// every possible value combination yields the same verdict, and abstains
/// otherwise.
#[derive(Debug, Clone)]
pub struct ExactTextRule {
    /// Element tag this rule applies to.
    pub tag: String,
}

impl ExactTextRule {
    /// Rule for elements with the given tag.
    pub fn new(tag: impl Into<String>) -> Self {
        ExactTextRule { tag: tag.into() }
    }
}

impl Rule for ExactTextRule {
    fn name(&self) -> &str {
        "exact-text"
    }

    fn judge(&self, a: &ElemRef<'_>, b: &ElemRef<'_>) -> Option<Decision> {
        if a.tag() != self.tag || b.tag() != self.tag {
            return None;
        }
        let ta = a.possible_own_texts(VALUE_VARIANT_CAP)?;
        let tb = b.possible_own_texts(VALUE_VARIANT_CAP)?;
        decide_over_pairs(&ta, &tb, |x, y| x == y)
    }

    fn blocking_hint(&self) -> BlockingHint {
        BlockingHint::TagGated {
            tag: self.tag.clone(),
            filter: Some(PruneFilter::TextDiffers),
            // Equal texts decide Match, so no later filter may prune
            // pairs this rule would accept.
            decides_match: true,
        }
    }
}

/// The uniform verdict over every cross pair of possible values: `Match`
/// when `same` holds for all pairs, `NonMatch` when it holds for none,
/// abstention when the pairs disagree (or either side is empty).
fn decide_over_pairs(
    a: &[String],
    b: &[String],
    same: impl Fn(&str, &str) -> bool,
) -> Option<Decision> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let mut any_same = false;
    let mut any_diff = false;
    for x in a {
        for y in b {
            if same(x, y) {
                any_same = true;
            } else {
                any_diff = true;
            }
            if any_same && any_diff {
                return None;
            }
        }
    }
    Some(if any_same {
        Decision::Match
    } else {
        Decision::NonMatch
    })
}

/// Similarity measure used by [`SimilarityThresholdRule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMeasure {
    /// Normalised movie-title similarity ([`sim::title_similarity`]).
    Title,
    /// Person-name similarity with convention normalisation
    /// ([`sim::person_name_similarity`]).
    PersonName,
    /// Character-level normalised Levenshtein similarity.
    Levenshtein,
    /// Jaro-Winkler.
    JaroWinkler,
    /// Token-set Jaccard.
    TokenJaccard,
    /// Character-trigram Dice coefficient.
    TrigramDice,
}

impl SimMeasure {
    /// Apply the measure to two strings.
    pub fn apply(&self, a: &str, b: &str) -> f64 {
        match self {
            SimMeasure::Title => sim::title_similarity(a, b),
            SimMeasure::PersonName => sim::person_name_similarity(a, b),
            SimMeasure::Levenshtein => sim::levenshtein_similarity(a, b),
            SimMeasure::JaroWinkler => sim::jaro_winkler(a, b),
            SimMeasure::TokenJaccard => sim::jaccard_tokens(a, b),
            SimMeasure::TrigramDice => sim::dice_trigram(a, b),
        }
    }

    /// Preprocess the left-hand string for repeated one-vs-many
    /// application. `prepared.apply(y)` is bit-identical to
    /// `measure.apply(x, y)`.
    fn prepare(&self, x: &str) -> PreparedMeasure {
        match self {
            SimMeasure::Title => PreparedMeasure::Title(sim::PreparedTitle::new(x)),
            SimMeasure::PersonName => PreparedMeasure::PersonName(sim::PreparedPersonName::new(x)),
            other => PreparedMeasure::Other(*other, x.to_string()),
        }
    }
}

/// A [`SimMeasure`] with the left-hand operand preprocessed (normalised,
/// tokenised) once, for batch judging.
enum PreparedMeasure {
    Title(sim::PreparedTitle),
    PersonName(sim::PreparedPersonName),
    Other(SimMeasure, String),
}

impl PreparedMeasure {
    fn apply(&self, y: &str) -> f64 {
        match self {
            PreparedMeasure::Title(p) => p.similarity(y),
            PreparedMeasure::PersonName(p) => p.similarity(y),
            PreparedMeasure::Other(measure, x) => measure.apply(x, y),
        }
    }
}

/// Dissimilarity rule, like the paper's title rule: *two `tag` elements
/// cannot match if the value at `value_path` is not sufficiently similar*.
///
/// Only ever produces [`Decision::NonMatch`] (high similarity is not proof
/// of identity — "Mission: Impossible" vs "Mission: Impossible II").
/// Abstains when either value is missing or uncertain.
#[derive(Debug, Clone)]
pub struct SimilarityThresholdRule {
    /// Rule name for traces (e.g. `"movie-title"`).
    pub rule_name: String,
    /// Element tag this rule applies to (e.g. `"movie"`).
    pub tag: String,
    /// Path from the element to the compared value (e.g. `"title"`).
    pub value_path: String,
    /// Similarity below this threshold ⇒ certainly not the same rwo.
    pub threshold: f64,
    /// Similarity measure.
    pub measure: SimMeasure,
}

impl SimilarityThresholdRule {
    /// The paper's movie-title rule with the given threshold.
    pub fn movie_title(threshold: f64) -> Self {
        SimilarityThresholdRule {
            rule_name: "movie-title".into(),
            tag: "movie".into(),
            value_path: "title".into(),
            threshold,
            measure: SimMeasure::Title,
        }
    }

    /// A person-name gate for address-book persons: persons whose names are
    /// dissimilar cannot be the same person.
    pub fn person_name(threshold: f64) -> Self {
        SimilarityThresholdRule {
            rule_name: "person-name".into(),
            tag: "person".into(),
            value_path: "nm".into(),
            threshold,
            measure: SimMeasure::PersonName,
        }
    }
}

impl Rule for SimilarityThresholdRule {
    fn name(&self) -> &str {
        &self.rule_name
    }

    fn judge(&self, a: &ElemRef<'_>, b: &ElemRef<'_>) -> Option<Decision> {
        if a.tag() != self.tag || b.tag() != self.tag {
            return None;
        }
        match (
            a.possible_values_at(&self.value_path, VALUE_VARIANT_CAP),
            b.possible_values_at(&self.value_path, VALUE_VARIANT_CAP),
        ) {
            (PossibleValues::Values(va), PossibleValues::Values(vb)) => {
                // Non-match only when *every* possible title pairing is
                // dissimilar; high similarity never proves identity.
                let all_below = va
                    .iter()
                    .all(|x| vb.iter().all(|y| self.measure.apply(x, y) < self.threshold));
                if all_below {
                    Some(Decision::NonMatch)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Batch path: normalise/tokenise each of `a`'s possible values once
    /// and reuse them across the whole row. Bit-identical to [`Rule::judge`]
    /// per pair because `PreparedMeasure::apply` is bit-identical to
    /// [`SimMeasure::apply`].
    fn judge_row(&self, a: &ElemRef<'_>, bs: &[ElemRef<'_>], out: &mut [Option<Decision>]) {
        if a.tag() != self.tag {
            return;
        }
        let va = match a.possible_values_at(&self.value_path, VALUE_VARIANT_CAP) {
            PossibleValues::Values(va) => va,
            _ => return,
        };
        let prepared: Vec<PreparedMeasure> = va.iter().map(|x| self.measure.prepare(x)).collect();
        for (b, slot) in bs.iter().zip(out.iter_mut()) {
            if slot.is_some() || b.tag() != self.tag {
                continue;
            }
            if let PossibleValues::Values(vb) =
                b.possible_values_at(&self.value_path, VALUE_VARIANT_CAP)
            {
                let all_below = prepared
                    .iter()
                    .all(|x| vb.iter().all(|y| x.apply(y) < self.threshold));
                if all_below {
                    *slot = Some(Decision::NonMatch);
                }
            }
        }
    }

    fn blocking_hint(&self) -> BlockingHint {
        BlockingHint::TagGated {
            tag: self.tag.clone(),
            // A threshold above 1 rejects even identical values, which
            // contradicts deep-equal transparency — emit no filter there.
            filter: (self.threshold <= 1.0).then(|| PruneFilter::SimilarityBelow {
                value_path: self.value_path.clone(),
                threshold: self.threshold,
                measure: self.measure,
            }),
            decides_match: false,
        }
    }
}

/// Key-inequality rule, like the paper's year rule: *two `tag` elements
/// with different values at `value_path` cannot match*.
///
/// Equal keys abstain (same year is no proof of identity); missing or
/// uncertain keys abstain.
#[derive(Debug, Clone)]
pub struct KeyInequalityRule {
    /// Rule name for traces (e.g. `"movie-year"`).
    pub rule_name: String,
    /// Element tag this rule applies to.
    pub tag: String,
    /// Path from the element to the key value.
    pub value_path: String,
}

impl KeyInequalityRule {
    /// The paper's year rule: movies of different years cannot match.
    pub fn movie_year() -> Self {
        KeyInequalityRule {
            rule_name: "movie-year".into(),
            tag: "movie".into(),
            value_path: "year".into(),
        }
    }
}

impl Rule for KeyInequalityRule {
    fn name(&self) -> &str {
        &self.rule_name
    }

    fn judge(&self, a: &ElemRef<'_>, b: &ElemRef<'_>) -> Option<Decision> {
        if a.tag() != self.tag || b.tag() != self.tag {
            return None;
        }
        match (
            a.possible_values_at(&self.value_path, VALUE_VARIANT_CAP),
            b.possible_values_at(&self.value_path, VALUE_VARIANT_CAP),
        ) {
            (PossibleValues::Values(va), PossibleValues::Values(vb)) => {
                // Different keys in every world ⇒ certainly distinct rwos;
                // a single possibly-equal key pair forces abstention.
                let all_differ = va.iter().all(|x| vb.iter().all(|y| x.trim() != y.trim()));
                if all_differ {
                    Some(Decision::NonMatch)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn blocking_hint(&self) -> BlockingHint {
        BlockingHint::TagGated {
            tag: self.tag.clone(),
            filter: Some(PruneFilter::KeyDiffers {
                value_path: self.value_path.clone(),
            }),
            decides_match: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imprecise_pxml::{from_xml, PxDoc};
    use imprecise_xmlkit::parse;

    fn px(xml: &str) -> PxDoc {
        from_xml(&parse(xml).unwrap())
    }

    fn root_elem(doc: &PxDoc) -> ElemRef<'_> {
        let poss = doc.children(doc.root())[0];
        ElemRef {
            doc,
            node: doc.children(poss)[0],
        }
    }

    #[test]
    fn deep_equal_rule_matches_identical_elements() {
        let a = px("<movie><title>Jaws</title><year>1975</year></movie>");
        let b = px("<movie><title>Jaws</title><year>1975</year></movie>");
        assert_eq!(
            DeepEqualRule.judge(&root_elem(&a), &root_elem(&b)),
            Some(Decision::Match)
        );
    }

    #[test]
    fn deep_equal_rule_abstains_on_difference() {
        let a = px("<movie><title>Jaws</title></movie>");
        let b = px("<movie><title>Jaws 2</title></movie>");
        assert_eq!(DeepEqualRule.judge(&root_elem(&a), &root_elem(&b)), None);
    }

    #[test]
    fn genre_rule_decides_both_ways() {
        let rule = ExactTextRule::new("genre");
        let horror1 = px("<genre>Horror</genre>");
        let horror2 = px("<genre>Horror</genre>");
        let action = px("<genre>Action</genre>");
        assert_eq!(
            rule.judge(&root_elem(&horror1), &root_elem(&horror2)),
            Some(Decision::Match)
        );
        assert_eq!(
            rule.judge(&root_elem(&horror1), &root_elem(&action)),
            Some(Decision::NonMatch)
        );
    }

    #[test]
    fn genre_rule_ignores_other_tags() {
        let rule = ExactTextRule::new("genre");
        let a = px("<title>Horror</title>");
        let b = px("<title>Horror</title>");
        assert_eq!(rule.judge(&root_elem(&a), &root_elem(&b)), None);
    }

    #[test]
    fn title_rule_rejects_dissimilar_movies() {
        let rule = SimilarityThresholdRule::movie_title(0.5);
        let jaws = px("<movie><title>Jaws</title></movie>");
        let die_hard = px("<movie><title>Die Hard</title></movie>");
        assert_eq!(
            rule.judge(&root_elem(&jaws), &root_elem(&die_hard)),
            Some(Decision::NonMatch)
        );
    }

    #[test]
    fn title_rule_abstains_on_similar_movies() {
        let rule = SimilarityThresholdRule::movie_title(0.5);
        let mi = px("<movie><title>Mission: Impossible</title></movie>");
        let mi2 = px("<movie><title>Mission: Impossible II</title></movie>");
        assert_eq!(rule.judge(&root_elem(&mi), &root_elem(&mi2)), None);
    }

    #[test]
    fn title_rule_abstains_on_missing_title() {
        let rule = SimilarityThresholdRule::movie_title(0.5);
        let a = px("<movie><year>1995</year></movie>");
        let b = px("<movie><title>Jaws</title></movie>");
        assert_eq!(rule.judge(&root_elem(&a), &root_elem(&b)), None);
    }

    #[test]
    fn year_rule_rejects_different_years() {
        let rule = KeyInequalityRule::movie_year();
        let a = px("<movie><title>Jaws</title><year>1975</year></movie>");
        let b = px("<movie><title>Jaws</title><year>1978</year></movie>");
        assert_eq!(
            rule.judge(&root_elem(&a), &root_elem(&b)),
            Some(Decision::NonMatch)
        );
    }

    #[test]
    fn year_rule_abstains_on_equal_or_missing_years() {
        let rule = KeyInequalityRule::movie_year();
        let a = px("<movie><title>Jaws</title><year>1975</year></movie>");
        let b = px("<movie><title>Jaws (TV)</title><year>1975</year></movie>");
        let c = px("<movie><title>Jaws</title></movie>");
        assert_eq!(rule.judge(&root_elem(&a), &root_elem(&b)), None);
        assert_eq!(rule.judge(&root_elem(&a), &root_elem(&c)), None);
    }

    /// A movie whose title is a choice between the two given variants.
    fn movie_with_uncertain_title(t1: &str, t2: &str) -> PxDoc {
        let mut px = px("<movie><year>1996</year></movie>");
        let poss = px.children(px.root())[0];
        let movie = px.children(poss)[0];
        let title = px.add_elem(movie, "title");
        let c = px.add_prob(title);
        let p1 = px.add_poss(c, 0.5);
        px.add_text(p1, t1.to_string());
        let p2 = px.add_poss(c, 0.5);
        px.add_text(p2, t2.to_string());
        px
    }

    #[test]
    fn title_rule_decides_when_all_variants_are_dissimilar() {
        // Both variants of the uncertain title are dissimilar to "Alien":
        // the rule can reject with certainty despite the uncertainty.
        let rule = SimilarityThresholdRule::movie_title(0.55);
        let merged = movie_with_uncertain_title("Mission: Impossible", "Mission: Impossible II");
        let alien = px("<movie><title>Alien</title></movie>");
        let m = ElemRef {
            doc: &merged,
            node: {
                let poss = merged.children(merged.root())[0];
                merged.children(poss)[0]
            },
        };
        assert_eq!(rule.judge(&m, &root_elem(&alien)), Some(Decision::NonMatch));
        // But a candidate similar to one variant keeps the rule abstaining.
        let mi = px("<movie><title>Mission Impossible</title></movie>");
        assert_eq!(rule.judge(&m, &root_elem(&mi)), None);
    }

    #[test]
    fn exact_text_rule_sees_through_value_conflicts() {
        let rule = ExactTextRule::new("genre");
        // genre that is a choice between two values.
        let mut uncertain = px("<genre/>");
        let poss = uncertain.children(uncertain.root())[0];
        let genre = uncertain.children(poss)[0];
        let c = uncertain.add_prob(genre);
        let p1 = uncertain.add_poss(c, 0.5);
        uncertain.add_text(p1, "Horror");
        let p2 = uncertain.add_poss(c, 0.5);
        uncertain.add_text(p2, "Thriller");
        let g = ElemRef {
            doc: &uncertain,
            node: genre,
        };
        // Against "Action": both variants differ → certain non-match.
        let action = px("<genre>Action</genre>");
        assert_eq!(
            rule.judge(&g, &root_elem(&action)),
            Some(Decision::NonMatch)
        );
        // Against "Horror": one variant agrees → abstain.
        let horror = px("<genre>Horror</genre>");
        assert_eq!(rule.judge(&g, &root_elem(&horror)), None);
    }

    #[test]
    fn year_rule_decides_when_every_year_variant_differs() {
        let rule = KeyInequalityRule::movie_year();
        let mut a = px("<movie><title>Jaws</title></movie>");
        let poss = a.children(a.root())[0];
        let movie = a.children(poss)[0];
        let c = a.add_prob(movie);
        let p1 = a.add_poss(c, 0.5);
        a.add_text_elem(p1, "year", "1975");
        let p2 = a.add_poss(c, 0.5);
        a.add_text_elem(p2, "year", "1976");
        let a_ref = ElemRef {
            doc: &a,
            node: movie,
        };
        let far = px("<movie><title>Jaws</title><year>1990</year></movie>");
        assert_eq!(
            rule.judge(&a_ref, &root_elem(&far)),
            Some(Decision::NonMatch)
        );
    }

    #[test]
    fn decide_over_pairs_verdicts() {
        let v = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(
            decide_over_pairs(&v(&["a"]), &v(&["a"]), |x, y| x == y),
            Some(Decision::Match)
        );
        assert_eq!(
            decide_over_pairs(&v(&["a", "b"]), &v(&["c"]), |x, y| x == y),
            Some(Decision::NonMatch)
        );
        assert_eq!(
            decide_over_pairs(&v(&["a", "b"]), &v(&["a"]), |x, y| x == y),
            None
        );
        assert_eq!(decide_over_pairs(&v(&[]), &v(&["a"]), |x, y| x == y), None);
    }

    #[test]
    fn uncertain_values_make_rules_abstain() {
        // A movie whose year is a choice between 1975 and 1978.
        let mut a = px("<movie><title>Jaws</title></movie>");
        let poss = a.children(a.root())[0];
        let movie = a.children(poss)[0];
        let c = a.add_prob(movie);
        let p1 = a.add_poss(c, 0.5);
        a.add_text_elem(p1, "year", "1975");
        let p2 = a.add_poss(c, 0.5);
        a.add_text_elem(p2, "year", "1978");
        let b = px("<movie><title>Jaws</title><year>1978</year></movie>");
        let rule = KeyInequalityRule::movie_year();
        let a_ref = ElemRef {
            doc: &a,
            node: movie,
        };
        assert_eq!(rule.judge(&a_ref, &root_elem(&b)), None);
    }

    #[test]
    fn measures_dispatch() {
        assert_eq!(SimMeasure::Levenshtein.apply("abc", "abc"), 1.0);
        assert_eq!(SimMeasure::TokenJaccard.apply("a b", "b a"), 1.0);
        assert!(SimMeasure::Title.apply("Jaws", "Jaws 2") > 0.4);
        assert!(SimMeasure::PersonName.apply("Woo, John", "John Woo") > 0.99);
        assert!(SimMeasure::JaroWinkler.apply("martha", "marhta") > 0.9);
        assert!(SimMeasure::TrigramDice.apply("die hard", "die harder") > 0.5);
    }
}
