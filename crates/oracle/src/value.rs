//! Value extraction from (possibly probabilistic) elements.
//!
//! Rules compare *values* (a movie's title, a person's phone number).
//! During incremental integration an element may already carry uncertainty
//! from a previous integration round — e.g. an uncertain `year`. A rule
//! confronted with an uncertain value must not pretend to certainty, so
//! lookups distinguish [`ValueLookup::Uncertain`] from a missing or a
//! certainly-known value; rules abstain on `Uncertain` and the prior takes
//! over.

use imprecise_pxml::{PxDoc, PxNodeId};

/// A borrowed reference to one element inside a probabilistic document.
#[derive(Clone, Copy)]
pub struct ElemRef<'a> {
    /// The document.
    pub doc: &'a PxDoc,
    /// The element node (must be [`imprecise_pxml::PxNodeKind::Elem`]).
    pub node: PxNodeId,
}

/// Result of looking up a value beneath an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueLookup {
    /// No such child exists (certainly).
    Missing,
    /// The child (or part of the path to it) sits under a choice point, so
    /// its value differs between worlds.
    Uncertain,
    /// The child exists certainly and has this text value.
    Value(String),
}

impl ValueLookup {
    /// The certain value, if any.
    pub fn as_value(&self) -> Option<&str> {
        match self {
            ValueLookup::Value(v) => Some(v),
            _ => None,
        }
    }
}

impl<'a> ElemRef<'a> {
    /// Tag of the referenced element.
    pub fn tag(&self) -> &'a str {
        self.doc
            .tag(self.node)
            // lint:allow(expect-in-lib, holds by construction: ElemRef points at an element)
            .expect("ElemRef points at an element")
    }

    /// The element's own text content, if it is certain (no descendant
    /// choice points); [`ValueLookup::Uncertain`] otherwise.
    pub fn own_text(&self) -> ValueLookup {
        if subtree_has_choice(self.doc, self.node) {
            ValueLookup::Uncertain
        } else {
            ValueLookup::Value(self.doc.certain_text(self.node))
        }
    }

    /// Look up the text of the child element reached by a slash-separated
    /// tag path (e.g. `"title"` or `"info/year"`).
    ///
    /// Returns `Missing` if a step has no certain match, `Uncertain` when a
    /// step (or the final value) is under a choice point, and `Value`
    /// otherwise. Multiple certain children with the same tag resolve to
    /// the first, matching the behaviour of the paper's XQuery rules.
    pub fn value_at(&self, path: &str) -> ValueLookup {
        let mut cur = self.node;
        for step in path.split('/').filter(|s| !s.is_empty()) {
            // Is any choice point among the children that could contribute
            // an element with this tag?
            let mut found: Option<PxNodeId> = None;
            let mut uncertain = false;
            for &c in self.doc.children(cur) {
                if self.doc.is_prob(c) {
                    if prob_can_contain_tag(self.doc, c, step) {
                        uncertain = true;
                    }
                } else if self.doc.tag(c) == Some(step) && found.is_none() {
                    found = Some(c);
                }
            }
            match found {
                Some(next) => cur = next,
                None => {
                    return if uncertain {
                        ValueLookup::Uncertain
                    } else {
                        ValueLookup::Missing
                    }
                }
            }
        }
        if subtree_has_choice(self.doc, cur) {
            ValueLookup::Uncertain
        } else {
            ValueLookup::Value(self.doc.certain_text(cur))
        }
    }

    /// All *certain* child elements with the given tag.
    pub fn certain_children(&self, tag: &str) -> Vec<PxNodeId> {
        self.doc
            .children(self.node)
            .iter()
            .copied()
            .filter(|&c| self.doc.tag(c) == Some(tag))
            .collect()
    }

    /// The set of values the element at `path` can take *across worlds*.
    ///
    /// Unlike [`ElemRef::value_at`], this looks through choice points: an
    /// element whose title became a conflict choice in an earlier
    /// integration round still yields its (small) set of possible titles,
    /// letting rules make absolute decisions whenever **every** possible
    /// value leads to the same verdict (e.g. "Alien" is dissimilar to all
    /// title variants of a merged Mission: Impossible entry).
    ///
    /// Returns [`PossibleValues::Values`] only when the element is present
    /// in *every* world (else a rule deciding "non-match in all worlds"
    /// would be unsound); [`PossibleValues::Unknown`] when presence cannot
    /// be guaranteed or more than `cap` variants exist.
    pub fn possible_values_at(&self, path: &str, cap: usize) -> PossibleValues {
        let mut frontier: Vec<PxNodeId> = vec![self.node];
        let mut covered = true;
        for step in path.split('/').filter(|s| !s.is_empty()) {
            let mut next: Vec<PxNodeId> = Vec::new();
            let mut possible_somewhere = false;
            for &node in &frontier {
                let mut guaranteed_here = false;
                for &c in self.doc.children(node) {
                    if self.doc.tag(c) == Some(step) {
                        next.push(c);
                        guaranteed_here = true;
                    } else if self.doc.is_prob(c) {
                        let mut all_poss_have = !self.doc.children(c).is_empty();
                        for &poss in self.doc.children(c) {
                            let mut this_poss_has = false;
                            for &pc in self.doc.children(poss) {
                                if self.doc.tag(pc) == Some(step) {
                                    next.push(pc);
                                    this_poss_has = true;
                                }
                            }
                            all_poss_have &= this_poss_has;
                        }
                        guaranteed_here |= all_poss_have;
                    }
                }
                possible_somewhere |= guaranteed_here || !next.is_empty();
                covered &= guaranteed_here;
            }
            if next.is_empty() {
                return if possible_somewhere {
                    PossibleValues::Unknown
                } else {
                    PossibleValues::Missing
                };
            }
            frontier = next;
        }
        let mut values: Vec<String> = Vec::new();
        for node in frontier {
            match possible_texts(self.doc, node, cap) {
                Some(texts) => {
                    for t in texts {
                        if !values.contains(&t) {
                            values.push(t);
                        }
                    }
                }
                None => return PossibleValues::Unknown,
            }
            if values.len() > cap {
                return PossibleValues::Unknown;
            }
        }
        if covered {
            PossibleValues::Values(values)
        } else {
            PossibleValues::Unknown
        }
    }

    /// The set of text values this element itself can take across worlds,
    /// or `None` when more than `cap` variants exist.
    pub fn possible_own_texts(&self, cap: usize) -> Option<Vec<String>> {
        possible_texts(self.doc, self.node, cap)
    }
}

/// Result of a choice-aware value lookup ([`ElemRef::possible_values_at`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PossibleValues {
    /// The element certainly does not exist (in any world).
    Missing,
    /// Presence or value set could not be bounded — rules must abstain.
    Unknown,
    /// The element exists in every world; its value is always one of
    /// these (deduplicated, in discovery order).
    Values(Vec<String>),
}

/// All possible string values of `node`'s subtree: the cross product of
/// its children's variants, with choice points contributing one variant
/// per possibility. `None` when more than `cap` variants accumulate.
fn possible_texts(doc: &PxDoc, node: PxNodeId, cap: usize) -> Option<Vec<String>> {
    use imprecise_pxml::PxNodeKind;
    match doc.kind(node) {
        PxNodeKind::Text(t) => Some(vec![t.clone()]),
        PxNodeKind::Elem { .. } | PxNodeKind::Poss(_) => {
            let mut acc: Vec<String> = vec![String::new()];
            for &c in doc.children(node) {
                let parts = possible_texts(doc, c, cap)?;
                if parts.len() == 1 {
                    for a in &mut acc {
                        a.push_str(&parts[0]);
                    }
                    continue;
                }
                let mut next = Vec::with_capacity(acc.len() * parts.len());
                for a in &acc {
                    for p in &parts {
                        next.push(format!("{a}{p}"));
                    }
                }
                if next.len() > cap {
                    return None;
                }
                acc = next;
            }
            Some(acc)
        }
        PxNodeKind::Prob => {
            let mut out: Vec<String> = Vec::new();
            for &poss in doc.children(node) {
                for v in possible_texts(doc, poss, cap)? {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
                if out.len() > cap {
                    return None;
                }
            }
            Some(out)
        }
    }
}

/// Does any possibility of `prob` contain a top-level element with `tag`?
fn prob_can_contain_tag(doc: &PxDoc, prob: PxNodeId, tag: &str) -> bool {
    doc.children(prob)
        .iter()
        .any(|&poss| doc.children(poss).iter().any(|&c| doc.tag(c) == Some(tag)))
}

/// Does the subtree under `node` contain any probability node?
pub(crate) fn subtree_has_choice(doc: &PxDoc, node: PxNodeId) -> bool {
    doc.descendants(node).any(|n| doc.is_prob(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use imprecise_pxml::from_xml;
    use imprecise_xmlkit::parse;

    fn movie_ref(doc: &PxDoc) -> ElemRef<'_> {
        let poss = doc.children(doc.root())[0];
        ElemRef {
            doc,
            node: doc.children(poss)[0],
        }
    }

    #[test]
    fn certain_value_lookup() {
        let px = from_xml(
            &parse("<movie><title>Jaws</title><info><year>1975</year></info></movie>").unwrap(),
        );
        let m = movie_ref(&px);
        assert_eq!(m.tag(), "movie");
        assert_eq!(m.value_at("title"), ValueLookup::Value("Jaws".into()));
        assert_eq!(m.value_at("info/year"), ValueLookup::Value("1975".into()));
        assert_eq!(m.value_at("rating"), ValueLookup::Missing);
        assert_eq!(m.value_at("info/rating"), ValueLookup::Missing);
    }

    #[test]
    fn uncertain_value_detected() {
        // movie with an uncertain year: a prob child offering two years.
        let mut px = from_xml(&parse("<movie><title>Jaws</title></movie>").unwrap());
        let poss = px.children(px.root())[0];
        let movie = px.children(poss)[0];
        let choice = px.add_prob(movie);
        let a = px.add_poss(choice, 0.5);
        px.add_text_elem(a, "year", "1975");
        let b = px.add_poss(choice, 0.5);
        px.add_text_elem(b, "year", "1976");
        let m = ElemRef {
            doc: &px,
            node: movie,
        };
        assert_eq!(m.value_at("year"), ValueLookup::Uncertain);
        // Title is still certain.
        assert_eq!(m.value_at("title"), ValueLookup::Value("Jaws".into()));
        // The movie's own text is uncertain (contains a choice).
        assert_eq!(m.own_text(), ValueLookup::Uncertain);
    }

    #[test]
    fn missing_vs_uncertain_distinction() {
        // Choice offers a director in one possibility only.
        let mut px = from_xml(&parse("<movie><title>Jaws</title></movie>").unwrap());
        let poss = px.children(px.root())[0];
        let movie = px.children(poss)[0];
        let choice = px.add_prob(movie);
        let with = px.add_poss(choice, 0.5);
        px.add_text_elem(with, "director", "Spielberg");
        let _without = px.add_poss(choice, 0.5);
        let m = ElemRef {
            doc: &px,
            node: movie,
        };
        assert_eq!(m.value_at("director"), ValueLookup::Uncertain);
        assert_eq!(m.value_at("writer"), ValueLookup::Missing);
    }

    #[test]
    fn first_of_multiple_children_wins() {
        let px = from_xml(
            &parse("<movie><genre>Horror</genre><genre>Thriller</genre></movie>").unwrap(),
        );
        let m = movie_ref(&px);
        assert_eq!(m.value_at("genre"), ValueLookup::Value("Horror".into()));
        assert_eq!(m.certain_children("genre").len(), 2);
    }

    #[test]
    fn own_text_concatenates_certain_content() {
        let px = from_xml(&parse("<g>Horror</g>").unwrap());
        let m = movie_ref(&px);
        assert_eq!(m.own_text(), ValueLookup::Value("Horror".into()));
    }
}
