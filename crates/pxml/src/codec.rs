//! Deterministic binary codec for [`PxDoc`] arenas, plus the low-level
//! primitives the rest of the workspace's persistence codecs build on.
//!
//! The encoding is designed for the durable store (`imprecise-store`):
//!
//! * **Bit-exact.** Floats are written as their IEEE-754 bit patterns
//!   ([`f64::to_bits`]), so `encode → decode → fingerprint` is bitwise
//!   identical to the in-memory document — no shortest-round-trip
//!   formatting, no parsing, no drift.
//! * **Arena-exact.** The arena is serialised slot by slot, *including
//!   detached slots* and the parent links of every node. Persisted
//!   enumeration frontiers hold [`PxNodeId`]s into the arena, so node
//!   ids must survive a round-trip unchanged; re-building the tree
//!   through the public construction API would renumber them.
//! * **Deterministic.** Equal documents encode to equal bytes: every
//!   integer is fixed-width little-endian and every collection is
//!   written in its in-memory (deterministic) order. There is no
//!   padding, no map iteration, no platform dependence.
//!
//! The format is *not* self-describing — framing, versioning and
//! checksums belong to the segment layer in `imprecise-store`. Decoders
//! here defend against truncated or malformed input with a typed
//! [`CodecError`]; they never panic.

use crate::node::{PxDoc, PxNodeData, PxNodeId, PxNodeKind};
use imprecise_xmlkit::Attr;
use std::fmt;

/// A malformed or truncated encoding was handed to a decoder.
///
/// Carries the byte offset the decoder had reached and a static
/// description of what it expected; the segment layer wraps this in its
/// own error with the record's location on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset into the buffer at which decoding failed.
    pub offset: usize,
    /// What the decoder expected at that offset.
    pub expected: &'static str,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed encoding at byte {}: expected {}",
            self.offset, self.expected
        )
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked cursor over an encoded buffer.
///
/// Every `take_*` method fails with a typed [`CodecError`] instead of
/// panicking when the buffer is exhausted — torn records surface as
/// errors the store can report, not as process aborts.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// The typed error for a failure at the current offset.
    pub fn err(&self, expected: &'static str) -> CodecError {
        CodecError {
            offset: self.pos,
            expected,
        }
    }

    fn take(&mut self, n: usize, expected: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError {
            offset: self.pos,
            expected,
        })?;
        if end > self.buf.len() {
            return Err(self.err(expected));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// One byte.
    pub fn take_u8(&mut self, expected: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, expected)?[0])
    }

    /// A little-endian `u32`.
    pub fn take_u32(&mut self, expected: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, expected)?;
        // lint:allow(unwrap-in-lib, take() returned exactly 4 bytes)
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// A little-endian `u64`.
    pub fn take_u64(&mut self, expected: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, expected)?;
        // lint:allow(unwrap-in-lib, take() returned exactly 8 bytes)
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// A `u64` that must fit in `usize` (collection lengths, indices).
    pub fn take_len(&mut self, expected: &'static str) -> Result<usize, CodecError> {
        let v = self.take_u64(expected)?;
        usize::try_from(v).map_err(|_| self.err(expected))
    }

    /// An `f64` stored as its exact bit pattern.
    pub fn take_f64(&mut self, expected: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64(expected)?))
    }

    /// A length-prefixed UTF-8 string.
    pub fn take_str(&mut self, expected: &'static str) -> Result<String, CodecError> {
        let len = self.take_len(expected)?;
        let at = self.pos;
        let bytes = self.take(len, expected)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError {
            offset: at,
            expected,
        })
    }

    /// Fail unless the whole buffer was consumed — decoders call this
    /// last so trailing garbage is detected rather than ignored.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError {
                offset: self.pos,
                expected: "end of record",
            })
        }
    }
}

/// Append one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `usize` as a `u64` (the on-disk width is platform-free).
pub fn put_len(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Append an `f64` as its exact IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Append a [`PxNodeId`] (its raw `u32` arena index).
pub fn put_node_id(out: &mut Vec<u8>, id: PxNodeId) {
    put_u32(out, id.index() as u32);
}

/// Read a [`PxNodeId`] written by [`put_node_id`].
///
/// The id is *not* validated against any arena here — callers that
/// decode ids referring into a separately decoded document must check
/// them against that document's [`PxDoc::arena_len`].
pub fn take_node_id(r: &mut Reader<'_>, expected: &'static str) -> Result<PxNodeId, CodecError> {
    Ok(PxNodeId(r.take_u32(expected)?))
}

/// FNV-1a over a byte slice: the workspace's standard content hash,
/// used by the store for record checksums and blob deduplication.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// Node-kind tags of the arena encoding (one byte per node).
const KIND_PROB: u8 = 0;
const KIND_POSS: u8 = 1;
const KIND_ELEM: u8 = 2;
const KIND_TEXT: u8 = 3;

/// Serialise the document's arena exactly: every slot (detached ones
/// included), each node's kind, parent link and child list, and the
/// root id. Appends to `out`.
pub fn encode_doc(doc: &PxDoc, out: &mut Vec<u8>) {
    put_len(out, doc.nodes.len());
    put_u32(out, doc.root.index() as u32);
    for node in &doc.nodes {
        match &node.kind {
            PxNodeKind::Prob => put_u8(out, KIND_PROB),
            PxNodeKind::Poss(p) => {
                put_u8(out, KIND_POSS);
                put_f64(out, *p);
            }
            PxNodeKind::Elem { tag, attrs } => {
                put_u8(out, KIND_ELEM);
                put_str(out, tag);
                put_len(out, attrs.len());
                for attr in attrs {
                    put_str(out, &attr.name);
                    put_str(out, &attr.value);
                }
            }
            PxNodeKind::Text(text) => {
                put_u8(out, KIND_TEXT);
                put_str(out, text);
            }
        }
        match node.parent {
            None => put_u8(out, 0),
            Some(p) => {
                put_u8(out, 1);
                put_u32(out, p.index() as u32);
            }
        }
        put_len(out, node.children.len());
        for &child in &node.children {
            put_u32(out, child.index() as u32);
        }
    }
}

/// Rebuild a document from [`encode_doc`] bytes at the reader's
/// position.
///
/// The arena is reproduced slot for slot — ids, detached nodes and all —
/// so `decode_doc(encode_doc(d)).fingerprint() == d.fingerprint()` and
/// any [`PxNodeId`] valid for `d` is valid for the copy. Every id is
/// bounds-checked against the declared arena length; structural
/// invariants beyond that (tree-ness, probability sums) are the deep
/// verifier's business, not the codec's.
pub fn decode_doc(r: &mut Reader<'_>) -> Result<PxDoc, CodecError> {
    let len = r.take_len("arena length")?;
    // A u32 id space bounds the arena; also guards the preallocation
    // below against absurd lengths from corrupt input.
    if len > u32::MAX as usize {
        return Err(r.err("arena length within id space"));
    }
    let root_raw = r.take_u32("root id")?;
    if (root_raw as usize) >= len {
        return Err(r.err("root id within arena"));
    }
    let check_id = |r: &Reader<'_>, raw: u32| -> Result<PxNodeId, CodecError> {
        if (raw as usize) < len {
            Ok(PxNodeId(raw))
        } else {
            Err(r.err("node id within arena"))
        }
    };
    let mut nodes = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        let kind = match r.take_u8("node kind tag")? {
            KIND_PROB => PxNodeKind::Prob,
            KIND_POSS => PxNodeKind::Poss(r.take_f64("possibility probability")?),
            KIND_ELEM => {
                let tag = r.take_str("element tag")?;
                let n_attrs = r.take_len("attribute count")?;
                let mut attrs = Vec::with_capacity(n_attrs.min(1 << 16));
                for _ in 0..n_attrs {
                    attrs.push(Attr {
                        name: r.take_str("attribute name")?,
                        value: r.take_str("attribute value")?,
                    });
                }
                PxNodeKind::Elem { tag, attrs }
            }
            KIND_TEXT => PxNodeKind::Text(r.take_str("text content")?),
            _ => return Err(r.err("node kind tag")),
        };
        let parent = match r.take_u8("parent tag")? {
            0 => None,
            1 => {
                let raw = r.take_u32("parent id")?;
                Some(check_id(r, raw)?)
            }
            _ => return Err(r.err("parent tag")),
        };
        let n_children = r.take_len("child count")?;
        let mut children = Vec::with_capacity(n_children.min(1 << 20));
        for _ in 0..n_children {
            let raw = r.take_u32("child id")?;
            children.push(check_id(r, raw)?);
        }
        nodes.push(PxNodeData {
            kind,
            parent,
            children,
        });
    }
    // A persisted document may legitimately carry detached slots (the
    // producer is not required to compact before encoding); a cheap
    // parent-link scan decides whether the decoded arena is fully live,
    // so its `arena_stats` stay O(1) when it is. Detachment always
    // leaves a `None` parent on the subtree root, so the scan is exact.
    let maybe_detached = nodes
        .iter()
        .enumerate()
        .any(|(i, n)| i != root_raw as usize && n.parent.is_none());
    Ok(PxDoc {
        nodes,
        root: PxNodeId(root_raw),
        maybe_detached,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> PxDoc {
        let mut px = PxDoc::new();
        let root = px.root();
        let w1 = px.add_poss(root, 0.25);
        let ab = px.add_elem(w1, "addressbook");
        let p = px.add_elem(ab, "person");
        px.add_text_elem(p, "nm", "John");
        let w2 = px.add_poss(root, 0.75);
        px.add_elem(w2, "addressbook");
        px
    }

    fn roundtrip(doc: &PxDoc) -> PxDoc {
        let mut bytes = Vec::new();
        encode_doc(doc, &mut bytes);
        let mut r = Reader::new(&bytes);
        let decoded = decode_doc(&mut r).expect("decodes");
        r.finish().expect("consumed exactly");
        decoded
    }

    #[test]
    fn roundtrip_is_bitwise_identical() {
        let doc = sample_doc();
        let decoded = roundtrip(&doc);
        assert_eq!(doc.fingerprint(), decoded.fingerprint());
        assert_eq!(doc.arena_len(), decoded.arena_len());
        assert_eq!(doc.root(), decoded.root());
    }

    #[test]
    fn roundtrip_preserves_detached_slots_and_ids() {
        let mut doc = sample_doc();
        // Detach a subtree: the slots stay allocated (compaction is a
        // separate, explicit step), and the codec must keep them so
        // persisted node ids stay valid.
        let root = doc.root();
        let first_poss = doc.children(root)[0];
        doc.reset_children(root, vec![doc.children(root)[1]]);
        let total_before = doc.arena_len();
        let decoded = roundtrip(&doc);
        assert_eq!(decoded.arena_len(), total_before);
        assert_eq!(doc.fingerprint(), decoded.fingerprint());
        // The detached possibility's payload survived under its old id.
        assert_eq!(doc.kind(first_poss), decoded.kind(first_poss));
    }

    #[test]
    fn probabilities_survive_bit_exactly() {
        let mut px = PxDoc::new();
        let root = px.root();
        // A weight that has no short decimal representation.
        let w = 1.0f64 / 3.0 + 1e-17;
        px.add_poss(root, w);
        px.add_poss(root, 1.0 - w);
        let decoded = roundtrip(&px);
        let child = decoded.children(decoded.root())[0];
        match decoded.kind(child) {
            PxNodeKind::Poss(p) => assert_eq!(p.to_bits(), w.to_bits()),
            other => panic!("expected a possibility node, got {other:?}"),
        }
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let doc = sample_doc();
        let mut bytes = Vec::new();
        encode_doc(&doc, &mut bytes);
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let result = decode_doc(&mut r).map(|_| ()).and_then(|()| r.finish());
            assert!(result.is_err(), "truncation at {cut} must not decode");
        }
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let doc = sample_doc();
        let mut bytes = Vec::new();
        encode_doc(&doc, &mut bytes);
        // Corrupt the root id (offset 8..12) to point past the arena.
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = Reader::new(&bytes);
        assert!(decode_doc(&mut r).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected_by_finish() {
        let doc = sample_doc();
        let mut bytes = Vec::new();
        encode_doc(&doc, &mut bytes);
        bytes.push(0xFF);
        let mut r = Reader::new(&bytes);
        let result = decode_doc(&mut r).map(|_| ()).and_then(|()| r.finish());
        assert_eq!(
            result,
            Err(CodecError {
                offset: bytes.len() - 1,
                expected: "end of record"
            })
        );
    }

    #[test]
    fn equal_documents_encode_to_equal_bytes() {
        let a = sample_doc();
        let b = sample_doc();
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        encode_doc(&a, &mut ba);
        encode_doc(&b, &mut bb);
        assert_eq!(ba, bb);
    }
}
