//! Conversions between probabilistic and ordinary XML.
//!
//! * [`from_xml`] lifts a certain document into the probabilistic model
//!   (a root probability node with one possibility of probability 1).
//! * [`to_annotated_xml`] / [`parse_annotated`] round-trip a [`PxDoc`]
//!   through ordinary XML using reserved `px:prob` / `px:poss` elements —
//!   the on-disk/debug format of the reproduction, mirroring how IMPrECISE
//!   stored probabilistic documents inside a conventional XML DBMS.

use crate::node::{PxDoc, PxNodeId, PxNodeKind};
use imprecise_xmlkit::{NodeId as XmlNodeId, NodeKind as XmlNodeKind, XmlDoc, XmlError, XmlResult};

/// Reserved tag for probability nodes in the annotated encoding.
pub const PROB_TAG: &str = "px:prob";
/// Reserved tag for possibility nodes in the annotated encoding.
pub const POSS_TAG: &str = "px:poss";
/// Attribute holding a possibility's probability.
pub const PROB_ATTR: &str = "p";

/// Lift a certain XML document into the probabilistic model.
pub fn from_xml(doc: &XmlDoc) -> PxDoc {
    let mut px = PxDoc::new();
    let root = px.root();
    let poss = px.add_poss(root, 1.0);
    px.graft_xml(poss, doc, doc.root());
    px
}

/// Encode a probabilistic document as ordinary XML with `px:prob` /
/// `px:poss` marker elements. Probabilities are printed with Rust's
/// shortest-round-trip `f64` formatting, so [`parse_annotated`] recovers
/// them exactly.
pub fn to_annotated_xml(px: &PxDoc) -> XmlDoc {
    let mut doc = XmlDoc::new(PROB_TAG);
    let root = doc.root();
    for &poss in px.children(px.root()) {
        encode(px, poss, &mut doc, root);
    }
    doc
}

fn encode(px: &PxDoc, node: PxNodeId, doc: &mut XmlDoc, parent: XmlNodeId) {
    match px.kind(node) {
        PxNodeKind::Prob => {
            let el = doc.add_element(parent, PROB_TAG);
            for &c in px.children(node) {
                encode(px, c, doc, el);
            }
        }
        PxNodeKind::Poss(p) => {
            let el = doc.add_element(parent, POSS_TAG);
            doc.set_attr(el, PROB_ATTR, format!("{p}"));
            for &c in px.children(node) {
                encode(px, c, doc, el);
            }
        }
        PxNodeKind::Elem { tag, attrs } => {
            let el = doc.add_element(parent, tag.clone());
            for a in attrs {
                doc.set_attr(el, a.name.clone(), a.value.clone());
            }
            for &c in px.children(node) {
                encode(px, c, doc, el);
            }
        }
        PxNodeKind::Text(t) => {
            doc.add_text(parent, t.clone());
        }
    }
}

/// Decode an annotated XML document produced by [`to_annotated_xml`].
///
/// If the root element is not `px:prob` the document is treated as certain
/// and lifted with [`from_xml`].
pub fn parse_annotated(doc: &XmlDoc) -> XmlResult<PxDoc> {
    if doc.tag(doc.root()) != Some(PROB_TAG) {
        return Ok(from_xml(doc));
    }
    let mut px = PxDoc::new();
    let root = px.root();
    for &c in doc.children(doc.root()) {
        decode_poss(doc, c, &mut px, root)?;
    }
    Ok(px)
}

fn decode_poss(doc: &XmlDoc, node: XmlNodeId, px: &mut PxDoc, prob: PxNodeId) -> XmlResult<()> {
    if doc.tag(node) != Some(POSS_TAG) {
        return Err(XmlError::BadDocumentStructure {
            message: format!(
                "child of {PROB_TAG} must be {POSS_TAG}, found {:?}",
                doc.tag(node)
            ),
        });
    }
    let p: f64 = doc
        .attr(node, PROB_ATTR)
        .ok_or_else(|| XmlError::BadDocumentStructure {
            message: format!("{POSS_TAG} is missing its '{PROB_ATTR}' attribute"),
        })?
        .parse()
        .map_err(|_| XmlError::BadDocumentStructure {
            message: format!("{POSS_TAG} has a non-numeric '{PROB_ATTR}' attribute"),
        })?;
    let poss = px.add_poss(prob, p);
    for &c in doc.children(node) {
        decode_regular(doc, c, px, poss)?;
    }
    Ok(())
}

fn decode_regular(
    doc: &XmlDoc,
    node: XmlNodeId,
    px: &mut PxDoc,
    parent: PxNodeId,
) -> XmlResult<()> {
    match doc.kind(node) {
        XmlNodeKind::Text(t) => {
            px.add_text(parent, t.clone());
            Ok(())
        }
        XmlNodeKind::Element { tag, attrs } => {
            if tag == PROB_TAG {
                let prob = px.add_prob(parent);
                for &c in doc.children(node) {
                    decode_poss(doc, c, px, prob)?;
                }
                Ok(())
            } else if tag == POSS_TAG {
                Err(XmlError::BadDocumentStructure {
                    message: format!("{POSS_TAG} outside a {PROB_TAG}"),
                })
            } else {
                let el = px.add_elem(parent, tag.clone());
                for a in attrs {
                    px.set_attr(el, a.name.clone(), a.value.clone());
                }
                for &c in doc.children(node) {
                    decode_regular(doc, c, px, el)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::px_fingerprint;
    use imprecise_xmlkit::{parse, to_string};

    #[test]
    fn from_xml_is_certain() {
        let xml = parse("<catalog><movie><title>Jaws</title></movie></catalog>").unwrap();
        let px = from_xml(&xml);
        px.validate().unwrap();
        assert!(px.is_certain());
        assert_eq!(px.world_count(), 1);
        let worlds = px.worlds(10).unwrap();
        assert!(imprecise_xmlkit::deep_equal(&worlds[0].doc, &xml));
    }

    #[test]
    fn annotated_roundtrip_preserves_structure() {
        let px = crate::node::tests::fig2();
        let annotated = to_annotated_xml(&px);
        let decoded = parse_annotated(&annotated).unwrap();
        decoded.validate().unwrap();
        assert_eq!(
            px_fingerprint(&px, px.root()),
            px_fingerprint(&decoded, decoded.root())
        );
    }

    #[test]
    fn annotated_roundtrip_through_text() {
        let px = crate::node::tests::fig2();
        let text = to_string(&to_annotated_xml(&px));
        let reparsed = parse(&text).unwrap();
        let decoded = parse_annotated(&reparsed).unwrap();
        assert_eq!(
            px_fingerprint(&px, px.root()),
            px_fingerprint(&decoded, decoded.root())
        );
    }

    #[test]
    fn annotated_encoding_shape() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "a");
        px.add_text(e, "x");
        let s = to_string(&to_annotated_xml(&px));
        assert_eq!(s, "<px:prob><px:poss p=\"1\"><a>x</a></px:poss></px:prob>");
    }

    #[test]
    fn plain_xml_decodes_as_certain() {
        let doc = parse("<a><b>x</b></a>").unwrap();
        let px = parse_annotated(&doc).unwrap();
        assert!(px.is_certain());
    }

    #[test]
    fn malformed_annotation_rejected() {
        // poss without p attribute.
        let doc = parse("<px:prob><px:poss><a/></px:poss></px:prob>").unwrap();
        assert!(parse_annotated(&doc).is_err());
        // Non-poss child of prob.
        let doc = parse("<px:prob><a/></px:prob>").unwrap();
        assert!(parse_annotated(&doc).is_err());
        // poss in regular content.
        let doc = parse("<px:prob><px:poss p=\"1\"><a><px:poss p=\"1\"/></a></px:poss></px:prob>")
            .unwrap();
        assert!(parse_annotated(&doc).is_err());
        // Non-numeric probability.
        let doc = parse("<px:prob><px:poss p=\"often\"><a/></px:poss></px:prob>").unwrap();
        assert!(parse_annotated(&doc).is_err());
    }

    #[test]
    fn probabilities_roundtrip_exactly() {
        let mut px = PxDoc::new();
        let w1 = px.add_poss(px.root(), 1.0 / 3.0);
        px.add_elem(w1, "a");
        let w2 = px.add_poss(px.root(), 2.0 / 3.0);
        px.add_elem(w2, "a");
        let decoded = parse_annotated(&to_annotated_xml(&px)).unwrap();
        let poss = decoded.possibilities(decoded.root());
        assert_eq!(poss[0].1, 1.0 / 3.0);
        assert_eq!(poss[1].1, 2.0 / 3.0);
    }
}
