//! Representation-size accounting.
//!
//! The paper measures uncertainty as "the number of nodes used to represent
//! these possible worlds in the database" (§V) — that is the size of the
//! probabilistic document itself, not the number of worlds. Two sizes
//! matter:
//!
//! * the **factored** size — this crate's native representation, in which
//!   every independent choice point is its own probability node
//!   ([`PxDoc::node_breakdown`]);
//! * the **unfactored** size — the size the document would have if every
//!   element merged all its probability-node children into a single
//!   probability node by cross-product. This is the representation of the
//!   paper's own engine (its integration emits one choice point per element)
//!   and therefore the quantity reproduced in Table I and Figure 5.
//!
//! The unfactored size is computed *analytically* — no cross product is
//! materialised — so counting stays cheap even when the equivalent
//! unfactored document would have 10⁹ nodes. [`PxDoc::to_unfactored`]
//! materialises the transformation (with a node cap) so tests can verify
//! the analytic count and the world-distribution equivalence.

use crate::node::{PxDoc, PxNodeId, PxNodeKind};
use std::fmt;

/// Per-kind node counts of the factored representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeBreakdown {
    /// Probability (choice) nodes.
    pub prob: usize,
    /// Possibility nodes.
    pub poss: usize,
    /// Element nodes.
    pub elem: usize,
    /// Text nodes.
    pub text: usize,
}

impl NodeBreakdown {
    /// Total node count.
    pub fn total(&self) -> usize {
        self.prob + self.poss + self.elem + self.text
    }
}

impl fmt::Display for NodeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes ({} prob, {} poss, {} elem, {} text)",
            self.total(),
            self.prob,
            self.poss,
            self.elem,
            self.text
        )
    }
}

/// Error from [`PxDoc::to_unfactored`] when materialisation would exceed
/// the node cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnfactoredError {
    /// The node cap that would have been exceeded.
    pub cap: usize,
}

impl fmt::Display for UnfactoredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unfactored document exceeds {} nodes", self.cap)
    }
}

impl std::error::Error for UnfactoredError {}

impl PxDoc {
    /// Count reachable nodes by kind (factored representation size).
    pub fn node_breakdown(&self) -> NodeBreakdown {
        let mut b = NodeBreakdown::default();
        for n in self.descendants(self.root()) {
            match self.kind(n) {
                PxNodeKind::Prob => b.prob += 1,
                PxNodeKind::Poss(_) => b.poss += 1,
                PxNodeKind::Elem { .. } => b.elem += 1,
                PxNodeKind::Text(_) => b.text += 1,
            }
        }
        b
    }

    /// Size of the equivalent unfactored document (see module docs),
    /// computed analytically as an `f64`.
    ///
    /// The unfactored form is exactly the paper's *strict layered* model:
    /// one probability node per element, alternatives with choice-free
    /// top-level contents. Sibling probability nodes merge by
    /// cross-product; nested choices (a probability node directly under a
    /// possibility) flatten into their enclosing choice point.
    pub fn unfactored_node_count(&self) -> f64 {
        let (n, u) = self.flat_prob_stats(self.root());
        1.0 + n + u
    }

    /// Flattened statistics of a probability node: `(n, U)` where `n` is
    /// the number of flattened alternatives and `U` the total unfactored
    /// size of their contents (excluding the possibility nodes themselves).
    fn flat_prob_stats(&self, prob: PxNodeId) -> (f64, f64) {
        let mut n_total = 0.0;
        let mut u_total = 0.0;
        for &poss in self.children(prob) {
            // Partition the possibility's children into certain regular
            // items and nested choice points.
            let mut s_certain = 0.0;
            let mut nested: Vec<(f64, f64)> = Vec::new();
            for &c in self.children(poss) {
                match self.kind(c) {
                    PxNodeKind::Prob => nested.push(self.flat_prob_stats(c)),
                    _ => s_certain += self.unfactored_regular_count(c),
                }
            }
            let prod_all: f64 = nested.iter().map(|s| s.0).product();
            let mut u_poss = s_certain * prod_all;
            for (i, (_, u_i)) in nested.iter().enumerate() {
                let prod_others: f64 = nested
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, s)| s.0)
                    .product();
                u_poss += u_i * prod_others;
            }
            n_total += prod_all;
            u_total += u_poss;
        }
        (n_total, u_total)
    }

    fn unfactored_regular_count(&self, node: PxNodeId) -> f64 {
        match self.kind(node) {
            PxNodeKind::Text(_) => 1.0,
            PxNodeKind::Elem { .. } => {
                let mut total = 1.0;
                let mut probs: Vec<(f64, f64)> = Vec::new();
                for &c in self.children(node) {
                    match self.kind(c) {
                        PxNodeKind::Prob => probs.push(self.flat_prob_stats(c)),
                        _ => total += self.unfactored_regular_count(c),
                    }
                }
                if !probs.is_empty() {
                    // Merge the element's choice points into one probability
                    // node by cross-product:
                    //   1 prob node
                    // + Π nᵢ possibility nodes
                    // + Σᵢ (Uᵢ · Π_{j≠i} nⱼ) content nodes.
                    let prod_all: f64 = probs.iter().map(|s| s.0).product();
                    let mut content_total = 0.0;
                    for (i, (_, u)) in probs.iter().enumerate() {
                        let prod_others: f64 = probs
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != i)
                            .map(|(_, s)| s.0)
                            .product();
                        content_total += u * prod_others;
                    }
                    total += 1.0 + prod_all + content_total;
                }
                total
            }
            PxNodeKind::Prob | PxNodeKind::Poss(_) => {
                // lint:allow(panic-in-lib, statically unreachable: regular count called on choice node)
                unreachable!("regular count called on choice node")
            }
        }
    }

    /// Expected number of nodes of a randomly drawn world (element + text
    /// nodes only; choice machinery does not appear in worlds).
    pub fn expected_world_size(&self) -> f64 {
        self.ews(self.root())
    }

    fn ews(&self, node: PxNodeId) -> f64 {
        match self.kind(node) {
            PxNodeKind::Text(_) => 1.0,
            PxNodeKind::Elem { .. } => {
                1.0 + self
                    .children(node)
                    .iter()
                    .map(|&c| self.ews(c))
                    .sum::<f64>()
            }
            PxNodeKind::Prob => self
                .children(node)
                .iter()
                .map(|&poss| {
                    // lint:allow(expect-in-lib, holds by construction: prob child is poss)
                    let w = self.poss_prob(poss).expect("prob child is poss");
                    let inner: f64 = self.children(poss).iter().map(|&c| self.ews(c)).sum();
                    w * inner
                })
                .sum(),
            // lint:allow(panic-in-lib, statically unreachable: poss handled by prob)
            PxNodeKind::Poss(_) => unreachable!("poss handled by prob"),
        }
    }

    /// Flattened alternatives of a probability node: each alternative is a
    /// sequence of *regular* source nodes (nested probability nodes are
    /// expanded) together with its probability.
    fn flat_alternatives(
        &self,
        prob: PxNodeId,
        cap: usize,
    ) -> Result<Vec<(Vec<PxNodeId>, f64)>, UnfactoredError> {
        let mut out: Vec<(Vec<PxNodeId>, f64)> = Vec::new();
        for &poss in self.children(prob) {
            // lint:allow(expect-in-lib, holds by construction: prob child is poss)
            let w = self.poss_prob(poss).expect("prob child is poss");
            // Alternatives contributed by this possibility: cross product
            // over its nested choice points, preserving item order.
            let mut partial: Vec<(Vec<PxNodeId>, f64)> = vec![(Vec::new(), w)];
            for &c in self.children(poss) {
                match self.kind(c) {
                    PxNodeKind::Prob => {
                        let nested = self.flat_alternatives(c, cap)?;
                        let mut next =
                            Vec::with_capacity(partial.len().saturating_mul(nested.len()));
                        for (row, rw) in &partial {
                            for (items, iw) in &nested {
                                let mut row2 = row.clone();
                                row2.extend_from_slice(items);
                                next.push((row2, rw * iw));
                            }
                        }
                        partial = next;
                        if partial.len().saturating_add(out.len()) > cap {
                            return Err(UnfactoredError { cap });
                        }
                    }
                    _ => {
                        for (row, _) in &mut partial {
                            row.push(c);
                        }
                    }
                }
            }
            out.extend(partial);
            if out.len() > cap {
                return Err(UnfactoredError { cap });
            }
        }
        Ok(out)
    }

    /// Materialise the unfactored equivalent of this document: every
    /// element's probability-node children are merged into one probability
    /// node whose possibilities are the cross-product of the originals,
    /// and nested choices are flattened (the paper's strict layering).
    ///
    /// Worlds (documents and probabilities) are preserved exactly. Fails
    /// with [`UnfactoredError`] if more than `cap` nodes would be created.
    pub fn to_unfactored(&self, cap: usize) -> Result<PxDoc, UnfactoredError> {
        let mut out = PxDoc::new();
        let mut budget = Budget { used: 1, cap };
        for (items, w) in self.flat_alternatives(self.root(), cap)? {
            let out_root = out.root();
            let new_poss = out.add_poss(out_root, w);
            budget.take(1)?;
            for item in items {
                self.unfactor_regular(item, &mut out, new_poss, &mut budget)?;
            }
        }
        Ok(out)
    }

    fn unfactor_regular(
        &self,
        node: PxNodeId,
        out: &mut PxDoc,
        out_parent: PxNodeId,
        budget: &mut Budget,
    ) -> Result<(), UnfactoredError> {
        match self.kind(node) {
            PxNodeKind::Text(t) => {
                budget.take(1)?;
                out.add_text(out_parent, t.clone());
                Ok(())
            }
            PxNodeKind::Elem { tag, attrs } => {
                budget.take(1)?;
                let el = out.add_elem(out_parent, tag.clone());
                for a in attrs {
                    out.set_attr(el, a.name.clone(), a.value.clone());
                }
                let mut probs: Vec<PxNodeId> = Vec::new();
                for &c in self.children(node) {
                    match self.kind(c) {
                        PxNodeKind::Prob => probs.push(c),
                        _ => self.unfactor_regular(c, out, el, budget)?,
                    }
                }
                if probs.is_empty() {
                    return Ok(());
                }
                budget.take(1)?;
                let merged = out.add_prob(el);
                // Cross product of the (flattened) alternatives of each
                // sibling choice point, leftmost varying slowest.
                let mut combos: Vec<(Vec<PxNodeId>, f64)> = vec![(Vec::new(), 1.0)];
                for &p in &probs {
                    let alternatives = self.flat_alternatives(p, budget.cap)?;
                    let mut next =
                        Vec::with_capacity(combos.len().saturating_mul(alternatives.len()));
                    for (row, rw) in &combos {
                        for (items, w) in &alternatives {
                            let mut row2 = row.clone();
                            row2.extend_from_slice(items);
                            next.push((row2, rw * w));
                        }
                    }
                    combos = next;
                    if combos.len() > budget.cap {
                        return Err(UnfactoredError { cap: budget.cap });
                    }
                }
                for (row, w) in combos {
                    budget.take(1)?;
                    let poss = out.add_poss(merged, w);
                    for item in row {
                        self.unfactor_regular(item, out, poss, budget)?;
                    }
                }
                Ok(())
            }
            PxNodeKind::Prob | PxNodeKind::Poss(_) => {
                // lint:allow(panic-in-lib, statically unreachable: unfactor_regular called on a choice node)
                unreachable!("unfactor_regular called on a choice node")
            }
        }
    }
}

struct Budget {
    used: usize,
    cap: usize,
}

impl Budget {
    fn take(&mut self, n: usize) -> Result<(), UnfactoredError> {
        self.used += n;
        if self.used > self.cap {
            Err(UnfactoredError { cap: self.cap })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An element with `k` independent binary choices under it.
    fn independent_choices(k: usize) -> PxDoc {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "movie");
        for i in 0..k {
            let c = px.add_prob(e);
            let a = px.add_poss(c, 0.5);
            px.add_text_elem(a, "f", format!("a{i}"));
            let b = px.add_poss(c, 0.5);
            px.add_text_elem(b, "f", format!("b{i}"));
        }
        px
    }

    #[test]
    fn breakdown_counts_fig2() {
        let px = crate::node::tests::fig2();
        let b = px.node_breakdown();
        assert_eq!(b.prob, 2);
        assert_eq!(b.poss, 4);
        // Worlds 1: addressbook+person+nm + 2×tel = 5 elems; world 2 side:
        // addressbook + 2×(person+nm+tel) = 7 elems → 12 elements total.
        assert_eq!(b.elem, 12);
        // Texts: world 1 has John + 1111 + 2222 (one per tel option), world
        // 2 has 2×(John + tel) = 4 → 7 total.
        assert_eq!(b.text, 7);
        assert_eq!(b.total(), 25);
        assert_eq!(px.reachable_count(), 25);
    }

    #[test]
    fn factored_equals_unfactored_without_sibling_probs() {
        // Fig. 2 has no element with 2+ prob children, so counts agree.
        let px = crate::node::tests::fig2();
        assert_eq!(px.unfactored_node_count(), px.reachable_count() as f64);
    }

    #[test]
    fn unfactored_count_grows_exponentially_with_choices() {
        for k in 2..=6 {
            let px = independent_choices(k);
            let factored = px.reachable_count() as f64;
            let unfactored = px.unfactored_node_count();
            // Factored: linear in k. Unfactored: 2^k possibilities, each with
            // k elements of 2 nodes each.
            let expected = 4.0 // root prob + root poss + movie elem + merged prob
                + (2f64.powi(k as i32)) // possibility nodes
                + (2f64.powi(k as i32)) * (k as f64) * 2.0; // contents
            assert_eq!(unfactored, expected, "k={k}");
            assert!(unfactored > factored, "k={k}");
        }
    }

    #[test]
    fn materialized_unfactored_matches_analytic_count() {
        for k in 1..=5 {
            let px = independent_choices(k);
            let unf = px.to_unfactored(100_000).unwrap();
            assert_eq!(
                unf.reachable_count() as f64,
                px.unfactored_node_count(),
                "k={k}"
            );
            unf.validate().unwrap();
            // After unfactoring, no element has two prob children.
            for n in unf.descendants(unf.root()) {
                if unf.is_elem(n) {
                    let prob_children = unf.children(n).iter().filter(|&&c| unf.is_prob(c)).count();
                    assert!(prob_children <= 1);
                }
            }
        }
    }

    #[test]
    fn unfactoring_preserves_world_distribution() {
        let px = independent_choices(3);
        let unf = px.to_unfactored(100_000).unwrap();
        assert_eq!(px.world_count(), unf.world_count());
        let d1 = px.world_distribution(1000).unwrap();
        let d2 = unf.world_distribution(1000).unwrap();
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.iter().zip(d2.iter()) {
            assert!((a.prob - b.prob).abs() < 1e-12);
            assert!(imprecise_xmlkit::deep_equal(&a.doc, &b.doc));
        }
    }

    #[test]
    fn unfactoring_preserves_fig2() {
        let px = crate::node::tests::fig2();
        let unf = px.to_unfactored(10_000).unwrap();
        let d1 = px.world_distribution(100).unwrap();
        let d2 = unf.world_distribution(100).unwrap();
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.iter().zip(d2.iter()) {
            assert!((a.prob - b.prob).abs() < 1e-12);
            assert!(imprecise_xmlkit::deep_equal(&a.doc, &b.doc));
        }
    }

    #[test]
    fn unfactored_cap_is_enforced() {
        let px = independent_choices(10);
        assert!(px.to_unfactored(100).is_err());
    }

    #[test]
    fn expected_world_size_weighs_choices() {
        let px = crate::node::tests::fig2();
        // World 1/2 (p=.5 total… world1: ab(1)+person(1)+nm(1)+txt(1)+tel(1)+txt(1)=6 nodes
        // chosen via tel-choice; both tel options have the same size.
        // World 3 (p=.5): ab + 2×(person+nm+txt+tel+txt) = 11 nodes.
        let expected = 0.5 * 6.0 + 0.5 * 11.0;
        assert!((px.expected_world_size() - expected).abs() < 1e-12);
    }

    /// A document with a nested choice: the outer choice's first
    /// possibility directly contains another probability node (as produced
    /// when integrating an already-probabilistic document).
    fn nested_choice_doc() -> PxDoc {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let outer = px.add_prob(e);
        let a = px.add_poss(outer, 0.5);
        px.add_text_elem(a, "pre", "p");
        let inner = px.add_prob(a); // nested: prob directly under poss
        let i1 = px.add_poss(inner, 0.25);
        px.add_text_elem(i1, "v", "1");
        let i2 = px.add_poss(inner, 0.75);
        px.add_text_elem(i2, "v", "2");
        px.add_text_elem(a, "post", "q");
        let b = px.add_poss(outer, 0.5);
        px.add_text_elem(b, "w", "3");
        px
    }

    #[test]
    fn nested_choices_flatten_in_unfactored_form() {
        let px = nested_choice_doc();
        px.validate().unwrap();
        assert_eq!(px.world_count(), 3);
        let unf = px.to_unfactored(10_000).unwrap();
        unf.validate().unwrap();
        assert_eq!(unf.reachable_count() as f64, px.unfactored_node_count());
        // Flattened outer choice has 2·?+1 = 3 alternatives.
        let poss0 = unf.children(unf.root())[0];
        let doc_elem = unf.children(poss0)[0];
        let merged_prob = unf
            .children(doc_elem)
            .iter()
            .copied()
            .find(|&c| unf.is_prob(c))
            .expect("merged prob");
        assert_eq!(unf.children(merged_prob).len(), 3);
        // No prob node sits directly under a poss anymore.
        for n in unf.descendants(unf.root()) {
            if unf.is_poss(n) {
                assert!(unf.children(n).iter().all(|&c| !unf.is_prob(c)));
            }
        }
        // Worlds are preserved.
        let d1 = px.world_distribution(100).unwrap();
        let d2 = unf.world_distribution(100).unwrap();
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.iter().zip(d2.iter()) {
            assert!((a.prob - b.prob).abs() < 1e-12);
            assert!(imprecise_xmlkit::deep_equal(&a.doc, &b.doc));
        }
    }

    #[test]
    fn nested_flattening_preserves_item_order() {
        let px = nested_choice_doc();
        let unf = px.to_unfactored(10_000).unwrap();
        // First flattened alternative: pre, v=1, post.
        let poss0 = unf.children(unf.root())[0];
        let doc_elem = unf.children(poss0)[0];
        let prob = unf
            .children(doc_elem)
            .iter()
            .copied()
            .find(|&c| unf.is_prob(c))
            .unwrap();
        let alt0 = unf.children(prob)[0];
        let tags: Vec<&str> = unf
            .children(alt0)
            .iter()
            .filter_map(|&c| unf.tag(c))
            .collect();
        assert_eq!(tags, vec!["pre", "v", "post"]);
        // Its weight: 0.5 × 0.25.
        assert!((unf.poss_prob(alt0).unwrap() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn deeply_nested_unfactored_count_matches_materialization() {
        // Element with two prob children whose contents again hold elements
        // with two prob children: exercises the recursive merge.
        fn nested(px: &mut PxDoc, parent: PxNodeId, depth: usize) {
            if depth == 0 {
                return;
            }
            for _ in 0..2 {
                let c = px.add_prob(parent);
                for (i, w) in [(0, 0.5), (1, 0.5)] {
                    let poss = px.add_poss(c, w);
                    let el = px.add_elem(poss, format!("d{depth}v{i}"));
                    nested(px, el, depth - 1);
                }
            }
        }
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "root");
        nested(&mut px, e, 2);
        px.validate().unwrap();
        let unf = px.to_unfactored(1_000_000).unwrap();
        assert_eq!(unf.reachable_count() as f64, px.unfactored_node_count());
        assert_eq!(px.world_count(), unf.world_count());
    }
}
