//! Deep structural verification of a [`PxDoc`] arena.
//!
//! [`PxDoc::validate`] checks the probabilistic XML *model* invariants
//! (probability sums, node-kind nesting rules). `deep_check` extends
//! that to the *representation*: the arena's parent/child links must
//! form a tree rooted at [`PxDoc::root`], every link must be mutual,
//! child ids must stay inside the arena, and the reachability
//! accounting reported by [`PxDoc::arena_stats`] must agree with an
//! independent traversal. This is the document half of the
//! `strict-invariants` shadow checks; the refinement-state half
//! (frontier anchors, digests, mass accounting) lives in
//! `imprecise-integrate::verify`.

use crate::node::{PxDoc, PxNodeId};
use crate::validate::PxInvariantError;
use std::fmt;

/// A corruption of the arena representation (or, via
/// [`Model`](DeepCheckError::Model), of the probabilistic XML model).
#[derive(Debug, Clone, PartialEq)]
pub enum DeepCheckError {
    /// A model invariant is violated (see [`PxInvariantError`]).
    Model(PxInvariantError),
    /// The root node has a parent link.
    RootHasParent {
        /// The offending parent id.
        parent: PxNodeId,
    },
    /// A child id points outside the arena (dangling reference).
    ChildOutOfBounds {
        /// The node whose child list is corrupt.
        node: PxNodeId,
        /// The out-of-bounds child id.
        child: PxNodeId,
        /// Arena size the id must stay below.
        arena_len: usize,
    },
    /// A child's parent link does not point back at the node listing it.
    ParentLinkBroken {
        /// The node listing `child` in its child list.
        node: PxNodeId,
        /// The child whose parent link disagrees.
        child: PxNodeId,
        /// What the child's parent link actually holds.
        actual_parent: Option<PxNodeId>,
    },
    /// A node is reachable through two different paths (the "tree" is a
    /// DAG or worse).
    ReachableTwice {
        /// The node reached a second time.
        node: PxNodeId,
    },
    /// A node lists the same child twice.
    DuplicateChild {
        /// The node with the duplicated entry.
        node: PxNodeId,
        /// The duplicated child id.
        child: PxNodeId,
    },
    /// The arena's own reachability accounting disagrees with an
    /// independent traversal.
    ArenaAccountingDrift {
        /// Live count reported by [`PxDoc::arena_stats`].
        reported_live: usize,
        /// Live count found by the verifier's own walk.
        walked_live: usize,
    },
}

impl fmt::Display for DeepCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeepCheckError::Model(e) => write!(f, "model invariant violated: {e}"),
            DeepCheckError::RootHasParent { parent } => {
                write!(f, "root has parent link to {parent:?}")
            }
            DeepCheckError::ChildOutOfBounds {
                node,
                child,
                arena_len,
            } => write!(
                f,
                "{node:?} lists child {child:?} outside the arena (len {arena_len})"
            ),
            DeepCheckError::ParentLinkBroken {
                node,
                child,
                actual_parent,
            } => write!(
                f,
                "{child:?} is a child of {node:?} but its parent link says {actual_parent:?}"
            ),
            DeepCheckError::ReachableTwice { node } => {
                write!(f, "{node:?} is reachable through two paths")
            }
            DeepCheckError::DuplicateChild { node, child } => {
                write!(f, "{node:?} lists child {child:?} twice")
            }
            DeepCheckError::ArenaAccountingDrift {
                reported_live,
                walked_live,
            } => write!(
                f,
                "arena_stats reports {reported_live} live nodes, traversal found {walked_live}"
            ),
        }
    }
}

impl std::error::Error for DeepCheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeepCheckError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PxInvariantError> for DeepCheckError {
    fn from(e: PxInvariantError) -> Self {
        DeepCheckError::Model(e)
    }
}

impl PxDoc {
    /// Verify the arena representation end to end, returning the first
    /// corruption found.
    ///
    /// On top of everything [`validate`](Self::validate) checks (model
    /// invariants: probability sums, nesting rules), `deep_check`
    /// verifies the representation itself:
    ///
    /// 1. the root carries no parent link;
    /// 2. every child id stays inside the arena (no dangling ids);
    /// 3. parent/child links are mutual;
    /// 4. no node is listed twice by one parent, and no node is
    ///    reachable through two paths (the live arena is a tree);
    /// 5. the walk's live count matches [`arena_stats`](Self::arena_stats)
    ///    (two independent traversal implementations agree).
    ///
    /// The walk is manual (explicit stack over raw child lists) rather
    /// than via [`descendants`](Self::descendants), precisely so a bug
    /// in the iterator cannot hide a bug in the links it walks.
    pub fn deep_check(&self) -> Result<(), DeepCheckError> {
        let arena_len = self.arena_len();
        let root = self.root();
        if let Some(parent) = self.parent(root) {
            return Err(DeepCheckError::RootHasParent { parent });
        }
        let mut seen = vec![false; arena_len];
        let mut stack = vec![root];
        let mut walked_live = 0usize;
        if root.index() >= arena_len {
            return Err(DeepCheckError::ChildOutOfBounds {
                node: root,
                child: root,
                arena_len,
            });
        }
        seen[root.index()] = true;
        while let Some(node) = stack.pop() {
            walked_live += 1;
            let kids = self.children(node);
            for (i, &child) in kids.iter().enumerate() {
                if child.index() >= arena_len {
                    return Err(DeepCheckError::ChildOutOfBounds {
                        node,
                        child,
                        arena_len,
                    });
                }
                if kids[..i].contains(&child) {
                    return Err(DeepCheckError::DuplicateChild { node, child });
                }
                if seen[child.index()] {
                    return Err(DeepCheckError::ReachableTwice { node: child });
                }
                seen[child.index()] = true;
                let actual_parent = self.parent(child);
                if actual_parent != Some(node) {
                    return Err(DeepCheckError::ParentLinkBroken {
                        node,
                        child,
                        actual_parent,
                    });
                }
                stack.push(child);
            }
        }
        let reported_live = self.arena_stats().live;
        if reported_live != walked_live {
            return Err(DeepCheckError::ArenaAccountingDrift {
                reported_live,
                walked_live,
            });
        }
        self.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_doc() -> PxDoc {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let choice = px.add_prob(e);
        let a = px.add_poss(choice, 0.25);
        px.add_text_elem(a, "year", "1995");
        let b = px.add_poss(choice, 0.75);
        px.add_text_elem(b, "year", "1996");
        px
    }

    #[test]
    fn well_formed_doc_passes() {
        small_doc().deep_check().unwrap();
    }

    #[test]
    fn detached_garbage_is_fine() {
        // Detached slots are expected (refine/feedback leave them);
        // deep_check verifies accounting, not absence of garbage.
        let mut px = small_doc();
        let w = px.add_poss(px.root(), 0.0);
        px.detach(w);
        let before = px.arena_stats();
        assert!(before.detached() > 0);
        // Re-normalise: the detach above dropped a zero-probability
        // possibility, so the weights still sum to 1.
        px.deep_check().unwrap();
    }

    #[test]
    fn dangling_child_id_is_caught() {
        let mut px = small_doc();
        let elem = px
            .descendants(px.root())
            .find(|&n| px.is_elem(n))
            .expect("doc has an element");
        px.inject_raw_child_for_tests(elem, 9999);
        assert!(matches!(
            px.deep_check(),
            Err(DeepCheckError::ChildOutOfBounds { child, .. }) if child.index() == 9999
        ));
    }

    #[test]
    fn duplicated_child_is_caught() {
        let mut px = small_doc();
        let elem = px
            .descendants(px.root())
            .find(|&n| px.is_elem(n) && !px.children(n).is_empty())
            .expect("doc has an element with children");
        let first = px.children(elem)[0];
        px.inject_raw_child_for_tests(elem, first.index() as u32);
        assert!(matches!(
            px.deep_check(),
            Err(DeepCheckError::DuplicateChild { .. })
        ));
    }

    #[test]
    fn cross_linked_child_is_caught() {
        // Listing a node that already belongs to another parent must
        // trip either the mutual-link or the two-paths check, whichever
        // the walk reaches first.
        let mut px = small_doc();
        let text = px
            .descendants(px.root())
            .find(|&n| px.is_text(n))
            .expect("doc has a text node");
        let other = px
            .descendants(px.root())
            .find(|&n| px.is_elem(n) && Some(n) != px.parent(text))
            .expect("doc has a second element");
        px.inject_raw_child_for_tests(other, text.index() as u32);
        assert!(matches!(
            px.deep_check(),
            Err(DeepCheckError::ParentLinkBroken { .. } | DeepCheckError::ReachableTwice { .. })
        ));
    }

    #[test]
    fn bad_probability_sum_is_caught() {
        let mut px = small_doc();
        let poss = px
            .descendants(px.root())
            .find(|&n| px.is_poss(n))
            .expect("doc has a possibility");
        px.set_poss_prob(poss, 0.123);
        assert!(matches!(
            px.deep_check(),
            Err(DeepCheckError::Model(
                PxInvariantError::WeightsDontSumToOne { .. }
            ))
        ));
    }

    #[test]
    fn model_violations_are_reported() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 0.4);
        px.add_elem(w, "doc");
        assert!(matches!(
            px.deep_check(),
            Err(DeepCheckError::Model(
                PxInvariantError::WeightsDontSumToOne { .. }
            ))
        ));
    }
}
