//! GraphViz export of probabilistic XML trees.
//!
//! The paper draws its probabilistic trees with ▽ probability nodes,
//! ○ possibility nodes and plain element/text nodes (Fig. 2/3); this
//! module renders the same picture via `dot`:
//!
//! ```text
//! cargo run -p imprecise-bench --bin fig2 | dot -Tsvg > fig2.svg
//! ```

use crate::node::{PxDoc, PxNodeId, PxNodeKind};
use std::fmt::Write as _;

/// Render the document as a GraphViz `digraph` in the paper's Fig. 2
/// style: triangles for probability nodes, circles (labelled with their
/// probability) for possibilities, boxes for elements, plain text leaves.
pub fn to_dot(px: &PxDoc) -> String {
    let mut out = String::from(
        "digraph pxml {\n  rankdir=TB;\n  node [fontname=\"Helvetica\", fontsize=10];\n",
    );
    write_node(px, px.root(), &mut out);
    write_edges(px, px.root(), &mut out);
    out.push_str("}\n");
    out
}

fn node_name(id: PxNodeId) -> String {
    format!("n{}", id.index())
}

fn write_node(px: &PxDoc, node: PxNodeId, out: &mut String) {
    let name = node_name(node);
    match px.kind(node) {
        PxNodeKind::Prob => {
            let _ = writeln!(
                out,
                "  {name} [shape=triangle, orientation=180, label=\"\", \
                 width=0.25, height=0.25, style=filled, fillcolor=gray80];"
            );
        }
        PxNodeKind::Poss(p) => {
            let _ = writeln!(
                out,
                "  {name} [shape=circle, label=\"{p:.2}\", width=0.35];"
            );
        }
        PxNodeKind::Elem { tag, .. } => {
            let _ = writeln!(out, "  {name} [shape=box, label=\"{}\"];", escape(tag));
        }
        PxNodeKind::Text(t) => {
            let _ = writeln!(out, "  {name} [shape=plaintext, label=\"{}\"];", escape(t));
        }
    }
    for &c in px.children(node) {
        write_node(px, c, out);
    }
}

fn write_edges(px: &PxDoc, node: PxNodeId, out: &mut String) {
    for &c in px.children(node) {
        let _ = writeln!(out, "  {} -> {};", node_name(node), node_name(c));
        write_edges(px, c, out);
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_renders_every_node_kind() {
        let px = crate::node::tests::fig2();
        let dot = to_dot(&px);
        assert!(dot.starts_with("digraph pxml {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("shape=triangle"), "probability nodes");
        assert!(dot.contains("shape=circle"), "possibility nodes");
        assert!(dot.contains("label=\"0.50\""), "possibility probabilities");
        assert!(dot.contains("label=\"addressbook\""));
        assert!(dot.contains("label=\"1111\""));
        // Edges exist and reference declared nodes only.
        assert!(dot.contains(" -> "));
    }

    #[test]
    fn labels_are_escaped() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        px.add_text(e, "say \"hi\" \\ bye");
        let dot = to_dot(&px);
        assert!(dot.contains("say \\\"hi\\\" \\\\ bye"));
    }

    #[test]
    fn edge_count_matches_tree_size() {
        let px = crate::node::tests::fig2();
        let dot = to_dot(&px);
        // A tree has exactly (nodes - 1) edges.
        let edges = dot.matches(" -> ").count();
        assert_eq!(edges, px.reachable_count() - 1);
    }
}
