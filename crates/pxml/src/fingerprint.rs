//! Structural fingerprints of probabilistic XML subtrees.
//!
//! Used by simplification (merging deep-equal possibilities) and by tests
//! that compare world multisets.

use crate::node::{PxDoc, PxNodeId, PxNodeKind};

/// A 64-bit structural fingerprint of the px subtree rooted at `node`.
///
/// Deep-equal subtrees (same structure, tags, attribute sets, text and
/// bit-identical possibility probabilities) hash equal; differing subtrees
/// collide only with hash probability.
pub fn px_fingerprint(doc: &PxDoc, node: PxNodeId) -> u64 {
    let mut h = Fnv1a::new();
    hash_node(doc, node, true, &mut h);
    h.finish()
}

impl PxDoc {
    /// The whole document's structural fingerprint
    /// ([`px_fingerprint`] at the root): equal fingerprints mean
    /// bit-identical distributions, which is how the budgeted
    /// integration pipeline is checked against the exhaustive one.
    pub fn fingerprint(&self) -> u64 {
        px_fingerprint(self, self.root())
    }
}

/// Fingerprint of a possibility's *content* — its child sequence — ignoring
/// the possibility's own probability. Two possibilities with equal content
/// fingerprints are candidates for merging (their probabilities add).
pub fn poss_content_fingerprint(doc: &PxDoc, poss: PxNodeId) -> u64 {
    debug_assert!(doc.is_poss(poss));
    let mut h = Fnv1a::new();
    for &c in doc.children(poss) {
        hash_node(doc, c, true, &mut h);
    }
    h.finish()
}

fn hash_node(doc: &PxDoc, node: PxNodeId, include_poss_prob: bool, h: &mut Fnv1a) {
    match doc.kind(node) {
        PxNodeKind::Text(t) => {
            h.write_u8(0x11);
            h.write_str(t);
        }
        PxNodeKind::Elem { tag, attrs } => {
            h.write_u8(0x12);
            h.write_str(tag);
            if !attrs.is_empty() {
                let mut sorted: Vec<_> = attrs
                    .iter()
                    .map(|a| (a.name.as_str(), a.value.as_str()))
                    .collect();
                sorted.sort_unstable();
                for (n, v) in sorted {
                    h.write_u8(0x13);
                    h.write_str(n);
                    h.write_u8(0x14);
                    h.write_str(v);
                }
            }
            h.write_u8(0x15);
            for &c in doc.children(node) {
                hash_node(doc, c, include_poss_prob, h);
            }
            h.write_u8(0x16);
        }
        PxNodeKind::Prob => {
            h.write_u8(0x17);
            for &c in doc.children(node) {
                hash_node(doc, c, include_poss_prob, h);
            }
            h.write_u8(0x18);
        }
        PxNodeKind::Poss(p) => {
            h.write_u8(0x19);
            if include_poss_prob {
                h.write_u64(p.to_bits());
            }
            for &c in doc.children(node) {
                hash_node(doc, c, include_poss_prob, h);
            }
            h.write_u8(0x1A);
        }
    }
}

/// Structural deep-equality of two px subtrees, possibly from different
/// documents. Same semantics as the fingerprint: attribute order is
/// ignored, child order and possibility probabilities matter.
pub fn px_deep_equal(da: &PxDoc, a: PxNodeId, db: &PxDoc, b: PxNodeId) -> bool {
    match (da.kind(a), db.kind(b)) {
        (PxNodeKind::Text(ta), PxNodeKind::Text(tb)) => ta == tb,
        (PxNodeKind::Prob, PxNodeKind::Prob) => children_equal(da, a, db, b),
        (PxNodeKind::Poss(pa), PxNodeKind::Poss(pb)) => pa == pb && children_equal(da, a, db, b),
        (
            PxNodeKind::Elem {
                tag: tag_a,
                attrs: attrs_a,
            },
            PxNodeKind::Elem {
                tag: tag_b,
                attrs: attrs_b,
            },
        ) => {
            if tag_a != tag_b || attrs_a.len() != attrs_b.len() {
                return false;
            }
            for attr in attrs_a {
                match attrs_b.iter().find(|x| x.name == attr.name) {
                    Some(other) if other.value == attr.value => {}
                    _ => return false,
                }
            }
            children_equal(da, a, db, b)
        }
        _ => false,
    }
}

fn children_equal(da: &PxDoc, a: PxNodeId, db: &PxDoc, b: PxNodeId) -> bool {
    let ca = da.children(a);
    let cb = db.children(b);
    ca.len() == cb.len()
        && ca
            .iter()
            .zip(cb.iter())
            .all(|(&x, &y)| px_deep_equal(da, x, db, y))
}

struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn write_u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    #[inline]
    fn write_str(&mut self, s: &str) {
        for &b in s.as_bytes() {
            self.write_u8(b);
        }
        self.write_u8(0x00);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PxDoc;

    fn two_poss_doc(p1: f64, text1: &str, p2: f64, text2: &str) -> PxDoc {
        let mut px = PxDoc::new();
        let a = px.add_poss(px.root(), p1);
        let ea = px.add_elem(a, "doc");
        px.add_text(ea, text1.to_string());
        let b = px.add_poss(px.root(), p2);
        let eb = px.add_elem(b, "doc");
        px.add_text(eb, text2.to_string());
        px
    }

    #[test]
    fn identical_trees_hash_equal() {
        let a = two_poss_doc(0.5, "x", 0.5, "y");
        let b = two_poss_doc(0.5, "x", 0.5, "y");
        assert_eq!(px_fingerprint(&a, a.root()), px_fingerprint(&b, b.root()));
    }

    #[test]
    fn probability_changes_fingerprint() {
        let a = two_poss_doc(0.5, "x", 0.5, "y");
        let b = two_poss_doc(0.4, "x", 0.6, "y");
        assert_ne!(px_fingerprint(&a, a.root()), px_fingerprint(&b, b.root()));
    }

    #[test]
    fn content_changes_fingerprint() {
        let a = two_poss_doc(0.5, "x", 0.5, "y");
        let b = two_poss_doc(0.5, "x", 0.5, "z");
        assert_ne!(px_fingerprint(&a, a.root()), px_fingerprint(&b, b.root()));
    }

    #[test]
    fn poss_content_fingerprint_ignores_weight() {
        let a = two_poss_doc(0.3, "same", 0.7, "same");
        let kids = a.children(a.root()).to_vec();
        assert_eq!(
            poss_content_fingerprint(&a, kids[0]),
            poss_content_fingerprint(&a, kids[1])
        );
    }

    #[test]
    fn poss_content_fingerprint_sees_content() {
        let a = two_poss_doc(0.5, "x", 0.5, "y");
        let kids = a.children(a.root()).to_vec();
        assert_ne!(
            poss_content_fingerprint(&a, kids[0]),
            poss_content_fingerprint(&a, kids[1])
        );
    }
}
