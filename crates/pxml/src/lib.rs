//! # imprecise-pxml — the probabilistic XML data model
//!
//! This crate implements §II of the IMPrECISE paper: an XML tree extended
//! with two extra node types that compactly represents *all possible states
//! of the real world* (the possible worlds) in one document.
//!
//! * **Probability nodes** (`▽`, [`PxNodeKind::Prob`]) are choice points.
//!   Their children are possibility nodes.
//! * **Possibility nodes** (`○`, [`PxNodeKind::Poss`]) carry a probability;
//!   sibling possibilities are mutually exclusive and their probabilities
//!   sum to 1. Their children are regular XML nodes.
//! * **Regular nodes** ([`PxNodeKind::Elem`], [`PxNodeKind::Text`]) are
//!   ordinary XML content. Element children may again be probability nodes.
//!
//! The root of a [`PxDoc`] is always a probability node (as in the paper).
//! A document in which every probability node has a single possibility of
//! probability 1 is *certain* — it represents exactly one world.
//!
//! ## Relaxed vs strict layering
//!
//! The paper presents a strictly layered tree (every level alternates
//! between node types). This implementation uses the equivalent *relaxed*
//! form in which certain content hangs directly under its parent element
//! without a trivial `prob(poss@1)` wrapper; [`PxDoc::validate`] checks the
//! relaxed invariants and the conversions in [`convert`] can produce or
//! absorb the strict form. The relaxed form is what the paper's own
//! simplification rules produce, and it keeps node counts honest.
//!
//! ## Worlds, counting, and the data explosion
//!
//! [`worlds`] enumerates possible worlds with their probabilities (for
//! small documents and for correctness oracles in tests); analytic counters
//! compute the number of worlds and representation sizes without
//! enumeration. [`count`] also computes the **unfactored** representation
//! size — the size the document would have if every element merged its
//! independent choice points into a single probability node by
//! cross-product, which is the representation the paper's own system used
//! and the quantity behind Table I and Figure 5. The gap between factored
//! and unfactored sizes is the "taming data explosion" effect measured by
//! the ablation bench.
//!
//! ## Example
//!
//! ```
//! use imprecise_pxml::PxDoc;
//!
//! // The paper's Fig. 2: uncertain integration of two address books.
//! let mut px = PxDoc::new();
//! let root = px.root();
//! // Possibility 1 (p=0.5): one person John, phone uncertain.
//! let w1 = px.add_poss(root, 0.5);
//! let ab1 = px.add_elem(w1, "addressbook");
//! let p1 = px.add_elem(ab1, "person");
//! px.add_text_elem(p1, "nm", "John");
//! let tel_choice = px.add_prob(p1);
//! let t1 = px.add_poss(tel_choice, 0.5);
//! px.add_text_elem(t1, "tel", "1111");
//! let t2 = px.add_poss(tel_choice, 0.5);
//! px.add_text_elem(t2, "tel", "2222");
//! // Possibility 2 (p=0.5): two distinct persons named John.
//! let w2 = px.add_poss(root, 0.5);
//! let ab2 = px.add_elem(w2, "addressbook");
//! for tel in ["1111", "2222"] {
//!     let p = px.add_elem(ab2, "person");
//!     px.add_text_elem(p, "nm", "John");
//!     px.add_text_elem(p, "tel", tel);
//! }
//! px.validate().unwrap();
//! assert_eq!(px.world_count(), 3); // the paper's three possible worlds
//! ```

pub mod codec;
pub mod convert;
pub mod count;
pub mod deep;
pub mod dot;
pub mod fingerprint;
pub mod node;
pub mod prune;
pub mod simplify;
pub mod validate;
pub mod weights;
pub mod worlds;

pub use convert::{from_xml, parse_annotated, to_annotated_xml};
pub use count::{NodeBreakdown, UnfactoredError};
pub use deep::DeepCheckError;
pub use dot::to_dot;
pub use fingerprint::{px_deep_equal, px_fingerprint};
pub use node::{ArenaStats, CompactMap, PxDoc, PxNodeId, PxNodeKind, SpliceMap};
pub use prune::PruneStats;
pub use validate::PxInvariantError;
pub use weights::ChoiceWeights;
pub use worlds::{TooManyWorlds, World, WorldIter};

/// Tolerance used when checking that possibility weights sum to one and in
/// other floating-point probability comparisons.
pub const PROB_EPSILON: f64 = 1e-9;
