//! Arena representation of probabilistic XML trees.

use imprecise_xmlkit::{Attr, NodeId as XmlNodeId, NodeKind as XmlNodeKind, XmlDoc};

/// Handle to a node inside a [`PxDoc`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PxNodeId(pub(crate) u32);

impl PxNodeId {
    /// Raw arena index, for dense side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Payload of a probabilistic XML node (see the crate docs for the model).
#[derive(Debug, Clone, PartialEq)]
pub enum PxNodeKind {
    /// A probability node (`▽`): a choice point whose children are
    /// mutually exclusive possibility nodes.
    Prob,
    /// A possibility node (`○`) with its probability of being the chosen
    /// alternative of its parent probability node.
    Poss(f64),
    /// A regular element node.
    Elem {
        /// Tag name.
        tag: String,
        /// Attributes in document order.
        attrs: Vec<Attr>,
    },
    /// A regular text node.
    Text(String),
}

impl PxNodeKind {
    /// True for regular XML nodes (element or text).
    #[inline]
    pub fn is_regular(&self) -> bool {
        matches!(self, PxNodeKind::Elem { .. } | PxNodeKind::Text(_))
    }
}

#[derive(Debug, Clone)]
pub(crate) struct PxNodeData {
    pub(crate) kind: PxNodeKind,
    pub(crate) parent: Option<PxNodeId>,
    pub(crate) children: Vec<PxNodeId>,
}

/// A probabilistic XML document.
///
/// The root is always a probability node; each of its possibilities holds
/// one root element of a possible world. Nodes live in a flat arena.
///
/// Detached nodes can temporarily exist while the integration engine
/// assembles a result; [`PxDoc::reachable_count`] and the counters in
/// [`crate::count`] only consider nodes reachable from the root.
/// [`PxDoc::compact`] reclaims detached slots when they accumulate.
#[derive(Debug, Clone)]
pub struct PxDoc {
    pub(crate) nodes: Vec<PxNodeData>,
    pub(crate) root: PxNodeId,
    /// Conservative detachment marker: `false` guarantees every arena
    /// slot is reachable from the root, so [`PxDoc::arena_stats`] can
    /// answer in O(1) instead of walking the document. Set by the
    /// detaching mutators ([`detach`](PxDoc::detach),
    /// [`splice`](PxDoc::splice), a [`reset_children`](PxDoc::reset_children)
    /// that leaves a former child behind), cleared by
    /// [`compact`](PxDoc::compact). `true` only means a detach *may*
    /// have left garbage — the slow count remains the authority.
    pub(crate) maybe_detached: bool,
}

/// Arena occupancy of a [`PxDoc`]: how many slots are reachable from the
/// root (`live`) out of all allocated slots (`total`). The difference is
/// detached garbage that [`PxDoc::compact`] can reclaim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Slots reachable from the root.
    pub live: usize,
    /// All allocated slots, reachable or not.
    pub total: usize,
}

impl ArenaStats {
    /// Detached (unreachable) slots: `total - live`.
    #[inline]
    pub fn detached(self) -> usize {
        self.total - self.live
    }

    /// Fraction of slots that are live (`1.0` for an empty arena).
    pub fn occupancy(self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.live as f64 / self.total as f64
        }
    }
}

/// Stable id-remap returned by [`PxDoc::compact`].
///
/// Surviving nodes keep their relative arena order, so the map is
/// monotone: `old < old'` implies `remap(old) < remap(old')` whenever both
/// survive. Dropped (detached) nodes map to `None`.
#[derive(Debug, Clone)]
pub struct CompactMap {
    map: Vec<Option<PxNodeId>>,
    dropped: usize,
}

impl CompactMap {
    /// New id of `old`, or `None` if the node was detached and dropped.
    #[inline]
    pub fn remap(&self, old: PxNodeId) -> Option<PxNodeId> {
        self.map.get(old.index()).copied().flatten()
    }

    /// Number of arena slots reclaimed by the compaction.
    #[inline]
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// True when the compaction was a no-op (every slot survived with its
    /// original id).
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.dropped == 0
    }
}

/// Id offset applied by [`PxDoc::splice_scratch`]: scratch node `i`
/// (for `i ≥ 1`) became destination node `base + i - 1`.
#[derive(Debug, Clone, Copy)]
pub struct SpliceMap {
    base: usize,
}

impl SpliceMap {
    /// Destination id of scratch node `src` (not the scratch root, which
    /// is never spliced).
    #[inline]
    pub fn remap(self, src: PxNodeId) -> PxNodeId {
        debug_assert!(src.index() > 0, "the scratch root itself is not spliced");
        PxNodeId((self.base + src.index() - 1) as u32)
    }
}

impl Default for PxDoc {
    fn default() -> Self {
        Self::new()
    }
}

impl PxDoc {
    /// Create an empty document: a root probability node with no
    /// possibilities yet. Add at least one possibility before use.
    pub fn new() -> Self {
        PxDoc {
            nodes: vec![PxNodeData {
                kind: PxNodeKind::Prob,
                parent: None,
                children: Vec::new(),
            }],
            root: PxNodeId(0),
            maybe_detached: false,
        }
    }

    /// The root probability node.
    #[inline]
    pub fn root(&self) -> PxNodeId {
        self.root
    }

    /// Total number of arena slots (including detached nodes).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn node(&self, id: PxNodeId) -> &PxNodeData {
        &self.nodes[id.index()]
    }

    #[inline]
    fn node_mut(&mut self, id: PxNodeId) -> &mut PxNodeData {
        &mut self.nodes[id.index()]
    }

    /// The node payload.
    #[inline]
    pub fn kind(&self, id: PxNodeId) -> &PxNodeKind {
        &self.node(id).kind
    }

    /// Parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, id: PxNodeId) -> Option<PxNodeId> {
        self.node(id).parent
    }

    /// Children of a node in document order.
    #[inline]
    pub fn children(&self, id: PxNodeId) -> &[PxNodeId] {
        &self.node(id).children
    }

    /// True if `id` is a probability node.
    #[inline]
    pub fn is_prob(&self, id: PxNodeId) -> bool {
        matches!(self.node(id).kind, PxNodeKind::Prob)
    }

    /// True if `id` is a possibility node.
    #[inline]
    pub fn is_poss(&self, id: PxNodeId) -> bool {
        matches!(self.node(id).kind, PxNodeKind::Poss(_))
    }

    /// True if `id` is an element node.
    #[inline]
    pub fn is_elem(&self, id: PxNodeId) -> bool {
        matches!(self.node(id).kind, PxNodeKind::Elem { .. })
    }

    /// True if `id` is a text node.
    #[inline]
    pub fn is_text(&self, id: PxNodeId) -> bool {
        matches!(self.node(id).kind, PxNodeKind::Text(_))
    }

    /// Element tag, or `None` for other node kinds.
    #[inline]
    pub fn tag(&self, id: PxNodeId) -> Option<&str> {
        match &self.node(id).kind {
            PxNodeKind::Elem { tag, .. } => Some(tag),
            _ => None,
        }
    }

    /// Text payload, or `None` for other node kinds.
    #[inline]
    pub fn text(&self, id: PxNodeId) -> Option<&str> {
        match &self.node(id).kind {
            PxNodeKind::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Probability of a possibility node, or `None` for other kinds.
    #[inline]
    pub fn poss_prob(&self, id: PxNodeId) -> Option<f64> {
        match self.node(id).kind {
            PxNodeKind::Poss(p) => Some(p),
            _ => None,
        }
    }

    /// Set the probability of a possibility node.
    ///
    /// # Panics
    /// Panics if `id` is not a possibility node.
    pub fn set_poss_prob(&mut self, id: PxNodeId, p: f64) {
        match &mut self.node_mut(id).kind {
            PxNodeKind::Poss(old) => *old = p,
            // lint:allow(panic-in-lib, documented API contract: panics with set_poss_prob on non-possibility node other:?)
            other => panic!("set_poss_prob on non-possibility node {other:?}"),
        }
    }

    /// Attributes of an element (empty for other kinds).
    pub fn attrs(&self, id: PxNodeId) -> &[Attr] {
        match &self.node(id).kind {
            PxNodeKind::Elem { attrs, .. } => attrs,
            _ => &[],
        }
    }

    /// Value of attribute `name` on element `id`.
    pub fn attr(&self, id: PxNodeId, name: &str) -> Option<&str> {
        self.attrs(id)
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Set (or replace) an attribute on an element node.
    ///
    /// # Panics
    /// Panics if `id` is not an element.
    pub fn set_attr(&mut self, id: PxNodeId, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        match &mut self.node_mut(id).kind {
            PxNodeKind::Elem { attrs, .. } => {
                if let Some(a) = attrs.iter_mut().find(|a| a.name == name) {
                    a.value = value;
                } else {
                    attrs.push(Attr { name, value });
                }
            }
            // lint:allow(panic-in-lib, documented API contract: panics with set_attr on non-element node other:?)
            other => panic!("set_attr on non-element node {other:?}"),
        }
    }

    fn push(&mut self, parent: PxNodeId, kind: PxNodeKind) -> PxNodeId {
        let id = PxNodeId(self.nodes.len() as u32);
        self.nodes.push(PxNodeData {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.node_mut(parent).children.push(id);
        id
    }

    /// Append a probability node under an element or possibility node.
    ///
    /// A probability node directly under a possibility is a *nested
    /// choice* — a choice whose availability depends on the outer
    /// possibility being chosen. Such nodes arise when integrating
    /// documents that already carry uncertainty; the strict layered form
    /// of the paper is recovered by flattening (see `count`).
    pub fn add_prob(&mut self, parent: PxNodeId) -> PxNodeId {
        debug_assert!(
            self.is_elem(parent) || self.is_poss(parent),
            "prob nodes hang under elements or possibilities"
        );
        self.push(parent, PxNodeKind::Prob)
    }

    /// Append a possibility node with probability `p` under a probability
    /// node.
    pub fn add_poss(&mut self, parent: PxNodeId, p: f64) -> PxNodeId {
        debug_assert!(self.is_prob(parent), "poss nodes hang under prob nodes");
        self.push(parent, PxNodeKind::Poss(p))
    }

    /// Append an element node under a possibility or element node.
    pub fn add_elem(&mut self, parent: PxNodeId, tag: impl Into<String>) -> PxNodeId {
        debug_assert!(
            self.is_poss(parent) || self.is_elem(parent),
            "elements hang under possibilities or elements"
        );
        self.push(
            parent,
            PxNodeKind::Elem {
                tag: tag.into(),
                attrs: Vec::new(),
            },
        )
    }

    /// Append a text node under a possibility or element node.
    pub fn add_text(&mut self, parent: PxNodeId, text: impl Into<String>) -> PxNodeId {
        debug_assert!(
            self.is_poss(parent) || self.is_elem(parent),
            "text hangs under possibilities or elements"
        );
        self.push(parent, PxNodeKind::Text(text.into()))
    }

    /// Convenience: `<tag>text</tag>` under `parent`.
    pub fn add_text_elem(
        &mut self,
        parent: PxNodeId,
        tag: impl Into<String>,
        text: impl Into<String>,
    ) -> PxNodeId {
        let el = self.add_elem(parent, tag);
        self.add_text(el, text);
        el
    }

    /// Deep-copy a subtree of an ordinary [`XmlDoc`] as a new child of
    /// `parent`. Returns the id of the copied root.
    pub fn graft_xml(&mut self, parent: PxNodeId, src: &XmlDoc, src_node: XmlNodeId) -> PxNodeId {
        match src.kind(src_node) {
            XmlNodeKind::Element { tag, attrs } => {
                let el = self.add_elem(parent, tag.clone());
                for a in attrs {
                    self.set_attr(el, a.name.clone(), a.value.clone());
                }
                for &c in src.children(src_node) {
                    self.graft_xml(el, src, c);
                }
                el
            }
            XmlNodeKind::Text(t) => self.add_text(parent, t.clone()),
        }
    }

    /// Deep-copy a subtree of another [`PxDoc`] (or of `self`, via a
    /// snapshot) as a new child of `parent`.
    pub fn graft_px(&mut self, parent: PxNodeId, src: &PxDoc, src_node: PxNodeId) -> PxNodeId {
        self.graft_px_mapped(parent, src, src_node, &mut |_, _| {})
    }

    /// [`graft_px`](Self::graft_px) that additionally reports the id each
    /// source node was copied to, via `on_copy(src_id, new_id)`. Used when
    /// bookkeeping (e.g. resumable-refinement frontiers) holds ids into
    /// the source arena that must be re-anchored in the destination.
    pub fn graft_px_mapped(
        &mut self,
        parent: PxNodeId,
        src: &PxDoc,
        src_node: PxNodeId,
        on_copy: &mut impl FnMut(PxNodeId, PxNodeId),
    ) -> PxNodeId {
        let id = match src.kind(src_node).clone() {
            PxNodeKind::Prob => self.push(parent, PxNodeKind::Prob),
            PxNodeKind::Poss(p) => self.push(parent, PxNodeKind::Poss(p)),
            PxNodeKind::Elem { tag, attrs } => self.push(parent, PxNodeKind::Elem { tag, attrs }),
            PxNodeKind::Text(t) => self.push(parent, PxNodeKind::Text(t)),
        };
        on_copy(src_node, id);
        for &c in src.children(src_node) {
            self.graft_px_mapped(id, src, c, on_copy);
        }
        id
    }

    /// Splice an entire scratch document into this arena in one linear
    /// pass. Every non-root node of `src` moves here with its id shifted
    /// by a constant offset (scratch node `i` becomes node `base + i - 1`
    /// where `base` was this arena's length), and the scratch root's
    /// children are appended, in order, to `parent`'s child list.
    ///
    /// This is a [`graft_px_mapped`](Self::graft_px_mapped) of every root
    /// child at once, but by *moving* arena slots instead of recursively
    /// re-allocating nodes: tags, attributes, text and child vectors
    /// cross arenas untouched, and the id remap is offset arithmetic. It
    /// requires (and panics unless) `src` has no detached slots — true by
    /// construction for a freshly emitted scratch document. Returns the
    /// remapped former children of the scratch root plus the offset map.
    pub fn splice_scratch(&mut self, parent: PxNodeId, src: PxDoc) -> (Vec<PxNodeId>, SpliceMap) {
        assert_eq!(src.root().index(), 0, "scratch root is the first slot");
        let map = SpliceMap {
            base: self.nodes.len(),
        };
        self.nodes.reserve(src.nodes.len() - 1);
        let mut slots = src.nodes.into_iter();
        // lint:allow(expect-in-lib, holds by construction: scratch has a root)
        let root = slots.next().expect("scratch has a root");
        let attached: Vec<PxNodeId> = root.children.iter().map(|&c| map.remap(c)).collect();
        for mut node in slots {
            node.parent = Some(match node.parent {
                Some(p) if p.index() == 0 => parent,
                Some(p) => map.remap(p),
                // lint:allow(panic-in-lib, documented API contract: panics with scratch documents have no detached slots)
                None => panic!("scratch documents have no detached slots"),
            });
            for c in &mut node.children {
                *c = map.remap(*c);
            }
            self.nodes.push(node);
        }
        self.node_mut(parent).children.extend_from_slice(&attached);
        (attached, map)
    }

    /// Detach `child` from its parent's child list (the node stays in the
    /// arena but becomes unreachable). Used by simplification.
    pub fn detach(&mut self, child: PxNodeId) {
        if let Some(parent) = self.node(child).parent {
            let list = &mut self.node_mut(parent).children;
            if let Some(pos) = list.iter().position(|&c| c == child) {
                list.remove(pos);
            }
            self.node_mut(child).parent = None;
            self.maybe_detached = true;
        }
    }

    /// Replace `parent`'s child list wholesale: current children are
    /// detached, every node in `children` is (re-)attached in the given
    /// order. Used by refinement rollback to restore a choice point's
    /// original possibilities after a failed re-emission.
    ///
    /// Every node in `children` must be detached or already a child of
    /// `parent` (re-parenting a node that is still linked elsewhere
    /// would corrupt the other parent's child list).
    pub fn reset_children(&mut self, parent: PxNodeId, children: Vec<PxNodeId>) {
        let old = std::mem::take(&mut self.node_mut(parent).children);
        for &c in &old {
            self.node_mut(c).parent = None;
        }
        for &c in &children {
            debug_assert!(
                self.node(c).parent.is_none(),
                "reset_children child must be detached"
            );
            self.node_mut(c).parent = Some(parent);
        }
        self.node_mut(parent).children = children;
        // Only a former child that was *not* re-attached leaves garbage
        // behind; the common refine-commit call re-attaches every one.
        if old.iter().any(|&c| self.node(c).parent.is_none()) {
            self.maybe_detached = true;
        }
    }

    /// Drop every arena slot from index `mark` on — the nodes appended
    /// since `mark` was read off [`arena_len`](Self::arena_len). Used by
    /// refinement rollback: node creation only ever appends, so
    /// truncating back to a recorded mark (after re-linking the
    /// surviving structure, see [`reset_children`](Self::reset_children))
    /// restores the arena bit for bit.
    ///
    /// # Panics
    /// Panics in debug builds if a surviving node still references a
    /// dropped one, or if `mark` would drop the root.
    pub fn truncate_arena(&mut self, mark: usize) {
        debug_assert!(mark > self.root.index() && mark <= self.nodes.len());
        #[cfg(debug_assertions)]
        for node in &self.nodes[..mark] {
            debug_assert!(
                node.children.iter().all(|c| c.index() < mark),
                "surviving node references a truncated one"
            );
        }
        self.nodes.truncate(mark);
    }

    /// Replace `old` in its parent's child list with `replacements`
    /// (splicing them in at the same position). `old` becomes detached.
    ///
    /// # Panics
    /// Panics if `old` has no parent.
    pub fn splice(&mut self, old: PxNodeId, replacements: &[PxNodeId]) {
        // lint:allow(expect-in-lib, holds by construction: splice target has a parent)
        let parent = self.node(old).parent.expect("splice target has a parent");
        let pos = self
            .node(parent)
            .children
            .iter()
            .position(|&c| c == old)
            // lint:allow(expect-in-lib, holds by construction: old is a child of its parent)
            .expect("old is a child of its parent");
        let mut new_children = self.node(parent).children.clone();
        new_children.splice(pos..=pos, replacements.iter().copied());
        self.node_mut(parent).children = new_children;
        self.node_mut(old).parent = None;
        self.maybe_detached = true;
        for &r in replacements {
            self.node_mut(r).parent = Some(parent);
        }
    }

    /// Pre-order traversal of the subtree rooted at `id` (inclusive).
    pub fn descendants(&self, id: PxNodeId) -> PxDescendants<'_> {
        PxDescendants {
            doc: self,
            stack: vec![id],
        }
    }

    /// Number of nodes reachable from the root (the factored representation
    /// size; the paper's headline metric is the *unfactored* variant, see
    /// [`crate::count`]).
    pub fn reachable_count(&self) -> usize {
        self.descendants(self.root).count()
    }

    /// Live-vs-total arena occupancy. `live` counts slots reachable from
    /// the root; the rest are detached garbage left behind by
    /// simplification, refinement, or feedback.
    pub fn arena_stats(&self) -> ArenaStats {
        let total = self.arena_len();
        // Documents that never detached anything are fully live — no
        // need to walk the arena to prove it. Refinement is append-only,
        // so its per-step stats hit this path. A wrongly cleared marker
        // cannot hide: [`deep_check`](Self::deep_check) compares this
        // figure against its own independent walk
        // (`ArenaAccountingDrift`), and the strict-invariants shadow
        // checks run that after every mutation.
        if !self.maybe_detached {
            return ArenaStats { live: total, total };
        }
        ArenaStats {
            live: self.reachable_count(),
            total,
        }
    }

    /// Drop every arena slot not reachable from the root, renumbering the
    /// survivors densely while preserving their relative order (so the
    /// returned [`CompactMap`] is monotone and the root keeps id 0).
    ///
    /// Document structure, order, and probabilities are untouched — the
    /// fingerprint, world set, and query answers are identical before and
    /// after. Only arena ids change; callers holding [`PxNodeId`]s across
    /// a compaction must translate them through the returned map.
    pub fn compact(&mut self) -> CompactMap {
        let n = self.nodes.len();
        let mut keep = vec![false; n];
        for id in self.descendants(self.root) {
            keep[id.index()] = true;
        }
        let mut map: Vec<Option<PxNodeId>> = vec![None; n];
        let mut next: u32 = 0;
        for (i, &kept) in keep.iter().enumerate() {
            if kept {
                map[i] = Some(PxNodeId(next));
                next += 1;
            }
        }
        let dropped = n - next as usize;
        // Either way the arena is fully live from here on.
        self.maybe_detached = false;
        if dropped == 0 {
            return CompactMap { map, dropped };
        }
        let old = std::mem::take(&mut self.nodes);
        self.nodes = old
            .into_iter()
            .enumerate()
            .filter(|&(i, _)| keep[i])
            .map(|(_, node)| PxNodeData {
                kind: node.kind,
                parent: node.parent.and_then(|p| map[p.index()]),
                children: node
                    .children
                    .iter()
                    // lint:allow(expect-in-lib, holds by construction: child of a reachable node is reachable)
                    .map(|c| map[c.index()].expect("child of a reachable node is reachable"))
                    .collect(),
            })
            .collect();
        // lint:allow(expect-in-lib, holds by construction: root always survives compaction)
        self.root = map[self.root.index()].expect("root always survives compaction");
        CompactMap { map, dropped }
    }

    /// All probability nodes reachable from the root, in document order.
    pub fn prob_nodes(&self) -> Vec<PxNodeId> {
        self.descendants(self.root)
            .filter(|&n| self.is_prob(n))
            .collect()
    }

    /// True when the document is certain: every reachable probability node
    /// has exactly one possibility with probability (numerically) 1.
    pub fn is_certain(&self) -> bool {
        self.prob_nodes().iter().all(|&p| {
            let kids = self.children(p);
            kids.len() == 1
                && self
                    .poss_prob(kids[0])
                    .is_some_and(|w| (w - 1.0).abs() < crate::PROB_EPSILON)
        })
    }

    /// The possibility children of a probability node together with their
    /// probabilities.
    pub fn possibilities(&self, prob: PxNodeId) -> Vec<(PxNodeId, f64)> {
        debug_assert!(self.is_prob(prob));
        self.children(prob)
            .iter()
            // lint:allow(expect-in-lib, holds by construction: prob child is poss)
            .map(|&c| (c, self.poss_prob(c).expect("prob child is poss")))
            .collect()
    }

    /// Index of `poss` within its parent probability node's child list.
    pub fn poss_index(&self, poss: PxNodeId) -> usize {
        // lint:allow(expect-in-lib, holds by construction: poss has a parent)
        let parent = self.parent(poss).expect("poss has a parent");
        self.children(parent)
            .iter()
            .position(|&c| c == poss)
            // lint:allow(expect-in-lib, holds by construction: poss is a child of its parent)
            .expect("poss is a child of its parent")
    }

    /// Concatenated text of all *certain* descendant text nodes of `id`
    /// (descending through elements only — stops at probability nodes).
    ///
    /// For a fully certain subtree this is the XPath `string()` value.
    pub fn certain_text(&self, id: PxNodeId) -> String {
        let mut out = String::new();
        self.certain_text_into(id, &mut out);
        out
    }

    fn certain_text_into(&self, id: PxNodeId, out: &mut String) {
        match self.kind(id) {
            PxNodeKind::Text(t) => out.push_str(t),
            PxNodeKind::Elem { .. } => {
                for &c in self.children(id) {
                    self.certain_text_into(c, out);
                }
            }
            PxNodeKind::Prob | PxNodeKind::Poss(_) => {}
        }
    }
}

/// Pre-order iterator returned by [`PxDoc::descendants`].
pub struct PxDescendants<'a> {
    doc: &'a PxDoc,
    stack: Vec<PxNodeId>,
}

impl Iterator for PxDescendants<'_> {
    type Item = PxNodeId;

    fn next(&mut self) -> Option<PxNodeId> {
        let id = self.stack.pop()?;
        for &c in self.doc.children(id).iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

/// Test-only fault injection for the `deep_check` mutation tests:
/// append a raw child id to `parent` without back-linking or
/// bounds-checking it. No public API can create such a link — which is
/// exactly what those tests need to prove the verifier would catch one
/// if a future bug did.
#[cfg(test)]
impl PxDoc {
    pub(crate) fn inject_raw_child_for_tests(&mut self, parent: PxNodeId, child: u32) {
        self.node_mut(parent).children.push(PxNodeId(child));
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use imprecise_xmlkit::parse;

    /// Build the paper's Fig. 2 tree (used by several test modules).
    pub(crate) fn fig2() -> PxDoc {
        let mut px = PxDoc::new();
        let root = px.root();
        let w1 = px.add_poss(root, 0.5);
        let ab1 = px.add_elem(w1, "addressbook");
        let p1 = px.add_elem(ab1, "person");
        px.add_text_elem(p1, "nm", "John");
        let tel_choice = px.add_prob(p1);
        let t1 = px.add_poss(tel_choice, 0.5);
        px.add_text_elem(t1, "tel", "1111");
        let t2 = px.add_poss(tel_choice, 0.5);
        px.add_text_elem(t2, "tel", "2222");
        let w2 = px.add_poss(root, 0.5);
        let ab2 = px.add_elem(w2, "addressbook");
        for tel in ["1111", "2222"] {
            let p = px.add_elem(ab2, "person");
            px.add_text_elem(p, "nm", "John");
            px.add_text_elem(p, "tel", tel);
        }
        px
    }

    #[test]
    fn build_fig2_structure() {
        let px = fig2();
        assert!(px.is_prob(px.root()));
        let poss = px.possibilities(px.root());
        assert_eq!(poss.len(), 2);
        assert!((poss[0].1 - 0.5).abs() < 1e-12);
        assert!(!px.is_certain());
    }

    #[test]
    fn certain_doc_detected() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "a");
        px.add_text(e, "x");
        assert!(px.is_certain());
    }

    #[test]
    fn graft_xml_copies_subtree() {
        let xml = parse("<person><nm>John</nm><tel>1111</tel></person>").unwrap();
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let copied = px.graft_xml(w, &xml, xml.root());
        assert_eq!(px.tag(copied), Some("person"));
        assert_eq!(px.certain_text(copied), "John1111");
    }

    #[test]
    fn graft_px_copies_probabilistic_subtree() {
        let src = fig2();
        let mut dst = PxDoc::new();
        let w = dst.add_poss(dst.root(), 1.0);
        let e = dst.add_elem(w, "wrapper");
        // Graft the whole first possibility's addressbook.
        let src_poss = src.children(src.root())[0];
        let src_ab = src.children(src_poss)[0];
        let copied = dst.graft_px(e, &src, src_ab);
        assert_eq!(dst.tag(copied), Some("addressbook"));
        // The nested tel choice came along.
        let person = dst.children(copied)[0];
        assert!(dst.children(person).iter().any(|&c| dst.is_prob(c)));
    }

    #[test]
    fn splice_replaces_in_place() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "list");
        let a = px.add_text_elem(e, "i", "a");
        let b = px.add_text_elem(e, "i", "b");
        let c = px.add_text_elem(e, "i", "c");
        // Replace b with two fresh items. Create them detached under e then
        // splice (they are appended first, then moved).
        let x = px.add_text_elem(e, "i", "x");
        let y = px.add_text_elem(e, "i", "y");
        px.detach(x);
        px.detach(y);
        px.splice(b, &[x, y]);
        let kids = px.children(e).to_vec();
        assert_eq!(kids, vec![a, x, y, c]);
        assert_eq!(px.parent(x), Some(e));
        assert_eq!(px.parent(b), None);
    }

    #[test]
    fn detach_makes_unreachable() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "a");
        let before = px.reachable_count();
        let child = px.add_text_elem(e, "b", "t");
        assert_eq!(px.reachable_count(), before + 2);
        px.detach(child);
        assert_eq!(px.reachable_count(), before);
        assert!(px.arena_len() > px.reachable_count());
    }

    #[test]
    fn reset_children_restores_a_detached_list() {
        let mut px = PxDoc::new();
        let root = px.root();
        let p1 = px.add_poss(root, 0.5);
        let p2 = px.add_poss(root, 0.5);
        let original = px.children(root).to_vec();
        // Replace the possibilities, then roll back.
        for c in original.clone() {
            px.detach(c);
        }
        let p3 = px.add_poss(root, 1.0);
        assert_eq!(px.children(root), [p3]);
        px.reset_children(root, original.clone());
        assert_eq!(px.children(root), original.as_slice());
        assert_eq!(px.parent(p1), Some(root));
        assert_eq!(px.parent(p2), Some(root));
        assert_eq!(px.parent(p3), None);
    }

    #[test]
    fn poss_index_reports_position() {
        let px = fig2();
        let poss = px.children(px.root()).to_vec();
        assert_eq!(px.poss_index(poss[0]), 0);
        assert_eq!(px.poss_index(poss[1]), 1);
    }

    #[test]
    fn attrs_on_px_elements() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "movie");
        px.set_attr(e, "year", "1995");
        assert_eq!(px.attr(e, "year"), Some("1995"));
        px.set_attr(e, "year", "1996");
        assert_eq!(px.attr(e, "year"), Some("1996"));
        assert_eq!(px.attrs(e).len(), 1);
    }

    #[test]
    fn prob_nodes_lists_reachable_choice_points() {
        let px = fig2();
        assert_eq!(px.prob_nodes().len(), 2); // root + tel choice
    }

    #[test]
    fn arena_stats_track_detachment() {
        let mut px = fig2();
        let before = px.arena_stats();
        assert_eq!(before.live, before.total);
        assert_eq!(before.detached(), 0);
        assert!((before.occupancy() - 1.0).abs() < 1e-12);
        let w2 = px.children(px.root())[1];
        let dropped = px.descendants(w2).count();
        px.detach(w2);
        let after = px.arena_stats();
        assert_eq!(after.total, before.total);
        assert_eq!(after.detached(), dropped);
        assert!(after.occupancy() < 1.0);
    }

    #[test]
    fn compact_on_fully_live_arena_is_identity() {
        let mut px = fig2();
        let ids: Vec<PxNodeId> = px.descendants(px.root()).collect();
        let map = px.compact();
        assert!(map.is_identity());
        assert_eq!(map.dropped(), 0);
        for id in ids {
            assert_eq!(map.remap(id), Some(id));
        }
    }

    #[test]
    fn compact_reclaims_detached_slots_and_remaps_monotonically() {
        let mut px = fig2();
        let w1 = px.children(px.root())[0];
        let survivor = px.children(px.root())[1];
        px.detach(w1);
        let live = px.reachable_count();
        let total = px.arena_len();
        assert!(total > live);
        let map = px.compact();
        assert_eq!(map.dropped(), total - live);
        assert_eq!(px.arena_len(), live);
        assert_eq!(px.arena_stats().detached(), 0);
        assert_eq!(map.remap(w1), None);
        let new_survivor = map.remap(survivor).expect("reachable node survives");
        assert!(new_survivor.index() <= survivor.index());
        assert_eq!(px.poss_prob(new_survivor), Some(0.5));
        px.set_poss_prob(new_survivor, 1.0);
        // Relative order of surviving ids is preserved.
        let mut last = None;
        for old in 0..total {
            if let Some(new) = map.remap(PxNodeId(old as u32)) {
                if let Some(prev) = last {
                    assert!(new.index() > prev);
                }
                last = Some(new.index());
            }
        }
        px.validate().expect("compacted doc stays valid");
    }

    #[test]
    fn compact_preserves_structure_and_fingerprint() {
        let mut px = fig2();
        // Leave some garbage behind, as refinement would.
        let w = px.add_poss(px.root(), 0.25);
        let e = px.add_elem(w, "junk");
        px.add_text(e, "gone");
        px.detach(w);
        let fp = px.fingerprint();
        let worlds_before = px.world_count();
        px.compact();
        assert_eq!(px.fingerprint(), fp);
        assert_eq!(px.world_count(), worlds_before);
    }

    /// Shared-state audit for the parallel refinement path: worker
    /// threads hold `&PxDoc` references to both sources while scoped
    /// expansion workers race inside a component's search, so every
    /// arena type must be free of interior mutability (`Send + Sync`
    /// by plain data, not by locking). A `Cell`/`RefCell` smuggled into
    /// a node payload would fail this at compile time.
    #[test]
    fn arena_types_are_plain_shared_data() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PxDoc>();
        assert_send_sync::<PxNodeId>();
        assert_send_sync::<PxNodeKind>();
        assert_send_sync::<ArenaStats>();
        assert_send_sync::<CompactMap>();
        assert_send_sync::<SpliceMap>();
    }

    #[test]
    fn graft_px_mapped_reports_every_copied_node() {
        let src = fig2();
        let mut dst = PxDoc::new();
        let w = dst.add_poss(dst.root(), 1.0);
        let src_poss = src.children(src.root())[0];
        let src_ab = src.children(src_poss)[0];
        let mut map = std::collections::HashMap::new();
        let copied = dst.graft_px_mapped(w, &src, src_ab, &mut |from, to| {
            map.insert(from, to);
        });
        assert_eq!(map.get(&src_ab), Some(&copied));
        assert_eq!(map.len(), src.descendants(src_ab).count());
        for (&from, &to) in &map {
            assert_eq!(src.children(from).len(), dst.children(to).len());
        }
    }
}
