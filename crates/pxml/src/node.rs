//! Arena representation of probabilistic XML trees.

use imprecise_xmlkit::{Attr, NodeId as XmlNodeId, NodeKind as XmlNodeKind, XmlDoc};

/// Handle to a node inside a [`PxDoc`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PxNodeId(pub(crate) u32);

impl PxNodeId {
    /// Raw arena index, for dense side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Payload of a probabilistic XML node (see the crate docs for the model).
#[derive(Debug, Clone, PartialEq)]
pub enum PxNodeKind {
    /// A probability node (`▽`): a choice point whose children are
    /// mutually exclusive possibility nodes.
    Prob,
    /// A possibility node (`○`) with its probability of being the chosen
    /// alternative of its parent probability node.
    Poss(f64),
    /// A regular element node.
    Elem {
        /// Tag name.
        tag: String,
        /// Attributes in document order.
        attrs: Vec<Attr>,
    },
    /// A regular text node.
    Text(String),
}

impl PxNodeKind {
    /// True for regular XML nodes (element or text).
    #[inline]
    pub fn is_regular(&self) -> bool {
        matches!(self, PxNodeKind::Elem { .. } | PxNodeKind::Text(_))
    }
}

#[derive(Debug, Clone)]
struct PxNodeData {
    kind: PxNodeKind,
    parent: Option<PxNodeId>,
    children: Vec<PxNodeId>,
}

/// A probabilistic XML document.
///
/// The root is always a probability node; each of its possibilities holds
/// one root element of a possible world. Nodes live in a flat arena.
///
/// Detached nodes can temporarily exist while the integration engine
/// assembles a result; [`PxDoc::reachable_count`] and the counters in
/// [`crate::count`] only consider nodes reachable from the root.
#[derive(Debug, Clone)]
pub struct PxDoc {
    nodes: Vec<PxNodeData>,
    root: PxNodeId,
}

impl Default for PxDoc {
    fn default() -> Self {
        Self::new()
    }
}

impl PxDoc {
    /// Create an empty document: a root probability node with no
    /// possibilities yet. Add at least one possibility before use.
    pub fn new() -> Self {
        PxDoc {
            nodes: vec![PxNodeData {
                kind: PxNodeKind::Prob,
                parent: None,
                children: Vec::new(),
            }],
            root: PxNodeId(0),
        }
    }

    /// The root probability node.
    #[inline]
    pub fn root(&self) -> PxNodeId {
        self.root
    }

    /// Total number of arena slots (including detached nodes).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn node(&self, id: PxNodeId) -> &PxNodeData {
        &self.nodes[id.index()]
    }

    #[inline]
    fn node_mut(&mut self, id: PxNodeId) -> &mut PxNodeData {
        &mut self.nodes[id.index()]
    }

    /// The node payload.
    #[inline]
    pub fn kind(&self, id: PxNodeId) -> &PxNodeKind {
        &self.node(id).kind
    }

    /// Parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, id: PxNodeId) -> Option<PxNodeId> {
        self.node(id).parent
    }

    /// Children of a node in document order.
    #[inline]
    pub fn children(&self, id: PxNodeId) -> &[PxNodeId] {
        &self.node(id).children
    }

    /// True if `id` is a probability node.
    #[inline]
    pub fn is_prob(&self, id: PxNodeId) -> bool {
        matches!(self.node(id).kind, PxNodeKind::Prob)
    }

    /// True if `id` is a possibility node.
    #[inline]
    pub fn is_poss(&self, id: PxNodeId) -> bool {
        matches!(self.node(id).kind, PxNodeKind::Poss(_))
    }

    /// True if `id` is an element node.
    #[inline]
    pub fn is_elem(&self, id: PxNodeId) -> bool {
        matches!(self.node(id).kind, PxNodeKind::Elem { .. })
    }

    /// True if `id` is a text node.
    #[inline]
    pub fn is_text(&self, id: PxNodeId) -> bool {
        matches!(self.node(id).kind, PxNodeKind::Text(_))
    }

    /// Element tag, or `None` for other node kinds.
    #[inline]
    pub fn tag(&self, id: PxNodeId) -> Option<&str> {
        match &self.node(id).kind {
            PxNodeKind::Elem { tag, .. } => Some(tag),
            _ => None,
        }
    }

    /// Text payload, or `None` for other node kinds.
    #[inline]
    pub fn text(&self, id: PxNodeId) -> Option<&str> {
        match &self.node(id).kind {
            PxNodeKind::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Probability of a possibility node, or `None` for other kinds.
    #[inline]
    pub fn poss_prob(&self, id: PxNodeId) -> Option<f64> {
        match self.node(id).kind {
            PxNodeKind::Poss(p) => Some(p),
            _ => None,
        }
    }

    /// Set the probability of a possibility node.
    ///
    /// # Panics
    /// Panics if `id` is not a possibility node.
    pub fn set_poss_prob(&mut self, id: PxNodeId, p: f64) {
        match &mut self.node_mut(id).kind {
            PxNodeKind::Poss(old) => *old = p,
            other => panic!("set_poss_prob on non-possibility node {other:?}"),
        }
    }

    /// Attributes of an element (empty for other kinds).
    pub fn attrs(&self, id: PxNodeId) -> &[Attr] {
        match &self.node(id).kind {
            PxNodeKind::Elem { attrs, .. } => attrs,
            _ => &[],
        }
    }

    /// Value of attribute `name` on element `id`.
    pub fn attr(&self, id: PxNodeId, name: &str) -> Option<&str> {
        self.attrs(id)
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Set (or replace) an attribute on an element node.
    ///
    /// # Panics
    /// Panics if `id` is not an element.
    pub fn set_attr(&mut self, id: PxNodeId, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        match &mut self.node_mut(id).kind {
            PxNodeKind::Elem { attrs, .. } => {
                if let Some(a) = attrs.iter_mut().find(|a| a.name == name) {
                    a.value = value;
                } else {
                    attrs.push(Attr { name, value });
                }
            }
            other => panic!("set_attr on non-element node {other:?}"),
        }
    }

    fn push(&mut self, parent: PxNodeId, kind: PxNodeKind) -> PxNodeId {
        let id = PxNodeId(self.nodes.len() as u32);
        self.nodes.push(PxNodeData {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.node_mut(parent).children.push(id);
        id
    }

    /// Append a probability node under an element or possibility node.
    ///
    /// A probability node directly under a possibility is a *nested
    /// choice* — a choice whose availability depends on the outer
    /// possibility being chosen. Such nodes arise when integrating
    /// documents that already carry uncertainty; the strict layered form
    /// of the paper is recovered by flattening (see `count`).
    pub fn add_prob(&mut self, parent: PxNodeId) -> PxNodeId {
        debug_assert!(
            self.is_elem(parent) || self.is_poss(parent),
            "prob nodes hang under elements or possibilities"
        );
        self.push(parent, PxNodeKind::Prob)
    }

    /// Append a possibility node with probability `p` under a probability
    /// node.
    pub fn add_poss(&mut self, parent: PxNodeId, p: f64) -> PxNodeId {
        debug_assert!(self.is_prob(parent), "poss nodes hang under prob nodes");
        self.push(parent, PxNodeKind::Poss(p))
    }

    /// Append an element node under a possibility or element node.
    pub fn add_elem(&mut self, parent: PxNodeId, tag: impl Into<String>) -> PxNodeId {
        debug_assert!(
            self.is_poss(parent) || self.is_elem(parent),
            "elements hang under possibilities or elements"
        );
        self.push(
            parent,
            PxNodeKind::Elem {
                tag: tag.into(),
                attrs: Vec::new(),
            },
        )
    }

    /// Append a text node under a possibility or element node.
    pub fn add_text(&mut self, parent: PxNodeId, text: impl Into<String>) -> PxNodeId {
        debug_assert!(
            self.is_poss(parent) || self.is_elem(parent),
            "text hangs under possibilities or elements"
        );
        self.push(parent, PxNodeKind::Text(text.into()))
    }

    /// Convenience: `<tag>text</tag>` under `parent`.
    pub fn add_text_elem(
        &mut self,
        parent: PxNodeId,
        tag: impl Into<String>,
        text: impl Into<String>,
    ) -> PxNodeId {
        let el = self.add_elem(parent, tag);
        self.add_text(el, text);
        el
    }

    /// Deep-copy a subtree of an ordinary [`XmlDoc`] as a new child of
    /// `parent`. Returns the id of the copied root.
    pub fn graft_xml(&mut self, parent: PxNodeId, src: &XmlDoc, src_node: XmlNodeId) -> PxNodeId {
        match src.kind(src_node) {
            XmlNodeKind::Element { tag, attrs } => {
                let el = self.add_elem(parent, tag.clone());
                for a in attrs {
                    self.set_attr(el, a.name.clone(), a.value.clone());
                }
                for &c in src.children(src_node) {
                    self.graft_xml(el, src, c);
                }
                el
            }
            XmlNodeKind::Text(t) => self.add_text(parent, t.clone()),
        }
    }

    /// Deep-copy a subtree of another [`PxDoc`] (or of `self`, via a
    /// snapshot) as a new child of `parent`.
    pub fn graft_px(&mut self, parent: PxNodeId, src: &PxDoc, src_node: PxNodeId) -> PxNodeId {
        let id = match src.kind(src_node).clone() {
            PxNodeKind::Prob => self.push(parent, PxNodeKind::Prob),
            PxNodeKind::Poss(p) => self.push(parent, PxNodeKind::Poss(p)),
            PxNodeKind::Elem { tag, attrs } => self.push(parent, PxNodeKind::Elem { tag, attrs }),
            PxNodeKind::Text(t) => self.push(parent, PxNodeKind::Text(t)),
        };
        for &c in src.children(src_node) {
            self.graft_px(id, src, c);
        }
        id
    }

    /// Detach `child` from its parent's child list (the node stays in the
    /// arena but becomes unreachable). Used by simplification.
    pub fn detach(&mut self, child: PxNodeId) {
        if let Some(parent) = self.node(child).parent {
            let list = &mut self.node_mut(parent).children;
            if let Some(pos) = list.iter().position(|&c| c == child) {
                list.remove(pos);
            }
            self.node_mut(child).parent = None;
        }
    }

    /// Replace `parent`'s child list wholesale: current children are
    /// detached, every node in `children` is (re-)attached in the given
    /// order. Used by refinement rollback to restore a choice point's
    /// original possibilities after a failed re-emission.
    ///
    /// Every node in `children` must be detached or already a child of
    /// `parent` (re-parenting a node that is still linked elsewhere
    /// would corrupt the other parent's child list).
    pub fn reset_children(&mut self, parent: PxNodeId, children: Vec<PxNodeId>) {
        for c in std::mem::take(&mut self.node_mut(parent).children) {
            self.node_mut(c).parent = None;
        }
        for &c in &children {
            debug_assert!(
                self.node(c).parent.is_none(),
                "reset_children child must be detached"
            );
            self.node_mut(c).parent = Some(parent);
        }
        self.node_mut(parent).children = children;
    }

    /// Drop every arena slot from index `mark` on — the nodes appended
    /// since `mark` was read off [`arena_len`](Self::arena_len). Used by
    /// refinement rollback: node creation only ever appends, so
    /// truncating back to a recorded mark (after re-linking the
    /// surviving structure, see [`reset_children`](Self::reset_children))
    /// restores the arena bit for bit.
    ///
    /// # Panics
    /// Panics in debug builds if a surviving node still references a
    /// dropped one, or if `mark` would drop the root.
    pub fn truncate_arena(&mut self, mark: usize) {
        debug_assert!(mark > self.root.index() && mark <= self.nodes.len());
        #[cfg(debug_assertions)]
        for node in &self.nodes[..mark] {
            debug_assert!(
                node.children.iter().all(|c| c.index() < mark),
                "surviving node references a truncated one"
            );
        }
        self.nodes.truncate(mark);
    }

    /// Replace `old` in its parent's child list with `replacements`
    /// (splicing them in at the same position). `old` becomes detached.
    ///
    /// # Panics
    /// Panics if `old` has no parent.
    pub fn splice(&mut self, old: PxNodeId, replacements: &[PxNodeId]) {
        let parent = self.node(old).parent.expect("splice target has a parent");
        let pos = self
            .node(parent)
            .children
            .iter()
            .position(|&c| c == old)
            .expect("old is a child of its parent");
        let mut new_children = self.node(parent).children.clone();
        new_children.splice(pos..=pos, replacements.iter().copied());
        self.node_mut(parent).children = new_children;
        self.node_mut(old).parent = None;
        for &r in replacements {
            self.node_mut(r).parent = Some(parent);
        }
    }

    /// Pre-order traversal of the subtree rooted at `id` (inclusive).
    pub fn descendants(&self, id: PxNodeId) -> PxDescendants<'_> {
        PxDescendants {
            doc: self,
            stack: vec![id],
        }
    }

    /// Number of nodes reachable from the root (the factored representation
    /// size; the paper's headline metric is the *unfactored* variant, see
    /// [`crate::count`]).
    pub fn reachable_count(&self) -> usize {
        self.descendants(self.root).count()
    }

    /// All probability nodes reachable from the root, in document order.
    pub fn prob_nodes(&self) -> Vec<PxNodeId> {
        self.descendants(self.root)
            .filter(|&n| self.is_prob(n))
            .collect()
    }

    /// True when the document is certain: every reachable probability node
    /// has exactly one possibility with probability (numerically) 1.
    pub fn is_certain(&self) -> bool {
        self.prob_nodes().iter().all(|&p| {
            let kids = self.children(p);
            kids.len() == 1
                && self
                    .poss_prob(kids[0])
                    .is_some_and(|w| (w - 1.0).abs() < crate::PROB_EPSILON)
        })
    }

    /// The possibility children of a probability node together with their
    /// probabilities.
    pub fn possibilities(&self, prob: PxNodeId) -> Vec<(PxNodeId, f64)> {
        debug_assert!(self.is_prob(prob));
        self.children(prob)
            .iter()
            .map(|&c| (c, self.poss_prob(c).expect("prob child is poss")))
            .collect()
    }

    /// Index of `poss` within its parent probability node's child list.
    pub fn poss_index(&self, poss: PxNodeId) -> usize {
        let parent = self.parent(poss).expect("poss has a parent");
        self.children(parent)
            .iter()
            .position(|&c| c == poss)
            .expect("poss is a child of its parent")
    }

    /// Concatenated text of all *certain* descendant text nodes of `id`
    /// (descending through elements only — stops at probability nodes).
    ///
    /// For a fully certain subtree this is the XPath `string()` value.
    pub fn certain_text(&self, id: PxNodeId) -> String {
        let mut out = String::new();
        self.certain_text_into(id, &mut out);
        out
    }

    fn certain_text_into(&self, id: PxNodeId, out: &mut String) {
        match self.kind(id) {
            PxNodeKind::Text(t) => out.push_str(t),
            PxNodeKind::Elem { .. } => {
                for &c in self.children(id) {
                    self.certain_text_into(c, out);
                }
            }
            PxNodeKind::Prob | PxNodeKind::Poss(_) => {}
        }
    }
}

/// Pre-order iterator returned by [`PxDoc::descendants`].
pub struct PxDescendants<'a> {
    doc: &'a PxDoc,
    stack: Vec<PxNodeId>,
}

impl Iterator for PxDescendants<'_> {
    type Item = PxNodeId;

    fn next(&mut self) -> Option<PxNodeId> {
        let id = self.stack.pop()?;
        for &c in self.doc.children(id).iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use imprecise_xmlkit::parse;

    /// Build the paper's Fig. 2 tree (used by several test modules).
    pub(crate) fn fig2() -> PxDoc {
        let mut px = PxDoc::new();
        let root = px.root();
        let w1 = px.add_poss(root, 0.5);
        let ab1 = px.add_elem(w1, "addressbook");
        let p1 = px.add_elem(ab1, "person");
        px.add_text_elem(p1, "nm", "John");
        let tel_choice = px.add_prob(p1);
        let t1 = px.add_poss(tel_choice, 0.5);
        px.add_text_elem(t1, "tel", "1111");
        let t2 = px.add_poss(tel_choice, 0.5);
        px.add_text_elem(t2, "tel", "2222");
        let w2 = px.add_poss(root, 0.5);
        let ab2 = px.add_elem(w2, "addressbook");
        for tel in ["1111", "2222"] {
            let p = px.add_elem(ab2, "person");
            px.add_text_elem(p, "nm", "John");
            px.add_text_elem(p, "tel", tel);
        }
        px
    }

    #[test]
    fn build_fig2_structure() {
        let px = fig2();
        assert!(px.is_prob(px.root()));
        let poss = px.possibilities(px.root());
        assert_eq!(poss.len(), 2);
        assert!((poss[0].1 - 0.5).abs() < 1e-12);
        assert!(!px.is_certain());
    }

    #[test]
    fn certain_doc_detected() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "a");
        px.add_text(e, "x");
        assert!(px.is_certain());
    }

    #[test]
    fn graft_xml_copies_subtree() {
        let xml = parse("<person><nm>John</nm><tel>1111</tel></person>").unwrap();
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let copied = px.graft_xml(w, &xml, xml.root());
        assert_eq!(px.tag(copied), Some("person"));
        assert_eq!(px.certain_text(copied), "John1111");
    }

    #[test]
    fn graft_px_copies_probabilistic_subtree() {
        let src = fig2();
        let mut dst = PxDoc::new();
        let w = dst.add_poss(dst.root(), 1.0);
        let e = dst.add_elem(w, "wrapper");
        // Graft the whole first possibility's addressbook.
        let src_poss = src.children(src.root())[0];
        let src_ab = src.children(src_poss)[0];
        let copied = dst.graft_px(e, &src, src_ab);
        assert_eq!(dst.tag(copied), Some("addressbook"));
        // The nested tel choice came along.
        let person = dst.children(copied)[0];
        assert!(dst.children(person).iter().any(|&c| dst.is_prob(c)));
    }

    #[test]
    fn splice_replaces_in_place() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "list");
        let a = px.add_text_elem(e, "i", "a");
        let b = px.add_text_elem(e, "i", "b");
        let c = px.add_text_elem(e, "i", "c");
        // Replace b with two fresh items. Create them detached under e then
        // splice (they are appended first, then moved).
        let x = px.add_text_elem(e, "i", "x");
        let y = px.add_text_elem(e, "i", "y");
        px.detach(x);
        px.detach(y);
        px.splice(b, &[x, y]);
        let kids = px.children(e).to_vec();
        assert_eq!(kids, vec![a, x, y, c]);
        assert_eq!(px.parent(x), Some(e));
        assert_eq!(px.parent(b), None);
    }

    #[test]
    fn detach_makes_unreachable() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "a");
        let before = px.reachable_count();
        let child = px.add_text_elem(e, "b", "t");
        assert_eq!(px.reachable_count(), before + 2);
        px.detach(child);
        assert_eq!(px.reachable_count(), before);
        assert!(px.arena_len() > px.reachable_count());
    }

    #[test]
    fn reset_children_restores_a_detached_list() {
        let mut px = PxDoc::new();
        let root = px.root();
        let p1 = px.add_poss(root, 0.5);
        let p2 = px.add_poss(root, 0.5);
        let original = px.children(root).to_vec();
        // Replace the possibilities, then roll back.
        for c in original.clone() {
            px.detach(c);
        }
        let p3 = px.add_poss(root, 1.0);
        assert_eq!(px.children(root), [p3]);
        px.reset_children(root, original.clone());
        assert_eq!(px.children(root), original.as_slice());
        assert_eq!(px.parent(p1), Some(root));
        assert_eq!(px.parent(p2), Some(root));
        assert_eq!(px.parent(p3), None);
    }

    #[test]
    fn poss_index_reports_position() {
        let px = fig2();
        let poss = px.children(px.root()).to_vec();
        assert_eq!(px.poss_index(poss[0]), 0);
        assert_eq!(px.poss_index(poss[1]), 1);
    }

    #[test]
    fn attrs_on_px_elements() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "movie");
        px.set_attr(e, "year", "1995");
        assert_eq!(px.attr(e, "year"), Some("1995"));
        px.set_attr(e, "year", "1996");
        assert_eq!(px.attr(e, "year"), Some("1996"));
        assert_eq!(px.attrs(e).len(), 1);
    }

    #[test]
    fn prob_nodes_lists_reachable_choice_points() {
        let px = fig2();
        assert_eq!(px.prob_nodes().len(), 2); // root + tel choice
    }
}
