//! Possibility reduction by likelihood thresholding.
//!
//! Rules let the Oracle make *absolute* decisions; pruning is the blunter
//! instrument: discard possibilities the integration considered unlikely.
//! §V of the paper warns that *"reduction should not be pushed too far,
//! because eliminating valid possibilities reduces the quality of query
//! answers"* — the statistics returned here (in particular the removed
//! probability mass) are what the answer-quality experiment plots against
//! precision/recall to quantify exactly that trade-off.
//!
//! Pruning is **lossy**: unlike [`PxDoc::simplify`], the possible-world
//! distribution changes (surviving siblings are renormalised, Bayes-style,
//! as if the removed possibilities had been refuted by feedback).

use crate::node::{PxDoc, PxNodeId};

/// What a pruning pass removed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PruneStats {
    /// Possibilities removed across all choice points.
    pub possibilities_removed: usize,
    /// Choice points that lost at least one possibility.
    pub probs_affected: usize,
    /// Largest probability mass removed from a single choice point — the
    /// worst-case local information loss.
    pub max_mass_removed: f64,
    /// Representation nodes before / after (including the simplification
    /// cascade that pruning enables).
    pub nodes_before: usize,
    /// See [`PruneStats::nodes_before`].
    pub nodes_after: usize,
    /// Possible worlds before / after.
    pub worlds_before: f64,
    /// See [`PruneStats::worlds_before`].
    pub worlds_after: f64,
}

impl PxDoc {
    /// Remove every possibility with probability below `epsilon`,
    /// renormalising the survivors. The most probable possibility of each
    /// choice point always survives, so the document never becomes
    /// contradictory (even with `epsilon > 1`, which degenerates into
    /// keeping only the per-choice argmax — the MAP-shaped document).
    ///
    /// Runs [`PxDoc::simplify`] afterwards so newly certain choice points
    /// collapse; the returned statistics cover the whole effect.
    pub fn prune_below(&mut self, epsilon: f64) -> PruneStats {
        self.prune_with(|poss_probs| {
            let argmax = argmax_index(poss_probs);
            poss_probs
                .iter()
                .enumerate()
                .filter(|&(i, &p)| p < epsilon && i != argmax)
                .map(|(i, _)| i)
                .collect()
        })
    }

    /// Keep only the `k` most probable possibilities of every choice point
    /// (`k = 1` yields the MAP-shaped certain document; `k = 0` is treated
    /// as `k = 1`).
    pub fn prune_keep_top(&mut self, k: usize) -> PruneStats {
        let k = k.max(1);
        self.prune_with(|poss_probs| {
            if poss_probs.len() <= k {
                return Vec::new();
            }
            // Indices sorted by descending probability (stable: earlier
            // possibilities win ties, matching document order intuition).
            let mut order: Vec<usize> = (0..poss_probs.len()).collect();
            order.sort_by(|&a, &b| poss_probs[b].total_cmp(&poss_probs[a]));
            order[k..].to_vec()
        })
    }

    /// Shared driver: `select` returns the indices to remove, given the
    /// possibility probabilities of one choice point.
    fn prune_with(&mut self, select: impl Fn(&[f64]) -> Vec<usize>) -> PruneStats {
        let mut stats = PruneStats {
            nodes_before: self.reachable_count(),
            worlds_before: self.world_count_f64(),
            ..PruneStats::default()
        };
        for prob in self.prob_nodes() {
            // prob_nodes() only lists reachable nodes, but earlier
            // iterations of this loop may have detached this one's subtree.
            if self.parent(prob).is_none() && prob != self.root() {
                continue;
            }
            let kids: Vec<PxNodeId> = self.children(prob).to_vec();
            let probs: Vec<f64> = kids
                .iter()
                // lint:allow(expect-in-lib, holds by construction: prob child is poss)
                .map(|&c| self.poss_prob(c).expect("prob child is poss"))
                .collect();
            let remove = select(&probs);
            if remove.is_empty() {
                continue;
            }
            let mass: f64 = remove.iter().map(|&i| probs[i]).sum();
            stats.possibilities_removed += remove.len();
            stats.probs_affected += 1;
            stats.max_mass_removed = stats.max_mass_removed.max(mass);
            for &i in &remove {
                self.detach(kids[i]);
            }
            self.renormalize(prob);
        }
        self.simplify();
        stats.nodes_after = self.reachable_count();
        stats.worlds_after = self.world_count_f64();
        stats
    }
}

fn argmax_index(probs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &p) in probs.iter().enumerate() {
        if p > probs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// doc with one 3-way choice: 0.6 / 0.3 / 0.1.
    fn three_way() -> (PxDoc, PxNodeId) {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let c = px.add_prob(e);
        for (p, v) in [(0.6, "a"), (0.3, "b"), (0.1, "c")] {
            let poss = px.add_poss(c, p);
            px.add_text_elem(poss, "v", v);
        }
        (px, c)
    }

    #[test]
    fn prune_below_removes_and_renormalizes() {
        let (mut px, _) = three_way();
        let stats = px.prune_below(0.2);
        assert_eq!(stats.possibilities_removed, 1);
        assert_eq!(stats.probs_affected, 1);
        assert!((stats.max_mass_removed - 0.1).abs() < 1e-12);
        assert_eq!(stats.worlds_before, 3.0);
        assert_eq!(stats.worlds_after, 2.0);
        px.validate().unwrap();
        // Survivors renormalised to 2/3 and 1/3.
        let poss = px.possibilities(px.prob_nodes()[1]);
        assert!((poss[0].1 - 0.6 / 0.9).abs() < 1e-12);
        assert!((poss[1].1 - 0.3 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn prune_below_never_empties_a_choice() {
        let (mut px, _) = three_way();
        // Threshold above every probability: only the argmax survives and
        // the choice collapses to certainty.
        let stats = px.prune_below(2.0);
        assert_eq!(stats.possibilities_removed, 2);
        assert!(px.is_certain());
        assert_eq!(stats.worlds_after, 1.0);
        px.validate().unwrap();
    }

    #[test]
    fn prune_keep_top_k() {
        let (mut px, _) = three_way();
        let stats = px.prune_keep_top(2);
        assert_eq!(stats.possibilities_removed, 1);
        assert_eq!(px.world_count(), 2);
        let (mut px2, _) = three_way();
        px2.prune_keep_top(1);
        assert!(px2.is_certain());
        // k = 0 behaves like k = 1 instead of emptying the node.
        let (mut px3, _) = three_way();
        px3.prune_keep_top(0);
        assert!(px3.is_certain());
    }

    #[test]
    fn prune_keep_one_is_greedy_not_map() {
        // When every choice has a strict local argmax on the MAP path the
        // greedy per-choice pruning and the exact MAP world coincide …
        let mut px = PxDoc::new();
        let w1 = px.add_poss(px.root(), 0.3);
        let e1 = px.add_elem(w1, "doc");
        px.add_text(e1, "minor");
        let w2 = px.add_poss(px.root(), 0.7);
        let e2 = px.add_elem(w2, "doc");
        let c = px.add_prob(e2);
        let c1 = px.add_poss(c, 0.2);
        px.add_text_elem(c1, "v", "rare");
        let c2 = px.add_poss(c, 0.8);
        px.add_text_elem(c2, "v", "common");
        let map = px.most_probable_world();
        let mut pruned = px.clone();
        pruned.prune_keep_top(1);
        let only = pruned.worlds(2).unwrap();
        assert!(imprecise_xmlkit::deep_equal(&only[0].doc, &map.doc));

        // … but greedy pruning is *not* MAP in general: a locally likely
        // possibility whose nested choices dilute the product can lose to
        // a locally less likely but choice-free sibling.
        let mut px = PxDoc::new();
        let w1 = px.add_poss(px.root(), 0.4);
        let e1 = px.add_elem(w1, "doc");
        px.add_text(e1, "plain");
        let w2 = px.add_poss(px.root(), 0.6);
        let e2 = px.add_elem(w2, "doc");
        let c = px.add_prob(e2);
        for (p, v) in [(0.5, "x"), (0.5, "y")] {
            let poss = px.add_poss(c, p);
            px.add_text_elem(poss, "v", v);
        }
        let map = px.most_probable_world(); // the 0.4 "plain" world
        assert!((map.prob - 0.4).abs() < 1e-12);
        let mut pruned = px.clone();
        pruned.prune_keep_top(1); // greedily keeps the 0.6 branch
        let only = pruned.worlds(2).unwrap();
        assert!(!imprecise_xmlkit::deep_equal(&only[0].doc, &map.doc));
    }

    #[test]
    fn zero_epsilon_is_a_noop() {
        let (mut px, _) = three_way();
        let stats = px.prune_below(0.0);
        assert_eq!(stats.possibilities_removed, 0);
        assert_eq!(stats.nodes_before, stats.nodes_after);
        assert_eq!(px.world_count(), 3);
    }

    #[test]
    fn pruning_nested_choices_cascades() {
        // An unlikely outer possibility containing an inner choice: pruning
        // the outer one removes the inner choice point entirely.
        let mut px = PxDoc::new();
        let w1 = px.add_poss(px.root(), 0.9);
        let e1 = px.add_elem(w1, "doc");
        px.add_text_elem(e1, "v", "main");
        let w2 = px.add_poss(px.root(), 0.1);
        let e2 = px.add_elem(w2, "doc");
        let inner = px.add_prob(e2);
        for (p, v) in [(0.5, "x"), (0.5, "y")] {
            let poss = px.add_poss(inner, p);
            px.add_text_elem(poss, "v", v);
        }
        assert_eq!(px.world_count(), 3);
        let stats = px.prune_below(0.2);
        assert!(px.is_certain());
        assert_eq!(stats.worlds_after, 1.0);
        assert!(stats.nodes_after < stats.nodes_before);
        px.validate().unwrap();
    }
}
