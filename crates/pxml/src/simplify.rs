//! Simplification of probabilistic XML trees.
//!
//! These are the compaction rules the companion paper (ICDE 2005) applies
//! to keep the representation small; all of them preserve the possible
//! world distribution exactly:
//!
//! 1. possibilities with probability 0 are removed;
//! 2. deep-equal sibling possibilities are merged, summing probabilities;
//! 3. a non-root probability node with a single possibility of
//!    probability 1 is collapsed — its contents splice into the parent
//!    element;
//! 4. weights are renormalised when rule 1 leaves a deficit (used by the
//!    feedback layer, which conditions by zeroing possibilities).

use crate::fingerprint::poss_content_fingerprint;
use crate::node::{PxDoc, PxNodeId};
use crate::PROB_EPSILON;
use std::collections::HashMap;

/// Statistics returned by [`PxDoc::simplify`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Zero-probability possibilities removed.
    pub zero_dropped: usize,
    /// Possibility pairs merged because their contents were deep-equal.
    pub merged: usize,
    /// Certain probability nodes collapsed into their parent element.
    pub collapsed: usize,
}

impl SimplifyStats {
    /// True when the pass changed nothing.
    pub fn is_noop(&self) -> bool {
        *self == SimplifyStats::default()
    }
}

impl PxDoc {
    /// Rescale the possibility weights of `prob` so they sum to 1.
    ///
    /// # Panics
    /// Panics if all weights are (numerically) zero — the conditioned
    /// document would be contradictory, which callers must detect first.
    pub fn renormalize(&mut self, prob: PxNodeId) {
        let total: f64 = self
            .children(prob)
            .iter()
            // lint:allow(expect-in-lib, holds by construction: prob child is poss)
            .map(|&c| self.poss_prob(c).expect("prob child is poss"))
            .sum();
        assert!(
            total > PROB_EPSILON,
            "cannot renormalize: all possibilities have probability 0"
        );
        for c in self.children(prob).to_vec() {
            // lint:allow(expect-in-lib, holds by construction: prob child is poss)
            let p = self.poss_prob(c).expect("prob child is poss");
            self.set_poss_prob(c, p / total);
        }
    }

    /// Run all simplification rules to fixpoint; returns cumulative stats.
    pub fn simplify(&mut self) -> SimplifyStats {
        let mut total = SimplifyStats::default();
        loop {
            let pass = self.simplify_pass();
            total.zero_dropped += pass.zero_dropped;
            total.merged += pass.merged;
            total.collapsed += pass.collapsed;
            if pass.is_noop() {
                return total;
            }
        }
    }

    fn simplify_pass(&mut self) -> SimplifyStats {
        let mut stats = SimplifyStats::default();
        // Bottom-up: collect in document order, process in reverse so child
        // choice points simplify before their ancestors (a collapse lower
        // down can enable a merge higher up within the same call via the
        // fixpoint loop).
        let probs = self.prob_nodes();
        for &prob in probs.iter().rev() {
            // The node may have been detached by an earlier collapse.
            if self.parent(prob).is_none() && prob != self.root() {
                continue;
            }
            stats.zero_dropped += self.drop_zero_possibilities(prob);
            stats.merged += self.merge_equal_possibilities(prob);
            if prob != self.root() && self.try_collapse_certain(prob) {
                stats.collapsed += 1;
            }
        }
        stats
    }

    /// Remove possibilities with probability below [`PROB_EPSILON`].
    /// Keeps at least one possibility (never empties a probability node).
    fn drop_zero_possibilities(&mut self, prob: PxNodeId) -> usize {
        let zeros: Vec<PxNodeId> = self
            .children(prob)
            .iter()
            .copied()
            // lint:allow(expect-in-lib, holds by construction: poss)
            .filter(|&c| self.poss_prob(c).expect("poss") < PROB_EPSILON)
            .collect();
        let keep = self.children(prob).len() - zeros.len();
        if keep == 0 {
            return 0; // contradictory node: leave for the caller to handle
        }
        let n = zeros.len();
        for z in zeros {
            self.detach(z);
        }
        if n > 0 {
            self.renormalize(prob);
        }
        n
    }

    /// Merge sibling possibilities whose contents are deep-equal.
    fn merge_equal_possibilities(&mut self, prob: PxNodeId) -> usize {
        let kids = self.children(prob).to_vec();
        if kids.len() < 2 {
            return 0;
        }
        let mut first_by_fp: HashMap<u64, PxNodeId> = HashMap::with_capacity(kids.len());
        let mut merged = 0;
        for k in kids {
            let fp = poss_content_fingerprint(self, k);
            match first_by_fp.get(&fp) {
                Some(&canonical) => {
                    // lint:allow(expect-in-lib, holds by construction: poss)
                    let p_dup = self.poss_prob(k).expect("poss");
                    // lint:allow(expect-in-lib, holds by construction: poss)
                    let p_keep = self.poss_prob(canonical).expect("poss");
                    self.set_poss_prob(canonical, p_keep + p_dup);
                    self.detach(k);
                    merged += 1;
                }
                None => {
                    first_by_fp.insert(fp, k);
                }
            }
        }
        merged
    }

    /// Collapse `prob` into its parent element or possibility when it has
    /// exactly one possibility of probability ≈ 1. Returns true on success.
    fn try_collapse_certain(&mut self, prob: PxNodeId) -> bool {
        let kids = self.children(prob);
        if kids.len() != 1 {
            return false;
        }
        let poss = kids[0];
        // lint:allow(expect-in-lib, holds by construction: prob child is poss)
        let p = self.poss_prob(poss).expect("prob child is poss");
        if (p - 1.0).abs() > PROB_EPSILON {
            return false;
        }
        let Some(parent) = self.parent(prob) else {
            return false;
        };
        if !self.is_elem(parent) && !self.is_poss(parent) {
            return false;
        }
        let contents = self.children(poss).to_vec();
        for &c in &contents {
            self.detach(c);
        }
        self.splice(prob, &contents);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_possibilities_dropped_and_renormalized() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let c = px.add_prob(e);
        let a = px.add_poss(c, 0.0);
        px.add_text_elem(a, "v", "dead");
        let b = px.add_poss(c, 0.4);
        px.add_text_elem(b, "v", "x");
        let d = px.add_poss(c, 0.6);
        px.add_text_elem(d, "v", "y");
        // Weights 0.4/0.6 after dropping 0 already sum to 1; also test a
        // deficit case below.
        let stats = px.simplify();
        assert_eq!(stats.zero_dropped, 1);
        px.validate().unwrap();
        assert_eq!(px.world_count(), 2);
    }

    #[test]
    fn renormalize_after_conditioning() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let c = px.add_prob(e);
        let a = px.add_poss(c, 0.25);
        px.add_text_elem(a, "v", "x");
        let b = px.add_poss(c, 0.75);
        px.add_text_elem(b, "v", "y");
        // Feedback-style conditioning: possibility b is impossible.
        px.set_poss_prob(b, 0.0);
        let stats = px.simplify();
        assert_eq!(stats.zero_dropped, 1);
        // Now certain: v=x with probability 1, and the choice collapses.
        assert!(px.is_certain());
        px.validate().unwrap();
    }

    #[test]
    fn equal_possibilities_merge() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let c = px.add_prob(e);
        for p in [0.25, 0.35] {
            let poss = px.add_poss(c, p);
            px.add_text_elem(poss, "v", "same");
        }
        let other = px.add_poss(c, 0.4);
        px.add_text_elem(other, "v", "different");
        let stats = px.simplify();
        assert_eq!(stats.merged, 1);
        px.validate().unwrap();
        let poss = px.possibilities(c);
        assert_eq!(poss.len(), 2);
        assert!((poss[0].1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn certain_prob_collapses_into_parent() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "movie");
        px.add_text_elem(e, "title", "Jaws");
        let c = px.add_prob(e);
        let only = px.add_poss(c, 1.0);
        px.add_text_elem(only, "year", "1975");
        px.add_text_elem(e, "genre", "Horror");
        let before_worlds = px.world_count();
        let stats = px.simplify();
        assert_eq!(stats.collapsed, 1);
        assert_eq!(px.world_count(), before_worlds);
        px.validate().unwrap();
        // year spliced between title and genre.
        let tags: Vec<&str> = px.children(e).iter().filter_map(|&c| px.tag(c)).collect();
        assert_eq!(tags, vec!["title", "year", "genre"]);
        assert!(px.is_certain());
    }

    #[test]
    fn merge_then_collapse_reaches_fixpoint() {
        // Two equal possibilities at 0.5 each merge into a certain single
        // possibility, which then collapses.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let c = px.add_prob(e);
        for _ in 0..2 {
            let poss = px.add_poss(c, 0.5);
            px.add_text_elem(poss, "v", "same");
        }
        let stats = px.simplify();
        assert_eq!(stats.merged, 1);
        assert_eq!(stats.collapsed, 1);
        px.validate().unwrap();
        assert!(px.is_certain());
        assert_eq!(px.world_count(), 1);
    }

    #[test]
    fn simplify_preserves_world_distribution() {
        let mut px = crate::node::tests::fig2();
        // Add a mergeable choice under the second world's addressbook.
        let poss2 = px.children(px.root())[1];
        let ab2 = px.children(poss2)[0];
        let c = px.add_prob(ab2);
        for p in [0.5, 0.5] {
            let poss = px.add_poss(c, p);
            px.add_text_elem(poss, "note", "dup");
        }
        let before = px.world_distribution(1000).unwrap();
        let stats = px.simplify();
        assert!(!stats.is_noop());
        let after = px.world_distribution(1000).unwrap();
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(after.iter()) {
            assert!((a.prob - b.prob).abs() < 1e-12);
            assert!(imprecise_xmlkit::deep_equal(&a.doc, &b.doc));
        }
    }

    #[test]
    fn simplify_is_idempotent() {
        let mut px = crate::node::tests::fig2();
        px.simplify();
        let again = px.simplify();
        assert!(again.is_noop());
    }

    #[test]
    fn root_prob_is_never_collapsed() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        px.add_elem(w, "doc");
        px.simplify();
        assert!(px.is_prob(px.root()));
        px.validate().unwrap();
    }
}
