//! Invariant validation for probabilistic XML trees.

use crate::node::{PxDoc, PxNodeId, PxNodeKind};
use crate::PROB_EPSILON;
use std::fmt;

/// A violated invariant of the probabilistic XML model.
#[derive(Debug, Clone, PartialEq)]
pub enum PxInvariantError {
    /// The root node is not a probability node.
    RootNotProb,
    /// A probability node has no possibilities.
    EmptyProb {
        /// Offending probability node.
        node: PxNodeId,
    },
    /// A probability node has a non-possibility child.
    ProbChildNotPoss {
        /// Offending probability node.
        node: PxNodeId,
    },
    /// A possibility carries a probability outside `[0, 1]` or a NaN.
    BadProbability {
        /// Offending possibility node.
        node: PxNodeId,
        /// The bad value.
        p: f64,
    },
    /// The probabilities of a probability node's possibilities do not sum
    /// to 1 (within [`PROB_EPSILON`] times the possibility count).
    WeightsDontSumToOne {
        /// Offending probability node.
        node: PxNodeId,
        /// Actual sum.
        sum: f64,
    },
    /// A possibility node has a possibility child (possibility children
    /// must be regular nodes or nested probability nodes).
    PossChildIsPoss {
        /// Offending possibility node.
        node: PxNodeId,
    },
    /// An element has a possibility child (element children are probability
    /// nodes or regular nodes).
    ElemChildIsPoss {
        /// Offending element node.
        node: PxNodeId,
    },
    /// A text node has children.
    TextWithChildren {
        /// Offending text node.
        node: PxNodeId,
    },
    /// A possibility of the root probability node does not consist of
    /// exactly one element (each world must be a well-formed document).
    RootPossNotSingleElement {
        /// Offending possibility node.
        node: PxNodeId,
    },
}

impl fmt::Display for PxInvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PxInvariantError::RootNotProb => write!(f, "root is not a probability node"),
            PxInvariantError::EmptyProb { node } => {
                write!(f, "probability node {node:?} has no possibilities")
            }
            PxInvariantError::ProbChildNotPoss { node } => {
                write!(f, "probability node {node:?} has a non-possibility child")
            }
            PxInvariantError::BadProbability { node, p } => {
                write!(f, "possibility {node:?} has invalid probability {p}")
            }
            PxInvariantError::WeightsDontSumToOne { node, sum } => {
                write!(f, "possibilities of {node:?} sum to {sum}, expected 1")
            }
            PxInvariantError::PossChildIsPoss { node } => {
                write!(f, "possibility {node:?} has a possibility child")
            }
            PxInvariantError::ElemChildIsPoss { node } => {
                write!(f, "element {node:?} has a possibility child")
            }
            PxInvariantError::TextWithChildren { node } => {
                write!(f, "text node {node:?} has children")
            }
            PxInvariantError::RootPossNotSingleElement { node } => write!(
                f,
                "root possibility {node:?} must contain exactly one element"
            ),
        }
    }
}

impl std::error::Error for PxInvariantError {}

impl PxDoc {
    /// Check all structural invariants of the (relaxed) probabilistic XML
    /// model, returning the first violation found.
    ///
    /// Checked invariants:
    /// 1. the root is a probability node;
    /// 2. every reachable probability node has ≥ 1 possibility children and
    ///    nothing else, and their probabilities are valid and sum to 1;
    /// 3. possibility children are regular nodes or nested probability
    ///    nodes (never possibilities);
    /// 4. element children are probability or regular nodes (never
    ///    possibilities);
    /// 5. text nodes are leaves;
    /// 6. every root possibility holds exactly one element (worlds are
    ///    well-formed single-rooted documents).
    pub fn validate(&self) -> Result<(), PxInvariantError> {
        if !self.is_prob(self.root()) {
            return Err(PxInvariantError::RootNotProb);
        }
        for node in self.descendants(self.root()) {
            match self.kind(node) {
                PxNodeKind::Prob => {
                    let kids = self.children(node);
                    if kids.is_empty() {
                        return Err(PxInvariantError::EmptyProb { node });
                    }
                    let mut sum = 0.0;
                    for &k in kids {
                        match self.kind(k) {
                            PxNodeKind::Poss(p) => {
                                if !p.is_finite() || *p < -PROB_EPSILON || *p > 1.0 + PROB_EPSILON {
                                    return Err(PxInvariantError::BadProbability {
                                        node: k,
                                        p: *p,
                                    });
                                }
                                sum += p;
                            }
                            _ => return Err(PxInvariantError::ProbChildNotPoss { node }),
                        }
                    }
                    let tolerance = PROB_EPSILON * (kids.len() as f64).max(1.0) * 1e3;
                    if (sum - 1.0).abs() > tolerance {
                        return Err(PxInvariantError::WeightsDontSumToOne { node, sum });
                    }
                }
                PxNodeKind::Poss(_) => {
                    for &k in self.children(node) {
                        if self.is_poss(k) {
                            return Err(PxInvariantError::PossChildIsPoss { node });
                        }
                    }
                }
                PxNodeKind::Elem { .. } => {
                    for &k in self.children(node) {
                        if self.is_poss(k) {
                            return Err(PxInvariantError::ElemChildIsPoss { node });
                        }
                    }
                }
                PxNodeKind::Text(_) => {
                    if !self.children(node).is_empty() {
                        return Err(PxInvariantError::TextWithChildren { node });
                    }
                }
            }
        }
        for &poss in self.children(self.root()) {
            let elems = self
                .children(poss)
                .iter()
                .filter(|&&c| self.is_elem(c))
                .count();
            let total = self.children(poss).len();
            if elems != 1 || total != 1 {
                return Err(PxInvariantError::RootPossNotSingleElement { node: poss });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_valid() -> PxDoc {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        px.add_elem(w, "doc");
        px
    }

    #[test]
    fn minimal_doc_validates() {
        minimal_valid().validate().unwrap();
    }

    #[test]
    fn empty_root_prob_rejected() {
        let px = PxDoc::new();
        assert_eq!(
            px.validate(),
            Err(PxInvariantError::EmptyProb { node: px.root() })
        );
    }

    #[test]
    fn weights_must_sum_to_one() {
        let mut px = PxDoc::new();
        let w1 = px.add_poss(px.root(), 0.5);
        px.add_elem(w1, "doc");
        let w2 = px.add_poss(px.root(), 0.3);
        px.add_elem(w2, "doc");
        assert!(matches!(
            px.validate(),
            Err(PxInvariantError::WeightsDontSumToOne { .. })
        ));
    }

    #[test]
    fn negative_probability_rejected() {
        let mut px = PxDoc::new();
        let w1 = px.add_poss(px.root(), -0.2);
        px.add_elem(w1, "doc");
        let w2 = px.add_poss(px.root(), 1.2);
        px.add_elem(w2, "doc");
        assert!(matches!(
            px.validate(),
            Err(PxInvariantError::BadProbability { .. })
        ));
    }

    #[test]
    fn nan_probability_rejected() {
        let mut px = PxDoc::new();
        let w1 = px.add_poss(px.root(), f64::NAN);
        px.add_elem(w1, "doc");
        assert!(matches!(
            px.validate(),
            Err(PxInvariantError::BadProbability { .. })
        ));
    }

    #[test]
    fn root_poss_must_hold_one_element() {
        // Two elements under one root possibility.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        px.add_elem(w, "a");
        px.add_elem(w, "b");
        assert!(matches!(
            px.validate(),
            Err(PxInvariantError::RootPossNotSingleElement { .. })
        ));
        // Text under a root possibility.
        let mut px2 = PxDoc::new();
        let w2 = px2.add_poss(px2.root(), 1.0);
        px2.add_text(w2, "stray");
        assert!(matches!(
            px2.validate(),
            Err(PxInvariantError::RootPossNotSingleElement { .. })
        ));
    }

    #[test]
    fn fig2_validates() {
        crate::node::tests::fig2().validate().unwrap();
    }

    #[test]
    fn nested_probs_validate() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "movie");
        let choice = px.add_prob(e);
        let a = px.add_poss(choice, 0.25);
        px.add_text_elem(a, "year", "1995");
        let b = px.add_poss(choice, 0.75);
        px.add_text_elem(b, "year", "1996");
        px.validate().unwrap();
    }
}
