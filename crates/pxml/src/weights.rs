//! Dense per-document choice-weight table: the probability memoization
//! hook used by query execution.
//!
//! Exact probability computation (Shannon expansion over choice atoms,
//! see `imprecise-query`) repeatedly asks the same two questions of a
//! probability node: *how many possibilities does it have* and *what are
//! their weights*. Answering through the arena means a kind-match and a
//! child walk per visit. A [`ChoiceWeights`] table answers both with one
//! slice lookup, is built in a single pass, and — because it borrows
//! nothing — can be cached for the lifetime of one query execution (the
//! document behind an `Arc` snapshot never changes).

use crate::node::{PxDoc, PxNodeId, PxNodeKind};

/// Choice-point weights of one document, indexed by [`PxNodeId`].
///
/// Built once per query execution with [`PxDoc::choice_weights`]; see the
/// [module docs](self) for why this exists.
///
/// ```
/// use imprecise_pxml::PxDoc;
///
/// let mut px = PxDoc::new();
/// let w = px.add_poss(px.root(), 1.0);
/// let e = px.add_elem(w, "doc");
/// let c = px.add_prob(e);
/// px.add_poss(c, 0.3);
/// px.add_poss(c, 0.7);
/// let weights = px.choice_weights();
/// assert_eq!(weights.of(c), &[0.3, 0.7]);
/// assert_eq!(weights.of(px.root()), &[1.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChoiceWeights {
    /// Flat storage: probability node `id`'s weights live at
    /// `values[offsets[id.index()] .. offsets[id.index() + 1]]` (an
    /// empty range for every other node kind). Two allocations total,
    /// no per-node boxes.
    offsets: Vec<u32>,
    values: Vec<f64>,
}

impl ChoiceWeights {
    /// The possibility weights of probability node `prob`, in child
    /// order. Empty for non-probability nodes.
    #[inline]
    pub fn of(&self, prob: PxNodeId) -> &[f64] {
        let i = prob.index();
        match (self.offsets.get(i), self.offsets.get(i + 1)) {
            (Some(&start), Some(&end)) => &self.values[start as usize..end as usize],
            _ => &[],
        }
    }
}

impl PxDoc {
    /// Build the choice-weight table of this document (the probability
    /// memoization hook — see [`ChoiceWeights`]) in one arena pass.
    pub fn choice_weights(&self) -> ChoiceWeights {
        let len = self.arena_len();
        let mut offsets = Vec::with_capacity(len + 1);
        let mut values = Vec::new();
        for index in 0..len {
            offsets.push(values.len() as u32);
            let id = PxNodeId(index as u32);
            if let PxNodeKind::Prob = self.kind(id) {
                for &c in self.children(id) {
                    // lint:allow(expect-in-lib, holds by construction: prob child is poss)
                    values.push(self.poss_prob(c).expect("prob child is poss"));
                }
            }
        }
        offsets.push(values.len() as u32);
        ChoiceWeights { offsets, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_mirrors_possibilities() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let c1 = px.add_prob(e);
        px.add_poss(c1, 0.25);
        px.add_poss(c1, 0.75);
        let c2 = px.add_prob(e);
        for weight in [0.2, 0.3, 0.5] {
            px.add_poss(c2, weight);
        }
        let weights = px.choice_weights();
        assert_eq!(weights.of(px.root()), &[1.0]);
        assert_eq!(weights.of(c1), &[0.25, 0.75]);
        assert_eq!(weights.of(c2), &[0.2, 0.3, 0.5]);
        // Non-probability nodes answer with the empty slice.
        assert_eq!(weights.of(e), &[] as &[f64]);
        assert_eq!(weights.of(w), &[] as &[f64]);
    }

    #[test]
    fn detached_choice_points_keep_their_weights() {
        // The table is a flat arena pass: a detached choice point still
        // answers (events never reference detached nodes, so this is
        // only ever a convenience, never a correctness question).
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let c = px.add_prob(e);
        px.add_poss(c, 1.0);
        px.detach(c);
        let weights = px.choice_weights();
        assert_eq!(weights.of(c), &[1.0]);
    }
}
