//! Possible-world semantics: enumeration, counting, and the most probable
//! world.
//!
//! "In theory, the semantics of a query is the set of possible answers
//! obtained by evaluating the query in each of the possible worlds
//! separately" (§VI). Enumeration is exponential and only used on small
//! documents and as a correctness oracle in tests; the analytic counters
//! scale to the paper's millions-of-worlds documents.

use crate::node::{PxDoc, PxNodeId, PxNodeKind};
use imprecise_xmlkit::{subtree_fingerprint, XmlDoc};
use std::collections::HashMap;
use std::fmt;

/// One possible world: a plain XML document and its probability.
#[derive(Debug, Clone)]
pub struct World {
    /// The world's document.
    pub doc: XmlDoc,
    /// The world's probability (product of the chosen possibilities).
    pub prob: f64,
}

/// Error returned when enumeration would exceed the requested cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooManyWorlds {
    /// The cap that would have been exceeded.
    pub cap: usize,
}

impl fmt::Display for TooManyWorlds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "more than {} possible worlds", self.cap)
    }
}

impl std::error::Error for TooManyWorlds {}

/// A fragment of a world under construction: either a completed element
/// subtree (as a standalone document) or a text node.
enum Frag {
    Elem(XmlDoc),
    Text(String),
}

impl PxDoc {
    /// Exact number of possible worlds, saturating at `u128::MAX`.
    pub fn world_count(&self) -> u128 {
        self.world_count_node(self.root())
    }

    fn world_count_node(&self, node: PxNodeId) -> u128 {
        match self.kind(node) {
            PxNodeKind::Text(_) => 1,
            PxNodeKind::Elem { .. } | PxNodeKind::Poss(_) => {
                self.children(node).iter().fold(1u128, |acc, &c| {
                    acc.saturating_mul(self.world_count_node(c))
                })
            }
            PxNodeKind::Prob => self.children(node).iter().fold(0u128, |acc, &c| {
                acc.saturating_add(self.world_count_node(c))
            }),
        }
    }

    /// Number of possible worlds as an `f64` (exact until precision runs
    /// out, then a close approximation; never saturates). This is what the
    /// Figure 5 style log-scale plots use.
    pub fn world_count_f64(&self) -> f64 {
        self.world_count_f64_node(self.root())
    }

    fn world_count_f64_node(&self, node: PxNodeId) -> f64 {
        match self.kind(node) {
            PxNodeKind::Text(_) => 1.0,
            PxNodeKind::Elem { .. } | PxNodeKind::Poss(_) => self
                .children(node)
                .iter()
                .map(|&c| self.world_count_f64_node(c))
                .product(),
            PxNodeKind::Prob => self
                .children(node)
                .iter()
                .map(|&c| self.world_count_f64_node(c))
                .sum(),
        }
    }

    /// Lazily iterate over all possible worlds, in the same deterministic
    /// order as [`PxDoc::worlds`] (possibilities in document order,
    /// leftmost choice varying slowest).
    ///
    /// Each world is built on demand by mixed-radix decoding of its index
    /// against the per-subtree world counts, so short-circuiting searches
    /// (`any`, `find`, `take`) never materialise the full — potentially
    /// astronomically large — world set.
    pub fn worlds_iter(&self) -> WorldIter<'_> {
        WorldIter {
            doc: self,
            next: 0,
            count: self.world_count(),
        }
    }

    /// The `k`-th possible world (0-based, [`PxDoc::worlds`] order), or
    /// `None` when `k` is out of range.
    pub fn nth_world(&self, k: u128) -> Option<World> {
        if k >= self.world_count() {
            return None;
        }
        // The root is a probability node; locate the chosen possibility
        // bucket, then decode the remainder over its single element.
        let mut rem = k;
        for &poss in self.children(self.root()) {
            let bucket = self.world_count_node(poss);
            if rem < bucket {
                // lint:allow(expect-in-lib, holds by construction: root child is poss)
                let weight = self.poss_prob(poss).expect("root child is poss");
                let elem = self.children(poss)[0];
                // lint:allow(expect-in-lib, holds by construction: root content is an element)
                let tag = self.tag(elem).expect("root content is an element");
                let mut doc = XmlDoc::new(tag);
                for a in self.attrs(elem) {
                    doc.set_attr(doc.root(), a.name.clone(), a.value.clone());
                }
                let root = doc.root();
                let mut prob = weight;
                self.decode_children(self.children(elem), rem, &mut doc, root, &mut prob);
                return Some(World { doc, prob });
            }
            rem -= bucket;
        }
        // lint:allow(panic-in-lib, statically unreachable: k < world_count implies a bucket holds it)
        unreachable!("k < world_count implies a bucket holds it")
    }

    /// Decode world index `k` over a sibling sequence (mixed radix,
    /// leftmost sibling most significant) and build the chosen fragments.
    fn decode_children(
        &self,
        nodes: &[PxNodeId],
        mut k: u128,
        doc: &mut XmlDoc,
        parent: imprecise_xmlkit::NodeId,
        prob: &mut f64,
    ) {
        // Suffix products of the per-sibling world counts.
        let mut suffix = vec![1u128; nodes.len() + 1];
        for (i, &n) in nodes.iter().enumerate().rev() {
            suffix[i] = suffix[i + 1].saturating_mul(self.world_count_node(n));
        }
        for (i, &n) in nodes.iter().enumerate() {
            let digit = k / suffix[i + 1];
            k %= suffix[i + 1];
            self.decode_node(n, digit, doc, parent, prob);
        }
    }

    /// Build the `digit`-th world fragment of a single node.
    fn decode_node(
        &self,
        node: PxNodeId,
        digit: u128,
        doc: &mut XmlDoc,
        parent: imprecise_xmlkit::NodeId,
        prob: &mut f64,
    ) {
        match self.kind(node) {
            PxNodeKind::Text(t) => {
                debug_assert_eq!(digit, 0);
                doc.add_text(parent, t.clone());
            }
            PxNodeKind::Elem { tag, attrs } => {
                let el = doc.add_element(parent, tag.clone());
                for a in attrs {
                    doc.set_attr(el, a.name.clone(), a.value.clone());
                }
                self.decode_children(self.children(node), digit, doc, el, prob);
            }
            PxNodeKind::Prob => {
                let mut rem = digit;
                for &poss in self.children(node) {
                    let bucket = self.world_count_node(poss);
                    if rem < bucket {
                        // lint:allow(expect-in-lib, holds by construction: prob child is poss)
                        *prob *= self.poss_prob(poss).expect("prob child is poss");
                        self.decode_children(self.children(poss), rem, doc, parent, prob);
                        return;
                    }
                    rem -= bucket;
                }
                // lint:allow(panic-in-lib, statically unreachable: digit < bucket sum by construction)
                unreachable!("digit < bucket sum by construction")
            }
            // lint:allow(panic-in-lib, statically unreachable: poss decoded via its prob parent)
            PxNodeKind::Poss(_) => unreachable!("poss decoded via its prob parent"),
        }
    }

    /// Enumerate all possible worlds with their probabilities.
    ///
    /// Returns an error as soon as more than `cap` worlds would be
    /// produced. Worlds appear in deterministic order (possibilities in
    /// document order, leftmost choice varying slowest).
    pub fn worlds(&self, cap: usize) -> Result<Vec<World>, TooManyWorlds> {
        let combos = self.node_worlds(self.root(), cap)?;
        let mut out = Vec::with_capacity(combos.len());
        for (frags, prob) in combos {
            debug_assert_eq!(frags.len(), 1, "validated root poss holds one element");
            match frags.into_iter().next() {
                Some(Frag::Elem(doc)) => out.push(World { doc, prob }),
                // lint:allow(panic-in-lib, statically unreachable: root possibility content is a single element)
                _ => unreachable!("root possibility content is a single element"),
            }
        }
        Ok(out)
    }

    /// Enumerate worlds and aggregate deep-equal documents, summing their
    /// probabilities. Sorted by descending probability (ties: first seen
    /// first). Useful as a semantic oracle: two representations are
    /// equivalent iff their distributions match.
    pub fn world_distribution(&self, cap: usize) -> Result<Vec<World>, TooManyWorlds> {
        let worlds = self.worlds(cap)?;
        let mut order: Vec<World> = Vec::new();
        let mut index: HashMap<u64, usize> = HashMap::new();
        for w in worlds {
            let fp = subtree_fingerprint(&w.doc, w.doc.root());
            match index.get(&fp) {
                Some(&i) => order[i].prob += w.prob,
                None => {
                    index.insert(fp, order.len());
                    order.push(w);
                }
            }
        }
        order.sort_by(|a, b| b.prob.total_cmp(&a.prob));
        Ok(order)
    }

    /// The single most probable world (MAP world), computed exactly by
    /// bottom-up dynamic programming.
    ///
    /// A greedy top-down argmax is *not* exact: a locally less likely
    /// possibility whose contents hold no further choices can dominate a
    /// more likely possibility whose nested choices dilute the product.
    /// The DP scores every node with the best achievable probability of
    /// its subtree first, then reconstructs the choices.
    pub fn most_probable_world(&self) -> World {
        let mut best = vec![f64::NAN; self.arena_len()];
        self.map_score(self.root(), &mut best);
        let root_poss = self.best_poss(self.root(), &best);
        let prob = best[self.root().index()];
        // The root possibility holds exactly one element (validated).
        let root_elem = self.children(root_poss)[0];
        // lint:allow(expect-in-lib, holds by construction: root content is an element)
        let tag = self.tag(root_elem).expect("root content is an element");
        let mut doc = XmlDoc::new(tag);
        for a in self.attrs(root_elem) {
            doc.set_attr(doc.root(), a.name.clone(), a.value.clone());
        }
        let root = doc.root();
        for &c in self.children(root_elem) {
            self.build_map_world(c, &best, &mut doc, root);
        }
        World { doc, prob }
    }

    /// Best achievable subtree probability of `node`, memoised in `best`.
    fn map_score(&self, node: PxNodeId, best: &mut Vec<f64>) -> f64 {
        let score = match self.kind(node) {
            PxNodeKind::Text(_) => 1.0,
            PxNodeKind::Elem { .. } | PxNodeKind::Poss(_) => {
                let base = match self.kind(node) {
                    PxNodeKind::Poss(p) => *p,
                    _ => 1.0,
                };
                self.children(node)
                    .iter()
                    .fold(base, |acc, &c| acc * self.map_score(c, best))
            }
            PxNodeKind::Prob => self
                .children(node)
                .iter()
                .map(|&c| self.map_score(c, best))
                .fold(f64::NEG_INFINITY, f64::max),
        };
        best[node.index()] = score;
        score
    }

    /// The possibility of `prob_node` achieving the best score.
    fn best_poss(&self, prob_node: PxNodeId, best: &[f64]) -> PxNodeId {
        self.children(prob_node)
            .iter()
            .copied()
            .max_by(|&a, &b| best[a.index()].total_cmp(&best[b.index()]))
            // lint:allow(expect-in-lib, holds by construction: probability node has possibilities)
            .expect("probability node has possibilities")
    }

    fn build_map_world(
        &self,
        node: PxNodeId,
        best: &[f64],
        doc: &mut XmlDoc,
        parent: imprecise_xmlkit::NodeId,
    ) {
        match self.kind(node) {
            PxNodeKind::Text(t) => {
                doc.add_text(parent, t.clone());
            }
            PxNodeKind::Elem { tag, attrs } => {
                let el = doc.add_element(parent, tag.clone());
                for a in attrs {
                    doc.set_attr(el, a.name.clone(), a.value.clone());
                }
                for &c in self.children(node) {
                    self.build_map_world(c, best, doc, el);
                }
            }
            PxNodeKind::Prob => {
                let chosen = self.best_poss(node, best);
                for &c in self.children(chosen) {
                    self.build_map_world(c, best, doc, parent);
                }
            }
            // lint:allow(panic-in-lib, statically unreachable: poss reached outside prob handling)
            PxNodeKind::Poss(_) => unreachable!("poss reached outside prob handling"),
        }
    }

    /// Worlds of `node`'s content as fragment sequences.
    fn node_worlds(
        &self,
        node: PxNodeId,
        cap: usize,
    ) -> Result<Vec<(Vec<Frag>, f64)>, TooManyWorlds> {
        match self.kind(node) {
            PxNodeKind::Text(t) => Ok(vec![(vec![Frag::Text(t.clone())], 1.0)]),
            PxNodeKind::Elem { tag, attrs } => {
                let content = self.seq_worlds(self.children(node), cap)?;
                let mut out = Vec::with_capacity(content.len());
                for (frags, p) in content {
                    let mut doc = XmlDoc::new(tag.clone());
                    for a in attrs {
                        doc.set_attr(doc.root(), a.name.clone(), a.value.clone());
                    }
                    let root = doc.root();
                    attach_frags(&mut doc, root, frags);
                    out.push((vec![Frag::Elem(doc)], p));
                }
                Ok(out)
            }
            PxNodeKind::Prob => {
                let mut out = Vec::new();
                for &poss in self.children(node) {
                    // lint:allow(expect-in-lib, holds by construction: prob child is poss)
                    let weight = self.poss_prob(poss).expect("prob child is poss");
                    let content = self.seq_worlds(self.children(poss), cap)?;
                    for (frags, p) in content {
                        if out.len() >= cap {
                            return Err(TooManyWorlds { cap });
                        }
                        out.push((frags, p * weight));
                    }
                }
                Ok(out)
            }
            // lint:allow(panic-in-lib, statically unreachable: poss handled by its prob parent)
            PxNodeKind::Poss(_) => unreachable!("poss handled by its prob parent"),
        }
    }

    /// Cross product of the worlds of a sequence of sibling nodes.
    fn seq_worlds(
        &self,
        nodes: &[PxNodeId],
        cap: usize,
    ) -> Result<Vec<(Vec<Frag>, f64)>, TooManyWorlds> {
        let mut acc: Vec<(Vec<Frag>, f64)> = vec![(Vec::new(), 1.0)];
        for &n in nodes {
            let options = self.node_worlds(n, cap)?;
            if options.len() == 1 {
                // Fast path: extend every accumulated row in place by
                // cloning the single option.
                let (frags, p) = &options[0];
                for row in &mut acc {
                    row.0.extend(frags.iter().map(clone_frag));
                    row.1 *= p;
                }
                continue;
            }
            let mut next = Vec::with_capacity(acc.len().saturating_mul(options.len()));
            if acc.len().saturating_mul(options.len()) > cap {
                return Err(TooManyWorlds { cap });
            }
            for (row, rp) in &acc {
                for (frags, p) in &options {
                    let mut combined: Vec<Frag> = Vec::with_capacity(row.len() + frags.len());
                    combined.extend(row.iter().map(clone_frag));
                    combined.extend(frags.iter().map(clone_frag));
                    next.push((combined, rp * p));
                }
            }
            acc = next;
        }
        Ok(acc)
    }
}

/// Lazy possible-world iterator, created by [`PxDoc::worlds_iter`].
///
/// Yields worlds in the same order as [`PxDoc::worlds`]. `size_hint` is
/// exact when the world count fits a `usize`.
pub struct WorldIter<'a> {
    doc: &'a PxDoc,
    next: u128,
    count: u128,
}

impl Iterator for WorldIter<'_> {
    type Item = World;

    fn next(&mut self) -> Option<World> {
        if self.next >= self.count {
            return None;
        }
        let world = self.doc.nth_world(self.next);
        self.next += 1;
        world
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.count - self.next;
        match usize::try_from(remaining) {
            Ok(n) => (n, Some(n)),
            Err(_) => (usize::MAX, None),
        }
    }
}

fn clone_frag(f: &Frag) -> Frag {
    match f {
        Frag::Elem(d) => Frag::Elem(d.clone()),
        Frag::Text(t) => Frag::Text(t.clone()),
    }
}

fn attach_frags(doc: &mut XmlDoc, parent: imprecise_xmlkit::NodeId, frags: Vec<Frag>) {
    for f in frags {
        match f {
            Frag::Elem(sub) => {
                let sub_root = sub.root();
                doc.graft(parent, &sub, sub_root);
            }
            Frag::Text(t) => {
                doc.add_text(parent, t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imprecise_xmlkit::to_string;

    #[test]
    fn fig2_has_three_worlds() {
        let px = crate::node::tests::fig2();
        assert_eq!(px.world_count(), 3);
        assert_eq!(px.world_count_f64(), 3.0);
        let worlds = px.worlds(100).unwrap();
        assert_eq!(worlds.len(), 3);
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let texts: Vec<String> = worlds.iter().map(|w| to_string(&w.doc)).collect();
        assert!(texts[0].contains("<tel>1111</tel>"));
        assert!(!texts[0].contains("2222"));
        assert!(texts[1].contains("<tel>2222</tel>"));
        // Third world: two persons.
        assert_eq!(texts[2].matches("<person>").count(), 2);
    }

    #[test]
    fn world_probabilities_multiply_along_choices() {
        let px = crate::node::tests::fig2();
        let worlds = px.worlds(100).unwrap();
        // Worlds 1 and 2 each require two choices of 0.5 → 0.25.
        assert!((worlds[0].prob - 0.25).abs() < 1e-12);
        assert!((worlds[1].prob - 0.25).abs() < 1e-12);
        assert!((worlds[2].prob - 0.5).abs() < 1e-12);
    }

    #[test]
    fn certain_doc_has_one_world() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "a");
        px.add_text_elem(e, "b", "x");
        assert_eq!(px.world_count(), 1);
        let worlds = px.worlds(10).unwrap();
        assert_eq!(worlds.len(), 1);
        assert_eq!(to_string(&worlds[0].doc), "<a><b>x</b></a>");
        assert!((worlds[0].prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_choices_multiply() {
        // Element with two independent binary choices → 4 worlds.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "movie");
        for (tag, v1, v2) in [("year", "1995", "1996"), ("rating", "A", "B")] {
            let c = px.add_prob(e);
            let p1 = px.add_poss(c, 0.5);
            px.add_text_elem(p1, tag, v1);
            let p2 = px.add_poss(c, 0.5);
            px.add_text_elem(p2, tag, v2);
        }
        assert_eq!(px.world_count(), 4);
        let worlds = px.worlds(10).unwrap();
        assert_eq!(worlds.len(), 4);
        for w in &worlds {
            assert!((w.prob - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn cap_is_enforced() {
        let px = crate::node::tests::fig2();
        assert_eq!(px.worlds(2).unwrap_err(), TooManyWorlds { cap: 2 });
    }

    #[test]
    fn nested_choice_worlds_do_not_multiply_across_exclusive_branches() {
        // A choice whose first branch contains a nested choice: worlds = 2 + 1.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let outer = px.add_prob(e);
        let a = px.add_poss(outer, 0.6);
        let inner_holder = px.add_elem(a, "x");
        let inner = px.add_prob(inner_holder);
        let a1 = px.add_poss(inner, 0.5);
        px.add_text_elem(a1, "v", "1");
        let a2 = px.add_poss(inner, 0.5);
        px.add_text_elem(a2, "v", "2");
        let b = px.add_poss(outer, 0.4);
        px.add_text_elem(b, "y", "3");
        assert_eq!(px.world_count(), 3);
        let worlds = px.worlds(10).unwrap();
        let probs: Vec<f64> = worlds.iter().map(|w| w.prob).collect();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((probs[0] - 0.3).abs() < 1e-12);
        assert!((probs[2] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn distribution_merges_equal_worlds() {
        // Two possibilities with identical content → one world at p=1.
        let mut px = PxDoc::new();
        for p in [0.5, 0.5] {
            let w = px.add_poss(px.root(), p);
            let e = px.add_elem(w, "a");
            px.add_text(e, "same");
        }
        let dist = px.world_distribution(10).unwrap();
        assert_eq!(dist.len(), 1);
        assert!((dist[0].prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worlds_iter_matches_materialized_enumeration() {
        for px in [crate::node::tests::fig2(), {
            let mut px = PxDoc::new();
            let w = px.add_poss(px.root(), 1.0);
            let e = px.add_elem(w, "movie");
            for (tag, v1, v2) in [("year", "1995", "1996"), ("rating", "A", "B")] {
                let c = px.add_prob(e);
                let p1 = px.add_poss(c, 0.3);
                px.add_text_elem(p1, tag, v1);
                let p2 = px.add_poss(c, 0.7);
                px.add_text_elem(p2, tag, v2);
            }
            px
        }] {
            let eager = px.worlds(1000).unwrap();
            let lazy: Vec<World> = px.worlds_iter().collect();
            assert_eq!(eager.len(), lazy.len());
            for (a, b) in eager.iter().zip(&lazy) {
                assert_eq!(to_string(&a.doc), to_string(&b.doc));
                assert!((a.prob - b.prob).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn nth_world_bounds() {
        let px = crate::node::tests::fig2();
        assert!(px.nth_world(2).is_some());
        assert!(px.nth_world(3).is_none());
    }

    #[test]
    fn worlds_iter_short_circuits_on_huge_spaces() {
        // 40 independent binary choices → 2^40 worlds; taking a handful
        // must not enumerate the space.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        for i in 0..40 {
            let c = px.add_prob(e);
            let a = px.add_poss(c, 0.5);
            px.add_text_elem(a, "v", format!("{i}a"));
            let b = px.add_poss(c, 0.5);
            px.add_text_elem(b, "v", format!("{i}b"));
        }
        assert_eq!(px.world_count(), 1u128 << 40);
        let first: Vec<World> = px.worlds_iter().take(3).collect();
        assert_eq!(first.len(), 3);
        // First world: every choice takes its first possibility.
        assert!(to_string(&first[0].doc).contains("<v>0a</v>"));
        assert!(!to_string(&first[0].doc).contains("<v>0b</v>"));
        // Second world: only the last (least significant) choice flips.
        assert!(to_string(&first[1].doc).contains("<v>39b</v>"));
        assert!(to_string(&first[1].doc).contains("<v>0a</v>"));
        // A short-circuiting search succeeds without materialisation.
        assert!(px
            .worlds_iter()
            .take(10)
            .any(|w| to_string(&w.doc).contains("<v>38b</v>")));
    }

    #[test]
    fn worlds_iter_size_hint_is_exact_when_it_fits() {
        let px = crate::node::tests::fig2();
        let mut it = px.worlds_iter();
        assert_eq!(it.size_hint(), (3, Some(3)));
        it.next();
        assert_eq!(it.size_hint(), (2, Some(2)));
    }

    #[test]
    fn most_probable_world_picks_argmax_everywhere() {
        let mut px = PxDoc::new();
        let w1 = px.add_poss(px.root(), 0.3);
        let e1 = px.add_elem(w1, "doc");
        px.add_text(e1, "minor");
        let w2 = px.add_poss(px.root(), 0.7);
        let e2 = px.add_elem(w2, "doc");
        let c = px.add_prob(e2);
        let c1 = px.add_poss(c, 0.2);
        px.add_text_elem(c1, "v", "rare");
        let c2 = px.add_poss(c, 0.8);
        px.add_text_elem(c2, "v", "common");
        let map = px.most_probable_world();
        assert!((map.prob - 0.56).abs() < 1e-12);
        assert_eq!(to_string(&map.doc), "<doc><v>common</v></doc>");
    }

    #[test]
    fn map_world_is_among_enumerated_worlds_with_max_prob() {
        let px = crate::node::tests::fig2();
        let map = px.most_probable_world();
        let worlds = px.worlds(100).unwrap();
        let max = worlds.iter().map(|w| w.prob).fold(f64::MIN, f64::max);
        assert!((map.prob - max).abs() < 1e-12);
    }
}
